"""E22 — group fast-forward bench: one epoch per group must stay exact
and beat per-flow epochs decisively.

Replays both legs of the group fast-forward experiment and asserts the
acceptance shape:

* Parity: exact and hybrid runs of the *identical* RX+TX schedule agree —
  the counted observables (the E21 RX set plus the TX set: NIC tx_pkts,
  peer rx counters, egress sent, qdisc enqueued/emitted, doorbell MMIO
  writes, the TX DMA ledger) match exactly, modeled time and every trace
  stage land within the pinned ``ff_tolerance``, conservation holds on
  both legs, and grouping actually engaged (>= 2 groups, >= 1 group
  epoch).
* Speedup: at 100k+ connections the same absorb/flush schedule runs
  >= 3x faster with group charging than with PR 6's per-flow epochs.

Writes ``e22_group_fastforward.json`` next to the earlier artifacts and
the consolidated ``BENCH_PR7.json`` (events fired + wall seconds for the
E8/E15/E21/E22 replays). The consolidated pass doubles as a regression
gate: if the exact-mode E8 replay's events/s dropped more than 10%
against the ``BENCH_PR6.json`` baseline, the calendar queue or the group
machinery leaked cost into the default path — fail. (Skipped when no
baseline exists.)
"""

import gc
import json
import time
from pathlib import Path

from repro.experiments import e8_connection_scaling as e8
from repro.experiments.common import fmt_table
from repro.experiments.e15_flow_fastpath import run_e15_planes
from repro.experiments.e21_fidelity_crossover import (
    PARITY_COLUMNS,
    run_parity as run_e21_parity,
)
from repro.experiments.e22_group_fastforward import (
    headline,
    run_group_speedup,
    run_parity,
)
from repro.sim import Simulator

ARTIFACT = Path(__file__).parent / "artifacts" / "e22_group_fastforward.json"
CONSOLIDATED = Path(__file__).parent / "artifacts" / "BENCH_PR7.json"
PR6_BASELINE = Path(__file__).parent / "artifacts" / "BENCH_PR6.json"

MIN_GROUP_SPEEDUP = 3.0
MAX_E8_REGRESSION = 0.10


def _metered(fn, *args, **kwargs):
    """Run ``fn`` and return (result, total events fired across every
    simulator it built, wall seconds) — bench-local instrumentation."""
    sims = []
    orig_init = Simulator.__init__

    def _tracking_init(self):
        orig_init(self)
        sims.append(self)

    # Earlier 100k-connection legs leave large cyclic object graphs
    # (testbeds reference their machines and closures back). Collect them
    # now so their GC cost is not billed to the section being metered.
    gc.collect()
    Simulator.__init__ = _tracking_init
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        Simulator.__init__ = orig_init
    seconds = time.perf_counter() - t0
    return result, sum(s.events_fired for s in sims), seconds


def _e22():
    parity = run_parity()
    speedup = run_group_speedup()
    return parity, speedup


def test_e22_group_fastforward(once):
    parity, speedup = once(_e22)
    h = headline(parity, speedup)

    print("\n" + fmt_table(parity["rows"] + parity["stage_rows"],
                           columns=PARITY_COLUMNS))
    print("\n" + fmt_table([speedup]))
    print(f"\nheadline: parity_ok={h['parity_ok']} "
          f"max_rel_err={h['max_rel_err']:.4%} "
          f"fluid={h['fluid_fraction']:.0%} grouped={h['grouped']} "
          f"group speedup={h['speedup']:.1f}x @ {h['connections']:,} conns")

    # Acceptance: grouping and TX fast-forward are invisible in every
    # counted observable, and one-epoch-per-group charging actually pays.
    assert parity["ok"], parity["rows"] + parity["stage_rows"]
    for row in parity["rows"]:
        assert row["ok"], row
    assert parity["grouped"], parity["ff"]
    assert parity["fluid_fraction"] > 0.25
    assert speedup["promoted"] == speedup["connections"]
    assert speedup["group_epochs"] < speedup["per_flow_epochs"]
    assert speedup["speedup"] >= MIN_GROUP_SPEEDUP, speedup

    # The E21 parity leg (RX-only, per-flow charging path through the
    # same rewritten engine) must still report zero error.
    e21_parity = run_e21_parity()
    assert e21_parity["ok"], e21_parity["rows"]
    e21_max_err = max(float(r["rel_err"])
                      for r in e21_parity["rows"] + e21_parity["stage_rows"])
    print(f"e21 parity still exact: max_rel_err={e21_max_err:.4%}")
    assert e21_max_err == 0.0

    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        json.dumps(
            {"headline": h, "parity": parity["rows"],
             "stages": parity["stage_rows"], "speedup": speedup,
             "ff": parity["ff"], "e21_max_rel_err": e21_max_err},
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {ARTIFACT}")


def test_bench_pr7_consolidated(once):
    """One artifact comparing the replay cost of the suite's heavy
    experiments on this tree — and the regression gate proving the
    calendar queue and group machinery cost the exact path nothing."""
    entries = {}
    _, ev, s = _metered(e8.run_e8, sweep=(256, 1_024), packets_per_point=4_096)
    entries["e8"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(run_e15_planes, count=192)
    entries["e15"] = {"events": ev, "seconds": s}
    _, ev, s = _metered(run_e21_parity)
    entries["e21"] = {"events": ev, "seconds": s}
    (parity, speedup), ev, s = _metered(once, _e22)
    entries["e22"] = {
        "events": ev, "seconds": s,
        "parity_ok": bool(parity["ok"]),
        "fluid_fraction": parity["fluid_fraction"],
        "group_speedup": speedup["speedup"],
    }

    CONSOLIDATED.parent.mkdir(parents=True, exist_ok=True)
    CONSOLIDATED.write_text(json.dumps(entries, indent=2) + "\n")
    for name, e in entries.items():
        print(f"{name}: {e['events']} events in {e['seconds']:.2f}s")
    print(f"wrote {CONSOLIDATED}")

    # Exact-mode regression gate: E8 runs with fast_forward off, so its
    # events/s measures the default path the calendar queue must not slow.
    if not PR6_BASELINE.exists():
        print(f"{PR6_BASELINE.name} absent; skipping exact-mode "
              f"E8 regression check")
        return
    base = json.loads(PR6_BASELINE.read_text()).get("e8")
    if not base or not base.get("seconds"):
        print(f"{PR6_BASELINE.name} has no usable e8 entry; skipping")
        return
    base_rate = base["events"] / base["seconds"]
    cur_rate = entries["e8"]["events"] / entries["e8"]["seconds"]
    drop = 1.0 - cur_rate / base_rate
    print(f"e8 exact-mode: {cur_rate:,.0f} events/s vs baseline "
          f"{base_rate:,.0f} ({drop:+.1%} drop)")
    assert drop <= MAX_E8_REGRESSION, (
        f"exact-mode E8 replay regressed {drop:.1%} "
        f"(> {MAX_E8_REGRESSION:.0%}) vs {PR6_BASELINE.name}"
    )
