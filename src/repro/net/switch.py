"""L2 learning switch and the in-network (P4-style) interposer.

The :class:`NetworkInterposer` is the "interpose at the network" comparator
from §2: a match-action element that can see every header bit but has **no
process-level view** — it cannot match on pid/uid/comm and cannot signal or
wake host processes. The capability-matrix experiment exercises exactly those
refusals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError, UnsupportedOperation
from ..sim import MetricSet, Simulator
from .addresses import MacAddress
from .link import Link
from .packet import Packet


class L2Switch:
    """MAC-learning switch: learn on source, forward on destination, flood
    unknown and broadcast."""

    def __init__(self, sim: Simulator, name: str = "sw0"):
        self.sim = sim
        self.name = name
        self._ports: List[Link] = []
        self._mac_table: Dict[MacAddress, int] = {}
        self.metrics = MetricSet(name)

    def add_port(self, egress: Link) -> int:
        """Attach an egress link; returns the port number. The caller wires
        the reverse direction by attaching ``switch.ingress(port)``."""
        self._ports.append(egress)
        return len(self._ports) - 1

    def ingress(self, port: int) -> Callable[[Packet], None]:
        """Receive handler for frames arriving on ``port``."""
        if not 0 <= port < len(self._ports):
            raise SimulationError(f"no such port: {port}")

        def handler(pkt: Packet) -> None:
            self._forward(port, pkt)

        return handler

    def _forward(self, in_port: int, pkt: Packet) -> None:
        self.metrics.counter("frames").inc()
        self._mac_table[pkt.eth.src] = in_port
        out_port = self._mac_table.get(pkt.eth.dst)
        if pkt.eth.dst.is_broadcast or out_port is None:
            self.metrics.counter("flooded").inc()
            for port, link in enumerate(self._ports):
                if port != in_port:
                    link.send(pkt)
            return
        if out_port != in_port:
            self._ports[out_port].send(pkt)

    def mac_table(self) -> Dict[MacAddress, int]:
        return dict(self._mac_table)


@dataclass(frozen=True)
class MatchAction:
    """One network-level match-action rule: header fields only.

    Any field left ``None`` is a wildcard. There are deliberately no
    pid/uid/comm fields — a switch cannot know them.
    """

    action: str  # "drop" | "allow" | "mirror"
    proto: Optional[int] = None
    src_ip: Optional[object] = None
    dst_ip: Optional[object] = None
    sport: Optional[int] = None
    dport: Optional[int] = None

    def matches(self, pkt: Packet) -> bool:
        ft = pkt.five_tuple
        if ft is None:
            return False
        return (
            (self.proto is None or ft.proto == self.proto)
            and (self.src_ip is None or ft.src_ip == self.src_ip)
            and (self.dst_ip is None or ft.dst_ip == self.dst_ip)
            and (self.sport is None or ft.sport == self.sport)
            and (self.dport is None or ft.dport == self.dport)
        )


class NetworkInterposer:
    """P4-switch/middlebox stand-in: header match-action on a wire tap.

    Insert it between two links with :meth:`process`; install rules with
    :meth:`add_rule`. Attempting anything that needs host state raises
    :class:`UnsupportedOperation`, which is the measured result in E3.
    """

    def __init__(self, sim: Simulator, name: str = "p4"):
        self.sim = sim
        self.name = name
        self.rules: List[MatchAction] = []
        self.mirrored: List[Packet] = []
        self.metrics = MetricSet(name)

    def add_rule(self, rule: MatchAction) -> None:
        if rule.action not in ("drop", "allow", "mirror"):
            raise SimulationError(f"unknown action: {rule.action}")
        self.rules.append(rule)

    def add_owner_rule(self, **_kwargs: object) -> None:
        """Owner-based matching is impossible off-host; always refuses."""
        raise UnsupportedOperation(
            "network-level interposition cannot match on process owner: "
            "packets carry no pid/uid/comm"
        )

    def wake_process(self, _pid: int) -> None:
        """A network element cannot signal host processes."""
        raise UnsupportedOperation(
            "network-level interposition cannot signal or unblock host processes"
        )

    def process(self, pkt: Packet) -> bool:
        """Apply rules to a transiting packet. Returns False when dropped."""
        self.metrics.counter("seen").inc()
        for rule in self.rules:
            if not rule.matches(pkt):
                continue
            if rule.action == "drop":
                self.metrics.counter("dropped").inc()
                return False
            if rule.action == "mirror":
                self.mirrored.append(pkt)
                self.metrics.counter("mirrored").inc()
            return True
        return True

    def observed_five_tuples(self) -> List[str]:
        """What an operator at the network level can see: 5-tuples, never
        processes."""
        return [str(p.five_tuple) for p in self.mirrored if p.five_tuple]
