"""E4 — §2 Debugging: operator actions to find the ARP flooder."""

from repro.experiments.common import fmt_table
from repro.experiments.e4_debugging import headline, run_e4


def test_e4_debugging(once):
    rows = once(run_e4)
    print("\n" + fmt_table(rows))
    h = headline(rows)
    # O(n) inspection under bypass vs O(1) attributed capture under KOPI.
    assert h["kopi_actions"] == 1
    assert h["bypass_actions"] > 5
    kopi_rows = [r for r in rows if r["plane"] == "kopi"]
    assert all(r["identified"] for r in kopi_rows)
    # Bypass actions grow with the number of applications.
    bypass_actions = [r["operator_actions"] for r in rows if r["plane"] == "bypass"]
    assert bypass_actions == sorted(bypass_actions)
