"""F1 — Figure 1: every architecture arrow verified by live trace."""

from repro.experiments.common import fmt_table
from repro.experiments.f1_architecture import run_f1


def test_f1_architecture_paths(once):
    rows = once(run_f1)
    print("\n" + fmt_table(rows))
    assert all(r["verified"] for r in rows)
    assert len(rows) == 7
