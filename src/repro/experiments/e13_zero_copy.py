"""E13 — zero-copy: where copy elision pays, and where it cannot.

Sweeps message size × dataplane × {copy, zerocopy}. "zerocopy" turns on
both kernel elision modes: MSG_ZEROCOPY-style TX (pin pages + completion
notification instead of the user->kernel copy) and registered-buffer RX
(io_uring-style fixed handoff instead of the kernel->user copy). The
CopyLedger attributes every byte moved, so the table shows copied bytes,
copy nanoseconds, and elided bytes per packet, per layer class.

The shape the cost model predicts — the paper's data-movement taxonomy,
measured:

* **kernel**: elision trades a per-byte copy for a fixed per-operation
  pinning cost, so there is a crossover. Below the break-even message size
  (~14 KB at 0.06 ns/B vs 850 ns pin+completion) zerocopy *loses*; above
  it, it wins and the win grows linearly with message size.
* **sidecar**: its dominant movement is *physical* — cache lines migrating
  to the interposition core. That per-byte cost is charged by the
  coherence fabric, not the syscall boundary, so kernel zero-copy modes
  change nothing: same CPU, same ledger. You cannot elide interposition
  done by copy.
* **bypass / hypervisor / KOPI**: already zero-copy — frames move by DMA
  straight into application-visible rings (`dma_direct` in the ledger),
  and the elision knobs are no-ops. This is §3's claim: KOPI keeps
  kernel-grade interposition at bypass-grade data movement.

A second, RX-side table re-runs the kernel plane as a receiver (peer
injects, a blocking sink reads) to show the registered-buffer RX mode has
the same fixed-vs-per-byte structure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..apps.echo import SinkServer
from ..config import DEFAULT_COSTS, CostModel
from ..dataplanes import KernelPathDataplane, Testbed
from .common import Row, copy_summary, fmt_table, planes_under_test, run_bulk_tx

SIZES = (64, 512, 1_458, 4_096, 16_384, 32_768)
DEFAULT_COUNT = 64
RX_COUNT = 32
RX_GAP_NS = 25_000  # injection spacing: keeps the sink ahead of the peer

MODES: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("copy", {}),
    ("zerocopy", {"tx_zerocopy": True, "rx_zerocopy": True}),
)

COLUMNS = [
    "plane", "mode", "payload_B", "delivered", "goodput_gbps",
    "app_cpu_ns_per_pkt", "copied_B_per_pkt", "copy_ns_per_pkt",
    "elided_B_per_pkt",
]

RX_COLUMNS = ["mode", "payload_B", "received", "app_cpu_ns_per_msg",
              "copied_B_per_msg", "elided_B_per_msg"]


def run_e13(
    count: int = DEFAULT_COUNT,
    sizes: "tuple[int, ...]" = SIZES,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    rows: List[Row] = []
    for plane_cls in planes_under_test():
        for mode, changes in MODES:
            mode_costs = costs.replace(**changes) if changes else costs
            for size in sizes:
                row = run_bulk_tx(
                    plane_cls, size, count, costs=mode_costs, with_copies=True
                )
                copies = row.pop("copies")
                row.pop("movements")
                row["mode"] = mode
                row["copied_B_per_pkt"] = copies["cpu_bytes_copied"] / count
                row["copy_ns_per_pkt"] = copies["cpu_ns_copying"] / count
                row["elided_B_per_pkt"] = copies["bytes_elided"] / count
                row["zc_overhead_ns_per_pkt"] = copies["elision_overhead_ns"] / count
                row["dma_direct_B_per_pkt"] = copies["dma_direct_bytes"] / count
                rows.append(row)
    return rows


def run_e13_rx(
    count: int = RX_COUNT,
    sizes: "tuple[int, ...]" = SIZES,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    """Kernel-plane RX counterpart: the peer injects ``count`` messages,
    a blocking sink reads them, and we charge the reader's core."""
    rows: List[Row] = []
    for mode, changes in MODES:
        mode_costs = costs.replace(**changes) if changes else costs
        for size in sizes:
            tb = Testbed(KernelPathDataplane, costs=mode_costs)
            sink = SinkServer(tb, port=9_000, comm="sink", user="bob", core_id=1)
            sink.start()
            for i in range(count):
                tb.sim.at(i * RX_GAP_NS, tb.peer.send_udp, 7_000, 9_000, size)
            tb.run_all()
            copies = copy_summary(tb.machine.copies)
            got = max(sink.messages, 1)
            rows.append({
                "mode": mode,
                "payload_B": size,
                "received": sink.messages,
                "app_cpu_ns_per_msg": tb.machine.cpus[1].busy_ns / got,
                "copied_B_per_msg": copies["cpu_bytes_copied"] / got,
                "elided_B_per_msg": copies["bytes_elided"] / got,
            })
    return rows


def _by_plane_mode(rows: List[Row]) -> Dict[Tuple[str, str, int], Row]:
    return {(str(r["plane"]), str(r["mode"]), int(r["payload_B"])): r for r in rows}


def crossover(rows: List[Row], plane: str = "kernel") -> Dict[str, object]:
    """Measured crossover on one plane: per size, does zerocopy beat copy
    on app-core CPU? Returns the smallest winning size (or None)."""
    index = _by_plane_mode(rows)
    sizes = sorted({int(r["payload_B"]) for r in rows if r["plane"] == plane})
    wins: Dict[int, float] = {}
    for size in sizes:
        cp = index.get((plane, "copy", size))
        zc = index.get((plane, "zerocopy", size))
        if cp is None or zc is None:
            continue
        wins[size] = float(cp["app_cpu_ns_per_pkt"]) - float(zc["app_cpu_ns_per_pkt"])
    winning = [s for s, delta in wins.items() if delta > 0]
    losing = [s for s, delta in wins.items() if delta < 0]
    return {
        "cpu_delta_ns_by_size": wins,
        "crossover_B": min(winning) if winning else None,
        "largest_losing_B": max(losing) if losing else None,
    }


def headline(rows: List[Row], costs: CostModel = DEFAULT_COSTS) -> Dict[str, object]:
    index = _by_plane_mode(rows)
    cross = crossover(rows, "kernel")
    sizes = sorted({int(r["payload_B"]) for r in rows})
    small, large = sizes[0], sizes[-1]

    def unaffected(plane: str, key: str) -> bool:
        return all(
            index[(plane, "copy", s)][key] == index[(plane, "zerocopy", s)][key]
            for s in sizes
            if (plane, "copy", s) in index and (plane, "zerocopy", s) in index
        )

    return {
        "break_even_model_B": costs.zc_tx_break_even_bytes,
        "crossover_measured_B": cross["crossover_B"],
        "largest_losing_B": cross["largest_losing_B"],
        "kernel_small_msg_penalty_ns": -cross["cpu_delta_ns_by_size"].get(small, 0.0),
        "kernel_large_msg_win_ns": cross["cpu_delta_ns_by_size"].get(large, 0.0),
        # Sidecar movement is coherence, not user/kernel copies — the knobs
        # must not touch it.
        "sidecar_unaffected": unaffected("sidecar", "app_cpu_ns_per_pkt")
        and unaffected("sidecar", "copied_B_per_pkt"),
        # Bypass-class planes have no boundary copy to elide.
        "bypass_unaffected": unaffected("bypass", "app_cpu_ns_per_pkt"),
        "kopi_unaffected": unaffected("kopi", "app_cpu_ns_per_pkt"),
    }


def main() -> str:
    rows = run_e13()
    rx_rows = run_e13_rx()
    summary = headline(rows)
    lines = [fmt_table(rows, columns=COLUMNS), ""]
    lines.append("kernel RX (registered-buffer mode):")
    lines.append(fmt_table(rx_rows, columns=RX_COLUMNS))
    lines.append("")
    lines.append(
        f"model break-even {summary['break_even_model_B']} B; measured "
        f"crossover at {summary['crossover_measured_B']} B (zerocopy still "
        f"loses at {summary['largest_losing_B']} B)"
    )
    lines.append(
        f"headline: MSG_ZEROCOPY costs the kernel path "
        f"{summary['kernel_small_msg_penalty_ns']:.0f} ns/pkt at "
        f"{SIZES[0]} B but wins {summary['kernel_large_msg_win_ns']:.0f} ns/pkt "
        f"at {SIZES[-1]} B; sidecar coherence copies are untouched "
        f"(unaffected={summary['sidecar_unaffected']}) and bypass/KOPI were "
        "already zero-copy — interposition without data movement is a "
        "placement question, not a flag"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
