"""Queueing disciplines and the paced runner."""

import pytest

from repro import units
from repro.errors import PolicyError
from repro.kernel import DrrQdisc, PfifoQdisc, PrioQdisc, TbfQdisc
from repro.kernel.qdisc import qdisc_from_spec
from repro.kernel.qdisc_runner import PacedQdiscRunner
from repro.net import IPv4Address, MacAddress, make_udp
from repro.sim import Simulator

MAC_A, MAC_B = MacAddress.from_index(1), MacAddress.from_index(2)
IP_A, IP_B = IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")


def pkt(size=958):  # wire length = size + 42
    return make_udp(MAC_A, MAC_B, IP_A, IP_B, 1000, 2000, size)


class TestPfifo:
    def test_fifo_order(self):
        q = PfifoQdisc(limit=10)
        a, b = pkt(), pkt()
        q.enqueue(a)
        q.enqueue(b)
        assert q.dequeue(0) is a
        assert q.dequeue(0) is b
        assert q.dequeue(0) is None

    def test_tail_drop(self):
        q = PfifoQdisc(limit=1)
        assert q.enqueue(pkt())
        assert not q.enqueue(pkt())
        assert q.dropped == 1

    def test_next_ready(self):
        q = PfifoQdisc()
        assert q.next_ready_ns(5) is None
        q.enqueue(pkt())
        assert q.next_ready_ns(5) == 5

    def test_validation(self):
        with pytest.raises(PolicyError):
            PfifoQdisc(limit=0)


class TestTbf:
    def test_burst_then_paced(self):
        # 1000B packets, burst of exactly one packet, 8 Mbps rate
        q = TbfQdisc(rate_bps=8 * units.MBPS, burst_bytes=1_000)
        q.enqueue(pkt())
        q.enqueue(pkt())
        assert q.dequeue(0) is not None  # burst allows the first
        assert q.dequeue(0) is None  # no tokens for the second
        ready = q.next_ready_ns(0)
        assert ready == pytest.approx(1_000_000, rel=0.01)  # 1000B at 1MB/s
        assert q.dequeue(ready + 10) is not None

    def test_tokens_cap_at_burst(self):
        q = TbfQdisc(rate_bps=units.GBPS, burst_bytes=2_000)
        q.enqueue(pkt())
        q.enqueue(pkt())
        q.enqueue(pkt())
        # After a long idle, only burst_bytes of tokens are available.
        assert q.dequeue(units.SEC) is not None
        assert q.dequeue(units.SEC) is not None
        assert q.dequeue(units.SEC) is None

    def test_validation(self):
        with pytest.raises(PolicyError):
            TbfQdisc(rate_bps=0, burst_bytes=1)
        with pytest.raises(PolicyError):
            TbfQdisc(rate_bps=1, burst_bytes=0)


class TestDrr:
    def test_equal_weights_split_evenly(self):
        # Shares are measured while both classes stay backlogged — fairness
        # is about the service *rate* under contention, not eventual totals.
        q = DrrQdisc(weights={"a": 1, "b": 1})
        for _ in range(200):
            q.enqueue(pkt(), "a")
            q.enqueue(pkt(), "b")
        for _ in range(100):
            assert q.dequeue(0) is not None
        assert q.share_of("a") == pytest.approx(0.5, abs=0.05)

    def test_weighted_split(self):
        q = DrrQdisc(weights={"bulk": 3, "game": 1})
        for _ in range(200):
            q.enqueue(pkt(), "bulk")
            q.enqueue(pkt(), "game")
        for _ in range(100):
            assert q.dequeue(0) is not None
        assert q.share_of("bulk") == pytest.approx(0.75, abs=0.05)
        assert q.share_of("game") == pytest.approx(0.25, abs=0.05)

    def test_work_conserving(self):
        """An idle class's bandwidth goes to the busy class — the reason §2
        says shaping needs a global view."""
        q = DrrQdisc(weights={"a": 1, "b": 9})
        for _ in range(10):
            q.enqueue(pkt(), "a")
        drained = 0
        while q.dequeue(0):
            drained += 1
        assert drained == 10  # nothing waits for the idle heavy class

    def test_unknown_class_rejected(self):
        q = DrrQdisc(weights={"a": 1})
        with pytest.raises(PolicyError):
            q.enqueue(pkt(), "zz")

    def test_validation(self):
        with pytest.raises(PolicyError):
            DrrQdisc(weights={})
        with pytest.raises(PolicyError):
            DrrQdisc(weights={"a": 0})


class TestPrio:
    def test_strict_priority(self):
        q = PrioQdisc(bands=2)
        low = pkt()
        high = pkt()
        q.enqueue(low, "1")
        q.enqueue(high, "0")
        assert q.dequeue(0) is high
        assert q.dequeue(0) is low

    def test_band_validation(self):
        q = PrioQdisc(bands=2)
        with pytest.raises(PolicyError):
            q.enqueue(pkt(), "5")
        with pytest.raises(PolicyError):
            q.enqueue(pkt(), "not-a-band")


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(qdisc_from_spec("pfifo"), PfifoQdisc)
        assert isinstance(qdisc_from_spec("wfq", weights={"a": 1}), DrrQdisc)
        assert isinstance(
            qdisc_from_spec("tbf", rate_bps=units.MBPS, burst_bytes=1500), TbfQdisc
        )

    def test_unknown_kind(self):
        with pytest.raises(PolicyError):
            qdisc_from_spec("codel")


class TestPacedRunner:
    def test_drains_at_configured_rate(self):
        sim = Simulator()
        out = []
        runner = PacedQdiscRunner(sim, PfifoQdisc(), units.GBPS, lambda p: out.append(sim.now))
        for _ in range(3):
            runner.submit(pkt(size=958))  # 1000B wire = 8000 ns at 1 Gbps
        sim.run()
        assert out == [0, 8_000, 16_000]

    def test_tbf_paces_despite_instant_submission(self):
        sim = Simulator()
        out = []
        q = TbfQdisc(rate_bps=8 * units.MBPS, burst_bytes=1_000)
        runner = PacedQdiscRunner(sim, q, units.GBPS, lambda p: out.append(sim.now))
        runner.submit(pkt())
        runner.submit(pkt())
        sim.run()
        assert out[0] == 0
        assert out[1] >= 1_000_000  # second waits for bucket refill

    def test_replace_qdisc_drops_backlog(self):
        sim = Simulator()
        runner = PacedQdiscRunner(sim, TbfQdisc(rate_bps=1, burst_bytes=1), units.GBPS, lambda p: None)
        runner.submit(pkt())
        runner.submit(pkt())
        runner.replace_qdisc(PfifoQdisc())
        assert runner.backlog == 0

    def test_oversized_packet_dropped_not_livelocked(self):
        """A frame larger than the bucket can never earn enough tokens; tbf
        must drop it instead of wedging the drain loop."""
        sim = Simulator()
        out = []
        q = TbfQdisc(rate_bps=8 * units.MBPS, burst_bytes=500)
        runner = PacedQdiscRunner(sim, q, units.GBPS, lambda p: out.append(sim.now))
        assert runner.submit(pkt()) is False  # 1000B wire > 500B bucket
        sim.run()
        assert out == []
        assert q.dropped == 1

    def test_validation(self):
        with pytest.raises(PolicyError):
            PacedQdiscRunner(Simulator(), PfifoQdisc(), 0, lambda p: None)
