"""Control-plane details: registries, ring modes, resolution, capabilities."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.core import CONN_MODE_PER_CONN, CONN_MODE_SHARED, NormanOS
from repro.core.capabilities import capability_matrix, render_matrix
from repro.dataplanes import BypassDataplane, Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.errors import KernelError
from repro.kernel import NetfilterRule
from repro.net import PROTO_UDP


class TestConnectionRegistry:
    def test_connection_records_owner(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("postgres", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 5432)
        conn = ep.conn
        assert conn.owner == (proc.pid, tb.user("bob").uid, "postgres")
        assert tb.dataplane.control.conn_count() == 1
        assert tb.dataplane.control.connections() == [conn]

    def test_owner_rule_resolution(self):
        tb = Testbed(NormanOS)
        bob_pg = tb.spawn("postgres", "bob", core_id=1)
        charlie_db = tb.spawn("mysql", "charlie", core_id=2)
        ep1 = tb.dataplane.open_endpoint(bob_pg, PROTO_UDP, 5432)
        ep2 = tb.dataplane.open_endpoint(charlie_db, PROTO_UDP, 3306)
        cp = tb.dataplane.control
        rule = NetfilterRule(verdict="ACCEPT", uid_owner=tb.user("bob").uid)
        assert list(cp.resolve_owner_rule(rule)) == [ep1.conn.conn_id]
        rule2 = NetfilterRule(verdict="ACCEPT", cmd_owner="mysql")
        assert list(cp.resolve_owner_rule(rule2)) == [ep2.conn.conn_id]
        rule3 = NetfilterRule(verdict="ACCEPT", pid_owner=bob_pg.pid, cmd_owner="postgres")
        assert list(cp.resolve_owner_rule(rule3)) == [ep1.conn.conn_id]

    def test_double_close_rejected(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.close()
        with pytest.raises(KernelError):
            tb.dataplane.control.close_connection(ep.conn)

    def test_connect_installs_exact_steering(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("client", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP)
        done = []
        ep.connect(PEER_IP, 9000).add_callback(lambda s: done.append(True))
        tb.run_all()
        assert done == [True]
        from repro.net import FiveTuple
        from repro.dataplanes.testbed import HOST_IP

        inbound = FiveTuple(PROTO_UDP, PEER_IP, 9000, HOST_IP, ep.port)
        assert tb.dataplane.nic.steering.lookup(inbound) == ep.conn.conn_id


class TestRingModes:
    def test_per_connection_rings_are_distinct(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("app", "bob", core_id=1)
        a = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        b = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7001)
        assert a.conn.mode == CONN_MODE_PER_CONN
        assert a.conn.rings is not b.conn.rings

    def test_shared_rings_mode_shares_per_process(self):
        tb = Testbed(NormanOS, shared_rings=True)
        proc = tb.spawn("app", "bob", core_id=1)
        other = tb.spawn("other", "bob", core_id=2)
        a = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        b = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7001)
        c = tb.dataplane.open_endpoint(other, PROTO_UDP, 7002)
        assert a.conn.mode == CONN_MODE_SHARED
        assert a.conn.rings is b.conn.rings  # same process -> same rings
        assert a.conn.rings is not c.conn.rings  # different process

    def test_active_hot_bytes_scales_with_connections(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("app", "bob", core_id=1)
        cp = tb.dataplane.control
        assert cp.active_hot_bytes() == 0
        for i in range(4):
            tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000 + i)
        assert cp.active_hot_bytes() == 4 * DEFAULT_COSTS.conn_footprint_bytes

    def test_shared_mode_caps_hot_bytes(self):
        tb = Testbed(NormanOS, shared_rings=True)
        proc = tb.spawn("app", "bob", core_id=1)
        for i in range(16):
            tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000 + i)
        hot = tb.dataplane.control.active_hot_bytes()
        assert hot == DEFAULT_COSTS.conn_footprint_bytes  # one shared pair

    def test_pinned_memory_accounted_per_connection(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("app", "bob", core_id=1)
        before = tb.machine.memory.pinned_bytes
        tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        grown = tb.machine.memory.pinned_bytes - before
        assert grown == DEFAULT_COSTS.conn_footprint_bytes


class TestCapabilityMatrix:
    def test_matrix_matches_paper(self):
        matrix = capability_matrix([BypassDataplane, NormanOS])
        assert all(v == "yes" for v in matrix["kopi"].values())
        assert all(v.startswith("no") for v in matrix["bypass"].values())

    def test_render_is_tabular(self):
        matrix = capability_matrix([NormanOS])
        text = render_matrix(matrix)
        assert "kopi" in text
        assert "port_partitioning" in text
