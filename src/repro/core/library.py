"""The Norman userspace library (§4.2/§4.3).

POSIX-shaped send/recv over per-connection rings: sends post a descriptor
and ring the doorbell; receives consume directly from the RX ring. Blocking
variants go through the control plane's notification machinery instead of
spinning. Connections that fell back to the software path (§5) transparently
use the kernel stack — same API, kernel-path costs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import EndpointClosed, UnsupportedOperation, WouldBlock
from ..net.addresses import IPv4Address
from ..net.headers import PROTO_TCP
from ..net.packet import Packet, make_tcp, make_udp
from ..sim import Signal
from ..trace import STAGE_COHERENCE, STAGE_DMA, STAGE_RING, charge
from ..dataplanes.base import Endpoint, _as_bool, _as_first
from .connection import NormanConnection

Message = Tuple[int, IPv4Address, int]


class NormanEndpoint(Endpoint):
    """Application handle over one Norman connection."""

    def __init__(self, norman, conn: NormanConnection):
        super().__init__(norman, conn.proc, conn.proto, conn.port)
        self._os = norman
        self.conn = conn

    @property
    def _core(self):
        return self._os.machine.cpus[self.proc.core_id]

    @property
    def _costs(self):
        return self._os.machine.costs

    # --- connection -----------------------------------------------------

    def connect(self, dst_ip: IPv4Address, dport: int) -> Signal:
        return self._os.control.connect_peer(self.conn, dst_ip, dport)

    def close(self) -> None:
        if not self.closed:
            self._os.control.close_connection(self.conn)
        super().close()

    # --- TX ------------------------------------------------------------------

    def send(self, payload_len: int, dst: Optional[Tuple[IPv4Address, int]] = None) -> Signal:
        return _as_bool(self.send_burst((payload_len,), dst), "norman.send")

    def send_burst(
        self, payload_lens: Sequence[int], dst: Optional[Tuple[IPv4Address, int]] = None
    ) -> Signal:
        dst = dst or self.conn.sock.peer
        if dst is None:
            raise UnsupportedOperation("send without destination on unconnected endpoint")
        if self.conn.fallback:
            return self._os.kernel.netstack.sendmmsg(
                self.proc, self.conn.sock, dst[0], dst[1], payload_lens
            )
        ff = self._os.machine.ff
        if ff is not None:
            # TX-side fast-forward: a steady single-packet send on a
            # promoted flow is absorbed here — it never builds a Packet,
            # never enters the ring, fires zero simulator events. The
            # epoch flush replays its full chain later.
            from ..net.flow import FiveTuple

            key = FiveTuple(
                proto=self.proto, src_ip=self._os.kernel.host_ip,
                sport=self.port, dst_ip=dst[0], dport=dst[1],
            )
            absorbed = ff.absorb_send(key, payload_lens)
            if absorbed:
                done = Signal("norman.send_burst")
                done.succeed(absorbed)
                return done
        pkts = [self._build(dst[0], dst[1], length) for length in payload_lens]
        return self.send_raw_burst(pkts)

    def send_raw(self, pkt: Packet) -> Signal:
        """Zero-copy post + doorbell. Blocks (via the tx_drained
        notification) when the TX ring is full."""
        return _as_bool(self.send_raw_burst((pkt,)), "norman.send")

    def send_raw_burst(self, pkts: Sequence[Packet]) -> Signal:
        """Post a descriptor burst under ONE doorbell. Blocks (via the
        tx_drained notification) for the remainder when the ring fills —
        each retry rings the doorbell once for what it managed to post."""
        if self.conn.fallback:
            raise UnsupportedOperation("fallback connections cannot inject raw frames")
        result = Signal("norman.send_burst")
        tracer = self._os.machine.tracer
        now = self._os.machine.sim.now
        lead_ctx = None
        cost = 0
        for pkt in pkts:
            pkt.meta.created_ns = now
            ctx = tracer.begin(pkt)
            if lead_ctx is None:
                lead_ctx = ctx
            cost += charge(STAGE_RING, self._costs.bypass_tx_pkt_ns, ctx,
                           label="tx_desc")
        # mmio_write_cost both prices the doorbell and counts it — once for
        # the whole burst, which is exactly what batching amortizes (the
        # MMIO nanoseconds land on the lead packet's trace).
        cost += charge(STAGE_DMA, self._os.machine.dma.mmio_write_cost(),
                       lead_ctx, label="doorbell")
        state = {"idx": 0, "posted": 0}

        def _attempt(_sig: Optional[Signal] = None) -> None:
            if self.closed:
                result.succeed(state["posted"])
                return
            posted_now = self.conn.rings.tx.post_burst(pkts[state["idx"]:])
            if posted_now:
                state["posted"] += posted_now
                state["idx"] += posted_now
                self._os.nic.doorbell(self.conn)
            if state["idx"] >= len(pkts):
                result.succeed(state["posted"])
                return
            woken = self._os.control.block_on_tx(self.conn, self.proc)
            woken.add_callback(_attempt)

        self._core.execute(cost, "norman_tx", ctx=lead_ctx).add_callback(_attempt)
        return result

    def _build(self, dst_ip: IPv4Address, dport: int, payload_len: int) -> Packet:
        dst_mac = self._os.kernel.mac_for(dst_ip)
        maker = make_tcp if self.proto == PROTO_TCP else make_udp
        return maker(
            self._os.kernel.host_mac, dst_mac, self._os.kernel.host_ip, dst_ip,
            self.port, dport, payload_len,
        )

    # --- RX -----------------------------------------------------------------------

    def recv(self, blocking: bool = True) -> Signal:
        """Consume one message from the RX ring: the degenerate burst of one.

        The read cost is honest about the memory hierarchy: freshly
        DMA-written lines are cheap while the active working set fits DDIO
        and DRAM-expensive once it does not — the E8 mechanism.
        """
        return _as_first(self.recv_burst(1, blocking=blocking), "norman.recv")

    def recv_burst(self, max_msgs: int, blocking: bool = True) -> Signal:
        """Drain up to ``max_msgs`` ring entries under one library call:
        one wakeup, one CPU dispatch, per-packet memory-read costs."""
        if self.conn.fallback:
            return self._os.kernel.netstack.recvmmsg(
                self.proc, self.conn.sock, max_msgs, blocking=blocking
            )
        result = Signal("norman.recv_burst")

        def _attempt(_sig: Optional[Signal] = None) -> None:
            if self.closed:
                result.fail(EndpointClosed(f"endpoint :{self.port} closed"))
                return
            pkts = self.conn.rings.rx.consume_burst(max_msgs)
            if pkts:
                # A flow can straddle fidelity modes mid-burst (exact
                # packets in the ring, absorbed ones as credit): serve
                # both under the one call, ring first.
                fluid = (
                    self._consume_fluid(max_msgs - len(pkts))
                    if len(pkts) < max_msgs else []
                )
                cost = sum(
                    charge(STAGE_RING, self._costs.bypass_rx_pkt_ns,
                           p.meta.trace, label="rx_desc")
                    + charge(STAGE_COHERENCE, self._read_cost(p),
                             p.meta.trace, label="mem_read")
                    for p in pkts
                )

                def _drained(_s: Signal) -> None:
                    now = self._os.machine.sim.now
                    for p in pkts:
                        if p.meta.trace is not None:
                            # Ring residency + wakeup wait, then done.
                            p.meta.trace.fill_gap(STAGE_RING, now, label="ring_wait")
                            p.meta.trace.close(now)
                    result.succeed([_message_of(p) for p in pkts] + fluid)

                self._core.execute(cost, "norman_rx").add_callback(_drained)
                return
            # Ring empty: fast-forwarded packets never occupied ring slots —
            # their delivery is fluid credit on the connection, charged (CPU,
            # ring, memory-read stages) at epoch flush, not here.
            fluid = self._consume_fluid(max_msgs)
            if fluid:
                result.succeed(fluid)
                return
            if not blocking:
                result.fail(WouldBlock(f"ring empty on :{self.port}"))
                return
            woken = self._os.control.block_on_rx(self.conn, self.proc)
            woken.add_callback(_attempt)

        _attempt()
        return result

    def _consume_fluid(self, max_msgs: int) -> List[Message]:
        """Take up to ``max_msgs`` messages of fast-forward receive credit.
        Flushes the connection's pending epochs first so every message
        handed out has had its costs charged before the data is read."""
        ff = self._os.machine.ff
        if ff is None:
            return []
        ff.flush_conn(self.conn.conn_id)
        chunks = self.conn.fluid_rx
        msgs: List[Message] = []
        while chunks and len(msgs) < max_msgs:
            chunk = chunks[0]
            take = min(chunk[0], max_msgs - len(msgs))
            msgs.extend([(chunk[1], chunk[2], chunk[3])] * take)
            chunk[0] -= take
            if chunk[0] == 0:
                chunks.pop(0)
        return msgs

    def _read_cost(self, pkt: Packet) -> int:
        lines = pkt.meta.notes.get("lines")
        machine = self._os.machine
        if machine.llc is not None and lines:
            costs = self._costs
            total = 0
            for addr in lines:
                total += costs.llc_hit_ns if machine.llc.cpu_read(addr) else costs.dram_ns
            return total
        n_lines = len(lines) if lines else 2
        return machine.ddio_model.read_cost_ns(
            self._os.control.active_hot_bytes(), n_lines
        )


def _message_of(pkt: Packet) -> Message:
    ft = pkt.five_tuple
    if ft is None:
        return (pkt.wire_len, IPv4Address(0), 0)
    return (pkt.payload_len, ft.src_ip, ft.sport)
