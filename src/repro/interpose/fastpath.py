"""Megaflow-style flow fast path over the interposition plane.

The paper argues interposition should run at the cheapest place on the
datapath; the classic software realization is a flow cache: the *first*
packet of a flow walks every interposition point (netfilter chains, qdisc
classifier, vswitch match-action, NIC steering, overlay filters,
conntrack), and the composed outcome is cached under the five-tuple so
later packets pay one exact-match lookup — OVS megaflows, the Linux
netfilter flowtable offload, and the "policy compiled to fast path"
structure of the NIC-as-OS line of work.

Correctness leans on PR 3's versioned commits: every policy mutation on
the machine lands in the :class:`~repro.interpose.PolicyEngine` and bumps
its ``epoch``. A cached entry is stamped with the epoch it was built
under; a lookup that finds a stale stamp discards the entry and falls
back to the slow path (lazy invalidation — nothing walks the cache on
commit, exactly like megaflow revalidation). Conntrack expiry evicts the
flow's entries eagerly, and a bounded LRU models flowtable/SRAM pressure:
more concurrent flows than :attr:`~repro.config.CostModel.flow_fastpath_entries`
and the cache thrashes back to slow-path cost — the same >1024-connection
collapse §5 reports for DDIO.

The cache is per-:class:`~repro.host.machine.Machine` and strictly
opt-in: ``Machine.fastpath`` is ``None`` unless
:attr:`~repro.config.CostModel.flow_fastpath` is set, and every dataplane
guards its wiring on that, so default-config runs are byte-identical to
the seed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Set, Tuple

from ..config import CostModel
from ..net.flow import FiveTuple
from ..sim import MetricSet
from ..sim.fastforward import REASON_CONNTRACK, REASON_FASTPATH

#: Cache scopes (the ``chain`` key component) used by the dataplanes.
CHAIN_STEER = "steer"
CHAIN_VSWITCH = "vswitch"
CHAIN_KOPI_RX = "kopi_rx"
CHAIN_KOPI_TX = "kopi_tx"

Key = Tuple[str, FiveTuple, Optional[int]]


class FlowVerdict:
    """One cached slow-path outcome.

    ``verdict`` is whatever the slow path produced (an ACCEPT/DROP string,
    an overlay verdict, or None for "no filter loaded"); ``qdisc_class``
    holds the plane's class representation (a tc class string on the
    kernel/sidecar paths, an integer scheduler class on KOPI);
    ``queue_id``/``conn_id`` cache steering decisions; ``ct_entry`` is a
    live reference to the flow's conntrack entry so hits keep per-flow
    accounting exact without re-walking the table.
    """

    __slots__ = (
        "chain", "flow", "scope", "verdict", "qdisc_class", "queue_id",
        "conn_id", "ct_entry", "points", "epoch", "versions", "hits",
        "tenant",
    )

    def __init__(
        self,
        chain: str,
        flow: FiveTuple,
        scope: Optional[int],
        verdict,
        qdisc_class,
        queue_id: Optional[int],
        conn_id: Optional[int],
        ct_entry,
        points: Tuple[str, ...],
        epoch: int,
        versions: Tuple[Tuple[str, int], ...],
        tenant=None,
    ):
        self.chain = chain
        self.flow = flow
        self.scope = scope
        self.verdict = verdict
        self.qdisc_class = qdisc_class
        self.queue_id = queue_id
        self.conn_id = conn_id
        self.ct_entry = ct_entry
        self.points = points
        self.epoch = epoch
        self.versions = versions
        self.hits = 0
        #: Owning :class:`~repro.host.tenants.Tenant`, or None when the
        #: machine runs without tenant attribution (the seed default).
        self.tenant = tenant

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowVerdict {self.chain}:{self.flow} -> {self.verdict!r} "
            f"epoch={self.epoch} hits={self.hits}>"
        )


class FlowFastPath:
    """Per-machine LRU verdict cache keyed by (chain, five-tuple, scope).

    ``chain`` names the interposition site (netfilter INPUT/OUTPUT, the
    hypervisor vswitch, NIC steering, the KOPI RX/TX pipelines); ``scope``
    carries whatever slow-path input beyond the headers the cached walk
    consumed — the owning pid on the kernel/sidecar paths, where owner
    rules and cgroup classification make the verdict a function of
    (flow, process), ``None`` on header-only planes.
    """

    def __init__(self, engine, costs: CostModel, tenants=None):
        self.engine = engine
        self.hit_ns = costs.flowtable_hit_ns
        self.capacity = costs.flow_fastpath_entries
        #: :class:`~repro.host.tenants.TenantRegistry` when the machine
        #: attributes by tenant, else None. Quotas only bite when the
        #: registry reports isolation on.
        self.tenants = tenants
        self._quotas_on = tenants is not None and tenants.isolation
        self._tenant_entries: Dict[int, int] = {}
        self._tenant_ctrs: Dict[int, tuple] = {}
        self._entries: "OrderedDict[Key, FlowVerdict]" = OrderedDict()
        self._by_flow: Dict[FiveTuple, Set[Key]] = {}
        self.metrics = MetricSet("fastpath")
        # The hot-path counters, resolved once: a cache whose bookkeeping
        # costs more than the rule walk it elides would defeat the point.
        self._c_hits = self.metrics.counter("hits")
        self._c_misses = self.metrics.counter("misses")
        self._c_invalidated = self.metrics.counter("invalidated")
        self._c_evicted = self.metrics.counter("evicted")
        self._c_expired = self.metrics.counter("expired")
        self._c_installs = self.metrics.counter("installs")
        self._chain_hit = {}  # chain -> (hit counter, miss counter)
        self._skip_counters: Dict[str, object] = {}
        #: Hybrid-fidelity demotion hook, ``hook(flow, reason)``. Wired by
        #: Machine when ``fast_forward`` is on; fired at every event that
        #: means "this flow's cached verdict is no longer a safe basis for
        #: fluid approximation": a lookup miss, a stale-entry invalidation,
        #: an LRU eviction, and conntrack expiry.
        self.demotion_hook: Optional[Callable[[FiveTuple, str], None]] = None

    # --- datapath side -----------------------------------------------------

    def lookup(self, chain: str, flow: FiveTuple, scope: Optional[int] = None,
               tenant=None):
        """Return the live cached entry for this walk, or None (miss).

        A stale entry (any policy commit landed since it was built) is
        discarded here — lazy invalidation, charged to the packet that
        discovers it. ``tenant`` (when the caller resolved one) attributes
        the miss; hits are attributed to the entry's installing tenant."""
        key = (chain, flow, scope)
        entry = self._entries.get(key)
        if entry is None:
            self._c_misses.inc()
            self._chain_counters(chain)[1].inc()
            if tenant is not None:
                self._tenant_counters(tenant.tid)[1].inc()
            if self.demotion_hook is not None:
                self.demotion_hook(flow, REASON_FASTPATH)
            return None
        if entry.epoch != self.engine.epoch:
            self._remove(key, entry)
            self._c_invalidated.inc()
            self._c_misses.inc()
            self._chain_counters(chain)[1].inc()
            if tenant is not None:
                self._tenant_counters(tenant.tid)[1].inc()
            if self.demotion_hook is not None:
                self.demotion_hook(flow, REASON_FASTPATH)
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self._c_hits.inc()
        self._chain_counters(chain)[0].inc()
        if entry.tenant is not None:
            self._tenant_counters(entry.tenant.tid)[0].inc()
        for point in entry.points:
            self._skip_counter(point).inc()
        return entry

    def peek(self, chain: str, flow: FiveTuple, scope: Optional[int] = None):
        """Non-counting lookup for fidelity predicates: return the cached
        entry iff it exists and is live under the current policy epoch.
        Moves no counters, touches no LRU order, discards nothing — a pure
        observation, so exact-mode behaviour cannot depend on it."""
        entry = self._entries.get((chain, flow, scope))
        if entry is None or entry.epoch != self.engine.epoch:
            return None
        return entry

    def entries_for(self, flow: FiveTuple):
        """Every live entry keyed on exactly this flow (not its reverse),
        in no particular order — the serialization surface a migration
        coordinator reads before replaying verdicts on another machine.
        Pure observation: stale entries are skipped, not discarded, and no
        counters or LRU order move."""
        keys = self._by_flow.get(flow, ())
        epoch = self.engine.epoch
        out = []
        for key in keys:
            entry = self._entries.get(key)
            if entry is not None and entry.epoch == epoch:
                out.append(entry)
        return out

    def bulk_hit(self, chain: str, flow: FiveTuple,
                 scope: Optional[int] = None, n: int = 1,
                 points: Optional[Tuple[str, ...]] = None) -> None:
        """Account ``n`` cache hits at once — a fluid epoch replaying the
        cached verdict N times. Moves exactly the counters ``n`` exact
        :meth:`lookup` hits would move (global + per-chain hit counters,
        per-point skip counters, the entry's own hit count and LRU slot).
        The packets being accounted ran *before* whatever boundary is now
        flushing them, so a missing/stale entry still counts as hits —
        ``points`` lets the caller supply the skip set the live entry
        carried at promotion time."""
        key = (chain, flow, scope)
        entry = self._entries.get(key)
        tenant = None
        if entry is not None and entry.epoch == self.engine.epoch:
            self._entries.move_to_end(key)
            entry.hits += n
            tenant = entry.tenant
            if points is None:
                points = entry.points
        self._c_hits.inc(n)
        self._chain_counters(chain)[0].inc(n)
        if tenant is not None:
            self._tenant_counters(tenant.tid)[0].inc(n)
        for point in points or ():
            self._skip_counter(point).inc(n)

    def install(
        self,
        chain: str,
        flow: FiveTuple,
        scope: Optional[int] = None,
        verdict=None,
        qdisc_class=None,
        queue_id: Optional[int] = None,
        conn_id: Optional[int] = None,
        ct_entry=None,
        points: Tuple[str, ...] = (),
        tenant=None,
    ) -> FlowVerdict:
        """Cache a freshly-walked outcome, stamped with the current epoch
        and version vector; evicts LRU entries past capacity.

        With isolation on, a tenant over its ``flow_quota`` evicts its own
        LRU entry first, and global capacity pressure victimizes the
        installing tenant before reaching across tenants (evict-within
        before evict-across) — a hog churning flows cannot flush the
        victims' entries."""
        key = (chain, flow, scope)
        old = self._entries.pop(key, None)
        if old is not None and old.tenant is not None:
            self._tenant_entries[old.tenant.tid] -= 1
        entry = FlowVerdict(
            chain, flow, scope, verdict, qdisc_class, queue_id, conn_id,
            ct_entry, points, self.engine.epoch, self.engine.version_vector(),
            tenant=tenant,
        )
        self._entries[key] = entry
        if old is None:
            self._by_flow.setdefault(flow, set()).add(key)
        self._c_installs.inc()
        if tenant is not None:
            tid = tenant.tid
            self._tenant_entries[tid] = self._tenant_entries.get(tid, 0) + 1
            if self._quotas_on and tenant.flow_quota is not None:
                while self._tenant_entries[tid] > tenant.flow_quota:
                    if not self._evict_one(prefer_tid=tid, strict=True):
                        break
        while len(self._entries) > self.capacity:
            prefer = tenant.tid if (self._quotas_on and tenant is not None) \
                else None
            self._evict_one(prefer_tid=prefer, exclude_key=key)
        return entry

    def _evict_one(self, prefer_tid: Optional[int] = None,
                   strict: bool = False, exclude_key: Optional[Key] = None)\
            -> bool:
        """Evict one entry: the LRU entry of ``prefer_tid`` when that
        tenant still holds any besides ``exclude_key`` (evict-within-tenant
        first), else — unless ``strict`` — the global LRU entry. Returns
        True if one died."""
        victim_key = None
        if prefer_tid is not None and self._tenant_entries.get(prefer_tid, 0):
            for key, entry in self._entries.items():  # LRU -> MRU order
                if key == exclude_key:
                    continue
                if entry.tenant is not None and entry.tenant.tid == prefer_tid:
                    victim_key = key
                    break
        if victim_key is None:
            if strict:
                return False
            if not self._entries:
                return False
            victim_key = next(iter(self._entries))
        evicted = self._entries.pop(victim_key)
        self._unindex(victim_key)
        self._unaccount(evicted)
        self._c_evicted.inc()
        if evicted.tenant is not None:
            self._tenant_counters(evicted.tenant.tid)[2].inc()
        if self.demotion_hook is not None:
            self.demotion_hook(evicted.flow, REASON_FASTPATH)
        return True

    def _unaccount(self, entry: FlowVerdict) -> None:
        if entry.tenant is not None:
            self._tenant_entries[entry.tenant.tid] -= 1

    # --- invalidation / eviction ------------------------------------------

    def evict_flow(self, flow: FiveTuple) -> int:
        """Drop every entry keyed on this flow or its reverse (conntrack
        expiry, connection teardown). Returns how many were dropped.

        The demotion hook fires *before* the entries die: a demoting fluid
        flow flushes its pending epoch from inside the hook (possibly
        through a cross-machine peer), and that flush's :meth:`bulk_hit`
        must still see the live entries — the packets it accounts ran while
        the entries were valid. Demote-before-boundary, applied to the
        cache itself."""
        reversed_flow = flow.reversed()
        if not (self._by_flow.get(flow) or self._by_flow.get(reversed_flow)):
            return 0
        if self.demotion_hook is not None:
            self.demotion_hook(flow, REASON_CONNTRACK)
            self.demotion_hook(reversed_flow, REASON_CONNTRACK)
        dropped = 0
        for ft in (flow, reversed_flow):
            keys = self._by_flow.pop(ft, None)
            if not keys:
                continue
            for key in keys:
                dead = self._entries.pop(key, None)
                if dead is not None:
                    self._unaccount(dead)
                    dropped += 1
        if dropped:
            self._c_expired.inc(dropped)
        return dropped

    def purge(self) -> int:
        """Drop everything (table reset); returns how many entries died."""
        n = len(self._entries)
        self._entries.clear()
        self._by_flow.clear()
        self._tenant_entries.clear()
        return n

    def _remove(self, key: Key, entry: FlowVerdict) -> None:
        del self._entries[key]
        self._unindex(key)
        self._unaccount(entry)

    def _unindex(self, key: Key) -> None:
        keys = self._by_flow.get(key[1])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_flow[key[1]]

    # --- counters ----------------------------------------------------------

    def _chain_counters(self, chain: str):
        pair = self._chain_hit.get(chain)
        if pair is None:
            pair = (
                self.metrics.counter(f"hit.{chain}"),
                self.metrics.counter(f"miss.{chain}"),
            )
            self._chain_hit[chain] = pair
        return pair

    def _skip_counter(self, point: str):
        c = self._skip_counters.get(point)
        if c is None:
            c = self.metrics.counter(f"skipped.{point}")
            self._skip_counters[point] = c
        return c

    def _tenant_counters(self, tid: int):
        """(hits, misses, evicted) counters for one tenant, created on
        first attributed touch — a machine without tenants never grows
        these names, keeping default metric snapshots seed-identical."""
        trio = self._tenant_ctrs.get(tid)
        if trio is None:
            trio = (
                self.metrics.counter(f"tenant.{tid}.hits"),
                self.metrics.counter(f"tenant.{tid}.misses"),
                self.metrics.counter(f"tenant.{tid}.evicted"),
            )
            self._tenant_ctrs[tid] = trio
        return trio

    def note_skipped(self, point: str, n: int = 1) -> None:
        """Count a point whose evaluation a hit elided outside lookup()
        (e.g. the conntrack update folded into a cached entry); ``n`` lets
        a fluid epoch account N elisions at once."""
        self._skip_counter(point).inc(n)

    # --- introspection -----------------------------------------------------

    @property
    def hits(self) -> int:
        return self._c_hits.value

    @property
    def misses(self) -> int:
        return self._c_misses.value

    @property
    def invalidated(self) -> int:
        return self._c_invalidated.value

    @property
    def evicted(self) -> int:
        return self._c_evicted.value

    @property
    def expired(self) -> int:
        return self._c_expired.value

    @property
    def lookups(self) -> int:
        return self._c_hits.value + self._c_misses.value

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self._c_hits.value / total if total else 0.0

    def tenant_entries(self, tid: int) -> int:
        """Live flowtable entries currently held by one tenant."""
        return self._tenant_entries.get(tid, 0)

    def at_quota(self, tenant) -> bool:
        """True when this tenant's flowtable occupancy has reached its
        quota — the headroom predicate fast-forward promotion consults."""
        if tenant is None or tenant.flow_quota is None:
            return False
        return self._tenant_entries.get(tenant.tid, 0) >= tenant.flow_quota

    def per_tenant(self) -> "Dict[int, Dict[str, float]]":
        """Per-tenant pressure snapshot: entries/quota occupancy plus the
        hit/miss/evicted counters — the `repro report` section's source."""
        out: Dict[int, Dict[str, float]] = {}
        tids = set(self._tenant_ctrs) | set(self._tenant_entries)
        for tid in sorted(tids):
            hits, misses, evicted = self._tenant_counters(tid)
            row = {
                "entries": float(self._tenant_entries.get(tid, 0)),
                "hits": float(hits.value),
                "misses": float(misses.value),
                "evicted": float(evicted.value),
            }
            if self.tenants is not None:
                tenant = self.tenants.get(tid)
                if tenant is not None and tenant.flow_quota is not None:
                    row["quota"] = float(tenant.flow_quota)
            out[tid] = row
        return out

    def stats(self) -> Dict[str, float]:
        out = self.metrics.snapshot()
        out["fastpath.entries"] = float(len(self._entries))
        out["fastpath.hit_rate"] = self.hit_rate
        out["fastpath.epoch"] = float(self.engine.epoch)
        return out

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowFastPath entries={len(self._entries)}/{self.capacity} "
            f"hit_rate={self.hit_rate:.3f} epoch={self.engine.epoch}>"
        )
