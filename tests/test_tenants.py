"""Tenant-aware dataplane: identity, quotas, scheduling, attribution.

Covers the :class:`~repro.host.tenants.TenantRegistry` (registration,
deterministic resolution, scheduler weight view), the CostModel knobs'
validation, per-tenant flowtable quotas on :class:`FlowFastPath`
(evict-within-tenant before evict-across), per-tenant SRAM quotas on
:class:`SramAllocator`, the CgroupTree classid-retirement regression, the
:class:`WeightedFairClock` arbiter, the per-tenant egress scheduler the
KOPI control plane installs, tenant-correct fast-forward grouping, kernel
netstack attribution counters, and the seed-identity of the default
(knobs-off) path.
"""

from types import SimpleNamespace

import pytest

from repro.config import DEFAULT_COSTS
from repro.core import NormanOS
from repro.dataplanes import KernelPathDataplane, Testbed
from repro.errors import ConfigError, KernelError, NicResourceExhausted
from repro.experiments.e17_multi_tenant import PacedVictim
from repro.host.tenants import (
    TENANT_SYSTEM_TID,
    TenantRegistry,
    tenant_class,
)
from repro.interpose import FlowFastPath, InterpositionPoint, PolicyEngine
from repro.kernel.cgroups import CgroupTree
from repro.kernel.netfilter import CHAIN_OUTPUT, RuleTable
from repro.kernel.qdisc import DEFAULT_CLASS, DrrQdisc
from repro.net.packet import make_udp
from repro.nic.smartnic.sram import SramAllocator
from repro.nic.tenant_sched import WeightedFairClock
from repro.dataplanes.testbed import HOST_IP, HOST_MAC, PEER_IP, PEER_MAC
from repro.sim import Simulator
from repro.sim.fastforward import FastForwardController, FlowProfile

TENANT_COSTS = DEFAULT_COSTS.replace(tenants=True)
ISO_COSTS = DEFAULT_COSTS.replace(tenants=True, tenant_isolation=True)


def _registry(costs=ISO_COSTS) -> TenantRegistry:
    return TenantRegistry(costs)


def _proc(uid=1_000, cgroup_path="/"):
    return SimpleNamespace(uid=uid, cgroup_path=cgroup_path)


def _flow(sport: int, dport: int = 9_000):
    return make_udp(
        HOST_MAC, PEER_MAC, HOST_IP, PEER_IP, sport, dport, 100
    ).five_tuple


def _engine():
    engine = PolicyEngine(Simulator())
    table = RuleTable()
    table.bind_point(
        engine.register(
            InterpositionPoint(
                name="netfilter", plane="kernel", mechanism="netfilter",
                target=table,
            )
        )
    )
    return engine


class TestTenantRegistry:
    def test_register_and_resolve_by_uid(self):
        reg = _registry()
        t = reg.register("alice", uid=1_000)
        assert t.tid == 1 and reg.resolve(_proc(uid=1_000)) is t

    def test_cgroup_scope_wins_over_uid(self):
        # The §2 scenario: the process tree is the truth. A process whose
        # cgroup is claimed by one tenant classifies there even if its uid
        # belongs to another.
        reg = _registry()
        by_uid = reg.register("by_uid", uid=1_000)
        by_cg = reg.register("by_cgroup", cgroup_path="/games")
        proc = _proc(uid=1_000, cgroup_path="/games")
        assert reg.resolve(proc) is by_cg
        proc.cgroup_path = "/"
        assert reg.resolve(proc) is by_uid

    def test_unregistered_process_resolves_to_system(self):
        reg = _registry()
        t = reg.resolve(_proc(uid=9_999))
        assert t is reg.system and t.tid == TENANT_SYSTEM_TID

    def test_resolve_uid_for_nic_side_sites(self):
        reg = _registry()
        t = reg.register("alice", uid=1_000)
        assert reg.resolve_uid(1_000) is t
        assert reg.resolve_uid(None) is reg.system
        assert reg.resolve_uid(4_242) is reg.system

    def test_needs_at_least_one_scope(self):
        with pytest.raises(ConfigError):
            _registry().register("floating")

    def test_duplicate_uid_and_cgroup_rejected(self):
        reg = _registry()
        reg.register("alice", uid=1_000, cgroup_path="/a")
        with pytest.raises(ConfigError):
            reg.register("bob", uid=1_000)
        with pytest.raises(ConfigError):
            reg.register("bob", cgroup_path="/a")

    def test_weight_must_be_positive(self):
        reg = _registry()
        with pytest.raises(ConfigError):
            reg.register("alice", uid=1, weight=0)
        t = reg.register("alice", uid=1)
        with pytest.raises(ConfigError):
            reg.set_weight(t.tid, 0)

    def test_on_change_fires_for_register_and_weight(self):
        reg = _registry()
        fired = []
        reg.on_change.append(lambda: fired.append(1))
        t = reg.register("alice", uid=1)
        reg.set_weight(t.tid, 3)
        assert len(fired) == 2
        # Quota resizes do not reshuffle the scheduler.
        reg.set_flow_quota(t.tid, 4)
        reg.set_sram_quota(t.tid, 1 << 16)
        assert len(fired) == 2

    def test_sched_weights_one_class_per_tenant_plus_default(self):
        reg = _registry()
        a = reg.register("a", uid=1, weight=4)
        b = reg.register("b", uid=2)
        weights = reg.sched_weights()
        assert weights[DEFAULT_CLASS] == reg.system.weight
        assert weights[a.sched_class] == 4
        assert weights[b.sched_class] == 1
        assert a.sched_class == tenant_class(a.tid)
        assert len(weights) == 3


class TestTenantKnobValidation:
    def test_isolation_requires_tenants(self):
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(tenant_isolation=True)

    def test_sched_flavour_is_validated(self):
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(tenants=True, tenant_sched="fifo")
        for flavour in ("drr", "wfq"):
            DEFAULT_COSTS.replace(tenants=True, tenant_sched=flavour)

    def test_quantum_and_default_weight_bounds(self):
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(tenant_quantum_bytes=0)
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(tenant_default_weight=0)


class TestFlowFastPathQuotas:
    def _fp(self, capacity=64):
        reg = _registry()
        costs = ISO_COSTS.replace(
            flow_fastpath=True, flow_fastpath_entries=capacity
        )
        return FlowFastPath(_engine(), costs, tenants=reg), reg

    def test_flow_quota_evicts_own_lru_first(self):
        fp, reg = self._fp()
        hog = reg.register("hog", uid=1, flow_quota=2)
        for sport in (5_000, 5_001, 5_002):
            fp.install(CHAIN_OUTPUT, _flow(sport), 7, tenant=hog)
        assert fp.tenant_entries(hog.tid) == 2
        assert fp.at_quota(hog)
        # The quota victim was the hog's own LRU entry, not the newest.
        assert fp.lookup(CHAIN_OUTPUT, _flow(5_000), 7) is None
        assert fp.lookup(CHAIN_OUTPUT, _flow(5_002), 7) is not None
        assert fp.metrics.counter(f"tenant.{hog.tid}.evicted").value == 1

    def test_capacity_pressure_victimizes_installer_before_neighbors(self):
        fp, reg = self._fp(capacity=4)
        victim = reg.register("victim", uid=1)
        hog = reg.register("hog", uid=2)
        fp.install(CHAIN_OUTPUT, _flow(1_000), 1, tenant=victim)
        fp.install(CHAIN_OUTPUT, _flow(1_001), 1, tenant=victim)
        fp.install(CHAIN_OUTPUT, _flow(2_000), 2, tenant=hog)
        fp.install(CHAIN_OUTPUT, _flow(2_001), 2, tenant=hog)
        # Table full; a third hog install must evict the hog's own LRU
        # (2_000), never a victim entry and never the entry being added.
        fp.install(CHAIN_OUTPUT, _flow(2_002), 2, tenant=hog)
        assert fp.tenant_entries(victim.tid) == 2
        assert fp.tenant_entries(hog.tid) == 2
        assert fp.peek(CHAIN_OUTPUT, _flow(2_000), 2) is None
        assert fp.peek(CHAIN_OUTPUT, _flow(2_002), 2) is not None
        for sport in (1_000, 1_001):
            assert fp.peek(CHAIN_OUTPUT, _flow(sport), 1) is not None

    def test_untenanted_pressure_falls_back_to_global_lru(self):
        fp, _reg = self._fp(capacity=2)
        fp.install(CHAIN_OUTPUT, _flow(1), 1)
        fp.install(CHAIN_OUTPUT, _flow(2), 1)
        fp.install(CHAIN_OUTPUT, _flow(3), 1)
        assert len(fp) == 2
        assert fp.peek(CHAIN_OUTPUT, _flow(1), 1) is None

    def test_per_tenant_counters_and_snapshot(self):
        fp, reg = self._fp()
        alice = reg.register("alice", uid=1, flow_quota=8)
        ft = _flow(5_000)
        fp.lookup(CHAIN_OUTPUT, ft, 7, tenant=alice)  # miss
        fp.install(CHAIN_OUTPUT, ft, 7, tenant=alice)
        fp.lookup(CHAIN_OUTPUT, ft, 7)  # hit, attributed to the installer
        row = fp.per_tenant()[alice.tid]
        assert row["hits"] == 1 and row["misses"] == 1
        assert row["entries"] == 1 and row["quota"] == 8

    def test_quotas_inert_without_isolation(self):
        # Attribution-only mode: quotas exist on the tenant but do not bite.
        reg = TenantRegistry(TENANT_COSTS)
        costs = TENANT_COSTS.replace(flow_fastpath=True)
        fp = FlowFastPath(_engine(), costs, tenants=reg)
        t = reg.register("t", uid=1, flow_quota=1)
        fp.install(CHAIN_OUTPUT, _flow(1), 1, tenant=t)
        fp.install(CHAIN_OUTPUT, _flow(2), 1, tenant=t)
        assert fp.tenant_entries(t.tid) == 2


class TestSramQuotas:
    def test_quota_blocks_only_the_owner(self):
        reg = _registry()
        hog = reg.register("hog", uid=1, sram_quota_bytes=100)
        other = reg.register("other", uid=2)
        sram = SramAllocator(1_000)
        sram.alloc(80, "conn_state", tenant=hog)
        with pytest.raises(NicResourceExhausted):
            sram.alloc(40, "conn_state", tenant=hog)
        assert sram.metrics.counter(f"tenant.{hog.tid}.exhaustions").value == 1
        # The neighbor still allocates from the global pool.
        sram.alloc(400, "conn_state", tenant=other)
        assert sram.tenant_used(hog.tid) == 80
        assert sram.used_by_tenant() == {hog.tid: 80, other.tid: 400}

    def test_shrink_below_used_keeps_blocks_blocks_new(self):
        reg = _registry()
        t = reg.register("t", uid=1, sram_quota_bytes=1_000)
        sram = SramAllocator(10_000)
        blocks = [sram.alloc(300, "x", tenant=t) for _ in range(3)]
        reg.set_sram_quota(t.tid, 500)
        assert sram.tenant_used(t.tid) == 900  # live blocks survive
        with pytest.raises(NicResourceExhausted):
            sram.alloc(1, "x", tenant=t)
        sram.free(blocks[0])
        sram.free(blocks[1])
        sram.alloc(100, "x", tenant=t)  # back under: allocs work again
        assert sram.tenant_used(t.tid) == 400

    def test_headroom_predicate(self):
        reg = _registry()
        t = reg.register("t", uid=1, sram_quota_bytes=100)
        sram = SramAllocator(1_000)
        assert sram.tenant_headroom(t, 100)
        sram.alloc(100, "x", tenant=t)
        assert not sram.tenant_headroom(t, 1)
        assert sram.tenant_headroom(None, 900)
        assert not sram.tenant_headroom(None, 901)


class TestCgroupClassidRetirement:
    """Regression: deleting a cgroup must retire its classid forever and
    deterministically re-home its members (tree index *and* the process's
    own ``cgroup_path``) — a stale classid or path must never classify
    into whoever registered next."""

    def test_classid_never_recycled(self):
        tree = CgroupTree()
        dead = tree.create("/dead")
        dead_id = dead.classid
        tree.delete("/dead")
        for i in range(16):
            assert tree.create(f"/g{i}").classid != dead_id
        assert dead_id in tree.retired()

    def test_by_classid_of_deleted_group_is_none(self):
        tree = CgroupTree()
        g = tree.create("/g")
        assert tree.by_classid(g.classid) is g
        tree.delete("/g")
        assert tree.by_classid(g.classid) is None

    def test_delete_rehomes_members_and_their_cgroup_path(self):
        tree = CgroupTree()
        tree.create("/games")
        proc = SimpleNamespace(pid=41, cgroup_path="/")
        tree.assign(proc, "/games")
        assert proc.cgroup_path == "/games"
        tree.delete("/games")
        assert proc.cgroup_path == CgroupTree.ROOT
        assert tree.group_of(41).path == CgroupTree.ROOT
        assert tree.classid_of(41) == 0

    def test_rehomed_process_reresolves_to_uid_tenant(self):
        # End of the chain: after the cgroup dies, tenant resolution falls
        # back to the uid scope instead of a stale cgroup claim.
        reg = _registry()
        by_uid = reg.register("by_uid", uid=7)
        by_cg = reg.register("games", cgroup_path="/games")
        tree = CgroupTree()
        tree.create("/games")
        proc = SimpleNamespace(pid=1, uid=7, cgroup_path="/")
        tree.assign(proc, "/games")
        assert reg.resolve(proc) is by_cg
        tree.delete("/games")
        assert reg.resolve(proc) is by_uid

    def test_recreate_same_path_gets_fresh_classid(self):
        tree = CgroupTree()
        first = tree.create("/g").classid
        tree.delete("/g")
        second = tree.create("/g").classid
        assert second != first
        assert tree.by_classid(first) is None
        assert tree.by_classid(second).path == "/g"

    def test_cannot_delete_root(self):
        with pytest.raises(KernelError):
            CgroupTree().delete("/")


class TestWeightedFairClock:
    def test_alone_is_fifo_identical(self):
        reg = _registry()
        t = reg.register("t", uid=1)
        clock = WeightedFairClock(reg)
        assert clock.finish(t, 1_000, now_ns=0) == 1_000
        assert clock.delay(t, 1_000, now_ns=1_000) == 0
        assert clock.contended_grants == 0

    def test_equal_weights_split_the_resource(self):
        reg = _registry()
        a = reg.register("a", uid=1)
        b = reg.register("b", uid=2)
        clock = WeightedFairClock(reg)
        clock.finish(a, 10_000, now_ns=0)
        # b's grant lands while a's work is in flight: stretched 2x.
        assert clock.finish(b, 1_000, now_ns=0) == 2_000
        assert clock.contended_grants == 1

    def test_weights_shape_the_stretch(self):
        reg = _registry()
        victim = reg.register("victim", uid=1, weight=4)
        hog = reg.register("hog", uid=2, weight=1)
        clock = WeightedFairClock(reg)
        clock.finish(hog, 100_000, now_ns=0)
        # (w + others) / w = (4 + 1) / 4 for the victim...
        assert clock.delay(victim, 1_000, now_ns=0) == 250
        # ...but (1 + 4) / 1 for more hog work behind both.
        fin = clock.finish(hog, 1_000, now_ns=0)
        assert fin == 100_000 + 5_000

    def test_idle_tenants_are_pruned(self):
        reg = _registry()
        a = reg.register("a", uid=1)
        b = reg.register("b", uid=2)
        clock = WeightedFairClock(reg)
        clock.finish(a, 1_000, now_ns=0)
        # a's grant finished long ago: b runs at full rate.
        assert clock.delay(b, 1_000, now_ns=50_000) == 0
        assert clock.backlog_ns(a.tid, 50_000) == 0


class TestTenantSchedulerInstall:
    def test_isolation_installs_per_tenant_drr(self):
        tb = Testbed(NormanOS, costs=ISO_COSTS)
        nic = tb.dataplane.nic
        assert isinstance(nic.scheduler.qdisc, DrrQdisc)
        assert nic.tenant_classes
        a = tb.machine.tenants.register("a", uid=1, weight=3)
        # Registration rebuilt the scheduler with the new class set.
        assert a.sched_class in nic.scheduler.qdisc.weights
        assert nic.scheduler.qdisc.weights[a.sched_class] == 3
        assert DEFAULT_CLASS in nic.scheduler.qdisc.weights
        assert (nic.scheduler.qdisc.quantum_bytes
                == ISO_COSTS.tenant_quantum_bytes)

    def test_no_tenant_scheduler_without_isolation(self):
        tb = Testbed(NormanOS, costs=TENANT_COSTS)
        nic = tb.dataplane.nic
        assert not isinstance(nic.scheduler.qdisc, DrrQdisc)
        assert not nic.tenant_classes


class TestFastForwardTenantCorrectness:
    def _promote(self, ctrl, plane, key, tid):
        profile = FlowProfile(
            spans=(("app", 100, True, "x"),), core_id=0, wire_len=1_000,
            tenant_tid=tid,
        )
        plane.ff_profile = lambda _k, _p, prof=profile: prof
        for _ in range(ctrl.costs.ff_promote_after):
            ctrl.note_exact(plane, key, None)
        assert ctrl.promoted(key)

    def test_groups_never_span_tenants(self):
        costs = DEFAULT_COSTS.replace(
            flow_fastpath=True, fast_forward=True, tenants=True
        )
        ctrl = FastForwardController(Simulator(), costs)
        plane = SimpleNamespace(ff_eligible=lambda _k: True, ff_profile=None)
        # Identical span shape, wire length and core — only the tenant
        # differs. The flows must land in two distinct fluid groups.
        self._promote(ctrl, plane, "flow_a", tid=1)
        self._promote(ctrl, plane, "flow_b", tid=2)
        self._promote(ctrl, plane, "flow_c", tid=1)
        assert ctrl.groups == 2

    def test_promoted_profiles_carry_the_resolved_tenant(self):
        # End to end: with tenants on, a flow promoted to fluid carries
        # the sender's tenant in its profile — the group key component
        # that keeps hybrid-fidelity runs tenant-correct.
        costs = TENANT_COSTS.replace(flow_fastpath=True, fast_forward=True)
        tb = Testbed(NormanOS, costs=costs)
        alice = tb.machine.tenants.register("alice",
                                            uid=tb.user("alice").uid)
        app = PacedVictim(tb, user="alice", dport=10_000, count=40,
                          period_ns=20_000)
        app.start()
        tb.run_all()
        ctrl = tb.machine.ff
        promoted = [s for s in ctrl._flows.values() if s.profile is not None]
        assert ctrl.promotions > 0 and promoted
        assert all(s.profile.tenant_tid == alice.tid for s in promoted)


class TestKernelAttribution:
    def test_netstack_counts_per_tenant_pkts_and_bytes(self):
        # The software kernel path: syscall sends cross KernelNetStack,
        # which stamps and counts per tenant.
        tb = Testbed(KernelPathDataplane, costs=TENANT_COSTS)
        reg = tb.machine.tenants
        alice = reg.register("alice", uid=tb.user("alice").uid)
        app = PacedVictim(tb, user="alice", dport=10_000, count=3,
                          period_ns=20_000)
        app.start()
        tb.run_all()
        snap = tb.kernel.netstack.metrics.snapshot()
        pkts = [v for k, v in snap.items()
                if k.endswith(f"tenant.{alice.tid}.pkts")]
        byts = [v for k, v in snap.items()
                if k.endswith(f"tenant.{alice.tid}.bytes")]
        assert pkts and pkts[0] >= 3
        assert byts and byts[0] > 0

    def test_packets_carry_the_tenant_stamp(self):
        tb = Testbed(NormanOS, costs=TENANT_COSTS)
        alice = tb.machine.tenants.register("alice",
                                            uid=tb.user("alice").uid)
        app = PacedVictim(tb, user="alice", dport=10_000, count=2,
                          period_ns=20_000)
        app.start()
        tb.run_all()
        stamped = [p for p in tb.peer.received
                   if p.meta.tenant_tid is not None]
        assert stamped and all(
            p.meta.tenant_tid == alice.tid for p in stamped
        )


class TestSeedIdentityWithKnobsOff:
    def test_default_run_grows_no_tenant_state(self):
        tb = Testbed(NormanOS)  # DEFAULT_COSTS: tenants off
        app = PacedVictim(tb, user="alice", dport=10_000, count=3,
                          period_ns=20_000)
        app.start()
        tb.run_all()
        assert tb.dataplane.nic.tenants is None
        assert not tb.dataplane.nic.tenant_classes
        assert tb.kernel.netstack.tenants is None
        for snap in (tb.kernel.snapshot(),
                     tb.dataplane.nic.metrics.snapshot()):
            assert not [k for k in snap if "tenant" in k]
        for pkt in tb.peer.received:
            assert pkt.meta.tenant_tid is None
