"""One interposition point: a versioned policy table with atomic commits.

An :class:`InterpositionPoint` does not *hold* the policy — the mechanism
(rule table, qdisc runner, steering table, overlay slot...) keeps its own
representation, exactly as before. The point wraps that mechanism with the
engine's uniform contract:

* ``record_update`` / ``begin_commit`` advance the table **version** —
  synchronously for mechanisms whose install is a kernel write, via a
  completion signal for hardware whose install is an overlay or bitstream
  load;
* ``record_eval`` counts a packet evaluated against the current version,
  and counts it as *stale* when a newer policy has been submitted but not
  yet committed (the RCU grace window: in-flight packets finish on the old
  version, no packet ever observes a mixed table);
* ``committed()`` returns a signal that fires when no commit is pending —
  the notification the control plane and tools wait on instead of
  draining the whole simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..sim import MetricSet, Signal

MODE_SYNC = "sync"
MODE_ASYNC = "async"
MODE_FAILED = "failed"


@dataclass
class PolicyCommit:
    """One policy-table commit, as recorded in the engine history."""

    point: str
    plane: str
    mechanism: str
    version: int
    submitted_ns: int
    committed_ns: int
    latency_ns: int
    stale_evals: int
    mode: str


class InterpositionPoint:
    """A registered interposition mechanism.

    ``install_latency_ns`` is the *modeled* cost of one synchronous policy
    write at this point (kernel table update, NIC MMIO...). Asynchronous
    mechanisms (overlay/bitstream loads) instead measure the real window
    between ``begin_commit`` and the completion signal.

    ``target`` is the mechanism object itself (the RuleTable, the
    PacedQdiscRunner, ...), so tools can list the authoritative state via
    the registry instead of keeping their own copies. ``describe`` renders
    the current policy for tool output; ``resync`` and ``sync_counters``
    are optional plane-specific hooks the control plane wires in (recompile
    after table surgery; pull hardware hit counters back).
    """

    def __init__(
        self,
        name: str,
        plane: str,
        mechanism: str,
        install_latency_ns: int = 0,
        target: Any = None,
        describe: Optional[Callable[[], str]] = None,
    ):
        self.name = name
        self.plane = plane
        self.mechanism = mechanism
        self.install_latency_ns = install_latency_ns
        self.target = target
        self.describe = describe
        self.resync: Optional[Callable[[], Any]] = None
        self.sync_counters: Optional[Callable[[], None]] = None
        self.policy: Any = None  # last installed config, for describe()

        self.version = 0
        self.metrics = MetricSet(f"interpose.{name}")
        self._engine = None  # set by PolicyEngine.register
        self._inflight: List[PolicyCommit] = []
        self._idle_waiters: List[Signal] = []

    # --- engine plumbing ---------------------------------------------------

    def _bind(self, engine, name: str) -> None:
        self.name = name
        self._engine = engine
        self.metrics = MetricSet(f"interpose.{name}")

    def _now(self) -> int:
        return self._engine.sim.now if self._engine is not None else 0

    def _record(self, commit: PolicyCommit) -> None:
        if self._engine is not None:
            self._engine.history.append(commit)

    # --- datapath side -----------------------------------------------------

    def record_eval(self, hit: bool = False, dropped: bool = False,
                    n: int = 1) -> int:
        """``n`` packets evaluated against the current table version
        (``n > 1`` is a fluid epoch replaying one steady verdict N times).

        Pure counters — never schedules simulator events, so registering a
        point cannot perturb a workload's event trace. Returns the version
        the packets were evaluated against (the epoch stamp).
        """
        self.metrics.counter("evaluated").inc(n)
        if hit:
            self.metrics.counter("hits").inc(n)
        if dropped:
            self.metrics.counter("drops").inc(n)
        if self._inflight:
            # A newer policy is submitted but not yet live: this packet ran
            # under the old version — the §3 stale-policy window E14 counts.
            self.metrics.counter("stale_evals").inc(n)
            for commit in self._inflight:
                commit.stale_evals += 1
        return self.version

    # --- control side ------------------------------------------------------

    def record_update(self, latency_ns: Optional[int] = None) -> int:
        """A synchronous policy commit: the write is live on the datapath
        when this call returns (kernel/sidecar semantics). The modeled
        latency is recorded, not scheduled — installs in these planes were
        always synchronous in sim time and must stay trace-identical."""
        lat = self.install_latency_ns if latency_ns is None else latency_ns
        self.version += 1
        if self._engine is not None:
            self._engine._on_commit(self)
        self.metrics.counter("updates").inc()
        self.metrics.histogram("install_ns").observe(lat)
        now = self._now()
        self._record(
            PolicyCommit(
                point=self.name, plane=self.plane, mechanism=self.mechanism,
                version=self.version, submitted_ns=now, committed_ns=now,
                latency_ns=lat, stale_evals=0, mode=MODE_SYNC,
            )
        )
        return self.version

    def begin_commit(self, done: Signal) -> Signal:
        """An asynchronous policy commit: the new table is submitted now and
        becomes live when ``done`` fires (overlay load, bitstream flash).
        Packets evaluated in between are counted against the *old* version
        and tallied as stale. Returns ``done`` for chaining."""
        commit = PolicyCommit(
            point=self.name, plane=self.plane, mechanism=self.mechanism,
            version=-1, submitted_ns=self._now(), committed_ns=-1,
            latency_ns=0, stale_evals=0, mode=MODE_ASYNC,
        )
        self._inflight.append(commit)
        self.metrics.counter("updates").inc()

        def _finish(sig: Signal) -> None:
            self._inflight.remove(commit)
            commit.committed_ns = self._now()
            commit.latency_ns = commit.committed_ns - commit.submitted_ns
            if sig.failed:
                # A rejected load leaves the old table running: no new epoch.
                commit.mode = MODE_FAILED
                self.metrics.counter("failed_commits").inc()
            else:
                self.version += 1
                if self._engine is not None:
                    self._engine._on_commit(self)
                commit.version = self.version
                self.metrics.histogram("install_ns").observe(commit.latency_ns)
            self._record(commit)
            if not self._inflight:
                waiters, self._idle_waiters = self._idle_waiters, []
                for waiter in waiters:
                    waiter.succeed(self.version)

        done.add_callback(_finish)
        return done

    def committed(self) -> Signal:
        """A signal that fires when this point has no commit in flight
        (immediately, if already idle). Value: the live version."""
        sig = Signal(f"interpose.{self.name}.committed")
        if not self._inflight:
            sig.succeed(self.version)
        else:
            self._idle_waiters.append(sig)
        return sig

    @property
    def pending_commits(self) -> int:
        return len(self._inflight)

    # --- introspection -----------------------------------------------------

    @property
    def evaluated(self) -> int:
        return self.metrics.counter("evaluated").value

    @property
    def hits(self) -> int:
        return self.metrics.counter("hits").value

    @property
    def drops(self) -> int:
        return self.metrics.counter("drops").value

    @property
    def updates(self) -> int:
        return self.metrics.counter("updates").value

    @property
    def stale_evals(self) -> int:
        return self.metrics.counter("stale_evals").value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InterpositionPoint {self.name} plane={self.plane} "
            f"v{self.version} pending={len(self._inflight)}>"
        )
