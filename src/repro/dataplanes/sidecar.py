"""IX/Snap-style sidecar dataplane: interposition on a dedicated core.

The paper's "physical movement" case: instead of crossing the user/kernel
boundary, every packet crosses a *core* boundary. The sidecar is
OS-integrated (it knows which process owns each queue, can block/wake
threads, runs filters and qdiscs), so it supports everything the kernel
path does — but each packet pays cross-core coherence traffic plus the
sidecar core's time, and the sidecar core itself is burned for the
deployment's lifetime. E2 measures both.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..config import CostModel
from ..errors import EndpointClosed, UnsupportedOperation, WouldBlock
from ..host.machine import Machine
from ..interpose import InterpositionPoint
from ..kernel.kernel import Kernel
from ..kernel.netfilter import CHAIN_INPUT, CHAIN_OUTPUT, DROP, NetfilterRule
from ..kernel.process import owner_info
from ..kernel.qdisc import DEFAULT_CLASS, DrrQdisc, PfifoQdisc
from ..kernel.qdisc_runner import PacedQdiscRunner
from ..net.addresses import IPv4Address, MacAddress
from ..net.headers import PROTO_TCP
from ..net.link import Link
from ..net.packet import Packet, make_tcp, make_udp
from ..nic.base import BasicNic
from ..sim import Signal
from ..trace import (
    STAGE_COHERENCE,
    STAGE_FASTPATH,
    STAGE_NETFILTER,
    STAGE_RING,
    STAGE_SCHED_WAKE,
    charge,
)
from .base import (
    CaptureSession,
    Dataplane,
    Endpoint,
    PacketFilter,
    QosConfig,
    _as_bool,
    _as_first,
    describe_qos,
)

Message = Tuple[int, IPv4Address, int]


class SidecarEndpoint(Endpoint):
    """App-side queue pair into the sidecar."""

    def __init__(self, dataplane: "SidecarDataplane", proc, proto: int, port: int):
        super().__init__(dataplane, proc, proto, port)
        self._dp = dataplane
        self.rx_queue: Deque[Message] = deque()
        self.peer: Optional[Tuple[IPv4Address, int]] = None

    @property
    def _core(self):
        return self._dp.machine.cpus[self.proc.core_id]

    def connect(self, dst_ip: IPv4Address, dport: int) -> Signal:
        self.peer = (dst_ip, dport)
        done = Signal("sidecar.connect")
        self._dp.machine.sim.after(0, done.succeed, True)
        return done

    def send(self, payload_len: int, dst: Optional[Tuple[IPv4Address, int]] = None) -> Signal:
        return _as_bool(self.send_burst((payload_len,), dst), "sidecar.send")

    def send_raw(self, pkt: Packet) -> Signal:
        return _as_bool(self._dp.app_tx_burst(self, (pkt,)), "sidecar.send")

    def send_burst(
        self, payload_lens: Sequence[int], dst: Optional[Tuple[IPv4Address, int]] = None
    ) -> Signal:
        """One cross-core handoff per burst. The coherence traffic itself
        stays proportional to bytes — physical movement does not amortize,
        which is exactly the §1 distinction E2/E12 measure."""
        dst = dst or self.peer
        if dst is None:
            raise UnsupportedOperation("send without destination on unconnected endpoint")
        pkts = [
            self._dp.build_packet(self, dst[0], dst[1], length) for length in payload_lens
        ]
        return self._dp.app_tx_burst(self, pkts)

    def recv(self, blocking: bool = True) -> Signal:
        return _as_first(self.recv_burst(1, blocking=blocking), "sidecar.recv")

    def recv_burst(self, max_msgs: int, blocking: bool = True) -> Signal:
        result = Signal("sidecar.recv_burst")
        if self.closed:
            self._dp.machine.sim.after(0, result.fail, EndpointClosed("closed"))
            return result
        if self.rx_queue:
            msgs = [self.rx_queue.popleft() for _ in range(min(max_msgs, len(self.rx_queue)))]
            drain = self._dp.machine.tracer.loose(
                STAGE_RING,
                len(msgs) * self._dp.costs.bypass_rx_pkt_ns,
                label="rx_drain",
            )
            self._core.execute(drain, "rx").add_callback(
                lambda _s: result.succeed(msgs)
            )
            return result
        if not blocking:
            self._dp.machine.sim.after(0, result.fail, WouldBlock("queue empty"))
            return result
        woken = self._dp.kernel.scheduler.block(self.proc, f"sidecar:{self.port}")
        self._dp.register_waiter(self, woken)

        def _after_wake(sig: Signal) -> None:
            msgs = [sig.value]
            while self.rx_queue and len(msgs) < max_msgs:
                msgs.append(self.rx_queue.popleft())
            if self._dp.costs.trace:
                # Bugfix (gated on ``costs.trace`` to keep the seed event
                # trace byte-identical): the wake path used to hand the
                # drained messages to the app for free, while the queued
                # path above charges the per-message descriptor read on the
                # app core. See docs/tracing.md.
                drain = self._dp.machine.tracer.loose(
                    STAGE_RING,
                    len(msgs) * self._dp.costs.bypass_rx_pkt_ns,
                    label="rx_drain",
                )
                self._core.execute(drain, "rx").add_callback(
                    lambda _s: result.succeed(msgs)
                )
                return
            result.succeed(msgs)

        woken.add_callback(_after_wake)
        return result


class SidecarDataplane(Dataplane):
    """Interposition proxy pinned to a dedicated core."""

    name = "sidecar"
    supports_blocking_io = True

    def __init__(
        self,
        machine: Machine,
        host_ip: IPv4Address,
        host_mac: MacAddress,
        egress: Link,
        sidecar_core: Optional[int] = None,
        n_queues: int = 8,
    ):
        self.machine = machine
        self.costs: CostModel = machine.costs
        self.host_ip = host_ip
        self.host_mac = host_mac
        self.sidecar_core_id = (
            sidecar_core if sidecar_core is not None else len(machine.cpus) - 1
        )
        machine.tracer.plane = self.name
        self.nic = BasicNic(
            machine.sim, machine.costs, machine.dma, egress, n_queues=n_queues,
            fastpath=machine.fastpath, tracer=machine.tracer,
        )
        self.kernel = Kernel(machine, host_ip, host_mac, nic_send=self.nic.tx)
        for queue in self.nic.queues:
            queue.set_handler(self._sidecar_rx, burst_handler=self._sidecar_rx_burst)
        self.egress_runner = PacedQdiscRunner(
            machine.sim, PfifoQdisc(), egress.rate_bps, self.nic.tx, name="sidecar_egress"
        )
        self._qos_weights: Dict[str, int] = {}
        self._endpoints: Dict[Tuple[int, int], SidecarEndpoint] = {}
        self._waiters: Dict[Tuple[int, int], Signal] = {}
        self._taps: List[PacketFilter] = []
        self._captures: List[Tuple[Optional[PacketFilter], CaptureSession]] = []
        # The sidecar's interposition mechanisms, registered with the engine
        # ("netfilter" is registered by Kernel itself).
        engine = machine.interpose
        self._qdisc_point = engine.register(InterpositionPoint(
            name="qdisc", plane="sidecar", mechanism="qdisc",
            install_latency_ns=self.costs.kernel_update_ns,
            target=self.egress_runner,
        ))
        self._qdisc_point.describe = lambda: describe_qos(self._qdisc_point.policy)
        self.egress_runner.point = self._qdisc_point
        self._sniffer_point = engine.register(InterpositionPoint(
            name="sniffer", plane="sidecar", mechanism="tap",
            install_latency_ns=self.costs.kernel_update_ns,
            target=self._captures,
        ))
        self.nic.steering.point = engine.register(InterpositionPoint(
            name="steering", plane="nic", mechanism="steering",
            install_latency_ns=self.costs.table_update_ns,
            target=self.nic.steering,
        ))

    @property
    def _score(self):
        return self.machine.cpus[self.sidecar_core_id]

    # --- app-facing -------------------------------------------------------------

    def open_endpoint(self, proc, proto: int, port: Optional[int] = None) -> SidecarEndpoint:
        # The sidecar is OS-integrated: ports go through the kernel socket
        # table, so conflicts and privileged ports are enforced (and
        # netstat keeps working).
        if port is None:
            sock = self.kernel.sockets.bind_ephemeral(proc, proto)
        else:
            sock = self.kernel.sockets.bind(proc, proto, port)
        ep = SidecarEndpoint(self, proc, proto, sock.port)
        self._endpoints[(proto, sock.port)] = ep
        return ep

    def register_waiter(self, ep: SidecarEndpoint, woken: Signal) -> None:
        self._waiters[(ep.proto, ep.port)] = woken

    def build_packet(self, ep, dst_ip: IPv4Address, dport: int, payload_len: int) -> Packet:
        dst_mac = MacAddress.from_index(dst_ip.value & 0xFF_FFFF)
        maker = make_tcp if ep.proto == PROTO_TCP else make_udp
        return maker(self.host_mac, dst_mac, self.host_ip, dst_ip, ep.port, dport, payload_len)

    # --- TX: app core -> coherence -> sidecar core -> qdisc -> NIC ----------------

    def app_tx_burst(self, ep: SidecarEndpoint, pkts: Sequence[Packet]) -> Signal:
        """Hand a burst across the core boundary: one app-core event, one
        sidecar-core event, per-packet filter/qdisc work and per-byte
        coherence cost in between. Resolves with the number admitted."""
        result = Signal("sidecar.send_burst")
        tracer = self.machine.tracer
        now = self.machine.sim.now
        owner = owner_info(ep.proc)
        app_cost = 0
        lead_ctx = None
        for pkt in pkts:
            pkt.meta.created_ns = now
            pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm = owner
            ctx = tracer.begin(pkt)
            if lead_ctx is None:
                lead_ctx = ctx
            app_cost += charge(STAGE_RING, self.costs.bypass_tx_pkt_ns, ctx,
                               label="app_tx")
        app_core = self.machine.cpus[ep.proc.core_id]
        # Per-packet coherence cost, kept separate so each packet's trace
        # carries its own physical-movement nanoseconds.
        moves = [
            self.machine.coherence.transfer_cost_ns(
                pkt.wire_len + 64, ep.proc.core_id, self.sidecar_core_id
            )
            for pkt in pkts
        ]
        move_ns = sum(moves)

        def _on_sidecar(_sig: Signal) -> None:
            fp = self.machine.fastpath
            work = move_ns
            staged = []
            for pkt, mv in zip(pkts, moves):
                ctx = pkt.meta.trace
                charge(STAGE_COHERENCE, mv, ctx, label="x_core")
                fp_entry = None
                if fp is not None:
                    ft = pkt.five_tuple
                    if ft is not None:
                        fp_entry = fp.lookup(CHAIN_OUTPUT, ft, ep.proc.pid)
                if fp_entry is not None:
                    verdict = fp_entry.verdict
                    work += (
                        charge(STAGE_RING, self.costs.bypass_tx_pkt_ns, ctx,
                               label="sidecar_tx")
                        + charge(STAGE_FASTPATH, fp.hit_ns, ctx,
                                 label="output_chain")
                    )
                else:
                    verdict, examined = self.kernel.filters.evaluate(
                        CHAIN_OUTPUT, pkt, owner
                    )
                    work += (
                        charge(STAGE_RING, self.costs.bypass_tx_pkt_ns, ctx,
                               label="sidecar_tx")
                        + charge(STAGE_NETFILTER,
                                 examined * self.costs.netfilter_rule_ns, ctx,
                                 label="output_chain")
                    )
                staged.append((pkt, verdict, fp_entry))

            def _done(_s: Signal) -> None:
                admitted = 0
                for pkt, verdict, fp_entry in staged:
                    self._run_captures(pkt)
                    if pkt.meta.trace is not None:
                        # Absorb the wall time both cores spent on the rest
                        # of the burst (zero at burst=1, where the packet's
                        # own spans cover the whole hand-off window).
                        pkt.meta.trace.fill_gap(
                            STAGE_SCHED_WAKE, self.machine.sim.now,
                            label="batch_wait",
                        )
                    if verdict == DROP:
                        if fp is not None and fp_entry is None and pkt.five_tuple is not None:
                            fp.install(
                                CHAIN_OUTPUT, pkt.five_tuple, ep.proc.pid,
                                verdict=verdict, points=("netfilter",),
                            )
                        if pkt.meta.trace is not None:
                            pkt.meta.trace.close(self.machine.sim.now)
                        continue
                    if fp_entry is not None and fp_entry.qdisc_class is not None:
                        cls = fp_entry.qdisc_class
                    else:
                        cls = self._classify(ep.proc.pid)
                        if fp is not None and fp_entry is None and pkt.five_tuple is not None:
                            fp.install(
                                CHAIN_OUTPUT, pkt.five_tuple, ep.proc.pid,
                                verdict=verdict, qdisc_class=cls, points=("netfilter",),
                            )
                    if self.egress_runner.submit(pkt, cls):
                        admitted += 1
                    elif pkt.meta.trace is not None:
                        pkt.meta.trace.close(self.machine.sim.now)
                result.succeed(admitted)

            self._score.execute(work, "sidecar_tx", ctx=lead_ctx).add_callback(_done)

        app_core.execute(app_cost, "app_tx", ctx=lead_ctx).add_callback(_on_sidecar)
        return result

    # --- RX: NIC -> sidecar core -> coherence -> app ---------------------------------

    def wire_rx(self, pkt: Packet) -> None:
        self.nic.rx_from_wire(pkt)

    def _sidecar_rx(self, pkt: Packet) -> None:
        staged = self._rx_stage(pkt)
        if staged is None:
            return
        ep, verdict, work = staged
        # trace: stage spans charged in _rx_stage; waits absorbed at _rx_effect.
        self._score.execute(work, "sidecar_rx").add_callback(
            lambda _sig: self._rx_effect(pkt, ep, verdict)
        )

    def _sidecar_rx_burst(self, pkts: List[Packet]) -> None:
        """Burst softirq on the sidecar core: one execute event covers the
        whole burst's protocol work (coherence cost still per packet)."""
        staged_pkts = []
        total_work = 0
        for pkt in pkts:
            staged = self._rx_stage(pkt)
            if staged is None:
                continue
            ep, verdict, work = staged
            total_work += work
            staged_pkts.append((pkt, ep, verdict))
        if not staged_pkts:
            return

        def _done(_sig: Signal) -> None:
            for pkt, ep, verdict in staged_pkts:
                self._rx_effect(pkt, ep, verdict)

        # trace: stage spans charged in _rx_stage; waits absorbed at _rx_effect.
        self._score.execute(total_work, "sidecar_rx_burst").add_callback(_done)

    def _rx_stage(self, pkt: Packet):
        if pkt.is_arp:
            self.kernel.observe_arp(pkt)
            self._run_captures(pkt)
            return None
        ft = pkt.five_tuple
        ep = self._endpoints.get((ft.proto, ft.dport)) if ft else None
        owner = owner_info(ep.proc) if ep else None
        if owner is not None:
            pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm = owner
        ctx = pkt.meta.trace
        fp = self.machine.fastpath
        if fp is not None and ft is not None:
            scope = owner[0] if owner is not None else None
            entry = fp.lookup(CHAIN_INPUT, ft, scope)
            if entry is not None:
                verdict = entry.verdict
                work = (
                    charge(STAGE_RING, self.costs.bypass_rx_pkt_ns, ctx,
                           label="sidecar_rx")
                    + charge(STAGE_FASTPATH, fp.hit_ns, ctx, label="input_chain")
                )
            else:
                verdict, examined = self.kernel.filters.evaluate(CHAIN_INPUT, pkt, owner)
                fp.install(CHAIN_INPUT, ft, scope, verdict=verdict, points=("netfilter",))
                work = (
                    charge(STAGE_RING, self.costs.bypass_rx_pkt_ns, ctx,
                           label="sidecar_rx")
                    + charge(STAGE_NETFILTER,
                             examined * self.costs.netfilter_rule_ns, ctx,
                             label="input_chain")
                )
        else:
            verdict, examined = self.kernel.filters.evaluate(CHAIN_INPUT, pkt, owner)
            work = (
                charge(STAGE_RING, self.costs.bypass_rx_pkt_ns, ctx,
                       label="sidecar_rx")
                + charge(STAGE_NETFILTER,
                         examined * self.costs.netfilter_rule_ns, ctx,
                         label="input_chain")
            )
        if ep is not None:
            work += charge(
                STAGE_COHERENCE,
                self.machine.coherence.transfer_cost_ns(
                    pkt.wire_len + 64, self.sidecar_core_id, ep.proc.core_id
                ),
                ctx,
                label="x_core",
            )
        return ep, verdict, work

    def _rx_effect(self, pkt: Packet, ep: Optional[SidecarEndpoint], verdict: str) -> None:
        if pkt.meta.trace is not None:
            # Whatever elapsed beyond the charged spans (steering, burst
            # siblings' share of the softirq, sidecar-core queueing) is wait.
            pkt.meta.trace.fill_gap(
                STAGE_SCHED_WAKE, self.machine.sim.now, label="sidecar_wait"
            )
            pkt.meta.trace.close(self.machine.sim.now)
        self._run_captures(pkt)
        if verdict == DROP or ep is None or ep.closed:
            return
        ft = pkt.five_tuple
        msg: Message = (pkt.payload_len, ft.src_ip, ft.sport)
        waiter = self._waiters.pop((ep.proto, ep.port), None)
        if waiter is not None:
            self.kernel.scheduler.wake(ep.proc, value=msg)
        else:
            ep.rx_queue.append(msg)

    # --- administrative surface ----------------------------------------------------

    def install_filter_rule(self, rule: NetfilterRule) -> None:
        self.kernel.filters.append(rule)

    def configure_qos(self, config: QosConfig) -> None:
        weights = dict(config.weights_by_cgroup)
        weights.setdefault(DEFAULT_CLASS, 1)
        self._qos_weights = weights
        self._qdisc_point.policy = config
        self.egress_runner.replace_qdisc(
            DrrQdisc(weights=weights, quantum_bytes=config.quantum_bytes)
        )

    def _classify(self, pid: int) -> str:
        if not self._qos_weights:
            return DEFAULT_CLASS
        path = self.kernel.cgroups.group_of(pid).path
        return path if path in self._qos_weights else DEFAULT_CLASS

    def start_capture(
        self, match: Optional[PacketFilter] = None, name: str = "capture"
    ) -> CaptureSession:
        session = CaptureSession(name=name, attributed=True)
        self._captures.append((match, session))
        self._sniffer_point.record_update()

        def _detach() -> None:
            self._captures.remove((match, session))
            self._sniffer_point.record_update()

        session._detach = _detach
        return session

    def _run_captures(self, pkt: Packet) -> None:
        if not self._captures:
            return
        hit = False
        for match, session in self._captures:
            if match is None or match(pkt):
                session.packets.append(pkt)
                hit = True
        self._sniffer_point.record_eval(hit=hit)

    def attribution_of(self, pkt: Packet) -> Optional[Tuple[int, int, str]]:
        if pkt.meta.owner_pid is None:
            return None
        return (pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm)

    def arp_entries(self) -> List[object]:
        return self.kernel.arp_cache.entries()

    def data_movements(self) -> Dict[str, int]:
        return {
            "virtual": 0,
            "virtual_copied_bytes": 0,
            "physical": self.machine.coherence.lines_moved,
        }

    def copy_ledger_snapshot(self) -> Dict[str, int]:
        """Per-layer copy accounting for this host. The sidecar's cross-core
        line migration lands under the ``coherence`` layer (charged by
        :class:`~repro.host.coherence.CoherenceFabric` per transfer); kernel
        zero-copy modes never touch it — the sidecar moves bytes physically,
        not across the user/kernel boundary, so E13 shows it unaffected."""
        return self.machine.copies.snapshot()

    def sidecar_core_busy_ns(self) -> int:
        return self._score.busy_ns

    # --- hybrid fidelity ---------------------------------------------------
    #
    # The sidecar exposes the predicate/profile contract; fluid delivery
    # into its hand-off rings is not wired — only KOPI receives fluidly.
    # Promotion here goes through the controller API (the fidelity tests).

    def _ff_endpoint(self, flow):
        fp = self.machine.fastpath
        if fp is None:
            return None
        ep = self._endpoints.get((flow.proto, flow.dport))
        if ep is None or ep.closed:
            return None
        entry = fp.peek(CHAIN_INPUT, flow, ep.proc.pid)
        if entry is None or entry.verdict == DROP:
            return None
        return ep

    def ff_eligible(self, flow) -> bool:
        """Steady state on the sidecar: the INPUT-chain verdict for
        (flow, owner) is cached live and not a drop, and no capture session
        needs per-packet visibility."""
        if self._captures:
            return False
        return self._ff_endpoint(flow) is not None

    def ff_profile(self, flow, pkt):
        from ..sim.fastforward import FlowProfile

        ep = self._ff_endpoint(flow)
        if ep is None:
            return None
        fp = self.machine.fastpath
        costs = self.costs
        x_core = self.machine.coherence.transfer_cost_ns(
            pkt.wire_len + 64, self.sidecar_core_id, ep.proc.core_id
        )
        spans = (
            (STAGE_RING, costs.bypass_rx_pkt_ns, True, "sidecar_rx"),
            (STAGE_FASTPATH, fp.hit_ns, True, "input_chain"),
            (STAGE_COHERENCE, x_core, True, "x_core"),
        )
        entry = fp.peek(CHAIN_INPUT, flow, ep.proc.pid)
        return FlowProfile(
            spans, core_id=self.sidecar_core_id, wire_len=pkt.wire_len,
            payload_len=pkt.payload_len, src_ip=flow.src_ip, sport=flow.sport,
            versions=entry.versions if entry is not None else (),
        )
