"""Ablation — cost-model sensitivity: is the kernel/bypass gap structural?

A fair worry about any calibrated simulation: maybe the headline ratios
just restate the constants. This ablation scales the kernel's software
costs (syscalls, copies, protocol processing) down by 2x, 4x, and 10x and
reruns E1's comparison. Even a 10x-faster kernel — far beyond what years of
syscall optimization delivered — keeps a multiple of bypass's per-packet
cost, because the *structure* (two transfers, per-packet kernel work on the
application's core) is unchanged. That structural gap is the paper's
premise.
"""

from repro.config import DEFAULT_COSTS
from repro.experiments.common import fmt_table, run_bulk_tx
from repro.dataplanes import BypassDataplane, KernelPathDataplane

SPEEDUPS = (1, 2, 4, 10)
PAYLOAD = 1_458
COUNT = 150


def scaled_costs(factor: int):
    return DEFAULT_COSTS.replace(
        syscall_ns=max(1, DEFAULT_COSTS.syscall_ns // factor),
        context_switch_ns=max(1, DEFAULT_COSTS.context_switch_ns // factor),
        copy_ns_per_byte=DEFAULT_COSTS.copy_ns_per_byte / factor,
        kernel_rx_pkt_ns=max(1, DEFAULT_COSTS.kernel_rx_pkt_ns // factor),
        kernel_tx_pkt_ns=max(1, DEFAULT_COSTS.kernel_tx_pkt_ns // factor),
        socket_demux_ns=max(1, DEFAULT_COSTS.socket_demux_ns // factor),
        qdisc_enqueue_ns=max(1, DEFAULT_COSTS.qdisc_enqueue_ns // factor),
    )


def run_sweep():
    rows = []
    for factor in SPEEDUPS:
        costs = scaled_costs(factor)
        kernel = run_bulk_tx(KernelPathDataplane, PAYLOAD, COUNT, costs=costs)
        bypass = run_bulk_tx(BypassDataplane, PAYLOAD, COUNT, costs=costs)
        rows.append({
            "kernel_speedup": f"{factor}x",
            "kernel_cpu_ns_per_pkt": kernel["app_cpu_ns_per_pkt"],
            "bypass_cpu_ns_per_pkt": bypass["app_cpu_ns_per_pkt"],
            "ratio": kernel["app_cpu_ns_per_pkt"] / bypass["app_cpu_ns_per_pkt"],
            "kernel_goodput_gbps": kernel["goodput_gbps"],
            "bypass_goodput_gbps": bypass["goodput_gbps"],
        })
    return rows


def test_ablation_cost_model_sensitivity(once):
    rows = once(run_sweep)
    print("\n" + fmt_table(rows))
    ratios = [r["ratio"] for r in rows]
    # The gap shrinks with software speedups...
    assert ratios == sorted(ratios, reverse=True)
    # ...but never closes: even a 10x-faster kernel costs > bypass.
    assert ratios[-1] > 1.2
    # And at realistic constants it is an order of magnitude.
    assert ratios[0] > 8
