"""Kernel sockets and the port table.

Message-oriented sockets (enough for every experiment): bind, connect,
send/recv of sized messages. Each socket is attributed to its owning
process, which is what gives the kernel path its process view.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import AddressInUse, KernelError, PermissionDenied
from ..net.addresses import IPv4Address
from ..net.headers import PROTO_TCP, PROTO_UDP
from .process import Process

EPHEMERAL_BASE = 49_152
PRIVILEGED_MAX = 1_023

RxMessage = Tuple[int, IPv4Address, int]  # (payload_len, src_ip, sport)


class KernelSocket:
    """One bound socket: owner process, protocol, local port, optional peer."""

    def __init__(self, owner: Process, proto: int, port: int):
        self.owner = owner
        self.proto = proto
        self.port = port
        self.peer: Optional[Tuple[IPv4Address, int]] = None
        self.rx_queue: Deque[RxMessage] = deque()
        self.rx_bytes = 0
        self.tx_bytes = 0
        # Copy accounting (E13): payload bytes that crossed the user/kernel
        # boundary by copy vs. bytes a zero-copy mode avoided copying.
        self.tx_copied_bytes = 0
        self.tx_elided_bytes = 0
        self.rx_copied_bytes = 0
        self.rx_elided_bytes = 0
        self.closed = False

    def connect(self, ip: IPv4Address, port: int) -> None:
        self.peer = (ip, port)

    @property
    def state(self) -> str:
        if self.closed:
            return "CLOSED"
        if self.proto == PROTO_TCP:
            return "ESTABLISHED" if self.peer else "LISTEN"
        return "UNCONN" if not self.peer else "CONNECTED"

    def __repr__(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.proto, str(self.proto))
        return f"<KernelSocket {proto}:{self.port} pid={self.owner.pid} {self.state}>"


class SocketTable:
    """Port allocation with conflict detection and privilege checks."""

    def __init__(self) -> None:
        self._bound: Dict[Tuple[int, int], KernelSocket] = {}
        self._next_ephemeral: Dict[int, int] = {PROTO_TCP: EPHEMERAL_BASE, PROTO_UDP: EPHEMERAL_BASE}

    def bind(self, proc: Process, proto: int, port: int) -> KernelSocket:
        if proto not in (PROTO_TCP, PROTO_UDP):
            raise KernelError(f"unsupported protocol: {proto}")
        if not 1 <= port <= 0xFFFF:
            raise KernelError(f"port out of range: {port}")
        if port <= PRIVILEGED_MAX and not proc.user.is_root:
            raise PermissionDenied(
                f"uid {proc.uid} cannot bind privileged port {port}"
            )
        key = (proto, port)
        if key in self._bound and not self._bound[key].closed:
            raise AddressInUse(f"port {port}/{proto} already bound")
        sock = KernelSocket(owner=proc, proto=proto, port=port)
        self._bound[key] = sock
        return sock

    def bind_ephemeral(self, proc: Process, proto: int) -> KernelSocket:
        """Allocate the next free ephemeral port."""
        start = self._next_ephemeral.get(proto, EPHEMERAL_BASE)
        for offset in range(0xFFFF - EPHEMERAL_BASE + 1):
            port = EPHEMERAL_BASE + (start - EPHEMERAL_BASE + offset) % (0x10000 - EPHEMERAL_BASE)
            key = (proto, port)
            if key not in self._bound or self._bound[key].closed:
                self._next_ephemeral[proto] = port + 1
                return self.bind(proc, proto, port)
        raise AddressInUse("ephemeral port space exhausted")

    def lookup(self, proto: int, port: int) -> Optional[KernelSocket]:
        sock = self._bound.get((proto, port))
        if sock is not None and sock.closed:
            return None
        return sock

    def close(self, sock: KernelSocket) -> None:
        if sock.closed:
            raise KernelError(f"socket already closed: {sock!r}")
        sock.closed = True
        del self._bound[(sock.proto, sock.port)]

    def sockets(self) -> List[KernelSocket]:
        """All live sockets, ordered by (proto, port) — netstat's raw data."""
        return sorted(
            (s for s in self._bound.values() if not s.closed),
            key=lambda s: (s.proto, s.port),
        )

    def sockets_of(self, pid: int) -> List[KernelSocket]:
        return [s for s in self.sockets() if s.owner.pid == pid]
