"""DPDK-style kernel bypass.

Applications own NIC queues and descriptor rings outright. Per-packet cost
is tiny (tens of nanoseconds, no syscalls, no copies) — and that is the
entire story of §2's pathologies:

* there is no interposition point, so filters/QoS/capture all refuse;
* there is no port arbitration — two apps can claim the same port, and a
  misconfigured app simply takes traffic it shouldn't (the port-partition
  violation E5 counts);
* the kernel cannot see packet arrivals, so blocking I/O is impossible and
  ``recv`` spins, burning the application's core (E6);
* each application speaks its own ARP and the kernel ARP cache stays empty
  (the E4 debugging scenario).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CostModel
from ..errors import EndpointClosed, UnsupportedOperation
from ..host.copies import LAYER_DMA_DIRECT
from ..host.machine import Machine
from ..interpose import InterpositionPoint
from ..kernel.kernel import Kernel
from ..net.addresses import IPv4Address, MacAddress
from ..net.link import Link
from ..net.packet import Packet, make_udp, make_tcp
from ..net.headers import PROTO_TCP
from ..nic.base import BasicNic
from ..nic.rings import DescriptorRing, RingPair
from ..sim import Signal
from ..trace import (
    STAGE_DMA,
    STAGE_NIC_PIPELINE,
    STAGE_RING,
    STAGE_SCHED_WAKE,
    charge,
)
from .base import Dataplane, Endpoint, _as_bool, _as_first


class BypassEndpoint(Endpoint):
    """An application's raw queue pair."""

    def __init__(
        self,
        dataplane: "BypassDataplane",
        proc,
        proto: int,
        port: int,
        rings: RingPair,
    ):
        super().__init__(dataplane, proc, proto, port)
        self._dp = dataplane
        self.rings = rings
        self.peer: Optional[Tuple[IPv4Address, int]] = None
        self.polls = 0

    @property
    def _core(self):
        return self._dp.machine.cpus[self.proc.core_id]

    def connect(self, dst_ip: IPv4Address, dport: int) -> Signal:
        """Purely local: record the peer, install exact steering for the
        return flow. No kernel involvement at all."""
        self.peer = (dst_ip, dport)
        flow_back = None
        ft = self._dp.flow_for(self, dst_ip, dport)
        if ft is not None:
            flow_back = ft.reversed()
            self._dp.nic.steering.install(flow_back, self.rings.conn_id)
        done = Signal("bypass.connect")
        self._dp.machine.sim.after(0, done.succeed, True)
        return done

    def send(self, payload_len: int, dst: Optional[Tuple[IPv4Address, int]] = None) -> Signal:
        """Per-packet send: the degenerate burst of one."""
        return _as_bool(self.send_burst((payload_len,), dst), "bypass.send")

    def send_raw(self, pkt: Packet) -> Signal:
        """Raw injection — bypass apps can put anything on the wire, which
        is exactly why Alice cannot enforce her policies."""
        return _as_bool(self.send_raw_burst((pkt,)), "bypass.send")

    def send_burst(
        self, payload_lens: Sequence[int], dst: Optional[Tuple[IPv4Address, int]] = None
    ) -> Signal:
        dst = dst or self.peer
        if dst is None:
            raise UnsupportedOperation("send without destination on unconnected endpoint")
        pkts = [
            self._dp.build_packet(self, dst[0], dst[1], length) for length in payload_lens
        ]
        return self.send_raw_burst(pkts)

    def send_raw_burst(self, pkts: Sequence[Packet]) -> Signal:
        """Post a descriptor burst under ONE doorbell: per-packet userspace
        work, a single MMIO write, a single DMA fetch on the NIC side."""
        result = Signal("bypass.send_burst")
        tracer = self._dp.machine.tracer
        now = self._dp.machine.sim.now
        lead_ctx = None
        cost = 0
        for pkt in pkts:
            pkt.meta.created_ns = now
            ctx = tracer.begin(pkt)
            if lead_ctx is None:
                lead_ctx = ctx
            cost += charge(STAGE_RING, self._dp.costs.bypass_tx_pkt_ns, ctx,
                           label="tx_desc")
        # One doorbell covers the burst; the MMIO lands on the lead trace.
        cost += charge(STAGE_DMA, self._dp.costs.mmio_write_ns, lead_ctx,
                       label="doorbell")

        def _done(_sig: Signal) -> None:
            if self.closed:
                result.succeed(0)
                return
            posted = self.rings.tx.post_burst(pkts)
            if posted:
                self._dp.nic_consume_tx(self.rings, posted)
            result.succeed(posted)

        self._core.execute(cost, "bypass_tx", ctx=lead_ctx).add_callback(_done)
        return result

    def recv(self, blocking: bool = True) -> Signal:
        """Poll the RX ring for one message: the degenerate burst of one.
        ``blocking=True`` here means *spin until data*: the core stays 100%
        busy — there is nothing to sleep on."""
        return _as_first(self.recv_burst(1, blocking=blocking), "bypass.recv")

    def recv_burst(self, max_msgs: int, blocking: bool = True) -> Signal:
        """Drain up to ``max_msgs`` descriptors in one poll: one descriptor-
        batch read, per-packet header processing."""
        result = Signal("bypass.recv_burst")

        def _attempt(_sig: Optional[Signal] = None) -> None:
            if self.closed:
                result.fail(EndpointClosed(f"endpoint :{self.port} closed"))
                return
            pkts = self.rings.rx.consume_burst(max_msgs)
            if pkts:
                cost = sum(
                    charge(STAGE_RING, self._dp.costs.bypass_rx_pkt_ns,
                           p.meta.trace, label="rx_desc")
                    for p in pkts
                )

                def _drained(_s: Signal) -> None:
                    now = self._dp.machine.sim.now
                    for p in pkts:
                        if p.meta.trace is not None:
                            # Ring residency + poll/batch wait, then done.
                            p.meta.trace.fill_gap(STAGE_RING, now, label="ring_wait")
                            p.meta.trace.close(now)
                    result.succeed([_message_of(p) for p in pkts])

                self._core.execute(cost, "bypass_rx").add_callback(_drained)
                return
            if not blocking:
                from ..errors import WouldBlock

                result.fail(WouldBlock(f"ring empty on :{self.port}"))
                return
            self.polls += 1
            self._core.execute(
                self._dp.machine.tracer.loose(
                    STAGE_SCHED_WAKE, self._dp.costs.poll_iteration_ns, label="poll"
                ),
                "poll",
            ).add_callback(_attempt)

        _attempt()
        return result


def _message_of(pkt: Packet) -> Tuple[int, IPv4Address, int]:
    ft = pkt.five_tuple
    if ft is None:
        return (pkt.wire_len, IPv4Address(0), 0)
    return (pkt.payload_len, ft.src_ip, ft.sport)


class BypassDataplane(Dataplane):
    """Apps directly on the NIC; the kernel exists but is off-path."""

    name = "bypass"
    supports_blocking_io = False

    def __init__(
        self,
        machine: Machine,
        host_ip: IPv4Address,
        host_mac: MacAddress,
        egress: Link,
        n_queues: int = 64,
        ring_entries: int = 256,
    ):
        self.machine = machine
        self.costs: CostModel = machine.costs
        self.host_ip = host_ip
        self.host_mac = host_mac
        self.ring_entries = ring_entries
        machine.tracer.plane = self.name
        self.nic = BasicNic(
            machine.sim, machine.costs, machine.dma, egress, n_queues=n_queues,
            fastpath=machine.fastpath, tracer=machine.tracer,
        )
        # The kernel still runs the machine — it is just not on the datapath.
        self.kernel = Kernel(machine, host_ip, host_mac, nic_send=self.nic.tx)
        # Fixed-function NIC steering is the ONLY interposition mechanism a
        # bypass deployment has ("netfilter" is registered by Kernel but its
        # table is off-path) — the engine's registry makes that legible.
        self.nic.steering.point = machine.interpose.register(InterpositionPoint(
            name="steering", plane="nic", mechanism="steering",
            install_latency_ns=self.costs.table_update_ns,
            target=self.nic.steering,
        ))
        self._endpoints: List[BypassEndpoint] = []
        self._next_conn = 0

    # --- wire plumbing ---------------------------------------------------------

    def wire_rx(self, pkt: Packet) -> None:
        self.nic.rx_from_wire(pkt)

    def nic_consume_tx(self, rings: RingPair, count: int = 1) -> None:
        """NIC side: fetch ``count`` posted descriptors in one DMA
        transaction and transmit them — one event per burst."""
        fetch_ns = self.costs.dma_burst_ns(count)
        delay = fetch_ns + self.costs.nic_pipeline_ns

        def _fetch() -> None:
            pkts = rings.tx.consume_burst(count)
            if pkts:
                # Hardware fetch straight from app-owned rings: no CPU copy.
                self.machine.dma.account_placement(
                    LAYER_DMA_DIRECT,
                    sum(p.wire_len for p in pkts),
                    fetch_ns,
                    ops=len(pkts),
                )
            now = self.machine.sim.now
            for pkt in pkts:
                if pkt.meta.trace is not None:
                    # Known pipeline latency, then whatever else elapsed
                    # (descriptor fetch, burst siblings) as DMA wait.
                    charge(STAGE_NIC_PIPELINE, self.costs.nic_pipeline_ns,
                           pkt.meta.trace, cpu=False, label="tx_pipeline")
                    pkt.meta.trace.fill_gap(STAGE_DMA, now, label="desc_fetch")
                self.nic.tx(pkt)

        self.machine.sim.after(delay, _fetch)

    # --- application surface ------------------------------------------------------

    def open_endpoint(self, proc, proto: int, port: Optional[int] = None) -> BypassEndpoint:
        """Claim a queue. NOTE: no conflict detection — any app can steer
        any port to itself. That is a feature of the measurement, not a bug
        of the model."""
        if port is None:
            port = 50_000 + self._next_conn
        conn_id = self._allocate_queue()
        region_rx = self.machine.memory.alloc_pinned(
            self.ring_entries * 64, owner=f"pid{proc.pid}", name=f"rx{conn_id}"
        )
        region_tx = self.machine.memory.alloc_pinned(
            self.ring_entries * 64, owner=f"pid{proc.pid}", name=f"tx{conn_id}"
        )
        rings = RingPair(
            conn_id,
            rx=DescriptorRing(self.ring_entries, region_rx, f"rx{conn_id}"),
            tx=DescriptorRing(self.ring_entries, region_tx, f"tx{conn_id}"),
        )
        self.nic.queues[conn_id % len(self.nic.queues)].ring = rings.rx
        self.nic.steering.install_dport(proto, port, conn_id)
        ep = BypassEndpoint(self, proc, proto, port, rings)
        self._endpoints.append(ep)
        return ep

    def _allocate_queue(self) -> int:
        if self._next_conn >= len(self.nic.queues):
            from ..errors import NicResourceExhausted

            raise NicResourceExhausted(
                f"all {len(self.nic.queues)} NIC queues claimed by applications"
            )
        conn = self._next_conn
        self._next_conn += 1
        return conn

    def build_packet(
        self, ep: BypassEndpoint, dst_ip: IPv4Address, dport: int, payload_len: int
    ) -> Packet:
        dst_mac = MacAddress.from_index(dst_ip.value & 0xFF_FFFF)
        maker = make_tcp if ep.proto == PROTO_TCP else make_udp
        return maker(self.host_mac, dst_mac, self.host_ip, dst_ip, ep.port, dport, payload_len)

    def flow_for(self, ep: BypassEndpoint, dst_ip: IPv4Address, dport: int):
        from ..net.flow import FiveTuple

        return FiveTuple(ep.proto, self.host_ip, ep.port, dst_ip, dport)

    # --- the administrative surface refuses everything (inherited) -----------------

    def data_movements(self) -> Dict[str, int]:
        return {"virtual": 0, "virtual_copied_bytes": 0, "physical": 0}

    # --- hybrid fidelity ---------------------------------------------------
    #
    # Bypass exposes the predicate/profile contract (fast-forward is
    # plane-agnostic); fluid delivery into its poll rings is not wired —
    # only KOPI receives fluidly. Promotion here goes through the
    # controller API (the fidelity tests), not the RX hot path.

    def _ff_endpoint(self, flow):
        fp = self.machine.fastpath
        if fp is None:
            return None
        from ..interpose.fastpath import CHAIN_STEER

        if fp.peek(CHAIN_STEER, flow) is None:
            return None
        for ep in self._endpoints:
            if not ep.closed and ep.proto == flow.proto and ep.port == flow.dport:
                return ep
        return None

    def ff_eligible(self, flow) -> bool:
        """Steady state on bypass: the NIC steering verdict is cached live
        and an open endpoint owns the destination port. (There is no
        capture point on this plane to conflict with, by construction.)"""
        return self._ff_endpoint(flow) is not None

    def ff_profile(self, flow, pkt):
        from ..sim.fastforward import FlowProfile
        from ..trace import STAGE_FASTPATH, STAGE_NIC_PIPELINE, STAGE_RING

        ep = self._ff_endpoint(flow)
        if ep is None:
            return None
        fp = self.machine.fastpath
        costs = self.costs
        spans = (
            (STAGE_NIC_PIPELINE, costs.nic_pipeline_ns, False, "rx_pipeline"),
            (STAGE_FASTPATH, fp.hit_ns, False, "steer_cache"),
            (STAGE_RING, costs.bypass_rx_pkt_ns, True, "rx_desc"),
        )
        from ..interpose.fastpath import CHAIN_STEER

        entry = fp.peek(CHAIN_STEER, flow)
        return FlowProfile(
            spans, core_id=ep.proc.core_id, wire_len=pkt.wire_len,
            payload_len=pkt.payload_len, src_ip=flow.src_ip, sport=flow.sport,
            versions=entry.versions if entry is not None else (),
        )

    def total_polls(self) -> int:
        return sum(ep.polls for ep in self._endpoints)
