"""The discrete-event engine.

A :class:`Simulator` owns a heap of pending events. Each event is a plain
callback scheduled at an absolute integer-nanosecond timestamp. Ties are
broken by insertion order, so a run is fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import SimulationError


class EventHandle:
    """Handle to a scheduled callback; allows cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped, which keeps scheduling O(log n). The owning simulator tracks
    how many cancelled entries its heap carries and compacts when they
    dominate (see :meth:`Simulator._compact`).
    """

    __slots__ = ("time", "_fn", "_args", "_cancelled", "_sim")

    def __init__(
        self,
        time: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call more than once."""
        if self._cancelled:
            return
        self._cancelled = True
        self._fn = _cancelled_fn
        self._args = ()
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        self._fn(*self._args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time} {state}>"


def _cancelled_fn() -> None:
    """Body of a cancelled event."""


def _fire_burst(fn: Callable[..., Any], items: Tuple[Any, ...]) -> None:
    """Body of a coalesced burst event: apply ``fn`` to each item in order."""
    for item in items:
        fn(item)


class Simulator:
    """Deterministic discrete-event simulator with integer-ns time."""

    #: Below this heap size, compaction is not worth the rebuild.
    COMPACT_MIN_HEAP = 64

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, EventHandle]] = []
        self._events_fired = 0
        self._cancelled_pending = 0
        self._compactions = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (observability / tests)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of heap entries (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Lazily-cancelled entries still occupying heap slots."""
        return self._cancelled_pending

    @property
    def heap_compactions(self) -> int:
        """How many times the heap has been compacted (observability)."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """Heap hygiene: when cancelled entries exceed 50% of ``pending``,
        rebuild the heap without them. Lazy cancellation otherwise leaks
        the slots for the lifetime of a run (timer-heavy workloads cancel
        far more events than they fire)."""
        self._cancelled_pending += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        # In-place: run() holds a local alias to the heap list, so the
        # list object must survive compaction. heapify preserves firing
        # order because (time, seq) keys are unique and totally ordered.
        self._heap[:] = [e for e in self._heap if not e[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._compactions += 1

    def at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ns} ns; now is {self._now} ns"
            )
        handle = EventHandle(time_ns, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (time_ns, self._seq, handle))
        return handle

    def after(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.at(self._now + delay_ns, fn, *args)

    def at_burst(
        self, time_ns: int, fn: Callable[..., Any], items: Sequence[Any]
    ) -> EventHandle:
        """Coalesced-event fast path: schedule ``fn(item)`` for every item
        of a burst under ONE heap entry (and one callback execution).

        This is what makes large-batch sweeps cheap in wall-clock terms:
        a burst of 64 packets costs one heap push/pop instead of 64.
        Cancelling the handle cancels the whole burst.
        """
        if not items:
            raise SimulationError("at_burst needs at least one item")
        return self.at(time_ns, _fire_burst, fn, tuple(items))

    def after_burst(
        self, delay_ns: int, fn: Callable[..., Any], items: Sequence[Any]
    ) -> EventHandle:
        """Burst counterpart of :meth:`after`; see :meth:`at_burst`."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.at_burst(self._now + delay_ns, fn, items)

    def peek(self) -> Optional[int]:
        """Timestamp of the next non-cancelled event, or None if idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_pending -= 1
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Execute the next event. Returns False when no events remain."""
        while self._heap:
            time_ns, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = time_ns
            self._events_fired += 1
            handle._fire()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the simulated time afterwards. When stopping at ``until``,
        the clock is advanced to ``until`` even if no event fires exactly
        there, so back-to-back ``run(until=...)`` calls behave like wall
        clock segments.
        """
        fired = 0
        heap = self._heap
        while True:
            if max_events is not None and fired >= max_events:
                return self._now
            nxt = self.peek()
            if nxt is None:
                if until is not None and until > self._now:
                    self._now = until
                return self._now
            if until is not None and nxt > until:
                self._now = until
                return self._now
            # peek() left a non-cancelled entry on top, so pop it directly
            # instead of going through step()'s skip-cancelled scan — one
            # heap traversal per event, not two.
            time_ns, _, handle = heapq.heappop(heap)
            self._now = time_ns
            self._events_fired += 1
            handle._fire()
            fired += 1

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the event heap completely; guard against runaway loops.

        Delegates to :meth:`run`, which pops via ``peek()`` — one heap
        traversal per event. Fires at most ``max_events`` callbacks; if
        non-cancelled work remains after that, raises.
        """
        self.run(max_events=max_events)
        if self.peek() is not None:
            raise SimulationError(
                f"run_until_idle exceeded {max_events} events; likely a livelock"
            )
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now}ns pending={len(self._heap)}>"
