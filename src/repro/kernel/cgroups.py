"""Control groups, as used by `tc` classification (net_cls-style classids).

The QoS scenario in §2 moves the game into its own cgroup and shapes it with
tc — so the cgroup tree maps processes to classids that qdiscs and the
SmartNIC scheduler classify on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import KernelError
from .process import Process


class Cgroup:
    """One node in the cgroup hierarchy."""

    def __init__(self, path: str, classid: int):
        self.path = path
        self.classid = classid
        self.pids: "set[int]" = set()

    def __repr__(self) -> str:
        return f"<Cgroup {self.path} classid={self.classid:#x} pids={sorted(self.pids)}>"


class CgroupTree:
    """Flat-path cgroup registry with net_cls classids.

    Paths are ``/``-rooted (``"/games"``). The root group always exists with
    classid 0 (unclassified).
    """

    ROOT = "/"

    def __init__(self) -> None:
        self._groups: Dict[str, Cgroup] = {self.ROOT: Cgroup(self.ROOT, 0)}
        self._pid_group: Dict[int, str] = {}
        self._procs: Dict[int, Process] = {}
        self._next_classid = 0x1_0001  # tc-style major:minor starting at 1:1
        #: Classids of deleted groups. Never reissued: a packet or qdisc
        #: classified under a dead group's id must resolve to *nothing*,
        #: never to a later tenant that happened to receive the same id.
        self._retired: "set[int]" = set()

    def create(self, path: str) -> Cgroup:
        if not path.startswith("/") or path == self.ROOT:
            raise KernelError(f"invalid cgroup path: {path!r}")
        if path in self._groups:
            raise KernelError(f"cgroup {path!r} already exists")
        group = Cgroup(path, self._next_classid)
        self._next_classid += 1
        self._groups[path] = group
        return group

    def get(self, path: str) -> Cgroup:
        if path not in self._groups:
            raise KernelError(f"no such cgroup: {path!r}")
        return self._groups[path]

    def assign(self, proc: Process, path: str) -> None:
        group = self.get(path)
        old = self._pid_group.get(proc.pid)
        if old is not None:
            old_group = self._groups.get(old)
            if old_group is not None:
                old_group.pids.discard(proc.pid)
        group.pids.add(proc.pid)
        self._pid_group[proc.pid] = path
        self._procs[proc.pid] = proc
        proc.cgroup_path = path

    def delete(self, path: str) -> None:
        """Remove a cgroup, deterministically re-resolving its members.

        Every member pid is re-homed to the root group — both the tree's
        index and the process's own ``cgroup_path`` — so later
        classification (classid lookups, tenant resolution) can never see
        the dead group. The classid is retired, not recycled: a stale id
        held anywhere keeps resolving to None rather than silently
        classifying into whoever registered next."""
        if path == self.ROOT:
            raise KernelError("cannot delete the root cgroup")
        group = self.get(path)
        root = self._groups[self.ROOT]
        for pid in sorted(group.pids):
            root.pids.add(pid)
            self._pid_group[pid] = self.ROOT
            proc = self._procs.get(pid)
            if proc is not None:
                proc.cgroup_path = self.ROOT
        group.pids.clear()
        self._retired.add(group.classid)
        del self._groups[path]

    def group_of(self, pid: int) -> Cgroup:
        return self._groups[self._pid_group.get(pid, self.ROOT)]

    def classid_of(self, pid: int) -> int:
        return self.group_of(pid).classid

    def groups(self) -> List[Cgroup]:
        return list(self._groups.values())

    def by_classid(self, classid: int) -> Optional[Cgroup]:
        if classid in self._retired:
            return None
        for group in self._groups.values():
            if group.classid == classid:
                return group
        return None

    def retired(self) -> "set[int]":
        """Classids that once named a now-deleted group (diagnostics)."""
        return set(self._retired)
