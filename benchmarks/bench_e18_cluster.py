"""E18 — cluster scale-out bench: live flow migration must be loss-free
and re-steering a hot backend must actually pay.

Replays both legs of the cluster experiment and asserts the acceptance
shape:

* Conservation: the live-migration run of the *identical* client→VIP
  schedule matches the no-migration run on every cluster-summed
  observable — delivered messages (total and per-flow), NIC and switch
  frame meters, and conntrack packet/byte totals summed across all
  backends — exactly, with the migrated flow's count fully accounted for
  by the protocol's snapshot + delta copies.
* Rebalance: migrating the elephant flow off the hot backend cuts the
  victim mice's p99 latency by >= ``MIN_P99_IMPROVEMENT`` versus the
  no-migration leg, with every mouse still delivered.

Writes ``e18_cluster.json`` and the consolidated ``BENCH_PR10.json``;
the consolidated pass gates the exact-mode E8 replay's events/s within
10% of the ``BENCH_PR9.json`` baseline — the balancer probe in the
switch's forwarding loop and the Rack generalization must cost the
default path nothing. (Skipped when no baseline exists.)
"""

import gc
import json
import time
from pathlib import Path

from repro.experiments import e8_connection_scaling as e8
from repro.experiments.e18_cluster import (
    MIN_P99_IMPROVEMENT,
    headline,
    run_parity,
    run_rebalance_pair,
)
from repro.experiments.e21_fidelity_crossover import PARITY_COLUMNS
from repro.experiments.e23_rack_fastforward import (
    run_parity as run_e23_parity,
)
from repro.experiments.common import fmt_table
from repro.sim import Simulator

ARTIFACT = Path(__file__).parent / "artifacts" / "e18_cluster.json"
CONSOLIDATED = Path(__file__).parent / "artifacts" / "BENCH_PR10.json"
PR9_BASELINE = Path(__file__).parent / "artifacts" / "BENCH_PR9.json"

MAX_E8_REGRESSION = 0.10


def _metered(fn, *args, repeats=1, **kwargs):
    """Run ``fn`` ``repeats`` times and return (result, total events fired
    across every simulator one run built, best wall seconds) — bench-local
    instrumentation. The event count is deterministic across repeats; the
    wall clock is not, so regression-gated entries use best-of-N."""
    best = None
    for _ in range(repeats):
        sims = []
        orig_init = Simulator.__init__

        def _tracking_init(self):
            orig_init(self)
            sims.append(self)

        gc.collect()
        Simulator.__init__ = _tracking_init
        t0 = time.perf_counter()
        try:
            result = fn(*args, **kwargs)
        finally:
            Simulator.__init__ = orig_init
        seconds = time.perf_counter() - t0
        events = sum(s.events_fired for s in sims)
        if best is None or seconds < best[2]:
            best = (result, events, seconds)
    return best


def _e18():
    parity = run_parity()
    rebalance = run_rebalance_pair()
    return parity, rebalance


def test_e18_cluster(once):
    parity, rebalance = once(_e18)
    h = headline(parity, rebalance)

    print("\n" + fmt_table(parity["rows"], columns=PARITY_COLUMNS))
    print(f"\nheadline: parity_ok={h['parity_ok']} "
          f"max_rel_err={h['max_rel_err']:.4%} "
          f"stale_evals={h['stale_evals']} "
          f"p99 improvement={h['p99_improvement']:.1f}x")

    # Acceptance: migration is invisible in every cluster-summed
    # observable (loss-free, counter-conserving)...
    assert parity["ok"], parity["rows"]
    for row in parity["rows"]:
        assert row["ok"], row
    assert parity["flows_ok"]
    assert parity["migration_done"]
    assert parity["moved_ok"], parity["migration"]
    assert h["max_rel_err"] == 0.0
    # ...the re-steer commit was atomic and live (some packets may land in
    # the stale window, steered by the complete OLD table — never a
    # half-installed one)...
    assert parity["commit_stats"].get("resteers", 0) >= 1
    # ...and moving the elephant actually rescues the victim's tail.
    assert rebalance["complete"], rebalance
    assert rebalance["improvement"] >= MIN_P99_IMPROVEMENT, rebalance

    record = parity["migration"]
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        json.dumps(
            {
                "headline": h,
                "parity": parity["rows"],
                "migration": {
                    "snap_packets": record.snap_packets,
                    "delta_packets": record.delta_packets,
                    "verdicts_replayed": record.verdicts_replayed,
                    "ff_demoted": record.ff_demoted,
                    "commit_ns": record.committed_ns - record.requested_ns,
                    "total_ns": record.finalized_ns - record.requested_ns,
                },
                "rebalance": {
                    "improvement": rebalance["improvement"],
                    "base_p99_post_ns": rebalance["base"]["p99_post_ns"],
                    "mig_p99_post_ns": rebalance["mig"]["p99_post_ns"],
                    "mice_delivered": rebalance["mig"]["mice_delivered"],
                },
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {ARTIFACT}")


def test_bench_pr10_consolidated(once):
    """One artifact comparing the replay cost of the suite's heavy
    experiments on this tree — and the regression gate proving the
    balancer probe and the N-host Rack refactor cost the exact path
    nothing."""
    entries = {}
    _, ev, s = _metered(e8.run_e8, sweep=(256, 1_024),
                        packets_per_point=4_096, repeats=5)
    entries["e8"] = {"events": ev, "seconds": s}
    e23_parity, ev, s = _metered(run_e23_parity)
    entries["e23"] = {"events": ev, "seconds": s,
                      "parity_ok": bool(e23_parity["ok"])}
    (parity, rebalance), ev, s = _metered(once, _e18)
    entries["e18"] = {
        "events": ev, "seconds": s,
        "parity_ok": bool(parity["ok"]),
        "max_rel_err": parity["max_rel_err"],
        "p99_improvement": rebalance["improvement"],
    }

    CONSOLIDATED.parent.mkdir(parents=True, exist_ok=True)
    CONSOLIDATED.write_text(json.dumps(entries, indent=2) + "\n")
    for name, e in entries.items():
        print(f"{name}: {e['events']} events in {e['seconds']:.2f}s")
    print(f"wrote {CONSOLIDATED}")

    # Exact-mode regression gate: E8 runs with cluster_lb (and
    # fast_forward) off, so its events/s measures the default path the
    # Rack refactor and the balancer hook must not slow.
    if not PR9_BASELINE.exists():
        print(f"{PR9_BASELINE.name} absent; skipping exact-mode "
              f"E8 regression check")
        return
    base = json.loads(PR9_BASELINE.read_text()).get("e8")
    if not base or not base.get("seconds"):
        print(f"{PR9_BASELINE.name} has no usable e8 entry; skipping")
        return
    base_rate = base["events"] / base["seconds"]
    cur_rate = entries["e8"]["events"] / entries["e8"]["seconds"]
    drop = 1.0 - cur_rate / base_rate
    print(f"e8 exact-mode: {cur_rate:,.0f} events/s vs baseline "
          f"{base_rate:,.0f} ({drop:+.1%} drop)")
    assert drop <= MAX_E8_REGRESSION, (
        f"exact-mode E8 replay regressed {drop:.1%} "
        f"(> {MAX_E8_REGRESSION:.0%}) vs {PR9_BASELINE.name}"
    )
