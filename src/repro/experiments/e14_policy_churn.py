"""E14 — policy churn: atomic commits, install latency, and the stale window.

The unified interposition plane gives every mechanism the same commit
contract: a policy update is submitted, becomes live atomically (in-flight
packets finish on the old version; no packet ever observes a mixed table),
and the :class:`~repro.interpose.PolicyEngine` records when it landed and
how many packets ran under the stale policy meanwhile. What differs per
plane is *where* the table lives, and therefore what a commit costs:

* **kernel / sidecar** — the table is a kernel data structure; an iptables
  write is live when the syscall returns (modeled ``kernel_update_ns``,
  ~10 us). Zero packets ever run stale.
* **KOPI** — the kernel table updates synchronously, but the *enforcing*
  copy is an overlay program on the SmartNIC: each commit is an
  ~``overlay_load_ns`` (50 us) load, during which traffic keeps flowing
  under the previous program. E14 counts those stale evaluations.
* **bitstream granularity** — replacing the whole FPGA image is also one
  commit, but a ~2 s one during which the NIC is offline and ingress
  drops. That is the §4.4 argument for overlay-granularity policy loads.

The sweep drives a bulk stream while an operator toggles an unrelated
iptables rule at increasing rates, then reads everything from the engine:
commit count, install latency (modeled or measured), stale evaluations,
and the goodput disturbance relative to the no-churn baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from .. import units
from ..apps import BulkSender
from ..config import DEFAULT_COSTS, CostModel
from ..core import NormanOS
from ..core.nic_dataplane import KOPI_BITSTREAM
from ..dataplanes import KernelPathDataplane, SidecarDataplane, Testbed
from ..dataplanes.base import Dataplane
from ..interpose import PolicyCommit
from ..net.headers import PROTO_UDP
from ..tools import Iptables
from .common import Row, fmt_table

PLANES: "tuple[Type[Dataplane], ...]" = (
    KernelPathDataplane,
    SidecarDataplane,
    NormanOS,
)

#: Toggle intervals swept per plane; ``None`` is the no-churn baseline.
INTERVALS_NS: "tuple[Optional[int], ...]" = (None, 200_000, 50_000, 10_000)

DEFAULT_COUNT = 400
PAYLOAD = 1_458

COLUMNS = [
    "plane", "point", "interval_us", "commits", "install_us_mean",
    "install_us_max", "stale_evals", "delivered", "goodput_gbps",
    "goodput_delta_pct",
]

UPGRADE_COLUMNS = [
    "mechanism", "commit_ms", "offline_rx_drops", "stale_evals",
]


def _filter_point(tb: Testbed):
    """The point that *enforces* filter policy on this plane: the overlay
    slots on KOPI, the kernel netfilter table elsewhere."""
    engine = tb.machine.interpose
    point = engine.find("overlay_filters")
    return point if point is not None else engine.get("netfilter")


def _commit_stats(commits: List[PolicyCommit]) -> "tuple[int, float, float, int]":
    done = [c for c in commits if c.mode != "failed"]
    if not done:
        return 0, 0.0, 0.0, 0
    lats = [c.latency_ns for c in done]
    stale = sum(c.stale_evals for c in done)
    return len(done), sum(lats) / len(lats) / units.US, max(lats) / units.US, stale


def run_churn_point(
    plane_cls: Type[Dataplane],
    interval_ns: Optional[int],
    count: int = DEFAULT_COUNT,
    costs: CostModel = DEFAULT_COSTS,
) -> Row:
    """One cell: stream ``count`` packets while toggling an (unrelated)
    DROP rule every ``interval_ns``; report what the engine recorded."""
    tb = Testbed(plane_cls, costs=costs)
    ipt = Iptables(tb.dataplane, tb.kernel)
    app = BulkSender(
        tb, comm="bulk", user="bob", core_id=1, payload_len=PAYLOAD, count=count
    )
    point = _filter_point(tb)
    state = {"installed": False}

    def _toggle() -> None:
        if state["installed"]:
            ipt("-F OUTPUT")
        else:
            ipt("-A OUTPUT -p udp --dport 9999 -j DROP")
        state["installed"] = not state["installed"]
        if app.sent < count:
            tb.sim.after(interval_ns, _toggle)

    app.start()
    if interval_ns is not None:
        tb.sim.after(interval_ns, _toggle)
    tb.run_all()

    commits = tb.machine.interpose.commits_for(point.name)
    n, mean_us, max_us, stale = _commit_stats(commits)
    delivered = [
        p for p in tb.peer.received if p.five_tuple and p.five_tuple.dport == 9000
    ]
    return {
        "plane": plane_cls.name,
        "point": point.name,
        "interval_us": interval_ns / units.US if interval_ns is not None else 0.0,
        "commits": n,
        "install_us_mean": mean_us,
        "install_us_max": max_us,
        "stale_evals": stale,
        "delivered": len(delivered),
        "goodput_gbps": app.goodput_bps() / units.GBPS,
    }


def run_e14(
    count: int = DEFAULT_COUNT,
    intervals: "tuple[Optional[int], ...]" = INTERVALS_NS,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    rows: List[Row] = []
    for plane_cls in PLANES:
        baseline: Optional[float] = None
        for interval_ns in intervals:
            row = run_churn_point(plane_cls, interval_ns, count=count, costs=costs)
            goodput = float(row["goodput_gbps"])
            if interval_ns is None:
                baseline = goodput
                row["goodput_delta_pct"] = 0.0
            else:
                row["goodput_delta_pct"] = (
                    (goodput - baseline) / baseline * 100.0 if baseline else 0.0
                )
            rows.append(row)
    return rows


def run_e14_upgrade(
    inject_count: int = 80,
    gap_ns: int = 50_000_000,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    """The granularity table: one overlay commit vs one bitstream commit,
    with ingress running. The bitstream path takes the NIC offline for ~2 s
    — every arrival in the window drops — while overlay loads commit in
    ~50 us with traffic still flowing (stale, but flowing)."""
    tb = Testbed(NormanOS, costs=costs)
    ipt = Iptables(tb.dataplane, tb.kernel)
    proc = tb.spawn("sink", "bob", core_id=1)
    tb.dataplane.open_endpoint(proc, PROTO_UDP, 9_000)
    ipt("-A INPUT -p udp --dport 9999 -j DROP")  # a policy to restore
    tb.run_all()
    engine = tb.machine.interpose
    history_mark = len(engine.history)

    for i in range(inject_count):
        tb.sim.at(tb.sim.now + i * gap_ns, tb.peer.send_udp, 555, 9_000, 256)
    # One overlay-granularity commit mid-stream, then a full image upgrade.
    tb.sim.at(tb.sim.now + 2 * gap_ns, lambda: ipt("-F INPUT"))
    tb.sim.at(
        tb.sim.now + 4 * gap_ns,
        lambda: tb.dataplane.control.upgrade_bitstream(KOPI_BITSTREAM),
    )
    tb.run_all()

    commits = [
        c for c in engine.history[history_mark:]
        if c.point == "overlay_filters" and c.mode != "failed"
    ]
    if not commits:
        return []
    upgrade = max(commits, key=lambda c: c.latency_ns)
    overlays = [c for c in commits if c is not upgrade]
    drops = tb.dataplane.nic.metrics.counter("rx_offline_drops").value
    rows: List[Row] = []
    if overlays:
        rows.append({
            "mechanism": "overlay load",
            "commit_ms": max(c.latency_ns for c in overlays) / units.MS,
            "offline_rx_drops": 0,
            "stale_evals": sum(c.stale_evals for c in overlays),
        })
    rows.append({
        "mechanism": "bitstream upgrade",
        "commit_ms": upgrade.latency_ns / units.MS,
        "offline_rx_drops": drops,
        "stale_evals": upgrade.stale_evals,
    })
    return rows


def headline(rows: List[Row]) -> Dict[str, object]:
    churn = [r for r in rows if r["interval_us"]]
    sync = [r for r in churn if r["plane"] in ("kernel", "sidecar")]
    kopi = [r for r in churn if r["plane"] == "kopi"]
    fastest = min(churn, key=lambda r: r["interval_us"])["interval_us"] if churn else 0
    kopi_fastest = [r for r in kopi if r["interval_us"] == fastest]
    return {
        "sync_planes_stale_evals": sum(int(r["stale_evals"]) for r in sync),
        "sync_install_us_mean": (
            sum(float(r["install_us_mean"]) for r in sync) / len(sync) if sync else 0.0
        ),
        "kopi_install_us_mean": (
            sum(float(r["install_us_mean"]) for r in kopi) / len(kopi) if kopi else 0.0
        ),
        "kopi_stale_at_fastest": (
            int(kopi_fastest[0]["stale_evals"]) if kopi_fastest else 0
        ),
        "max_goodput_delta_pct": (
            max(abs(float(r["goodput_delta_pct"])) for r in churn) if churn else 0.0
        ),
    }


def main() -> str:
    rows = run_e14()
    upgrade_rows = run_e14_upgrade()
    h = headline(rows)
    lines = [fmt_table(rows, columns=COLUMNS), ""]
    lines.append("commit granularity (KOPI, ingress running):")
    lines.append(fmt_table(upgrade_rows, columns=UPGRADE_COLUMNS))
    lines.append("")
    lines.append(
        f"headline: kernel/sidecar commits are synchronous "
        f"({h['sync_install_us_mean']:.0f} us modeled installs, "
        f"{h['sync_planes_stale_evals']} stale evaluations ever); KOPI pays "
        f"{h['kopi_install_us_mean']:.0f} us per overlay commit and ran "
        f"{h['kopi_stale_at_fastest']} packets on stale policy at the "
        f"fastest churn — atomic either way, and goodput moved at most "
        f"{h['max_goodput_delta_pct']:.1f}%. Bitstream-granularity commits "
        "drop traffic for seconds; overlay-granularity ones never stop it."
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
