"""E8 — §5: "fails to sustain full (100Gbps) throughput when there are more
than 1024 concurrent connections".

Mechanism under test: per-connection ring buffers are DMA-written through
DDIO, which may only occupy 2 of the LLC's 11 ways (~6 MiB). While the
aggregate hot ring working set fits that slice, application reads hit the
LLC; past it, DDIO allocations evict each other and reads go to DRAM,
inflating per-packet CPU cost until the host can no longer keep up with
line rate.

Method: N listener connections spread over the application cores; the peer
delivers batched bursts (several packets per connection per round, as a
loaded NIC does); applications then drain their rings. The structural
set-associative LLC model records exact hit/miss behaviour; attainable
throughput is computed from the measured per-packet cost:

``goodput = min(line_rate, app_cores * payload_bits / cpu_ns_per_pkt)``.
"""

from __future__ import annotations

from typing import List, Optional

from .. import units
from ..config import DEFAULT_COSTS, CostModel
from ..core import NormanOS
from ..dataplanes import Testbed
from ..errors import WouldBlock
from ..net.headers import PROTO_UDP
from .common import Row, fmt_table

CONN_SWEEP = (128, 256, 512, 1_024, 2_048, 4_096)
PAYLOAD = 1_458  # 1500B wire: 24 lines/packet incl. descriptor
BURST_PER_CONN = 4  # packets per connection per round (~96 hot lines/conn)
DEFAULT_PACKETS_PER_POINT = 16_384


def run_point(
    n_conns: int,
    packets_total: int = DEFAULT_PACKETS_PER_POINT,
    costs: CostModel = DEFAULT_COSTS,
    shared_rings: bool = False,
    structural: bool = True,
    setup=None,
) -> Row:
    """Measure one sweep point. Returns miss rate, per-packet CPU, and the
    attainable goodput. ``setup(tb)`` may install policies before any
    endpoint opens (E15 measures the sweep under a filter chain)."""
    tb = Testbed(
        NormanOS, costs=costs, n_cores=8,
        structural_cache=structural, shared_rings=shared_rings,
    )
    if setup is not None:
        setup(tb)
        tb.run_all()  # async commits (overlay loads) land before traffic
    if tb.machine.llc is not None:
        # Loaded-server regime: application state owns the CPU ways, so
        # ring data is cache-resident only through the DDIO slice (see
        # WayPartitionedCache.cpu_fills_allocate). Without this, an
        # otherwise-idle 33 MiB LLC would warm-cache every ring and hide
        # the DDIO effect entirely.
        tb.machine.llc.cpu_fills_allocate = False
    app_cores = list(range(1, len(tb.machine.cpus)))
    procs = [tb.spawn(f"srv{c}", "bob", core_id=c) for c in app_cores]
    eps = []
    for i in range(n_conns):
        proc = procs[i % len(procs)]
        eps.append(tb.dataplane.open_endpoint(proc, PROTO_UDP, 10_000 + i))
    tb.run_all()

    busy0 = sum(tb.machine.cpus[c].busy_ns for c in app_cores)
    if tb.machine.llc is not None:
        tb.machine.llc.reset_stats()

    rounds = max(1, packets_total // (BURST_PER_CONN * n_conns))
    consumed = 0
    gap = units.transmit_time_ns(PAYLOAD + 50, tb.ingress.rate_bps) + 10
    for _round in range(rounds):
        base = tb.sim.now + 1_000
        i = 0
        for _burst in range(BURST_PER_CONN):
            for ep in eps:
                tb.sim.at(base + i * gap, tb.peer.send_udp, 600, ep.port, PAYLOAD)
                i += 1
        tb.run_all()
        # Drain phase: applications read their rings (non-blocking).
        results = []
        for ep in eps:
            for _ in range(BURST_PER_CONN):
                sig = ep.recv(blocking=False)
                sig.add_callback(lambda s: results.append(s.ok))
        tb.run_all()
        consumed += sum(1 for ok in results if ok)

    busy = sum(tb.machine.cpus[c].busy_ns for c in app_cores) - busy0
    cpu_per_pkt = busy / max(consumed, 1)
    per_core_pps = units.SEC / max(cpu_per_pkt, 1e-9)
    attainable = min(
        float(costs.nic_line_rate_bps),
        len(app_cores) * per_core_pps * units.bits(PAYLOAD),
    )
    miss_rate = tb.machine.llc.cpu_miss_rate() if tb.machine.llc is not None else None
    hot = tb.dataplane.control.active_hot_bytes()
    row: Row = {
        "connections": n_conns,
        "mode": "shared" if shared_rings else "per-conn",
        "hot_set_mib": hot / units.MB,
        "ddio_mib": costs.ddio_capacity_bytes / units.MB,
        "llc_miss_rate": miss_rate if miss_rate is not None else -1.0,
        "cpu_ns_per_pkt": cpu_per_pkt,
        "goodput_gbps": attainable / units.GBPS,
        "line_rate_pct": 100 * attainable / costs.nic_line_rate_bps,
        "packets": consumed,
    }
    fp = tb.machine.fastpath
    if fp is not None:
        # Opt-in columns only: the default row shape (and the seed
        # fingerprint over this table) must stay byte-identical.
        row["fastpath_hit_rate"] = fp.hit_rate
        row["fastpath_entries"] = len(fp)
        row["fastpath_evicted"] = fp.evicted
    return row


def run_e8(
    sweep: "tuple[int, ...]" = CONN_SWEEP,
    packets_per_point: int = DEFAULT_PACKETS_PER_POINT,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    return [run_point(n, packets_per_point, costs=costs) for n in sweep]


def headline(rows: List[Row]) -> dict:
    full = [r for r in rows if r["line_rate_pct"] > 95]
    degraded = [r for r in rows if r["line_rate_pct"] < 80]
    return {
        "last_full_rate_conns": max((r["connections"] for r in full), default=None),
        "first_degraded_conns": min((r["connections"] for r in degraded), default=None),
    }


def main() -> str:
    rows = run_e8()
    h = headline(rows)
    return "\n".join([
        fmt_table(rows),
        "",
        f"headline: line rate holds through {h['last_full_rate_conns']} connections "
        f"and has collapsed by {h['first_degraded_conns']} — the paper reports the "
        "cliff past 1024",
    ])


if __name__ == "__main__":
    print(main())
