"""Property-based tests: units, checksum, addresses, Toeplitz, metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.net import IPv4Address, MacAddress, internet_checksum, toeplitz_hash
from repro.sim import Histogram


class TestUnitsProperties:
    @given(nbytes=st.integers(1, 10**9), rate=st.integers(1_000, 10**12))
    def test_transmit_time_positive_and_monotone(self, nbytes, rate):
        t = units.transmit_time_ns(nbytes, rate)
        assert t >= 1
        assert units.transmit_time_ns(nbytes + 1, rate) >= t

    @given(nbytes=st.integers(1, 10**7), rate=st.integers(10**6, 10**11))
    def test_throughput_inverts_transmit_time(self, nbytes, rate):
        t = units.transmit_time_ns(nbytes, rate)
        measured = units.throughput_bps(nbytes, t)
        assert measured > 0
        # Whole-ns quantization: flooring t can at most double the measured
        # rate (t_true < 2), and the 1 ns floor caps it at bits/ns.
        assert measured <= max(2 * rate, units.bits(nbytes) * units.SEC)
        # Large transfers amortize the quantization away entirely.
        if t >= 100:
            assert measured <= rate * 1.02


class TestChecksumProperties:
    @given(data=st.binary(min_size=0, max_size=512))
    def test_checksum_in_range(self, data):
        c = internet_checksum(data)
        assert 0 <= c <= 0xFFFF

    @given(data=st.binary(min_size=2, max_size=512).filter(lambda d: len(d) % 2 == 0))
    def test_inserting_checksum_makes_it_verify(self, data):
        """The defining property: data || checksum verifies to zero."""
        c = internet_checksum(data)
        combined = data + c.to_bytes(2, "big")
        assert internet_checksum(combined) == 0

    @given(data=st.binary(min_size=0, max_size=128))
    def test_deterministic(self, data):
        assert internet_checksum(data) == internet_checksum(data)


class TestAddressProperties:
    @given(value=st.integers(0, (1 << 48) - 1))
    def test_mac_roundtrip(self, value):
        mac = MacAddress(value)
        assert MacAddress.parse(str(mac)) == mac
        assert int.from_bytes(mac.to_bytes(), "big") == value

    @given(value=st.integers(0, (1 << 32) - 1))
    def test_ipv4_roundtrip(self, value):
        ip = IPv4Address(value)
        assert IPv4Address.parse(str(ip)) == ip
        assert int.from_bytes(ip.to_bytes(), "big") == value

    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    def test_ipv4_ordering_matches_integers(self, a, b):
        assert (IPv4Address(a) < IPv4Address(b)) == (a < b)


class TestToeplitzProperties:
    @given(data=st.binary(min_size=0, max_size=32))
    def test_hash_is_32_bit_and_deterministic(self, data):
        h = toeplitz_hash(data)
        assert 0 <= h < 1 << 32
        assert toeplitz_hash(data) == h

    @given(data=st.binary(min_size=1, max_size=32))
    def test_hash_is_linear_under_xor(self, data):
        """Toeplitz is GF(2)-linear: H(a ^ b) == H(a) ^ H(b)."""
        zero = bytes(len(data))
        other = bytes((b ^ 0x55) for b in data)
        mask = bytes(0x55 for _ in data)
        assert toeplitz_hash(data) ^ toeplitz_hash(mask) == toeplitz_hash(other)
        assert toeplitz_hash(zero) == 0


class TestHistogramProperties:
    @given(samples=st.lists(st.floats(0, 1e9, allow_nan=False), min_size=1, max_size=200))
    def test_percentiles_monotone_and_bounded(self, samples):
        h = Histogram()
        h.extend(samples)
        p25, p50, p99 = h.percentile(25), h.percentile(50), h.percentile(99)
        assert h.minimum <= p25 <= p50 <= p99 <= h.maximum
        # Mean is a float sum; allow one ulp of rounding slack at the edges.
        slack = 1e-9 * max(abs(h.maximum), 1.0)
        assert h.minimum - slack <= h.mean <= h.maximum + slack

    @given(samples=st.lists(st.integers(0, 1000), min_size=1, max_size=100))
    def test_percentile_100_is_max(self, samples):
        h = Histogram()
        h.extend(samples)
        assert h.percentile(100) == max(samples)
