"""Shared experiment plumbing: the plane roster, workload drivers, tables."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from .. import units
from ..config import DEFAULT_COSTS, CostModel
from ..core import NormanOS
from ..host.copies import CPU_COPY_LAYERS, LAYER_DMA, LAYER_DMA_DIRECT, CopyLedger
from ..dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    SidecarDataplane,
    Testbed,
)
from ..dataplanes.base import Dataplane
from ..apps import BulkSender

Row = Dict[str, object]


def planes_under_test(include_kopi: bool = True) -> List[Type[Dataplane]]:
    """The roster every comparative experiment sweeps."""
    planes: List[Type[Dataplane]] = [
        KernelPathDataplane,
        BypassDataplane,
        SidecarDataplane,
        HypervisorDataplane,
    ]
    if include_kopi:
        planes.append(NormanOS)
    return planes


def fmt_table(rows: Sequence[Row], columns: Optional[List[str]] = None) -> str:
    """Render rows as an aligned ASCII table (floats to 3 significant-ish
    places)."""
    if not rows:
        return "(no rows)"
    cols = columns or list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {
        c: max(len(c), max(len(cell(r.get(c, ""))) for r in rows)) + 2 for c in cols
    }
    out = ["".join(c.ljust(widths[c]) for c in cols)]
    out.append("".join("-" * (widths[c] - 2) + "  " for c in cols))
    for row in rows:
        out.append("".join(cell(row.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(out)


def copy_summary(ledger: CopyLedger) -> Dict[str, int]:
    """Condense a :class:`~repro.host.copies.CopyLedger` into the totals
    E13 plots: CPU-copied bytes/time (the §1 tax), elided bytes and their
    fixed overhead, and the hardware DMA movement that replaced copies."""
    return {
        "cpu_bytes_copied": ledger.cpu_bytes_copied(),
        "cpu_ns_copying": ledger.cpu_ns_copying(),
        "cpu_copies": ledger.copies(CPU_COPY_LAYERS),
        "bytes_elided": ledger.bytes_elided(),
        "elision_overhead_ns": ledger.elision_overhead_ns(),
        "dma_bytes": ledger.bytes_copied((LAYER_DMA,)),
        "dma_direct_bytes": ledger.bytes_copied((LAYER_DMA_DIRECT,)),
    }


def run_bulk_tx(
    plane_cls: Type[Dataplane],
    payload_len: int,
    count: int,
    costs: CostModel = DEFAULT_COSTS,
    app_core: int = 1,
    setup=None,
    burst: int = 1,
    latency_hist=None,
    with_copies: bool = False,
    return_tb: bool = False,
) -> Row:
    """Closed-loop TX measurement on one dataplane.

    Returns goodput, app-core and whole-host CPU per packet, mean one-way
    latency at the peer, and the dataplane's data-movement counters.
    ``setup(tb)`` may install policies before traffic starts. ``burst``
    makes the sender hand the dataplane batches of that size. Per-packet
    one-way latencies are additionally recorded into ``latency_hist`` (a
    :class:`~repro.sim.Histogram`) when one is passed.
    """
    tb = Testbed(plane_cls, costs=costs)
    if setup is not None:
        setup(tb)
        tb.run_all()  # let policy loads (overlays etc.) commit
    app = BulkSender(
        tb, comm="bulk", user="bob", core_id=app_core,
        payload_len=payload_len, count=count, burst=burst,
    )
    start_busy = tb.machine.cpus.total_busy_ns()
    app_busy0 = tb.machine.cpus[app_core].busy_ns
    # Align the trace window with the measurement window: setup-phase
    # charges (policy installs, overlay loads) are not part of the
    # steady-state anatomy. No-op with tracing off.
    tb.machine.tracer.reset()
    app.start()
    tb.run_all()

    delivered = [p for p in tb.peer.received if p.five_tuple and p.five_tuple.dport == 9000]
    latencies = [
        p.meta.delivered_ns - p.meta.created_ns
        for p in delivered
        if p.meta.created_ns and p.meta.delivered_ns
    ]
    if latency_hist is not None:
        latency_hist.extend(latencies)
    host_cpu = tb.machine.cpus.total_busy_ns() - start_busy
    app_cpu = tb.machine.cpus[app_core].busy_ns - app_busy0
    sent = max(app.sent, 1)
    row: Row = {
        "plane": plane_cls.name,
        "payload_B": payload_len,
        "delivered": len(delivered),
        "goodput_gbps": app.goodput_bps() / units.GBPS,
        "app_cpu_ns_per_pkt": app_cpu / sent,
        "host_cpu_ns_per_pkt": host_cpu / sent,
        "latency_us_mean": (sum(latencies) / len(latencies) / units.US) if latencies else 0.0,
        "movements": tb.dataplane.data_movements(),
    }
    if with_copies:
        # Opt-in so the default row shape (and every seed experiment's
        # table) stays byte-identical.
        row["copies"] = copy_summary(tb.machine.copies)
    if return_tb:
        # Opt-in handle on the testbed itself, for experiments that need
        # post-run state (E16 reads the tracer's stage attribution).
        row["tb"] = tb
    return row


def run_burst_tx(
    plane_cls: Type[Dataplane],
    payload_len: int,
    count: int,
    batch_size: int,
    costs: CostModel = DEFAULT_COSTS,
    app_core: int = 1,
    latency_hist=None,
) -> Row:
    """:func:`run_bulk_tx` with the whole stack in burst mode: the cost
    model's ``batch_size`` governs NIC/kernel amortization and the sender
    submits matching bursts. ``batch_size=1`` is exactly the per-packet
    path."""
    from dataclasses import replace

    batched = replace(costs, batch_size=batch_size)
    row = run_bulk_tx(
        plane_cls, payload_len, count, costs=batched, app_core=app_core,
        burst=batch_size, latency_hist=latency_hist,
    )
    row["batch"] = batch_size
    return row
