"""Rack-scale fast-forward: end-to-end fluid epochs across the switch hop.

The cross-machine safety contract mirrors the single-host one: a flow
bound end-to-end (sender TX profile + switch hop + receiver RX profile in
one epoch) must demote *as a whole* at either machine's demotion boundary
and at every switch-state change, with the pending bulk flushed through
the still-promoted chain before the boundary's effect is simulated. Each
boundary gets its own test against two real Norman stacks; a hypothesis
property pins cross-machine charging (group, per-flow, exact) to the same
counted observables; and a seed-identity guard proves the knob is inert
until both enabled and exercised.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COSTS
from repro.core.norman import NormanOS
from repro.dataplanes.multihost import (
    HOST_A_IP,
    HOST_A_MAC,
    HOST_B_IP,
    HOST_B_MAC,
    TwoHostTestbed,
)
from repro.kernel.netfilter import CHAIN_INPUT, DROP, NetfilterRule
from repro.net import MacAddress, MatchAction, NetworkInterposer, make_udp
from repro.net.flow import FiveTuple
from repro.net.headers import PROTO_UDP
from repro.sim.fastforward import (
    REASON_CONNTRACK,
    REASON_POLICY,
    REASON_SWITCH,
)

A_PORT = 20_000
B_PORT = 10_000
PAYLOAD = 600


def _costs(**over):
    base = dict(
        flow_fastpath=True, fast_forward=True, ff_tx=True,
        ff_cross_machine=True, ff_promote_after=1,
    )
    base.update(over)
    return DEFAULT_COSTS.replace(**base)


def _rack_pair(costs=None, n_conns=1):
    tb = TwoHostTestbed(NormanOS, NormanOS, costs=costs or _costs(),
                        n_cores=2)
    pa = tb.host_a.spawn("cli", "bob", core_id=1)
    pb = tb.host_b.spawn("srv", "carol", core_id=1)
    eps_a = [tb.host_a.dataplane.open_endpoint(pa, PROTO_UDP, A_PORT + i)
             for i in range(n_conns)]
    eps_b = [tb.host_b.dataplane.open_endpoint(pb, PROTO_UDP, B_PORT + i)
             for i in range(n_conns)]
    tb.run_all()
    # B speaks once so the switch learns its port (the ARP-reply
    # analogue); A→B-only traffic would flood every frame and the
    # promotion gate would veto forever.
    eps_b[0].send(64, (HOST_A_IP, A_PORT))
    tb.run_all()
    return tb, eps_a, eps_b


def _send(tb, eps_a, rounds=1):
    """Spaced single sends on every A endpoint; each TX chain completes
    before the next send (the steady state the profile captures)."""
    for _ in range(rounds):
        for i, ep in enumerate(eps_a):
            tb.sim.at(tb.sim.now + 1_000, ep.send, PAYLOAD,
                      (HOST_B_IP, B_PORT + i))
            tb.run_all()


def _drain(tb, eps_b):
    got = [0]

    def _count(sig):
        if sig.ok:
            got[0] += len(sig.value)

    while True:
        before = got[0]
        for ep in eps_b:
            ep.recv_burst(64, blocking=False).add_callback(_count)
        tb.run_all()
        if got[0] == before:
            return got[0]


def _flow(i=0):
    return FiveTuple(PROTO_UDP, HOST_A_IP, A_PORT + i, HOST_B_IP, B_PORT + i)


def _bind(tb, eps_a, n_conns=1):
    # send 1: TX cache install; send 2: first TX hit, gate vetoed (the
    # receiver promotes one wire latency later); send 3: bound.
    _send(tb, eps_a, rounds=3)
    assert tb.rack.bound == n_conns, tb.rack.stats()


def _uplink_sent(tb):
    return tb.host_a.uplink.metrics.counter("sent").value


class TestEndToEndBinding:
    def test_binds_and_absorbs_at_send(self):
        tb, eps_a, eps_b = _rack_pair()
        _bind(tb, eps_a)
        a_ff, b_ff = tb.host_a.machine.ff, tb.host_b.machine.ff
        assert a_ff.promoted(_flow()) and b_ff.promoted(_flow())
        wire = _uplink_sent(tb)
        fluid0 = a_ff.fluid_packets
        _send(tb, eps_a, rounds=3)
        # Absorbed at the send() call — the wire counter still moves,
        # because the horizon flush replays each epoch exactly (that is
        # the conservation contract); fluid_packets counts only the
        # absorbed ones and is the discriminator.
        assert a_ff.fluid_packets == fluid0 + 3
        tb.rack.flush_all()
        tb.run_all()
        # Epoch replay moved both machines and the hop exactly.
        assert _uplink_sent(tb) == wire + 3
        assert _drain(tb, eps_b) == 6

    def test_gate_refuses_unsteady_switch_path(self):
        # No B→A teach: every A→B frame floods, the path is never frozen.
        tb = TwoHostTestbed(NormanOS, NormanOS, costs=_costs(), n_cores=2)
        pa = tb.host_a.spawn("cli", "bob", core_id=1)
        pb = tb.host_b.spawn("srv", "carol", core_id=1)
        ep_a = tb.host_a.dataplane.open_endpoint(pa, PROTO_UDP, A_PORT)
        tb.host_b.dataplane.open_endpoint(pb, PROTO_UDP, B_PORT)
        tb.run_all()
        _send(tb, [ep_a], rounds=5)
        assert tb.rack.bound == 0
        assert tb.rack.stats()["gate_vetoes"] >= 1


def _assert_demoted_end_to_end(tb, eps_a, eps_b, boundary, sends=4):
    """Bind, absorb one send, trigger ``boundary``, then prove the whole
    end-to-end flow is exact again: the next send crosses the real wire."""
    _bind(tb, eps_a)
    _send(tb, eps_a)  # absorbed
    a_ff, b_ff = tb.host_a.machine.ff, tb.host_b.machine.ff
    boundary()
    tb.run_all()
    assert tb.rack.bound == 0
    assert not a_ff.promoted(_flow())
    assert not b_ff.promoted(_flow())
    wire = _uplink_sent(tb)
    fluid = a_ff.fluid_packets
    _send(tb, eps_a)
    assert a_ff.fluid_packets == fluid      # nothing absorbed any more
    assert _uplink_sent(tb) == wire + 1     # packet-exact across the hop
    # Flush-through conservation: every send before the boundary, plus
    # the exact probe after it, reached B's application exactly once.
    assert _drain(tb, eps_b) == sends + 1


class TestCrossMachineBoundaries:
    def test_sender_policy_commit_demotes_both_ends(self):
        tb, eps_a, eps_b = _rack_pair()

        def commit():
            tb.host_a.dataplane.install_filter_rule(NetfilterRule(
                verdict=DROP, chain=CHAIN_INPUT, proto=PROTO_UDP,
                dport=A_PORT + 7,
            ))

        _assert_demoted_end_to_end(tb, eps_a, eps_b, commit)
        assert tb.host_a.machine.ff.demotions[REASON_POLICY] >= 1

    def test_receiver_policy_commit_demotes_both_ends(self):
        tb, eps_a, eps_b = _rack_pair()

        def commit():
            tb.host_b.dataplane.install_filter_rule(NetfilterRule(
                verdict=DROP, chain=CHAIN_INPUT, proto=PROTO_UDP,
                dport=B_PORT + 7,
            ))

        _assert_demoted_end_to_end(tb, eps_a, eps_b, commit)
        assert tb.host_b.machine.ff.demotions[REASON_POLICY] >= 1

    def test_receiver_conntrack_expiry_demotes_both_ends(self):
        tb, eps_a, eps_b = _rack_pair()

        def expire():
            assert tb.host_b.machine.fastpath.evict_flow(_flow()) >= 1

        _assert_demoted_end_to_end(tb, eps_a, eps_b, expire)
        assert tb.host_b.machine.ff.demotions[REASON_CONNTRACK] >= 1

    def test_sender_fastpath_evict_demotes_both_ends(self):
        tb, eps_a, eps_b = _rack_pair()

        def evict():
            assert tb.host_a.machine.fastpath.evict_flow(_flow()) >= 1

        _assert_demoted_end_to_end(tb, eps_a, eps_b, evict)
        assert tb.host_a.machine.ff.demotions[REASON_CONNTRACK] >= 1

    def test_switch_rule_install_demotes_both_ends(self):
        tb, eps_a, eps_b = _rack_pair()
        p4 = NetworkInterposer(tb.sim)

        def install():
            tb.switch.attach_interposer(p4)
            p4.add_rule(MatchAction(action="allow"))

        _assert_demoted_end_to_end(tb, eps_a, eps_b, install)
        assert tb.host_a.machine.ff.demotions[REASON_SWITCH] >= 1
        assert tb.host_b.machine.ff.demotions[REASON_SWITCH] >= 1
        # With any rule installed the path is no longer frozen: the flow
        # may not re-bind no matter how steady the traffic.
        _send(tb, eps_a, rounds=4)
        assert tb.rack.bound == 0

    def test_switch_flood_demotes_both_ends(self):
        tb, eps_a, eps_b = _rack_pair()

        def flood():
            # A frame to a never-learned MAC floods — a switch-state event
            # the frozen path cannot absorb.
            stray = make_udp(HOST_A_MAC, MacAddress.from_index(9),
                             HOST_A_IP, HOST_B_IP, 1, 2, 64)
            tb.host_a.uplink.send(stray)

        _assert_demoted_end_to_end(tb, eps_a, eps_b, flood)
        assert tb.host_a.machine.ff.demotions[REASON_SWITCH] >= 1

    def test_mac_move_demotes_both_ends(self):
        tb, eps_a, eps_b = _rack_pair()
        _bind(tb, eps_a)
        _send(tb, eps_a)  # absorbed
        # B's MAC shows up on A's port: a table *move*, the classic
        # mobility/misconfiguration event. Everything bound demotes and
        # the pending bulk flushes against the pre-move table.
        imposter = make_udp(HOST_B_MAC, MacAddress.from_index(9),
                            HOST_B_IP, HOST_A_IP, 3, 4, 64)
        tb.host_a.uplink.send(imposter)
        tb.run_all()
        assert tb.rack.bound == 0
        assert not tb.host_a.machine.ff.promoted(_flow())
        assert not tb.host_b.machine.ff.promoted(_flow())
        assert tb.host_a.machine.ff.demotions[REASON_SWITCH] >= 1
        # The flush happened before the move took effect: all four sends
        # made it to B.
        assert _drain(tb, eps_b) == 4


class TestChargingEquivalence:
    """Cross-machine group charging ≡ per-flow charging ≡ exact, on every
    counted observable — the rack analogue of the single-host property."""

    def _observe(self, costs, n_conns, rounds):
        tb, eps_a, eps_b = _rack_pair(costs=costs, n_conns=n_conns)
        _send(tb, eps_a, rounds=rounds)
        if tb.rack is not None:
            tb.rack.flush_all()
            tb.run_all()
        delivered = _drain(tb, eps_b)
        nic_a = tb.host_a.dataplane.nic
        nic_b = tb.host_b.dataplane.nic
        return {
            "delivered": delivered,
            "a_tx": int(nic_a.metrics.counter("tx_pkts").value),
            "b_rx": int(nic_b.metrics.counter("rx_pkts").value),
            "frames": int(tb.switch.metrics.counter("frames").value),
            "flooded": int(tb.switch.metrics.counter("flooded").value),
            "up_sent": int(_uplink_sent(tb)),
            "up_bytes": int(tb.host_a.uplink.metrics.meter("bytes").total_bytes),
            "down_sent": int(tb.host_b.downlink.metrics.counter("sent").value),
            "a_mmio": int(tb.host_a.machine.dma.metrics.counter("mmio_writes").value),
        }

    @given(
        n_conns=st.integers(min_value=1, max_value=3),
        rounds=st.integers(min_value=4, max_value=7),
    )
    @settings(max_examples=6, deadline=None)
    def test_group_equals_per_flow_equals_exact(self, n_conns, rounds):
        exact = self._observe(
            DEFAULT_COSTS.replace(flow_fastpath=True), n_conns, rounds)
        per_flow = self._observe(_costs(ff_group=False), n_conns, rounds)
        group = self._observe(_costs(ff_group=True), n_conns, rounds)
        assert exact == per_flow == group


class TestSeedIdentity:
    """The knob must be inert: default costs build no rack coordinator,
    and with the knob on but no flow ever promoted the multihost event
    trace is identical to the knob-off tree."""

    def test_default_costs_build_no_rack(self):
        tb = TwoHostTestbed(NormanOS, NormanOS)
        assert tb.rack is None
        assert tb.host_a.machine.ff is None
        assert not tb.host_a.uplink.has_fluid_rx
        assert not tb.host_b.downlink.has_fluid_rx

    @staticmethod
    def _fingerprint(costs):
        tb, eps_a, eps_b = _rack_pair(costs=costs)
        _send(tb, eps_a, rounds=4)
        delivered = _drain(tb, eps_b)
        return {
            "end_time": tb.sim.now,
            "events": tb.sim.events_fired,
            "delivered": delivered,
            "a_tx": tb.host_a.dataplane.nic.metrics.counter("tx_pkts").value,
            "b_rx": tb.host_b.dataplane.nic.metrics.counter("rx_pkts").value,
            "frames": tb.switch.metrics.counter("frames").value,
            "up_sent": _uplink_sent(tb),
            "busy_a": tuple(c.busy_ns for c in tb.host_a.machine.cpus.cores),
            "busy_b": tuple(c.busy_ns for c in tb.host_b.machine.cpus.cores),
        }

    def test_knob_on_without_promotion_is_trace_identical(self):
        # promote_after above the traffic volume: fast-forward machinery
        # live on both trees, but nothing ever promotes — the rack hooks,
        # switch hooks, and fluid link attachments must all be free.
        off = self._fingerprint(_costs(ff_cross_machine=False,
                                       ff_promote_after=50))
        on = self._fingerprint(_costs(ff_promote_after=50))
        assert on == off
        assert on["delivered"] == 4

    def test_knob_requires_fast_forward(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(flow_fastpath=True, ff_cross_machine=True)
