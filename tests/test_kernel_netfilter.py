"""netfilter rule chains, including owner matches (the §2 port-partition
policy)."""

import pytest

from repro.errors import PolicyError
from repro.kernel import (
    ACCEPT,
    CHAIN_INPUT,
    CHAIN_OUTPUT,
    DROP,
    NetfilterRule,
    RuleTable,
)
from repro.net import IPv4Address, MacAddress, PROTO_TCP, make_tcp, make_udp

MAC_A, MAC_B = MacAddress.from_index(1), MacAddress.from_index(2)
IP_A, IP_B = IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")

BOB = (10, 1000, "postgres")  # (pid, uid, comm)
CHARLIE = (11, 1001, "mysql")


def tcp(dport=5432, sport=40000):
    return make_tcp(MAC_A, MAC_B, IP_A, IP_B, sport=sport, dport=dport)


class TestRuleMatching:
    def test_header_match(self):
        rule = NetfilterRule(verdict=DROP, proto=PROTO_TCP, dport=5432)
        assert rule.matches(tcp(dport=5432), owner=None)
        assert not rule.matches(tcp(dport=3306), owner=None)

    def test_owner_match_requires_owner(self):
        rule = NetfilterRule(verdict=ACCEPT, dport=5432, uid_owner=1000)
        assert rule.needs_owner
        assert rule.matches(tcp(), owner=BOB)
        assert not rule.matches(tcp(), owner=CHARLIE)
        assert not rule.matches(tcp(), owner=None)  # unattributed never matches

    def test_cmd_and_pid_owner(self):
        rule = NetfilterRule(verdict=ACCEPT, cmd_owner="postgres", pid_owner=10)
        assert rule.matches(tcp(), owner=BOB)
        assert not rule.matches(tcp(), owner=(99, 1000, "postgres"))

    def test_ip_matches(self):
        rule = NetfilterRule(verdict=DROP, src_ip=IP_A, dst_ip=IP_B)
        assert rule.matches(tcp(), owner=None)
        other = make_udp(MAC_A, MAC_B, IP_B, IP_A, 1, 2)
        assert not rule.matches(other, owner=None)

    def test_arp_never_matches_l4_rules(self):
        from repro.net import make_arp_request

        rule = NetfilterRule(verdict=DROP)
        assert not rule.matches(make_arp_request(MAC_A, IP_A, IP_B), owner=None)

    def test_validation(self):
        with pytest.raises(PolicyError):
            NetfilterRule(verdict="REJECTED")
        with pytest.raises(PolicyError):
            NetfilterRule(verdict=DROP, chain="FORWARD")

    def test_describe_is_iptables_like(self):
        rule = NetfilterRule(
            verdict=ACCEPT, chain=CHAIN_OUTPUT, proto=PROTO_TCP, dport=5432,
            uid_owner=1000, cmd_owner="postgres",
        )
        text = rule.describe()
        assert "--dport 5432" in text
        assert "--uid-owner 1000" in text
        assert "--cmd-owner postgres" in text
        assert "-j ACCEPT" in text


class TestRuleTable:
    def test_first_match_wins_and_counts(self):
        table = RuleTable()
        allow = NetfilterRule(verdict=ACCEPT, dport=5432, uid_owner=1000)
        deny = NetfilterRule(verdict=DROP, dport=5432)
        table.append(allow)
        table.append(deny)
        verdict, examined = table.evaluate(CHAIN_OUTPUT, tcp(), BOB)
        assert (verdict, examined) == (ACCEPT, 1)
        verdict, examined = table.evaluate(CHAIN_OUTPUT, tcp(), CHARLIE)
        assert (verdict, examined) == (DROP, 2)
        assert allow.packets == 1
        assert deny.packets == 1

    def test_default_accept(self):
        table = RuleTable()
        verdict, examined = table.evaluate(CHAIN_INPUT, tcp(), None)
        assert (verdict, examined) == (ACCEPT, 0)

    def test_port_partition_policy(self):
        """§2: only Bob's postgres on 5432, only Charlie's mysql on 3306."""
        table = RuleTable()
        table.append(NetfilterRule(verdict=ACCEPT, dport=5432, uid_owner=1000, cmd_owner="postgres"))
        table.append(NetfilterRule(verdict=DROP, dport=5432))
        table.append(NetfilterRule(verdict=ACCEPT, dport=3306, uid_owner=1001, cmd_owner="mysql"))
        table.append(NetfilterRule(verdict=DROP, dport=3306))

        assert table.evaluate(CHAIN_OUTPUT, tcp(dport=5432), BOB)[0] == ACCEPT
        assert table.evaluate(CHAIN_OUTPUT, tcp(dport=5432), CHARLIE)[0] == DROP
        assert table.evaluate(CHAIN_OUTPUT, tcp(dport=3306), CHARLIE)[0] == ACCEPT
        assert table.evaluate(CHAIN_OUTPUT, tcp(dport=3306), BOB)[0] == DROP
        # Unrelated traffic unaffected.
        assert table.evaluate(CHAIN_OUTPUT, tcp(dport=8080), CHARLIE)[0] == ACCEPT

    def test_insert_at_head(self):
        table = RuleTable()
        table.append(NetfilterRule(verdict=DROP, dport=80))
        table.insert(NetfilterRule(verdict=ACCEPT, dport=80))
        assert table.evaluate(CHAIN_OUTPUT, tcp(dport=80), None)[0] == ACCEPT

    def test_delete_and_flush(self):
        table = RuleTable()
        rule = NetfilterRule(verdict=DROP, dport=80)
        table.append(rule)
        table.delete(rule)
        assert table.total_rules() == 0
        with pytest.raises(PolicyError):
            table.delete(rule)
        table.append(NetfilterRule(verdict=DROP, chain=CHAIN_INPUT, dport=1))
        table.append(NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=2))
        table.flush(CHAIN_INPUT)
        assert table.total_rules() == 1
        table.flush()
        assert table.total_rules() == 0

    def test_update_count_tracks_churn(self):
        table = RuleTable()
        for i in range(5):
            table.append(NetfilterRule(verdict=DROP, dport=i + 1))
        table.flush()
        assert table.update_count == 6

    def test_unknown_chain_rejected(self):
        table = RuleTable()
        with pytest.raises(PolicyError):
            table.evaluate("NAT", tcp(), None)
        with pytest.raises(PolicyError):
            table.rules("NAT")
        with pytest.raises(PolicyError):
            table.flush("NAT")
