"""Overlay instruction set.

Design constraints from the paper:

* *domain-specific*: operands are header fields, verdicts, queues,
  scheduling classes, counters, and meters — not general memory;
* *non-Turing-complete*: all control flow is **forward-only**, so every
  program terminates in at most ``len(program)`` steps, a property the
  verifier enforces statically and the per-packet latency model relies on.

Registers are ``r0``..``r7`` holding unsigned 32-bit values (wrapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import OverlayError

N_REGISTERS = 8
WORD_MASK = 0xFFFF_FFFF

VERDICT_ACCEPT = "accept"
VERDICT_DROP = "drop"

# Loadable packet/metadata fields. `meta.*` values come from the NIC's own
# per-packet state (connection id after steering lookup, frame length);
# there is deliberately no `meta.pid` — the NIC learns owner identity only
# through per-connection rules compiled by the kernel at setup time.
FIELDS = (
    "eth.type",
    "arp.op",
    "ip.src",
    "ip.dst",
    "ip.proto",
    "ip.dscp",
    "ip.ttl",
    "l4.sport",
    "l4.dport",
    "tcp.flags",
    "meta.len",
    "meta.conn_id",
    "meta.queue",
)

OP_LDF = "ldf"      # ldf rd, field
OP_LDI = "ldi"      # ldi rd, imm
OP_MOV = "mov"      # mov rd, rs
OP_ADD = "add"      # add rd, rs|imm
OP_SUB = "sub"
OP_AND = "and"
OP_OR = "or"
OP_XOR = "xor"
OP_SHL = "shl"
OP_SHR = "shr"
OP_JMP = "jmp"      # jmp target          (forward only)
OP_JEQ = "jeq"      # jeq ra, rb|imm, target
OP_JNE = "jne"
OP_JLT = "jlt"
OP_JGT = "jgt"
OP_JLE = "jle"
OP_JGE = "jge"
OP_ACCEPT = "accept"
OP_DROP = "drop"
OP_HALT = "halt"    # accept with current state
OP_SETQ = "setq"    # setq rs|imm        (egress queue)
OP_SETCLS = "setcls"  # setcls rs|imm    (scheduling class id)
OP_MIRROR = "mirror"  # mirror tap_id    (copy packet to capture tap)
OP_CNT = "cnt"      # cnt idx            (increment counter)
OP_METER = "meter"  # meter idx, rd      (rd=1 if conformant)

ALU_OPS = (OP_ADD, OP_SUB, OP_AND, OP_OR, OP_XOR, OP_SHL, OP_SHR)
BRANCH_OPS = (OP_JEQ, OP_JNE, OP_JLT, OP_JGT, OP_JLE, OP_JGE)
TERMINAL_OPS = (OP_ACCEPT, OP_DROP, OP_HALT)

ALL_OPS = (
    (OP_LDF, OP_LDI, OP_MOV, OP_JMP, OP_SETQ, OP_SETCLS, OP_MIRROR, OP_CNT, OP_METER)
    + ALU_OPS
    + BRANCH_OPS
    + TERMINAL_OPS
)


@dataclass(frozen=True)
class Instr:
    """One decoded instruction. Operand meaning depends on ``op``:

    * ``rd``/``ra`` — destination / first source register index;
    * ``src`` — second operand: ``("reg", idx)`` or ``("imm", value)``;
    * ``field`` — field name for ``ldf``;
    * ``target`` — absolute instruction index for branches;
    * ``index`` — counter/meter/tap index.
    """

    op: str
    rd: Optional[int] = None
    ra: Optional[int] = None
    src: Optional[Tuple[str, int]] = None
    field: Optional[str] = None
    target: Optional[int] = None
    index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise OverlayError(f"unknown opcode: {self.op!r}")

    def text(self) -> str:
        """Disassembly."""
        parts = [self.op]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.ra is not None:
            parts.append(f"r{self.ra}")
        if self.field is not None:
            parts.append(self.field)
        if self.src is not None:
            kind, value = self.src
            parts.append(f"r{value}" if kind == "reg" else str(value))
        if self.index is not None:
            parts.append(str(self.index))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)


@dataclass(frozen=True)
class Program:
    """A verified-or-not sequence of instructions plus resource declarations."""

    instrs: Tuple[Instr, ...]
    n_counters: int = 0
    n_meters: int = 0
    name: str = ""

    def __len__(self) -> int:
        return len(self.instrs)

    def disassemble(self) -> str:
        return "\n".join(f"{i:4d}: {ins.text()}" for i, ins in enumerate(self.instrs))
