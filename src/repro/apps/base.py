"""Application base class."""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import EndpointClosed, ReproError
from ..net.headers import PROTO_UDP
from ..sim import MetricSet, SimProcess
from ..sim.process import ProcessInterrupted


class App:
    """One application: a process, an endpoint, and a behaviour generator.

    Subclasses implement :meth:`run` as a generator (the simulated thread).
    ``start()`` spawns it; ``stop()`` closes the endpoint and interrupts the
    thread — both :class:`EndpointClosed` and the interrupt terminate the
    generator cleanly, so testbeds can always drain to idle.
    """

    def __init__(
        self,
        testbed,
        comm: str,
        user: str = "root",
        core_id: int = 0,
        proto: int = PROTO_UDP,
        port: Optional[int] = None,
    ):
        self.tb = testbed
        self.proc = testbed.spawn(comm, user, core_id=core_id)
        self.ep = testbed.dataplane.open_endpoint(self.proc, proto, port)
        self.stats = MetricSet(f"{comm}.pid{self.proc.pid}")
        self.task: Optional[SimProcess] = None

    @property
    def comm(self) -> str:
        return self.proc.comm

    @property
    def sim(self):
        return self.tb.sim

    def start(self) -> "App":
        if self.task is not None:
            raise ReproError(f"{self.comm} already started")
        self.task = SimProcess(self.sim, self._guarded(), name=self.comm)
        self.task.done.add_callback(self._on_done)
        return self

    def _guarded(self) -> Generator:
        try:
            yield from self.run()
        except (EndpointClosed, ProcessInterrupted):
            return

    def _on_done(self, signal) -> None:
        if signal.failed:
            raise signal.exception  # surface app crashes loudly

    def run(self) -> Generator:
        raise NotImplementedError

    def stop(self) -> None:
        self.ep.close()
        if self.task is not None and not self.task.finished:
            self.task.interrupt()
