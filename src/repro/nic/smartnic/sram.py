"""On-NIC SRAM allocator.

"SmartNICs inherently have limited memory relative to the amount of
available on-host memory" (§5). Every piece of NIC-resident state —
per-connection entries, filter rules, queue buffers — allocates here, and
exhaustion raises, forcing callers to take the software fallback path that
E9 measures.

Allocations may carry a :class:`~repro.host.tenants.Tenant`: per-tenant
``used`` is tracked incrementally and, when the tenant has an
``sram_quota_bytes`` cap, an allocation that would cross it raises the
same :class:`NicResourceExhausted` the global limit does — the hog falls
back to software while its neighbours' SRAM survives. Shrinking a quota
below a tenant's current use is legal: live blocks stay, new allocations
fail until frees bring the tenant back under (see docs/multi_tenancy.md).
Untenanted allocations (the seed default) are accounted exactly as
before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ... import units
from ...errors import NicResourceExhausted
from ...sim import MetricSet


@dataclass(frozen=True)
class SramBlock:
    block_id: int
    size: int
    purpose: str
    tenant_tid: Optional[int] = None


class SramAllocator:
    """Purpose-tagged allocation with exact accounting."""

    def __init__(self, capacity_bytes: int, name: str = "sram"):
        if capacity_bytes <= 0:
            raise NicResourceExhausted(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._blocks: Dict[int, SramBlock] = {}
        self._next_id = 1
        self._used = 0  # running total; alloc/free keep it exact
        self._tenant_used: Dict[int, int] = {}  # same invariant, per tenant
        self.metrics = MetricSet(name)

    def alloc(self, size: int, purpose: str, tenant=None) -> SramBlock:
        if size <= 0:
            raise NicResourceExhausted(f"allocation must be positive: {size}")
        if self.used_bytes + size > self.capacity_bytes:
            self.metrics.counter("exhaustions").inc()
            raise NicResourceExhausted(
                f"NIC SRAM exhausted: {units.fmt_size(self.used_bytes)} used of "
                f"{units.fmt_size(self.capacity_bytes)}, requested "
                f"{units.fmt_size(size)} for {purpose!r}"
            )
        if tenant is not None and tenant.sram_quota_bytes is not None:
            held = self._tenant_used.get(tenant.tid, 0)
            if held + size > tenant.sram_quota_bytes:
                self.metrics.counter("exhaustions").inc()
                self.metrics.counter(f"tenant.{tenant.tid}.exhaustions").inc()
                raise NicResourceExhausted(
                    f"tenant {tenant.name!r} SRAM quota exhausted: "
                    f"{units.fmt_size(held)} used of "
                    f"{units.fmt_size(tenant.sram_quota_bytes)}, requested "
                    f"{units.fmt_size(size)} for {purpose!r}"
                )
        tid = tenant.tid if tenant is not None else None
        block = SramBlock(block_id=self._next_id, size=size, purpose=purpose,
                          tenant_tid=tid)
        self._next_id += 1
        self._blocks[block.block_id] = block
        self._used += size
        if tid is not None:
            self._tenant_used[tid] = self._tenant_used.get(tid, 0) + size
        return block

    def free(self, block: SramBlock) -> None:
        if block.block_id not in self._blocks:
            raise NicResourceExhausted(f"double free of SRAM block {block.block_id}")
        del self._blocks[block.block_id]
        self._used -= block.size
        if block.tenant_tid is not None:
            self._tenant_used[block.tenant_tid] -= block.size

    @property
    def used_bytes(self) -> int:
        # Allocation is consulted per connection open; a scan over every
        # live block would make opening N connections O(N^2) (E21 runs
        # 100k+), so the total is maintained incrementally.
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def used_by_purpose(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for b in self._blocks.values():
            out[b.purpose] = out.get(b.purpose, 0) + b.size
        return out

    def used_by_tenant(self) -> Dict[int, int]:
        """Live bytes per tenant tid (a tenant that freed everything keeps
        a 0 entry — the running counter is exact, not pruned)."""
        return dict(self._tenant_used)

    def tenant_used(self, tid: int) -> int:
        return self._tenant_used.get(tid, 0)

    def tenant_headroom(self, tenant, size: int = 0) -> bool:
        """Would an allocation of ``size`` fit under this tenant's quota?
        Quota-less tenants only face the global limit."""
        if tenant is None or tenant.sram_quota_bytes is None:
            return self.used_bytes + size <= self.capacity_bytes
        return (self._tenant_used.get(tenant.tid, 0) + size
                <= tenant.sram_quota_bytes)

    def blocks(self, purpose: str) -> List[SramBlock]:
        return [b for b in self._blocks.values() if b.purpose == purpose]

    def utilization(self) -> float:
        return self.used_bytes / self.capacity_bytes
