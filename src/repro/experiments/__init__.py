"""Experiment harnesses.

One module per experiment in DESIGN.md's index (E1–E11 plus F1). Each
exposes a ``run_*`` function returning a list of row dicts and relies on
:mod:`repro.experiments.common` for table rendering. The benchmark modules
under ``benchmarks/`` are thin wrappers that execute these harnesses and
print the rows the paper's argument predicts.
"""

from .common import fmt_table, planes_under_test

__all__ = ["fmt_table", "planes_under_test"]
