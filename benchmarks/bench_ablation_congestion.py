"""Ablation — §4.2 on-NIC congestion control.

A connection floods a 100 Mbps uplink through a 100 Gbps NIC. Without
congestion management the egress scheduler overflows and drops; with the
NIC-local AIMD manager the connection is paced at its ring (zero loss) and
recovers to line rate when the flood ends.
"""

from repro import units
from repro.core import NormanOS
from repro.dataplanes import Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.experiments.common import fmt_table
from repro.net import PROTO_UDP
from repro.sim import SimProcess

N_PKTS = 6_000
LINK = 100 * units.MBPS


def run_flood(with_cc: bool):
    tb = Testbed(NormanOS, link_rate_bps=LINK)
    if with_cc:
        tb.dataplane.control.enable_congestion_control(backlog_threshold=32)
    proc = tb.spawn("blaster", "bob", core_id=1)
    ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)

    def blast():
        for _ in range(N_PKTS):
            yield ep.send(1_400, dst=(PEER_IP, 9000))

    SimProcess(tb.sim, blast())
    tb.run(until=2 * units.SEC)
    tb.run_all()
    nic = tb.dataplane.nic
    delivered = len(tb.peer.received)
    return {
        "congestion_control": "on" if with_cc else "off",
        "offered": N_PKTS,
        "delivered": delivered,
        "sched_drops": nic.metrics.counter("tx_sched_drops").value,
        "loss_pct": 100 * (N_PKTS - delivered) / N_PKTS,
        "recovered_unpaced": ep.conn.rate_bps is None,
    }


def test_ablation_congestion_control(once):
    rows = once(lambda: [run_flood(False), run_flood(True)])
    print("\n" + fmt_table(rows))
    off = next(r for r in rows if r["congestion_control"] == "off")
    on = next(r for r in rows if r["congestion_control"] == "on")
    assert off["sched_drops"] > 0
    assert on["sched_drops"] == 0
    assert on["delivered"] == N_PKTS
    assert on["recovered_unpaced"]  # AIMD released the pacing after the flood
