"""Administrative tools (Figure 1: "tc, iptables, ... call into the
in-kernel control plane, which updates the SmartNIC dataplane").

Each tool is a small text-command interface over the dataplane's
administrative surface, so the §2 scenarios can be driven exactly the way
an operator would: ``iptables("-A OUTPUT -p udp --dport 5432 -m owner
--uid-owner bob -j ACCEPT")``, ``tc("qdisc replace dev nic0 root wfq
/games:1 /work:3")``, ``tcpdump("arp", count=10)``, ``netstat()``.

On dataplanes without an interposition point the underlying operation
raises :class:`~repro.errors.UnsupportedOperation` — the tool surfaces it,
which is precisely the manageability regression the paper describes.
"""

from .iptables import Iptables
from .netstat import Netstat
from .ss import Ss
from .tc import Tc
from .tcpdump import Tcpdump, compile_filter
from .ifconfig import Arp, Ifconfig

__all__ = ["Arp", "Ifconfig", "Iptables", "Netstat", "Ss", "Tc", "Tcpdump", "compile_filter"]
