"""Receive-side servers."""

from __future__ import annotations

from typing import Generator, Optional

from ..dataplanes.testbed import Testbed
from .base import App


class SinkServer(App):
    """Receives forever, counts messages — the plain consumer."""

    def __init__(self, testbed: Testbed, port: int, blocking: bool = True, **kwargs):
        super().__init__(testbed, port=port, **kwargs)
        self.blocking = blocking
        self.messages = 0
        self.bytes = 0

    def run(self) -> Generator:
        while True:
            size, _src, _sport = yield self.ep.recv(blocking=True)
            self.messages += 1
            self.bytes += size
            self.stats.meter("rx").record(self.sim.now, size)


class EchoServer(App):
    """Replies to every message with a payload of the same size."""

    def __init__(self, testbed: Testbed, port: int, reply_len: Optional[int] = None, **kwargs):
        super().__init__(testbed, port=port, **kwargs)
        self.reply_len = reply_len
        self.served = 0

    def run(self) -> Generator:
        while True:
            size, src_ip, sport = yield self.ep.recv(blocking=True)
            reply = self.reply_len if self.reply_len is not None else size
            yield self.ep.send(reply, dst=(src_ip, sport))
            self.served += 1
