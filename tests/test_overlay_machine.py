"""Overlay execution: field loads, branches, verdicts, meters, cost model."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.errors import OverlayError
from repro.net import IPv4Address, MacAddress, make_arp_request, make_tcp, make_udp
from repro.net.headers import TCP_FLAG_SYN
from repro.overlay import OverlayMachine, VERDICT_ACCEPT, VERDICT_DROP, assemble, verify

MAC_A, MAC_B = MacAddress.from_index(1), MacAddress.from_index(2)
IP_A, IP_B = IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")


def machine(text, **kwargs):
    prog = assemble(text, **kwargs)
    verify(prog)
    return OverlayMachine(prog, DEFAULT_COSTS)


def udp(dport=2000, size=100):
    return make_udp(MAC_A, MAC_B, IP_A, IP_B, 1000, dport, size)


class TestExecution:
    def test_port_filter(self):
        m = machine(
            """
                ldf r0, l4.dport
                jne r0, 5432, allow
                drop
            allow:
                accept
            """
        )
        assert m.execute(udp(dport=5432), 0).verdict == VERDICT_DROP
        assert m.execute(udp(dport=80), 0).verdict == VERDICT_ACCEPT
        assert m.packets_seen == 2

    def test_field_loads(self):
        m = machine(
            """
                ldf r0, ip.src
                jne r0, 0x0A000001, bad
                ldf r1, meta.len
                jlt r1, 100, bad
                accept
            bad:
                drop
            """
        )
        assert m.execute(udp(size=100), 0).verdict == VERDICT_ACCEPT
        assert m.execute(udp(size=10), 0).verdict == VERDICT_DROP

    def test_tcp_flags_and_arp_fields(self):
        syn_filter = machine(
            """
                ldf r0, tcp.flags
                and r0, 0x02
                jeq r0, 0, pass
                drop
            pass:
                accept
            """
        )
        syn = make_tcp(MAC_A, MAC_B, IP_A, IP_B, 1, 2, flags=TCP_FLAG_SYN)
        assert syn_filter.execute(syn, 0).verdict == VERDICT_DROP
        assert syn_filter.execute(udp(), 0).verdict == VERDICT_ACCEPT

        arp_counter = machine("ldf r0, arp.op\njeq r0, 1, isreq\naccept\nisreq: cnt 0\naccept",
                              n_counters=1)
        arp_counter.execute(make_arp_request(MAC_A, IP_A, IP_B), 0)
        arp_counter.execute(udp(), 0)
        assert arp_counter.counters[0] == 1

    def test_missing_fields_read_zero(self):
        m = machine("ldf r0, l4.dport\njeq r0, 0, z\ndrop\nz: accept")
        assert m.execute(make_arp_request(MAC_A, IP_A, IP_B), 0).verdict == VERDICT_ACCEPT

    def test_set_queue_and_class(self):
        m = machine("setq 3\nsetcls 0x10001\naccept")
        result = m.execute(udp(), 0)
        assert result.queue == 3
        assert result.sched_class == 0x10001

    def test_mirror_taps(self):
        m = machine("mirror 0\nmirror 2\naccept")
        assert m.execute(udp(), 0).mirrors == [0, 2]

    def test_alu_wrapping(self):
        m = machine(
            """
                ldi r0, 0xFFFFFFFF
                add r0, 1
                jeq r0, 0, ok
                drop
            ok:
                accept
            """
        )
        assert m.execute(udp(), 0).verdict == VERDICT_ACCEPT

    def test_conn_id_meta(self):
        m = machine("ldf r0, meta.conn_id\njeq r0, 7, hit\naccept\nhit: drop")
        pkt = udp()
        pkt.meta.conn_id = 7
        assert m.execute(pkt, 0).verdict == VERDICT_DROP
        assert m.execute(udp(), 0).verdict == VERDICT_ACCEPT

    def test_cost_scales_with_instructions(self):
        m = machine("ldf r0, l4.dport\njne r0, 1, a\na: accept")
        result = m.execute(udp(), 0)
        assert result.instrs_executed == 3
        assert result.cost_ns == 3 * DEFAULT_COSTS.overlay_instr_ns


class TestMeters:
    def test_policer_enforces_rate(self):
        m = machine(
            "meter 0, r0\njeq r0, 1, ok\ndrop\nok: accept", n_meters=1
        )
        # 1000B-wire packets; bucket = 2 packets; rate = 8 Mbps = 1 packet/ms.
        m.configure_meter(0, rate_bps=8 * units.MBPS, burst_bytes=2_000)
        pkt = udp(size=958)
        assert m.execute(pkt, 0).verdict == VERDICT_ACCEPT
        assert m.execute(pkt, 0).verdict == VERDICT_ACCEPT
        assert m.execute(pkt, 0).verdict == VERDICT_DROP  # bucket empty
        assert m.execute(pkt, 1_000_000 + 10).verdict == VERDICT_ACCEPT  # refilled

    def test_unconfigured_meter_is_open(self):
        m = machine("meter 0, r0\njeq r0, 1, ok\ndrop\nok: accept", n_meters=1)
        assert m.execute(udp(), 0).verdict == VERDICT_ACCEPT

    def test_configure_undeclared_meter_rejected(self):
        m = machine("accept")
        with pytest.raises(OverlayError):
            m.configure_meter(0, units.MBPS, 1_000)


class TestFuelGuard:
    def test_unverified_backward_loop_caught(self):
        from repro.overlay import Instr, Program
        from repro.overlay.isa import OP_JMP, OP_ACCEPT

        looping = Program(instrs=(Instr(op=OP_JMP, target=0), Instr(op=OP_ACCEPT)))
        m = OverlayMachine(looping, DEFAULT_COSTS)
        with pytest.raises(OverlayError, match="fuel"):
            m.execute(udp(), 0)
