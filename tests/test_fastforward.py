"""Hybrid-fidelity engine tests.

The tentpole safety contract: a promoted (fluid) flow must drop back to
exact packet-level simulation at *every* interposition boundary, and the
packets after the boundary must be simulated exactly. Each boundary gets
its own test against the real KOPI plane; the controller's promotion /
absorption / flush mechanics are unit-tested against a stub plane.
"""

import pytest

from repro.config import DEFAULT_COSTS
from repro.errors import ConfigError, SimulationError
from repro.core.norman import NormanOS
from repro.dataplanes.testbed import HOST_IP, PEER_IP, Testbed
from repro.kernel.netfilter import CHAIN_INPUT, DROP, NetfilterRule
from repro.net.flow import FiveTuple
from repro.net.headers import PROTO_UDP
from repro.sim import Simulator
from repro.sim.fastforward import (
    REASON_CONNTRACK,
    REASON_FASTPATH,
    REASON_MIGRATE,
    REASON_POLICY,
    REASON_PRESSURE,
    REASON_QDISC,
    REASON_SHAPE,
    REASON_SWITCH,
    FastForwardController,
    FlowProfile,
)

PORT = 9_000
SPORT = 700


# ---------------------------------------------------------------------------
# Controller unit tests (stub plane)
# ---------------------------------------------------------------------------


class StubPlane:
    def __init__(self, profile):
        self.profile = profile
        self.eligible = True
        self.charges = []

    def ff_eligible(self, key):
        return self.eligible

    def ff_profile(self, key, pkt):
        return self.profile

    def ff_bulk_charge(self, key, n, profile):
        self.charges.append((key, n))


def _controller(**over):
    costs = DEFAULT_COSTS.replace(
        flow_fastpath=True, fast_forward=True, ff_promote_after=3,
        ff_epoch_packets=8, ff_horizon_ns=500, **over,
    )
    sim = Simulator()
    return sim, FastForwardController(sim, costs)


def _profile(conn_id=7, wire_len=1_000):
    spans = (("nic_pipeline", 100, False, "rx"), ("ring", 50, True, "desc"))
    return FlowProfile(spans, core_id=0, wire_len=wire_len, conn_id=conn_id)


class TestControllerUnit:
    def test_promotion_needs_full_streak(self):
        _sim, ff = _controller()
        plane = StubPlane(_profile())
        for _ in range(2):
            ff.note_exact(plane, "k", None)
        assert not ff.promoted("k")
        ff.note_exact(plane, "k", None)
        assert ff.promoted("k")
        assert ff.promotions == 1

    def test_ineligible_flow_resets_streak(self):
        _sim, ff = _controller()
        plane = StubPlane(_profile())
        plane.eligible = False
        for _ in range(3):
            ff.note_exact(plane, "k", None)
        assert not ff.promoted("k")
        # Eligibility returning is not enough: the streak starts over.
        plane.eligible = True
        ff.note_exact(plane, "k", None)
        ff.note_exact(plane, "k", None)
        assert not ff.promoted("k")
        ff.note_exact(plane, "k", None)
        assert ff.promoted("k")

    def test_profile_refusal_resets_streak(self):
        _sim, ff = _controller()
        plane = StubPlane(None)
        for _ in range(3):
            ff.note_exact(plane, "k", None)
        assert not ff.promoted("k")
        plane.profile = _profile()
        for _ in range(3):
            ff.note_exact(plane, "k", None)
        assert ff.promoted("k")

    def test_absorb_refuses_unpromoted(self):
        _sim, ff = _controller()
        assert ff.absorb_packet("nobody", 1_000) is False
        assert ff.absorb("nobody", 16) is False
        with pytest.raises(SimulationError):
            ff.absorb("nobody", 0)

    def _promoted(self, **over):
        sim, ff = _controller(**over)
        plane = StubPlane(_profile())
        for _ in range(3):
            ff.note_exact(plane, "k", None)
        assert ff.promoted("k")
        return sim, ff, plane

    def test_epoch_flushes_at_epoch_packets(self):
        _sim, ff, plane = self._promoted()
        for _ in range(7):
            assert ff.absorb_packet("k", 1_000)
        assert plane.charges == []  # pending, not yet charged
        assert ff.absorb_packet("k", 1_000)
        assert plane.charges == [("k", 8)]
        assert ff.epochs == 1 and ff.fluid_packets == 8

    def test_horizon_flushes_partial_epoch(self):
        sim, ff, plane = self._promoted()
        assert ff.absorb("k", 3)
        assert plane.charges == []
        sim.run()
        assert plane.charges == [("k", 3)]
        assert sim.now == 500  # the flush horizon, not the epoch boundary

    def test_shape_mismatch_is_a_boundary(self):
        _sim, ff, plane = self._promoted()
        assert ff.absorb_packet("k", 1_000)
        assert ff.absorb_packet("k", 999) is False  # caller simulates it
        assert ff.demotions[REASON_SHAPE] == 1
        assert not ff.promoted("k")
        # The packet absorbed before the boundary was flushed first.
        assert plane.charges == [("k", 1)]
        assert ff.absorb_packet("k", 1_000) is False

    def test_demote_flushes_pending_under_old_profile(self):
        _sim, ff, plane = self._promoted()
        ff.absorb("k", 5)
        assert ff.demote("k", REASON_POLICY) is True
        assert plane.charges == [("k", 5)]
        assert ff.demotions[REASON_POLICY] == 1
        assert ff.demote("k", REASON_POLICY) is False  # already exact

    def test_demote_unknown_reason_raises(self):
        _sim, ff, _plane = self._promoted()
        with pytest.raises(SimulationError):
            ff.demote("k", "gremlins")

    def test_demote_conn_and_flush_conn_use_profile_conn_id(self):
        _sim, ff, plane = self._promoted()
        ff.absorb("k", 2)
        ff.flush_conn(7)
        assert plane.charges == [("k", 2)]
        assert ff.promoted("k")  # flush does not change fidelity
        assert ff.demote_conn(7, REASON_SHAPE) == 1
        assert not ff.promoted("k")
        assert ff.demote_conn(7, REASON_SHAPE) == 0

    def test_working_set_quartile_crossing_demotes_all(self):
        _sim, ff, _plane = self._promoted()
        cap = 1_000
        ff.note_working_set(100, cap)  # establishes bucket 0
        assert ff.promoted("k")
        ff.note_working_set(200, cap)  # same quartile: no boundary
        assert ff.promoted("k")
        ff.note_working_set(300, cap)  # bucket 0 -> 1
        assert not ff.promoted("k")
        assert ff.demotions[REASON_PRESSURE] == 1

    def test_stats_shape(self):
        _sim, ff, _plane = self._promoted()
        ff.absorb("k", 8)
        stats = ff.stats()
        assert stats["promotions"] == 1
        assert stats["fluid_packets"] == 8
        assert set(stats["demotions"]) == {
            REASON_POLICY, REASON_FASTPATH, REASON_CONNTRACK,
            REASON_QDISC, REASON_PRESSURE, REASON_SHAPE, REASON_SWITCH,
            REASON_MIGRATE,
        }


# ---------------------------------------------------------------------------
# Boundary tests against the real KOPI plane
# ---------------------------------------------------------------------------


def _testbed(**over):
    kwargs = {}
    if "smartnic_sram_bytes" in over:
        kwargs["smartnic_sram_bytes"] = over.pop("smartnic_sram_bytes")
    costs = DEFAULT_COSTS.replace(
        flow_fastpath=True, fast_forward=True, ff_promote_after=2, **over,
    )
    tb = Testbed(NormanOS, costs=costs, n_cores=2, **kwargs)
    proc = tb.spawn("srv", "bob", core_id=1)
    ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, PORT)
    tb.run_all()
    return tb, ep


def _flow(port=PORT, sport=SPORT):
    return FiveTuple(PROTO_UDP, PEER_IP, sport, HOST_IP, port)


def _promote(tb, port=PORT, sport=SPORT, payload=256):
    # Packet 1 misses and installs the verdict-cache entry; two hits then
    # complete the ff_promote_after=2 streak.
    for _ in range(3):
        tb.peer.send_udp(sport, port, payload)
        tb.run_all()
    assert tb.machine.ff.promoted(_flow(port, sport))


def _rx_pkts(tb):
    return tb.dataplane.nic.metrics.counter("rx_pkts").value


def _assert_fluid_then_exact(tb, boundary, payload=256):
    """Promote, observe absorption, run ``boundary``, then prove the next
    packet is simulated exactly. ``rx_pkts`` moves either way (the fluid
    flush replays it — that is the conservation contract), so the
    discriminator is ``fluid_packets``: it counts absorbed packets only."""
    ff = tb.machine.ff
    _promote(tb, payload=payload)
    fluid0 = ff.fluid_packets
    tb.peer.send_udp(SPORT, PORT, payload)
    tb.run_all()  # includes the horizon flush of the absorbed packet
    assert ff.fluid_packets == fluid0 + 1  # absorbed, not simulated
    boundary()
    tb.run_all()
    assert not ff.promoted(_flow())
    fluid1 = ff.fluid_packets
    before = _rx_pkts(tb)
    tb.peer.send_udp(SPORT, PORT, payload)
    tb.run_all()
    assert ff.fluid_packets == fluid1     # nothing absorbed any more
    assert _rx_pkts(tb) == before + 1     # packet-exact from the boundary on


class TestBoundaries:
    def test_policy_commit_demotes(self):
        tb, _ep = _testbed()

        def commit():
            tb.dataplane.install_filter_rule(NetfilterRule(
                verdict=DROP, chain=CHAIN_INPUT, proto=PROTO_UDP,
                dport=PORT + 1,
            ))

        _assert_fluid_then_exact(tb, commit)
        assert tb.machine.ff.demotions[REASON_POLICY] >= 1

    def test_fastpath_lru_eviction_demotes(self):
        tb, ep = _testbed(flow_fastpath_entries=4)

        def churn():
            # Fresh flows to the same endpoint install fresh verdict-cache
            # entries; with 4 slots the promoted flow's (idle, since its
            # packets are absorbed before lookup) entry goes first.
            for i in range(8):
                tb.peer.send_udp(SPORT + 1 + i, PORT, 256)
                tb.run_all()

        _assert_fluid_then_exact(tb, churn)
        assert tb.machine.ff.demotions[REASON_FASTPATH] >= 1

    def test_conntrack_expiry_demotes(self):
        tb, _ep = _testbed()

        def expire():
            dropped = tb.machine.fastpath.evict_flow(_flow())
            assert dropped >= 1

        _assert_fluid_then_exact(tb, expire)
        assert tb.machine.ff.demotions[REASON_CONNTRACK] == 1

    def test_qdisc_backlog_threshold_demotes(self):
        # Slow link so a TX burst outruns the paced drain and the egress
        # qdisc backlog crosses the (tiny) demote threshold.
        tb, ep = _testbed(ff_qdisc_backlog=4, nic_line_rate_bps=10**9)

        def burst():
            ep.send_burst([256] * 32, dst=(PEER_IP, SPORT))

        _assert_fluid_then_exact(tb, burst)
        assert tb.dataplane.nic.scheduler.metrics.counter(
            "pressure_events").value >= 1
        assert tb.machine.ff.demotions[REASON_QDISC] >= 1

    def test_sram_exhaustion_demotes(self):
        # Opening a connection is itself a policy-resync boundary, so fill
        # the NIC SRAM first, re-promote, and only then overflow it: the
        # exhaustion fires before that open's own resync, while the flow
        # is still fluid — the demotion must be the pressure cliff.
        tb, _ep = _testbed(smartnic_sram_bytes=32_768)
        ff = tb.machine.ff
        proc = tb.spawn("hog", "bob", core_id=1)
        sram = tb.dataplane.nic.sram
        conn_state = tb.machine.costs.conn_state_bytes
        i = 0
        while sram.free_bytes >= conn_state and i < 400:
            tb.dataplane.open_endpoint(proc, PROTO_UDP, PORT + 1 + i)
            i += 1
        assert sram.free_bytes < conn_state, "SRAM never filled"
        tb.run_all()
        _promote(tb)
        tb.dataplane.open_endpoint(proc, PROTO_UDP, PORT + 1 + i)
        tb.run_all()
        assert tb.dataplane.control.metrics.counter(
            "fallback_conns").value >= 1
        assert ff.demotions[REASON_PRESSURE] >= 1
        assert not ff.promoted(_flow())

    def test_shape_change_demotes_and_delivers_exactly(self):
        tb, _ep = _testbed()
        ff = tb.machine.ff
        _promote(tb, payload=256)
        before = _rx_pkts(tb)
        tb.peer.send_udp(SPORT, PORT, 512)  # different wire length
        tb.run_all()
        assert ff.demotions[REASON_SHAPE] == 1
        assert not ff.promoted(_flow())
        assert _rx_pkts(tb) == before + 1  # the mismatched packet ran exact

    def test_connection_close_demotes(self):
        tb, ep = _testbed()
        ff = tb.machine.ff
        _promote(tb)
        ep.close()
        tb.run_all()
        assert not ff.promoted(_flow())
        assert ff.demotions[REASON_SHAPE] >= 1

    def test_exact_mode_builds_no_controller(self):
        costs = DEFAULT_COSTS.replace(flow_fastpath=True)
        tb = Testbed(NormanOS, costs=costs, n_cores=2)
        assert tb.machine.ff is None


# ---------------------------------------------------------------------------
# Parity smoke: hybrid == exact at tiny scale
# ---------------------------------------------------------------------------


class TestParitySmoke:
    def test_tiny_parity_run_matches_exactly(self):
        from repro.experiments.e21_fidelity_crossover import run_parity

        out = run_parity(n_conns=16, packets_total=256)
        assert out["ok"], out["rows"]
        assert out["fluid_fraction"] > 0  # the hybrid leg actually went fluid
        for row in out["rows"]:
            assert row["ok"], row


# ---------------------------------------------------------------------------
# Satellite regressions: run_until_idle budget, weighted histograms, gating
# ---------------------------------------------------------------------------


class TestRunUntilIdleBudget:
    def test_fires_exactly_max_events_before_raising(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            sim.after(1, tick)

        sim.after(0, tick)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=5)
        assert len(fired) == 5  # the budget is exact, not off by one

    def test_exact_budget_for_finite_work_is_enough(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.after(i, lambda i=i: fired.append(i))
        sim.run_until_idle(max_events=5)
        assert fired == [0, 1, 2, 3, 4]


class TestWeightedHistogram:
    def test_observe_n_counts_all(self):
        from repro.sim import MetricSet

        h = MetricSet("t").histogram("lat")
        h.observe(10.0, n=4)
        h.observe(30.0)
        assert h.count == 5
        assert h.total == 70.0
        assert h.minimum == 10.0 and h.maximum == 30.0

    def test_observe_rejects_nonpositive_n(self):
        from repro.sim import MetricSet

        h = MetricSet("t").histogram("lat")
        with pytest.raises(ValueError):
            h.observe(1.0, n=0)


class TestConfigGating:
    def test_fast_forward_requires_flow_fastpath(self):
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(fast_forward=True, flow_fastpath=False)

    def test_ff_knobs_validated(self):
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(
                flow_fastpath=True, fast_forward=True, ff_promote_after=0)
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(
                flow_fastpath=True, fast_forward=True, ff_tolerance=1.5)

    def test_default_costs_are_exact_mode(self):
        assert DEFAULT_COSTS.fast_forward is False


# ---------------------------------------------------------------------------
# Property: group-epoch = per-flow-epoch = packet-exact
# ---------------------------------------------------------------------------


from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st


class LedgerPlane:
    """Records exactly which (key, n) the controller charges, under both
    the per-flow and the group charging entry points, so two charging
    modes can be compared ledger-for-ledger."""

    def __init__(self, profiles):
        self.profiles = profiles
        self.charged = Counter()
        self.group_calls = 0

    def ff_eligible(self, key):
        return True

    def ff_profile(self, key, pkt):
        return self.profiles[key]

    def ff_bulk_charge(self, key, n, profile):
        self.charged[key] += n

    def ff_group_charge(self, members, total_n, profile):
        assert total_n == sum(n for _key, n, _prof in members)
        assert all(n > 0 for _key, n, _prof in members)
        self.group_calls += 1
        for key, n, _prof in members:
            self.charged[key] += n


def _drive_schedule(ops, group):
    """Replay one random promote/absorb/demote/commit/flush interleaving
    through a controller in the requested charging mode. Returns the
    charge ledger plus offered/exact/fluid packet counts per flow."""
    costs = DEFAULT_COSTS.replace(
        flow_fastpath=True, fast_forward=True, ff_promote_after=2,
        ff_epoch_packets=8, ff_horizon_ns=500, ff_group=group,
    )
    sim = Simulator()
    ctl = FastForwardController(sim, costs)
    keys = ["a", "b", "c", "d"]
    spans = (("nic_pipeline", 100, False, "rx"), ("ring", 50, True, "desc"))
    # Two shape classes: flows a/b group together, c/d group together.
    profiles = {
        k: FlowProfile(spans, core_id=(0 if k in "ab" else 1), wire_len=1_000)
        for k in keys
    }
    plane = LedgerPlane(profiles)
    offered, exact, fluid = Counter(), Counter(), Counter()
    for action, ki, cnt in ops:
        key = keys[ki]
        if action == "pkt":
            offered[key] += cnt
            if ctl.promoted(key):
                assert ctl.absorb(key, cnt)
                fluid[key] += cnt
            else:
                # Pre-promotion packets arrive one by one; a packet that
                # completes the streak promotes, and the *next* one is
                # the first absorbed.
                for _ in range(cnt):
                    if ctl.promoted(key):
                        assert ctl.absorb(key, 1)
                        fluid[key] += 1
                    else:
                        ctl.note_exact(plane, key, None)
                        exact[key] += 1
        elif action == "demote":
            ctl.demote(key, REASON_POLICY)
        elif action == "commit":
            ctl.demote_all(REASON_POLICY)
        elif action == "flush":
            ctl.flush_all()
        else:  # "tick": let horizon timers fire
            sim.run()
    ctl.flush_all()
    ctl.demote_all(REASON_POLICY)
    sim.run()
    return plane, offered, exact, fluid


class TestChargingModeEquivalence:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(
                    ["pkt", "pkt", "pkt", "demote", "commit", "flush", "tick"]
                ),
                st.integers(0, 3),
                st.integers(1, 12),
            ),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_group_equals_per_flow_equals_exact(self, ops):
        g_plane, g_offered, g_exact, g_fluid = _drive_schedule(ops, True)
        p_plane, p_offered, p_exact, p_fluid = _drive_schedule(ops, False)
        # Promotion decisions depend only on the schedule, so the
        # exact/fluid split is identical across charging modes...
        assert g_exact == p_exact
        assert g_fluid == p_fluid
        assert g_offered == p_offered
        # ...and so is the charge ledger: every absorbed packet is
        # charged exactly once to its own flow in both modes.
        assert g_plane.charged == p_plane.charged
        for key in g_offered:
            assert g_plane.charged[key] == g_fluid[key]
            assert g_plane.charged[key] + g_exact[key] == g_offered[key]
        # Per-flow mode must never take the group entry point.
        assert p_plane.group_calls == 0
