"""E2 — §1: virtual vs physical vs on-path movement, policies active."""

from repro.experiments.common import fmt_table
from repro.experiments.e2_interposition_placement import headline, run_e2


def test_e2_interposition_placement(once):
    rows = once(run_e2, count=200)
    print("\n" + fmt_table(rows))
    h = headline(rows)
    by_plane = {r["plane"]: r for r in rows}
    # Both off-path placements cost much more host CPU than on-NIC.
    assert h["kernel_cpu_vs_kopi"] > 5
    assert h["sidecar_cpu_vs_kopi"] > 5
    # KOPI with policies ~= bypass without: interposition became free.
    assert h["kopi_matches_bypass"] < 0.05
    # Movement taxonomy: kernel syscalls per packet, sidecar coherence lines.
    assert by_plane["kernel"]["syscalls_per_pkt"] >= 1
    assert by_plane["sidecar"]["coh_lines_per_pkt"] > 10
    assert by_plane["kopi"]["syscalls_per_pkt"] == 0
    assert by_plane["kopi"]["coh_lines_per_pkt"] == 0
