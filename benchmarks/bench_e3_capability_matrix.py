"""E3 — §2: the four scenarios vs the five architectures."""

from repro.core.capabilities import SCENARIOS, render_matrix
from repro.experiments.e3_capability_matrix import headline, run_e3


def test_e3_capability_matrix(once):
    matrix = once(run_e3)
    print("\n" + render_matrix(matrix))
    scores = headline(matrix)
    print("scores:", scores)
    # Paper's table: kernel, sidecar, KOPI support all; bypass none;
    # hypervisor none of the four (global view without process view).
    n = len(SCENARIOS)
    assert scores["kernel"] == f"{n}/{n}"
    assert scores["sidecar"] == f"{n}/{n}"
    assert scores["kopi"] == f"{n}/{n}"
    assert scores["bypass"] == f"0/{n}"
    assert scores["hypervisor"] == f"0/{n}"
