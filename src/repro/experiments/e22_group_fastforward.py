"""E22 — group fast-forward: one fluid epoch for many flows, and the TX
side of the boundary.

PR 6's hybrid engine (E21) charges one epoch event *per promoted flow*.
This PR coalesces promoted flows that share a charging shape — same
plane, same interposition chain version vector, same stage profile —
into a :class:`~repro.sim.fastforward.FlowGroup` charged by a *single*
epoch event, and extends fast-forward to the TX path: steady single-send
schedules (app timer -> syscall -> qdisc -> ring doorbell -> wire) absorb
into fluid epochs exactly like RX bursts, demoting at the same
interposition boundaries. Two legs defend the change:

* **(a) fidelity parity** — an RX+TX workload (peer bursts drained by the
  application, plus spaced application sends toward the peer) runs twice
  from identical schedules: packet-exact vs hybrid with grouping on.
  Every counted observable must match *exactly* — the E21 RX set
  (delivered, verdict-cache hits/misses, DMA direct ledger) plus the TX
  set this PR adds: NIC ``tx_pkts``, peer ``rx_pkts``/``rx_bytes``,
  egress link ``sent``, qdisc ``enqueued``/``emitted``, doorbell
  ``mmio_writes``, and the TX DMA copy ledger. Modeled time (CPU busy,
  per-stage service work) agrees within ``CostModel.ff_tolerance``.
* **(b) group speedup** — at 100k+ connections, the *same* absorb/flush
  schedule runs once with grouping (``ff_group=True``) and once in PR 6's
  per-flow mode (``ff_group=False``). Grouping replaces 100k epoch
  events, 100k tracer records, and 100k horizon timers per flush round
  with a handful of group charges (one per app core); the headline is the
  wall-clock ratio of the measured absorb+flush phase, required >= 3x.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Optional

from ..config import DEFAULT_COSTS, CostModel
from ..dataplanes import Testbed
from ..dataplanes.testbed import HOST_IP, PEER_IP
from ..host.copies import LAYER_DMA
from ..net.flow import FiveTuple
from .common import Row, fmt_table
from .e21_fidelity_crossover import (
    BURST_PER_CONN,
    PARITY_COLUMNS,
    PAYLOAD,
    TOLERANCE_KEYS,
    _drain,
    _leg_testbed,
    _observe,
    _send_burst,
    _speedup_costs,
)
from .e21_fidelity_crossover import EXACT_KEYS as RX_EXACT_KEYS

PARITY_CONNS = 256
PARITY_ROUNDS = 4
#: Application sends per connection per round (single-packet sends — the
#: steady shape TX fast-forward absorbs; multi-packet bursts stay exact).
TX_PER_ROUND = 4
#: Spacing between consecutive sends across the whole population. Wide
#: enough that each send's TX chain (doorbell -> PCIe fetch -> pipeline ->
#: wire) completes before the next begins: rings and qdisc stay empty,
#: which is the steady state the TX profile captures.
TX_GAP_NS = 2_000

GROUP_CONNS = 100_000
#: Packets absorbed per connection per measured flush round.
GROUP_BULK = 64
GROUP_ROUNDS = 4

#: TX-side counters that must match exactly between the parity legs, on
#: top of E21's RX set.
TX_EXACT_KEYS = (
    "tx_sent", "tx_pkts", "peer_rx_pkts", "peer_rx_bytes", "egress_sent",
    "qdisc_enqueued", "qdisc_emitted", "mmio_writes",
    "dma_tx_bytes", "dma_tx_ops",
)
EXACT_KEYS = RX_EXACT_KEYS + TX_EXACT_KEYS


def _send_tx(tb: Testbed, eps, per_conn: int) -> int:
    """Schedule ``per_conn`` spaced single-packet sends from every
    endpoint toward the peer. Returns the number scheduled."""
    base = tb.sim.now + 1_000
    i = 0
    for _round in range(per_conn):
        for ep in eps:
            tb.sim.at(base + i * TX_GAP_NS, ep.send, PAYLOAD, (PEER_IP, 600))
            i += 1
    return i


def _observe_tx(tb: Testbed, obs: Dict[str, object], tx_sent: int) -> Dict[str, object]:
    """Augment E21's observable dict with the TX-side counted set."""
    nic = tb.dataplane.nic
    dma_tx = tb.machine.copies.layer(LAYER_DMA)
    obs.update({
        "tx_sent": tx_sent,
        "tx_pkts": int(nic.metrics.counter("tx_pkts").value),
        "peer_rx_pkts": int(tb.peer.metrics.counter("rx_pkts").value),
        "peer_rx_bytes": int(tb.peer.metrics.meter("rx_bytes").total_bytes),
        "egress_sent": int(tb.egress.metrics.counter("sent").value),
        "qdisc_enqueued": int(nic.scheduler.metrics.counter("enqueued").value),
        "qdisc_emitted": int(nic.scheduler.metrics.counter("emitted").value),
        "mmio_writes": int(tb.machine.dma.metrics.counter("mmio_writes").value),
        "dma_tx_bytes": dma_tx.bytes_copied,
        "dma_tx_ops": dma_tx.copies,
    })
    return obs


def run_leg(
    n_conns: int,
    rounds: int,
    costs: CostModel,
    fast_forward: bool,
) -> Dict[str, object]:
    """One parity leg: per round, an RX burst drained by the application,
    then a wave of spaced application sends. Identical schedule either
    way; only the fidelity knob differs."""
    leg_costs = costs.replace(
        trace=True, flow_fastpath=True, fast_forward=fast_forward,
        flow_fastpath_entries=max(costs.flow_fastpath_entries, 4 * n_conns),
    )
    tb = _leg_testbed(n_conns, leg_costs)
    eps, slots = tb._e21_eps, tb._e21_slots  # type: ignore[attr-defined]
    busy0 = tb.machine.cpus.total_busy_ns()
    delivered = 0
    tx_sent = 0
    t0 = time.perf_counter()
    for _round in range(rounds):
        _send_burst(tb, eps, slots, BURST_PER_CONN)
        tb.run_all()
        delivered += _drain(tb, eps, BURST_PER_CONN)
        tx_sent += _send_tx(tb, eps, TX_PER_ROUND)
        tb.run_all()
    wall = time.perf_counter() - t0
    obs = _observe(tb, delivered, busy0, wall)
    return _observe_tx(tb, obs, tx_sent)


def run_parity(
    n_conns: int = PARITY_CONNS,
    rounds: int = PARITY_ROUNDS,
    costs: CostModel = DEFAULT_COSTS,
) -> Dict[str, object]:
    """Leg (a): exact vs hybrid (groups + TX fast-forward on) over the
    combined RX+TX schedule."""
    exact = run_leg(n_conns, rounds, costs, fast_forward=False)
    hybrid = run_leg(n_conns, rounds, costs, fast_forward=True)
    tol = costs.ff_tolerance
    rows: List[Row] = []
    ok = True
    for key in EXACT_KEYS + TOLERANCE_KEYS:
        e, h = float(exact[key]), float(hybrid[key])
        err = abs(h - e) / max(abs(e), 1e-9)
        this_ok = (h == e) if key in EXACT_KEYS else (err <= tol)
        ok = ok and this_ok
        rows.append({
            "observable": key, "exact": e, "hybrid": h,
            "rel_err": err, "ok": this_ok,
        })
    stage_rows: List[Row] = []
    stages = sorted(set(exact["work_by_stage"]) | set(hybrid["work_by_stage"]))
    for stage in stages:
        e = float(exact["work_by_stage"].get(stage, 0))
        h = float(hybrid["work_by_stage"].get(stage, 0))
        err = abs(h - e) / max(abs(e), 1e-9)
        this_ok = err <= tol
        ok = ok and this_ok
        stage_rows.append({
            "observable": f"stage:{stage}", "exact": e, "hybrid": h,
            "rel_err": err, "ok": this_ok,
        })
    ok = ok and exact["conserved"] and hybrid["conserved"]
    ff = hybrid["ff"]
    total_pkts = int(hybrid["delivered"]) + int(hybrid["tx_sent"])
    fluid_fraction = ff["fluid_packets"] / max(total_pkts, 1)
    # Grouping must actually engage on both directions: RX and TX flows
    # promote on different planes, so a grouped hybrid leg sees >= 2
    # distinct groups and at least one group epoch.
    grouped = ff.get("group_epochs", 0) > 0 and ff.get("groups", 0) >= 2
    ok = ok and grouped
    return {
        "rows": rows,
        "stage_rows": stage_rows,
        "exact": exact,
        "hybrid": hybrid,
        "ok": bool(ok),
        "tolerance": tol,
        "fluid_fraction": fluid_fraction,
        "grouped": bool(grouped),
        "ff": ff,
    }


def _speedup_leg(
    n_conns: int, bulk: int, rounds: int, costs: CostModel, group: bool
) -> Dict[str, object]:
    """Warm every flow to promotion with exact packets, then run the
    measured absorb/flush schedule in the requested charging mode."""
    leg_costs = costs.replace(
        fast_forward=True, ff_promote_after=1, ff_group=group,
    )
    tb = _leg_testbed(n_conns, leg_costs)
    eps, slots = tb._e21_eps, tb._e21_slots  # type: ignore[attr-defined]
    ff = tb.machine.ff
    assert ff is not None
    warmup = 1 + leg_costs.ff_promote_after  # install miss + promotion streak
    for _ in range(warmup):
        _send_burst(tb, eps, slots, 1)
        tb.run_all()
        _drain(tb, eps, 1)
    flows = [FiveTuple(proto, PEER_IP, 600, HOST_IP, port)
             for proto, port in slots]
    promoted = ff.promoted_count
    events0 = tb.sim.events_fired
    absorbed = 0
    # Earlier legs leave large cyclic testbed graphs behind; collect them
    # now so deferred GC is not billed to the timed schedule below.
    gc.collect()
    t0 = time.perf_counter()
    for _round in range(rounds):
        for flow in flows:
            if ff.absorb(flow, bulk):
                absorbed += bulk
        ff.flush_all()
        tb.run_all()
    wall = time.perf_counter() - t0
    stats = ff.stats()
    return {
        "mode": "group" if group else "per_flow",
        "promoted": promoted,
        "absorbed": absorbed,
        "wall_s": wall,
        "events": tb.sim.events_fired - events0,
        "epochs": stats["epochs"],
        "group_epochs": stats.get("group_epochs", 0),
    }


def run_group_speedup(
    n_conns: int = GROUP_CONNS,
    bulk: int = GROUP_BULK,
    rounds: int = GROUP_ROUNDS,
    costs: CostModel = DEFAULT_COSTS,
) -> Row:
    """Leg (b): identical absorb/flush schedules, grouped vs per-flow
    epoch charging, at full connection scale."""
    base = _speedup_costs(costs, n_conns)
    grouped = _speedup_leg(n_conns, bulk, rounds, base, group=True)
    per_flow = _speedup_leg(n_conns, bulk, rounds, base, group=False)
    speedup = per_flow["wall_s"] / max(grouped["wall_s"], 1e-9)
    return {
        "connections": n_conns,
        "fluid_pkts": grouped["absorbed"],
        "promoted": grouped["promoted"],
        "group_wall_s": grouped["wall_s"],
        "per_flow_wall_s": per_flow["wall_s"],
        "group_events": grouped["events"],
        "per_flow_events": per_flow["events"],
        "group_epochs": grouped["group_epochs"],
        "per_flow_epochs": per_flow["epochs"],
        "speedup": speedup,
    }


def headline(parity: Dict[str, object], speedup: Optional[Row]) -> dict:
    h = {
        "parity_ok": parity["ok"],
        "tolerance": parity["tolerance"],
        "fluid_fraction": parity["fluid_fraction"],
        "grouped": parity["grouped"],
        "max_rel_err": max(
            float(r["rel_err"]) for r in parity["rows"] + parity["stage_rows"]
        ),
    }
    if speedup is not None:
        h["connections"] = speedup["connections"]
        h["speedup"] = speedup["speedup"]
    return h


def main() -> str:
    parity = run_parity()
    speedup = run_group_speedup()
    h = headline(parity, speedup)
    return "\n".join([
        "group + TX fast-forward parity (exact vs hybrid, RX and TX schedules)",
        fmt_table(parity["rows"] + parity["stage_rows"], columns=PARITY_COLUMNS),
        "",
        "group epoch speedup (grouped vs per-flow charging, same schedule)",
        fmt_table([speedup]),
        "",
        f"headline: flow groups and TX fast-forward stay invisible in the "
        f"counted observables (max relative error {h['max_rel_err']:.4%} "
        f"against a {h['tolerance']:.0%} tolerance, {h['fluid_fraction']:.0%} "
        f"of packets fluid) and one-epoch-per-group charging is "
        f"{h['speedup']:.1f}x faster than per-flow epochs at "
        f"{h['connections']:,} connections",
    ])


if __name__ == "__main__":
    print(main())
