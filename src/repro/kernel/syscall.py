"""The syscall boundary.

Every user/kernel crossing in the simulation is charged here, so the "virtual
data movement" overheads of §1 are visible in one counter. ``invoke`` charges
the crossing plus in-kernel work on the caller's core.
"""

from __future__ import annotations

from ..config import CostModel
from ..errors import InvalidSyscall
from ..host.cpu import CpuSet
from ..sim import MetricSet, Signal, Simulator
from .process import Process


class SyscallLayer:
    """Charges syscall entry/exit and counts crossings per syscall name."""

    def __init__(self, sim: Simulator, cpus: CpuSet, costs: CostModel):
        self.sim = sim
        self.cpus = cpus
        self.costs = costs
        self.metrics = MetricSet("syscall")

    def invoke(self, proc: Process, name: str, work_ns: int = 0) -> Signal:
        """Run syscall ``name`` for ``proc``: entry/exit cost + ``work_ns``
        of kernel work, serialized on the process's core."""
        if work_ns < 0:
            raise InvalidSyscall(f"negative syscall work: {work_ns}")
        self.metrics.counter("total").inc()
        self.metrics.counter(name).inc()
        core = self.cpus[proc.core_id]
        return core.execute(self.costs.syscall_ns + work_ns, label=f"sys_{name}")

    def record_batched(self, n_msgs: int) -> None:
        """Account messages moved by one batched crossing (sendmmsg/
        recvmmsg): the gap between ``batched_msgs`` and ``total`` is
        exactly the §1 virtual-movement cost that batching amortized."""
        self.metrics.counter("batched_msgs").inc(n_msgs)

    def copy_to_kernel(self, proc: Process, nbytes: int) -> int:
        """Cost of copying a user buffer into the kernel (charged by caller)."""
        self.metrics.counter("copy_in_bytes").inc(max(0, nbytes))
        return self.costs.copy_ns(nbytes)

    def copy_to_user(self, proc: Process, nbytes: int) -> int:
        """Cost of copying kernel data out to userspace."""
        self.metrics.counter("copy_out_bytes").inc(max(0, nbytes))
        return self.costs.copy_ns(nbytes)

    @property
    def total_syscalls(self) -> int:
        return self.metrics.counter("total").value
