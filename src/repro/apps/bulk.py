"""Closed-loop bulk sender — the throughput workhorse of E1/E2/E7."""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from ..net.addresses import IPv4Address
from ..dataplanes.testbed import PEER_IP, Testbed
from .base import App


class BulkSender(App):
    """Sends ``count`` messages (or forever) back to back.

    Closed loop: the next send starts when the previous completed, so the
    achieved rate is set by the dataplane's per-message cost and the wire —
    exactly the quantity E1 compares across architectures.
    """

    def __init__(
        self,
        testbed: Testbed,
        payload_len: int = 1_458,
        count: Optional[int] = None,
        dst: Tuple[IPv4Address, int] = (PEER_IP, 9_000),
        burst: int = 1,
        **kwargs,
    ):
        super().__init__(testbed, **kwargs)
        self.payload_len = payload_len
        self.count = count
        self.dst = dst
        self.burst = max(1, burst)
        self.sent = 0
        self.sent_bytes = 0
        self.first_send_ns: Optional[int] = None
        self.last_send_ns: Optional[int] = None

    def run(self) -> Generator:
        yield self.ep.connect(self.dst[0], self.dst[1])
        if self.burst <= 1:
            while self.count is None or self.sent < self.count:
                ok = yield self.ep.send(self.payload_len)
                if self.first_send_ns is None:
                    self.first_send_ns = self.sim.now
                if ok:
                    self.sent += 1
                    self.sent_bytes += self.payload_len
                    self.last_send_ns = self.sim.now
            return
        # Burst mode: hand the dataplane whole batches so its amortized
        # paths (one doorbell / one sendmmsg crossing per burst) engage.
        while self.count is None or self.sent < self.count:
            n = self.burst if self.count is None else min(self.burst, self.count - self.sent)
            admitted = yield self.ep.send_burst([self.payload_len] * n)
            if self.first_send_ns is None:
                self.first_send_ns = self.sim.now
            if admitted:
                self.sent += admitted
                self.sent_bytes += admitted * self.payload_len
                self.last_send_ns = self.sim.now
            elif self.ep.closed:
                return

    def goodput_bps(self, end_ns: Optional[int] = None) -> float:
        from .. import units

        if self.first_send_ns is None:
            return 0.0
        end = end_ns if end_ns is not None else self.last_send_ns
        assert end is not None
        return units.throughput_bps(self.sent_bytes, max(1, end - self.first_send_ns))
