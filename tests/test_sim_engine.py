"""Discrete-event engine behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.after(30, order.append, "c")
        sim.after(10, order.append, "a")
        sim.after(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.after(100, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.after(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.after(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.after(5, order.append, "nested")

        sim.after(10, first)
        sim.after(100, order.append, "last")
        sim.run()
        assert order == ["first", "nested", "last"]
        assert sim.now == 100


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.after(10, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.after(10, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.after(10, lambda: None)
        sim.after(20, lambda: None)
        h.cancel()
        assert sim.peek() == 20


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.after(10, fired.append, "early")
        sim.after(100, fired.append, "late")
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == 50
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=1_000)
        assert sim.now == 1_000

    def test_max_events_bound(self):
        sim = Simulator()
        for _ in range(10):
            sim.after(1, lambda: None)
        sim.run(max_events=3)
        assert sim.events_fired == 3

    def test_run_until_idle_detects_livelock(self):
        sim = Simulator()

        def rescheduler():
            sim.after(1, rescheduler)

        sim.after(1, rescheduler)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)


class TestHeapCompaction:
    def test_compaction_triggers_when_cancelled_dominate(self):
        sim = Simulator()
        keep = [sim.after(1_000 + i, lambda: None) for i in range(40)]
        victims = [sim.after(10_000 + i, lambda: None) for i in range(80)]
        assert sim.pending == 120
        for h in victims:
            h.cancel()
        # Cancelled entries crossed 50% of the heap, so the simulator
        # rebuilt it; afterwards the residue is below the threshold again.
        assert sim.heap_compactions >= 1
        assert sim.pending < 120
        assert sim.cancelled_pending * 2 <= sim.pending
        fired = 0
        while sim.step():
            fired += 1
        assert fired == len(keep)

    def test_no_compaction_below_min_heap_size(self):
        sim = Simulator()
        victims = [sim.after(10 + i, lambda: None) for i in range(20)]
        for h in victims:
            h.cancel()
        assert sim.heap_compactions == 0

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        survivors = []
        victims = []
        # Interleave survivors and victims across the timeline so the
        # rebuild has to re-establish heap order over a shuffled residue.
        for i in range(128):
            t = 1_000 + i * 7
            if i % 3 == 0:
                survivors.append(t)
                sim.after(t, fired.append, t)
            else:
                victims.append(sim.after(t, fired.append, -t))
        for h in victims:
            h.cancel()
        assert sim.heap_compactions >= 1
        sim.run()
        assert fired == sorted(survivors)

    def test_compaction_mid_run_keeps_run_loop_alive(self):
        sim = Simulator()
        fired = []
        victims = [sim.after(50_000 + i, lambda: None) for i in range(100)]

        def cancel_all():
            for h in victims:
                h.cancel()

        sim.after(10, cancel_all)
        sim.after(20, fired.append, "after-compaction")
        sim.run()
        # run() holds a local alias to the heap; in-place compaction must
        # not orphan it.
        assert sim.heap_compactions >= 1
        assert fired == ["after-compaction"]
        assert sim.pending == 0


class TestCalendarQueue:
    """The bucketed scheduler's near/far split: times inside the bucket
    window land in O(1) buckets, times beyond it overflow to a heap and
    migrate in on rebase. None of this may be visible in firing order."""

    def test_far_future_events_overflow_and_fire_in_order(self):
        from repro.sim.engine import WINDOW_NS

        sim = Simulator()
        fired = []
        times = [10, WINDOW_NS - 1, WINDOW_NS + 5, 3 * WINDOW_NS + 17]
        for t in times:
            sim.after(t, fired.append, t)
        assert sim.far_pending == 2
        sim.run()
        assert fired == sorted(times)
        assert sim.calendar_rebases >= 1
        assert sim.far_pending == 0

    def test_rebase_pulls_only_window_worth_of_far_events(self):
        from repro.sim.engine import WINDOW_NS

        sim = Simulator()
        fired = []
        # Far events spread over many windows: each rebase may migrate at
        # most one window's worth, so ordering survives repeated rebases.
        times = [WINDOW_NS * k + 7 * k for k in range(1, 9)]
        for t in times:
            sim.after(t, fired.append, t)
        sim.after(5, fired.append, 5)
        sim.run()
        assert fired == sorted(times + [5])

    def test_cancel_heavy_schedule_straddling_the_boundary(self):
        from repro.sim.engine import WINDOW_NS

        sim = Simulator()
        fired = []
        survivors = []
        victims = []
        # Interleave near-bucket and far-heap entries; cancel two thirds.
        # Compaction must collect live entries from both sides and the
        # rebuilt structure must fire the survivors in time order.
        for i in range(180):
            t = 1_000 + i * (WINDOW_NS // 60)  # spans ~3 windows
            if i % 3 == 0:
                survivors.append(t)
                sim.after(t, fired.append, t)
            else:
                victims.append(sim.after(t, fired.append, -t))
        assert sim.far_pending > 0
        for h in victims:
            h.cancel()
        assert sim.heap_compactions >= 1
        sim.run()
        assert fired == sorted(survivors)
        assert sim.pending == 0

    def test_same_bucket_different_times_fire_in_order(self):
        sim = Simulator()
        fired = []
        # Bucket granularity is coarser than 1 ns: distinct times mapping
        # to one bucket must still fire in (time, seq) order.
        for t in (1_027, 1_025, 1_026, 1_024):
            sim.after(t, fired.append, t)
        sim.run()
        assert fired == [1_024, 1_025, 1_026, 1_027]

    def test_cancelled_far_head_does_not_block_rebase(self):
        from repro.sim.engine import WINDOW_NS

        sim = Simulator()
        fired = []
        head = sim.after(2 * WINDOW_NS, fired.append, "cancelled")
        sim.after(2 * WINDOW_NS + 10, fired.append, "live")
        head.cancel()
        sim.run()
        assert fired == ["live"]
        assert sim.pending == 0
