"""Overlay execution engine.

Runs one verified program per packet. Because the verifier guarantees
forward-only control flow, execution is a single bounded scan; the machine
nevertheless carries a defensive fuel budget so an unverified program cannot
wedge the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import units
from ..config import CostModel
from ..errors import OverlayError
from ..net.headers import TcpHeader
from ..net.packet import Packet
from .isa import (
    ALU_OPS,
    BRANCH_OPS,
    Instr,
    N_REGISTERS,
    OP_ACCEPT,
    OP_CNT,
    OP_DROP,
    OP_HALT,
    OP_JMP,
    OP_LDF,
    OP_LDI,
    OP_METER,
    OP_MIRROR,
    OP_MOV,
    OP_SETCLS,
    OP_SETQ,
    Program,
    VERDICT_ACCEPT,
    VERDICT_DROP,
    WORD_MASK,
)


@dataclass
class ExecResult:
    """Outcome of running a program over one packet."""

    verdict: str
    queue: Optional[int] = None
    sched_class: Optional[int] = None
    mirrors: List[int] = field(default_factory=list)
    instrs_executed: int = 0
    cost_ns: int = 0


@dataclass
class _Meter:
    rate_bps: int
    burst_bytes: int
    tokens: float = 0.0
    last_fill_ns: int = 0

    def conformant(self, now_ns: int, nbytes: int) -> bool:
        elapsed = now_ns - self.last_fill_ns
        if elapsed > 0:
            self.tokens = min(
                float(self.burst_bytes),
                self.tokens + elapsed * self.rate_bps / (8 * units.SEC),
            )
            self.last_fill_ns = now_ns
        if self.tokens >= nbytes:
            self.tokens -= nbytes
            return True
        return False


class OverlayMachine:
    """One loaded overlay slot: program + counters + meters."""

    def __init__(self, program: Program, costs: CostModel):
        self.program = program
        self.costs = costs
        self.counters: List[int] = [0] * program.n_counters
        self._meters: Dict[int, _Meter] = {}
        self.packets_seen = 0

    def configure_meter(self, index: int, rate_bps: int, burst_bytes: int) -> None:
        """Set a meter's token bucket (done by the control plane via MMIO)."""
        if not 0 <= index < self.program.n_meters:
            raise OverlayError(
                f"meter {index} not declared (program has {self.program.n_meters})"
            )
        self._meters[index] = _Meter(
            rate_bps=rate_bps, burst_bytes=burst_bytes,
            tokens=float(burst_bytes),
        )

    def execute(self, pkt: Packet, now_ns: int) -> ExecResult:
        """Run the program over ``pkt``. Fuel-bounded even for unverified
        programs."""
        regs = [0] * N_REGISTERS
        result = ExecResult(verdict=VERDICT_ACCEPT)
        self.packets_seen += 1
        pc = 0
        fuel = len(self.program.instrs) + 1
        instrs = self.program.instrs
        while pc < len(instrs):
            fuel -= 1
            if fuel < 0:
                raise OverlayError(
                    f"program {self.program.name!r} exceeded fuel; was it verified?"
                )
            instr = instrs[pc]
            result.instrs_executed += 1
            op = instr.op
            if op == OP_LDF:
                regs[instr.rd] = _load_field(pkt, instr.field)  # type: ignore[index,arg-type]
                pc += 1
            elif op in (OP_LDI, OP_MOV):
                regs[instr.rd] = self._value(regs, instr)  # type: ignore[index]
                pc += 1
            elif op in ALU_OPS:
                regs[instr.rd] = _alu(op, regs[instr.rd], self._value(regs, instr))  # type: ignore[index]
                pc += 1
            elif op == OP_JMP:
                pc = instr.target  # type: ignore[assignment]
            elif op in BRANCH_OPS:
                taken = _branch(op, regs[instr.ra], self._value(regs, instr))  # type: ignore[index]
                pc = instr.target if taken else pc + 1  # type: ignore[assignment]
            elif op == OP_SETQ:
                result.queue = self._value(regs, instr)
                pc += 1
            elif op == OP_SETCLS:
                result.sched_class = self._value(regs, instr)
                pc += 1
            elif op == OP_MIRROR:
                result.mirrors.append(instr.index)  # type: ignore[arg-type]
                pc += 1
            elif op == OP_CNT:
                self.counters[instr.index] += 1  # type: ignore[index]
                pc += 1
            elif op == OP_METER:
                meter = self._meters.get(instr.index)  # type: ignore[arg-type]
                ok = meter.conformant(now_ns, pkt.wire_len) if meter else True
                regs[instr.rd] = 1 if ok else 0  # type: ignore[index]
                pc += 1
            elif op == OP_DROP:
                result.verdict = VERDICT_DROP
                break
            elif op in (OP_ACCEPT, OP_HALT):
                result.verdict = VERDICT_ACCEPT
                break
            else:  # pragma: no cover - ALL_OPS is closed
                raise OverlayError(f"unimplemented opcode {op!r}")
        result.cost_ns = result.instrs_executed * self.costs.overlay_instr_ns
        return result

    @staticmethod
    def _value(regs: List[int], instr: Instr) -> int:
        kind, value = instr.src  # type: ignore[misc]
        return regs[value] if kind == "reg" else value


def _alu(op: str, a: int, b: int) -> int:
    if op == "add":
        return (a + b) & WORD_MASK
    if op == "sub":
        return (a - b) & WORD_MASK
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b & 31)) & WORD_MASK
    if op == "shr":
        return a >> (b & 31)
    raise OverlayError(f"bad ALU op {op!r}")


def _branch(op: str, a: int, b: int) -> bool:
    return {
        "jeq": a == b,
        "jne": a != b,
        "jlt": a < b,
        "jgt": a > b,
        "jle": a <= b,
        "jge": a >= b,
    }[op]


def _load_field(pkt: Packet, name: str) -> int:
    """Header field extraction; absent fields read as 0."""
    if name == "eth.type":
        return pkt.eth.ethertype
    if name == "arp.op":
        return pkt.arp.op if pkt.arp else 0
    if name.startswith("ip."):
        if pkt.ipv4 is None:
            return 0
        return {
            "ip.src": pkt.ipv4.src.value,
            "ip.dst": pkt.ipv4.dst.value,
            "ip.proto": pkt.ipv4.proto,
            "ip.dscp": pkt.ipv4.dscp,
            "ip.ttl": pkt.ipv4.ttl,
        }[name]
    if name in ("l4.sport", "l4.dport"):
        if pkt.l4 is None:
            return 0
        return pkt.l4.sport if name == "l4.sport" else pkt.l4.dport
    if name == "tcp.flags":
        return pkt.l4.flags if isinstance(pkt.l4, TcpHeader) else 0
    if name == "meta.len":
        return pkt.wire_len
    if name == "meta.conn_id":
        return pkt.meta.conn_id if pkt.meta.conn_id is not None else WORD_MASK
    if name == "meta.queue":
        return pkt.meta.queue_id if pkt.meta.queue_id is not None else 0
    raise OverlayError(f"unknown field {name!r}")
