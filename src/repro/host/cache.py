"""Last-level cache with DDIO way partitioning.

Intel Data Direct I/O lets inbound DMA allocate directly into the LLC — but
only into a fixed subset of ways (2 of 11 by default). The paper's §5
hypothesis is that once the aggregate working set of active per-connection
ring buffers outgrows that DDIO slice, DMA writes start evicting each other,
application reads miss to DRAM, per-packet cost rises, and throughput
collapses — observed past ~1024 concurrent connections.

Two models of the same mechanism live here:

* :class:`WayPartitionedCache` — a structural set-associative LRU cache where
  DMA-allocated lines are capped at ``ddio_ways`` per set. Used by the E8
  benchmark.
* :class:`AnalyticDdioModel` — a closed-form approximation (random-ish access
  within the working set) used for quick examples and cross-checked against
  the structural model by tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from ..config import CostModel
from ..errors import ConfigError

DDIO_OWNER = "ddio"
CPU_OWNER = "cpu"


class WayPartitionedCache:
    """Set-associative LRU cache with a per-set cap on DMA-owned lines.

    Addresses are byte addresses; lines are ``line_bytes`` wide; the set
    index is the usual ``(addr // line) % sets``. Each set is an ordered map
    ``tag -> owner`` in LRU order (oldest first).
    """

    def __init__(
        self,
        sets: int,
        ways: int,
        ddio_ways: int,
        line_bytes: int = 64,
        cpu_fills_allocate: bool = True,
    ):
        if sets < 1 or ways < 1:
            raise ConfigError(f"invalid geometry: sets={sets} ways={ways}")
        if not 0 <= ddio_ways <= ways:
            raise ConfigError(f"ddio_ways={ddio_ways} out of range for {ways} ways")
        if line_bytes < 1 or line_bytes & (line_bytes - 1):
            raise ConfigError(f"line size must be a power of two, got {line_bytes}")
        self.sets = sets
        self.ways = ways
        self.ddio_ways = ddio_ways
        self.line_bytes = line_bytes
        self.cpu_fills_allocate = cpu_fills_allocate
        """When False, CPU read misses do not install the line (non-temporal
        reads). This models a *loaded* server whose application working set
        already owns the CPU ways of the LLC: DMA-delivered ring data then
        survives in cache only inside the DDIO slice, which is the regime
        the paper's §5 scaling cliff lives in. E8 runs in this mode."""
        self._lines: List["OrderedDict[int, str]"] = [OrderedDict() for _ in range(sets)]
        self.stats: Dict[str, int] = {
            "cpu_hits": 0,
            "cpu_misses": 0,
            "dma_hits": 0,
            "dma_fills": 0,
            "ddio_evictions": 0,
            "cpu_evictions": 0,
        }

    @classmethod
    def from_costs(cls, costs: CostModel) -> "WayPartitionedCache":
        return cls(
            sets=costs.llc_sets,
            ways=costs.llc_ways,
            ddio_ways=costs.ddio_ways,
            line_bytes=costs.cache_line_bytes,
        )

    # --- geometry ----------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.sets * self.ways * self.line_bytes

    @property
    def ddio_capacity_bytes(self) -> int:
        return self.sets * self.ddio_ways * self.line_bytes

    def _locate(self, addr: int) -> "tuple[OrderedDict, int]":
        line = addr // self.line_bytes
        return self._lines[line % self.sets], line

    # --- operations ---------------------------------------------------------

    def dma_write(self, addr: int) -> bool:
        """NIC DMA writes one line. Returns True on LLC hit (line updated in
        place), False when a DDIO allocation (possibly evicting) happened —
        or when DDIO is disabled entirely (``ddio_ways == 0``), in which
        case the write goes straight to DRAM and nothing is installed."""
        lru, tag = self._locate(addr)
        if tag in lru:
            # Write-update: line stays with its current owner, becomes MRU.
            lru.move_to_end(tag)
            self.stats["dma_hits"] += 1
            return True
        self.stats["dma_fills"] += 1
        if self.ddio_ways == 0:
            return False
        ddio_count = sum(1 for owner in lru.values() if owner == DDIO_OWNER)
        if ddio_count >= self.ddio_ways:
            self._evict_oldest(lru, DDIO_OWNER)
        elif len(lru) >= self.ways:
            self._evict_oldest(lru, None)
        lru[tag] = DDIO_OWNER
        return False

    def cpu_read(self, addr: int) -> bool:
        """CPU reads one line. Returns True on hit, False on DRAM miss."""
        lru, tag = self._locate(addr)
        if tag in lru:
            lru.move_to_end(tag)
            self.stats["cpu_hits"] += 1
            return True
        self.stats["cpu_misses"] += 1
        if self.cpu_fills_allocate:
            if len(lru) >= self.ways:
                self._evict_oldest(lru, None)
            lru[tag] = CPU_OWNER
        return False

    def _evict_oldest(self, lru: "OrderedDict[int, str]", owner_filter: "str | None") -> None:
        for tag, owner in lru.items():
            if owner_filter is None or owner == owner_filter:
                del lru[tag]
                key = "ddio_evictions" if owner == DDIO_OWNER else "cpu_evictions"
                self.stats[key] += 1
                return
        # No line of the requested owner exists; fall back to global LRU.
        tag = next(iter(lru))
        owner = lru.pop(tag)
        key = "ddio_evictions" if owner == DDIO_OWNER else "cpu_evictions"
        self.stats[key] += 1

    # --- reporting ------------------------------------------------------------

    def cpu_miss_rate(self) -> float:
        total = self.stats["cpu_hits"] + self.stats["cpu_misses"]
        return self.stats["cpu_misses"] / total if total else 0.0

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._lines)

    def reset_stats(self) -> None:
        for key in self.stats:
            self.stats[key] = 0


class AnalyticDdioModel:
    """Closed-form DDIO hit-rate approximation.

    For a hot working set of ``working_set_bytes`` accessed uniformly, an
    LRU-managed slice of ``ddio_capacity`` behaves approximately like random
    replacement: the probability that a line is still resident when re-read
    is ``min(1, capacity / working_set)``.
    """

    def __init__(self, costs: CostModel):
        self.costs = costs

    def hit_rate(self, working_set_bytes: int) -> float:
        if working_set_bytes <= 0:
            return 1.0
        cap = self.costs.ddio_capacity_bytes
        return min(1.0, cap / working_set_bytes)

    def read_cost_ns(self, working_set_bytes: int, lines: int) -> int:
        """Expected cost for the CPU to read ``lines`` cache lines of freshly
        DMA-written data given the active working set."""
        h = self.hit_rate(working_set_bytes)
        per_line = h * self.costs.llc_hit_ns + (1 - h) * self.costs.dram_ns
        return max(1, round(lines * per_line))
