"""The unified interposition plane: registry, commit contract, atomicity.

Every mechanism that can touch a packet — netfilter chains, qdisc
classifiers, conntrack, capture taps, NIC steering, SmartNIC overlay
filters — registers an InterpositionPoint with its machine's PolicyEngine.
These tests pin the registry per plane, the versioned-commit contract
(sync kernel writes vs async overlay loads, stale-window accounting,
failed loads keep the old epoch), and — with Hypothesis — the atomicity
invariant itself: under randomized interleavings of sends and policy
mutations, no packet is ever judged by a mixed-version table, and the
per-point counters reconcile exactly with what the datapath did.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NormanOS
from repro.dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    SidecarDataplane,
    Testbed,
)
from repro.dataplanes.testbed import PEER_IP
from repro.errors import PolicyError
from repro.interpose import InterpositionPoint, PolicyEngine
from repro.kernel.netfilter import ACCEPT, CHAIN_OUTPUT, DROP, NetfilterRule
from repro.net import PROTO_UDP
from repro.sim import Signal, Simulator

ALL_MECHANISMS = {"netfilter", "qdisc", "conntrack", "tap", "steering", "overlay"}

#: What each plane registers at construction: (name, plane, mechanism).
EXPECTED_REGISTRY = {
    KernelPathDataplane: {
        ("netfilter", "kernel", "netfilter"),
        ("qdisc", "kernel", "qdisc"),
        ("sniffer", "kernel", "tap"),
        ("steering", "nic", "steering"),
    },
    SidecarDataplane: {
        ("netfilter", "kernel", "netfilter"),
        ("qdisc", "sidecar", "qdisc"),
        ("sniffer", "sidecar", "tap"),
        ("steering", "nic", "steering"),
    },
    HypervisorDataplane: {
        ("netfilter", "kernel", "netfilter"),
        ("vswitch", "hypervisor", "netfilter"),
        ("sniffer", "hypervisor", "tap"),
        ("steering", "nic", "steering"),
    },
    BypassDataplane: {
        ("netfilter", "kernel", "netfilter"),
        ("steering", "nic", "steering"),
    },
    NormanOS: {
        ("netfilter", "kernel", "netfilter"),
        ("overlay_filters", "nic", "overlay"),
        ("sniffer", "nic", "tap"),
        ("qdisc", "nic", "qdisc"),
        ("steering", "nic", "steering"),
    },
}


class TestRegistry:
    def test_each_plane_registers_its_mechanisms(self):
        for plane_cls, expected in EXPECTED_REGISTRY.items():
            tb = Testbed(plane_cls)
            got = {
                (p.name, p.plane, p.mechanism) for p in tb.machine.interpose
            }
            assert got == expected, plane_cls.name

    def test_all_six_mechanisms_register_through_one_engine(self):
        """KOPI with conntrack enabled exercises the full set: every one of
        the six interposition mechanisms lands in the same registry."""
        tb = Testbed(NormanOS)
        tb.dataplane.control.enable_conntrack()
        mechanisms = {p.mechanism for p in tb.machine.interpose}
        assert mechanisms == ALL_MECHANISMS
        # enable_conntrack is idempotent on the registry.
        tb.dataplane.control.enable_conntrack()
        assert len(tb.machine.interpose) == 6

    def test_targets_resolve_back_to_points(self):
        tb = Testbed(KernelPathDataplane)
        engine = tb.machine.interpose
        assert engine.find_by_target(tb.kernel.filters) is engine.get("netfilter")
        assert engine.find_by_target(object()) is None

    def test_get_unknown_raises_find_returns_none(self):
        engine = PolicyEngine(Simulator())
        assert engine.find("nope") is None
        try:
            engine.get("nope")
        except PolicyError:
            pass
        else:
            raise AssertionError("get() must raise on unknown point")

    def test_duplicate_names_get_suffixes(self):
        engine = PolicyEngine(Simulator())
        a = engine.register(InterpositionPoint("qdisc", "kernel", "qdisc"))
        b = engine.register(InterpositionPoint("qdisc", "kernel", "qdisc"))
        assert a.name == "qdisc" and b.name == "qdisc#2"
        assert engine.get("qdisc#2") is b


class TestCommitContract:
    def test_sync_commit_is_live_on_return(self):
        sim = Simulator()
        engine = PolicyEngine(sim)
        point = engine.register(
            InterpositionPoint("nf", "kernel", "netfilter", install_latency_ns=10_000)
        )
        v = point.record_update()
        assert v == point.version == 1
        assert point.pending_commits == 0
        assert point.committed().triggered  # idle: fires immediately
        (commit,) = engine.commits_for("nf")
        assert commit.mode == "sync"
        assert commit.latency_ns == 10_000  # modeled, not scheduled
        assert commit.submitted_ns == commit.committed_ns

    def test_async_commit_counts_the_stale_window(self):
        sim = Simulator()
        engine = PolicyEngine(sim)
        point = engine.register(InterpositionPoint("overlay", "nic", "overlay"))
        done = Signal("load")
        assert point.begin_commit(done) is done  # chains

        v0 = point.version
        stamped = [point.record_eval(hit=True) for _ in range(3)]
        assert stamped == [v0] * 3  # old epoch while the load is in flight
        assert point.stale_evals == 3
        assert engine.pending() == [point]

        waiter = point.committed()
        gate = engine.all_committed()
        assert not waiter.triggered and not gate.triggered
        sim.after(50_000, done.succeed)
        sim.run_until_idle()

        assert point.version == v0 + 1
        assert waiter.triggered and gate.triggered
        assert point.record_eval() == v0 + 1  # post-commit evals: new epoch
        (commit,) = engine.commits_for("overlay")
        assert commit.mode == "async"
        assert commit.stale_evals == 3
        assert commit.latency_ns == 50_000  # measured, not modeled

    def test_failed_commit_keeps_the_old_epoch(self):
        sim = Simulator()
        engine = PolicyEngine(sim)
        point = engine.register(InterpositionPoint("overlay", "nic", "overlay"))
        point.record_update()
        v = point.version
        done = Signal("bad-load")
        point.begin_commit(done)
        done.fail(PolicyError("verifier rejected"))
        assert point.version == v  # no new epoch from a rejected load
        assert point.pending_commits == 0
        assert point.committed().triggered
        failed = [c for c in engine.commits_for("overlay") if c.mode == "failed"]
        assert len(failed) == 1
        assert point.metrics.counter("failed_commits").value == 1

    def test_record_eval_never_schedules_events(self):
        """The datapath contract: counters only. A hot loop of evals must
        leave the simulator queue untouched (fingerprint safety)."""
        sim = Simulator()
        engine = PolicyEngine(sim)
        point = engine.register(InterpositionPoint("nf", "kernel", "netfilter"))
        before = sim.events_fired
        for _ in range(1_000):
            point.record_eval(hit=True, dropped=False)
        sim.run_until_idle()
        assert sim.events_fired == before
        assert point.evaluated == 1_000 == point.hits


class TestAtomicityProperty:
    """Randomized interleavings of sends and policy mutations on the kernel
    plane. Every OUTPUT evaluation stamps ``(chain, version, verdict,
    examined)`` on the packet; atomic commits mean version -> ruleset is a
    function, so the verdict must be exactly what that version's ruleset
    predicts — a packet judged by a half-edited table would break this."""

    PORTS = (9_000, 9_001, 9_002)

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 3),  # 0/1: send, 2: toggle rule, 3: flush
                st.integers(0, 2),  # which port
                st.integers(1, 30),  # gap to previous op, us
            ),
            min_size=1,
            max_size=24,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_no_packet_observes_a_mixed_version_table(self, ops):
        tb = Testbed(KernelPathDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7_777)
        point = tb.machine.interpose.get("netfilter")
        table = tb.kernel.filters

        seen = []  # ((chain, version, verdict, examined), dport) per eval
        orig_evaluate = table.evaluate

        def spying_evaluate(chain, pkt, owner):
            result = orig_evaluate(chain, pkt, owner)
            seen.append((pkt.meta.notes["nf_eval"], pkt.five_tuple.dport))
            return result

        table.evaluate = spying_evaluate

        dropped_ports = set()
        live_rules = {}
        ruleset_at = {point.version: frozenset()}  # version -> dropped ports
        mutations = 0

        def toggle(port):
            nonlocal mutations
            if port in dropped_ports:
                table.delete(live_rules.pop(port))
                dropped_ports.discard(port)
            else:
                rule = NetfilterRule(
                    verdict=DROP, chain=CHAIN_OUTPUT, proto=PROTO_UDP, dport=port
                )
                table.append(rule)
                live_rules[port] = rule
                dropped_ports.add(port)
            mutations += 1
            ruleset_at[point.version] = frozenset(dropped_ports)

        def flush():
            nonlocal mutations
            table.flush(CHAIN_OUTPUT)
            live_rules.clear()
            dropped_ports.clear()
            mutations += 1
            ruleset_at[point.version] = frozenset()

        now, sends = 0, 0
        for kind, port_sel, gap_us in ops:
            now += gap_us * 1_000
            port = self.PORTS[port_sel]
            if kind <= 1:
                tb.sim.at(now, ep.send, 200, (PEER_IP, port))
                sends += 1
            elif kind == 2:
                tb.sim.at(now, toggle, port)
            else:
                tb.sim.at(now, flush)
        tb.run_all()

        # --- atomicity: verdict is a pure function of the stamped version.
        assert len(seen) == sends
        for (chain, version, verdict, _examined), dport in seen:
            assert chain == CHAIN_OUTPUT
            assert version in ruleset_at
            expected = DROP if dport in ruleset_at[version] else ACCEPT
            assert verdict == expected
        # Epochs only move forward under the eval stream.
        versions = [note[1] for note, _ in seen]
        assert versions == sorted(versions)

        # --- counters reconcile exactly with the observed datapath.
        n_drops = sum(1 for note, _ in seen if note[2] == DROP)
        assert point.evaluated == len(seen)
        assert point.drops == n_drops
        assert point.hits == n_drops  # only DROP rules installed: hit == drop
        assert point.stale_evals == 0  # kernel commits are synchronous
        assert point.version == point.updates == mutations
        commits = tb.machine.interpose.commits_for("netfilter")
        assert len(commits) == mutations
        assert all(c.mode == "sync" for c in commits)
        # Delivered exactly the ACCEPTed sends, nothing judged DROP.
        delivered = [
            p for p in tb.peer.received
            if p.five_tuple and p.five_tuple.dport in self.PORTS
        ]
        assert len(delivered) == sends - n_drops
