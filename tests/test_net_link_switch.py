"""Links, L2 switching, and the in-network interposer."""

import pytest

from repro import units
from repro.errors import SimulationError, UnsupportedOperation
from repro.net import (
    IPv4Address,
    L2Switch,
    Link,
    MacAddress,
    MatchAction,
    NetworkInterposer,
    PROTO_TCP,
    make_arp_request,
    make_udp,
)
from repro.sim import Simulator

MAC = [MacAddress.from_index(i) for i in range(4)]
IP = [IPv4Address.parse(f"10.0.0.{i + 1}") for i in range(4)]


def udp(src=0, dst=1, sport=1000, dport=2000, size=100):
    return make_udp(MAC[src], MAC[dst], IP[src], IP[dst], sport, dport, size)


class TestLink:
    def test_delivery_time_is_serialization_plus_propagation(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.GBPS, propagation_ns=500)
        got = []
        link.attach(lambda p: got.append(sim.now))
        pkt = udp(size=1000 - 42)  # wire length 1000B
        link.send(pkt)
        sim.run()
        assert got == [8_000 + 500]

    def test_back_to_back_serialize(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.GBPS, propagation_ns=0)
        got = []
        link.attach(lambda p: got.append(sim.now))
        link.send(udp(size=958))  # 1000B wire
        link.send(udp(size=958))
        sim.run()
        assert got == [8_000, 16_000]

    def test_drop_tail_when_queue_full(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.KBPS, queue_packets=2)
        link.attach(lambda p: None)
        assert link.send(udp()) is True
        assert link.send(udp()) is True
        assert link.send(udp()) is False
        assert link.metrics.counter("dropped").value == 1

    def test_send_without_receiver_raises(self):
        link = Link(Simulator(), rate_bps=units.GBPS)
        with pytest.raises(SimulationError):
            link.send(udp())

    def test_utilization(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.GBPS, propagation_ns=0)
        link.attach(lambda p: None)
        link.send(udp(size=1208))  # 1250B wire = 10_000 bits
        sim.run()  # now = 10_000 ns; 10_000 bits / (1Gbps * 10us) = 1.0
        assert link.utilization() == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            Link(Simulator(), rate_bps=0)
        with pytest.raises(SimulationError):
            Link(Simulator(), rate_bps=1, queue_packets=0)


def build_star(sim, n_hosts):
    """n hosts on one switch; returns (switch, inboxes, uplinks)."""
    sw = L2Switch(sim)
    inboxes = [[] for _ in range(n_hosts)]
    uplinks = []
    for i in range(n_hosts):
        down = Link(sim, rate_bps=10 * units.GBPS, name=f"down{i}")
        down.attach(lambda p, i=i: inboxes[i].append(p))
        port = sw.add_port(down)
        up = Link(sim, rate_bps=10 * units.GBPS, name=f"up{i}")
        up.attach(sw.ingress(port))
        uplinks.append(up)
    return sw, inboxes, uplinks


class TestL2Switch:
    def test_floods_unknown_then_forwards_learned(self):
        sim = Simulator()
        sw, inboxes, uplinks = build_star(sim, 3)
        uplinks[0].send(udp(src=0, dst=1))
        sim.run()
        assert len(inboxes[1]) == 1
        assert len(inboxes[2]) == 1  # flooded: dst unknown
        uplinks[1].send(udp(src=1, dst=0))
        sim.run()
        assert len(inboxes[0]) == 1
        assert len(inboxes[2]) == 1  # not flooded: MAC 0 was learned

    def test_broadcast_reaches_all_but_sender(self):
        sim = Simulator()
        sw, inboxes, uplinks = build_star(sim, 3)
        uplinks[0].send(make_arp_request(MAC[0], IP[0], IP[1]))
        sim.run()
        assert len(inboxes[0]) == 0
        assert len(inboxes[1]) == 1 and len(inboxes[2]) == 1

    def test_mac_table_learning(self):
        sim = Simulator()
        sw, _, uplinks = build_star(sim, 2)
        uplinks[0].send(udp(src=0, dst=1))
        sim.run()
        assert sw.mac_table()[MAC[0]] == 0

    def test_bad_port_rejected(self):
        sw = L2Switch(Simulator())
        with pytest.raises(SimulationError):
            sw.ingress(0)


class TestNetworkInterposer:
    def test_drop_rule_matches_header_fields(self):
        p4 = NetworkInterposer(Simulator())
        p4.add_rule(MatchAction(action="drop", proto=PROTO_TCP, dport=5432))
        from repro.net import make_tcp

        blocked = make_tcp(MAC[0], MAC[1], IP[0], IP[1], sport=999, dport=5432)
        allowed = make_tcp(MAC[0], MAC[1], IP[0], IP[1], sport=999, dport=3306)
        assert p4.process(blocked) is False
        assert p4.process(allowed) is True

    def test_mirror_collects_five_tuples_only(self):
        p4 = NetworkInterposer(Simulator())
        p4.add_rule(MatchAction(action="mirror"))
        pkt = udp(sport=1234, dport=80)
        pkt.meta.owner_pid = 42  # host-side truth the network never sees
        assert p4.process(pkt) is True
        tuples = p4.observed_five_tuples()
        assert len(tuples) == 1
        assert "pid" not in tuples[0]

    def test_owner_match_is_unsupported(self):
        p4 = NetworkInterposer(Simulator())
        with pytest.raises(UnsupportedOperation):
            p4.add_owner_rule(uid=1000, dport=5432)

    def test_cannot_wake_processes(self):
        with pytest.raises(UnsupportedOperation):
            NetworkInterposer(Simulator()).wake_process(42)

    def test_unknown_action_rejected(self):
        with pytest.raises(SimulationError):
            NetworkInterposer(Simulator()).add_rule(MatchAction(action="nat"))

    def test_first_match_wins(self):
        p4 = NetworkInterposer(Simulator())
        p4.add_rule(MatchAction(action="allow", dport=80))
        p4.add_rule(MatchAction(action="drop"))
        assert p4.process(udp(dport=80)) is True
        assert p4.process(udp(dport=81)) is False


class TestLinkFluid:
    """Satellite: the fluid path must feed the same meters as send()."""

    def test_send_fluid_requires_receiver(self):
        link = Link(Simulator(), rate_bps=units.GBPS)
        assert not link.has_fluid_rx
        with pytest.raises(SimulationError):
            link.send_fluid(10, 1_000)

    def test_mixed_exact_and_fluid_share_counters(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.GBPS, propagation_ns=0)
        link.attach(lambda p: None)
        got = []
        link.attach_fluid(lambda n, wl, dport, flow, eth_dst: got.append((n, wl)))
        assert link.has_fluid_rx
        link.send(udp(size=958))  # 1000B wire
        sim.run()
        link.send_fluid(9, 1_000)
        assert got == [(9, 1_000)]
        assert link.metrics.counter("sent").value == 10
        assert link.metrics.meter("bytes").total_bytes == 10_000
        # Fluid sends model an uncontended wire: no buffer occupancy.
        assert link.in_flight == 0

    def test_utilization_includes_fluid_bytes(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.GBPS, propagation_ns=0)
        link.attach(lambda p: None)
        link.attach_fluid(lambda *a: None)
        link.send(udp(size=583))  # 625B wire = 5000 bits
        sim.run()
        assert link.utilization(elapsed_ns=10_000) == pytest.approx(0.5)
        link.send_fluid(1, 625)  # same bytes again, fluid
        assert link.utilization(elapsed_ns=10_000) == pytest.approx(1.0)


class TestSwitchFluid:
    """Satellite: the learned-port fluid fast path and its demotion hooks."""

    def _fluid_star(self, sim):
        sw, inboxes, uplinks = build_star(sim, 3)
        bulks = [[] for _ in inboxes]
        for i, link in enumerate(sw._ports):
            link.attach_fluid(
                lambda n, wl, dport, flow, eth_dst, i=i: bulks[i].append((n, wl)))
            uplinks[i].attach_fluid(sw.fluid_ingress(i))
        return sw, inboxes, uplinks, bulks

    def test_forward_fluid_moves_counters_to_learned_port(self):
        sim = Simulator()
        sw, inboxes, uplinks, bulks = self._fluid_star(sim)
        uplinks[1].send(udp(src=1, dst=0))  # teach MAC 1 -> port 1
        sim.run()
        frames_before = sw.metrics.counter("frames").value
        uplinks[0].send_fluid(50, 1_000, eth_dst=MAC[1])
        assert bulks[1] == [(50, 1_000)]
        assert bulks[2] == []  # fluid never floods
        assert sw.metrics.counter("frames").value == frames_before + 50
        assert sw.metrics.counter("flooded").value == 1  # only the teach

    def test_forward_fluid_unknown_or_hairpin_is_protocol_violation(self):
        sim = Simulator()
        sw, _, uplinks, _ = self._fluid_star(sim)
        uplinks[1].send(udp(src=1, dst=0))
        sim.run()
        with pytest.raises(SimulationError):
            sw.forward_fluid(0, 10, 1_000, eth_dst=MAC[3])  # never learned
        with pytest.raises(SimulationError):
            sw.forward_fluid(1, 10, 1_000, eth_dst=MAC[1])  # hairpin

    def test_state_change_hooks_fire_before_effect(self):
        sim = Simulator()
        sw, _, uplinks, _ = self._fluid_star(sim)
        learns, floods, rules = [], [], []
        # Hooks observe the pre-change state: that is the demote-first
        # contract RackFastForward relies on.
        sw.on_table_change = lambda mac, port: learns.append(
            (mac, port, sw.mac_table().get(mac)))
        sw.on_flood = lambda pkt: floods.append(pkt.eth.dst)
        sw.on_rule_change = lambda rule: rules.append(
            (rule.action, len(p4.rules)))
        uplinks[0].send(udp(src=0, dst=1))  # learn MAC0 + flood (dst unknown)
        sim.run()
        assert learns == [(MAC[0], 0, None)]
        assert floods == [MAC[1]]
        uplinks[0].send(udp(src=0, dst=1))  # steady: no re-learn
        sim.run()
        assert len(learns) == 1
        p4 = NetworkInterposer(sim)
        sw.attach_interposer(p4)
        p4.add_rule(MatchAction(action="drop", dport=9))
        assert rules == [("drop", 0)]  # fired before the rule landed

    def test_ff_path_steady(self):
        sim = Simulator()
        sw, _, uplinks, _ = self._fluid_star(sim)
        assert not sw.ff_path_steady(MAC[1], 1)  # nothing learned yet
        uplinks[1].send(udp(src=1, dst=0))
        sim.run()
        assert sw.ff_path_steady(MAC[1], 1)
        assert not sw.ff_path_steady(MAC[1], 2)  # wrong port
        p4 = NetworkInterposer(sim)
        sw.attach_interposer(p4)
        assert sw.ff_path_steady(MAC[1], 1)  # empty ruleset is fine
        p4.add_rule(MatchAction(action="allow"))
        assert not sw.ff_path_steady(MAC[1], 1)  # any rule disqualifies

    def test_interposer_drop_consulted_on_exact_path(self):
        sim = Simulator()
        sw, inboxes, uplinks = build_star(sim, 2)
        p4 = NetworkInterposer(sim)
        sw.attach_interposer(p4)
        p4.add_rule(MatchAction(action="drop", dport=2000))
        uplinks[0].send(udp(src=0, dst=1, dport=2000))
        sim.run()
        assert inboxes[1] == []
        assert sw.metrics.counter("frames").value == 1
