"""L2 learning switch and the in-network (P4-style) interposer.

The :class:`NetworkInterposer` is the "interpose at the network" comparator
from §2: a match-action element that can see every header bit but has **no
process-level view** — it cannot match on pid/uid/comm and cannot signal or
wake host processes. The capability-matrix experiment exercises exactly those
refusals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError, UnsupportedOperation
from ..sim import MetricSet, Simulator
from .addresses import MacAddress
from .link import Link
from .packet import Packet


class L2Switch:
    """MAC-learning switch: learn on source, forward on destination, flood
    unknown and broadcast.

    For the hybrid-fidelity engine the switch also exposes a *fluid* fast
    path (:meth:`forward_fluid`): a steady cross-machine flow's epoch moves
    the frame counters and hands the bulk to the learned port's link without
    per-frame events. The fluid path is only valid while the switch state is
    frozen, so every state change — a MAC-table learn/move, a flood, a
    match-action rule install — fires the corresponding ``on_*`` hook
    *before* taking effect (:class:`~..sim.fastforward.RackFastForward`
    demotes bound flows there). All hooks default to None; an unhooked
    switch behaves byte-identically to the seed.
    """

    def __init__(self, sim: Simulator, name: str = "sw0"):
        self.sim = sim
        self.name = name
        self._ports: List[Link] = []
        self._mac_table: Dict[MacAddress, int] = {}
        self._interposer: Optional["NetworkInterposer"] = None
        self._balancer = None  # Optional[L4LoadBalancer], cluster_lb only
        self.metrics = MetricSet(name)
        # Hot-path handles: _forward runs once per cross-host frame.
        self._c_frames = self.metrics.counter("frames")
        self._c_flooded = self.metrics.counter("flooded")
        #: Fired as ``hook(mac, port)`` before a MAC-table learn or move.
        self.on_table_change: Optional[Callable[[MacAddress, int], None]] = None
        #: Fired as ``hook(pkt)`` before a broadcast/unknown-MAC flood.
        self.on_flood: Optional[Callable[[Packet], None]] = None
        #: Fired as ``hook(rule)`` before an attached interposer's rule
        #: install takes effect.
        self.on_rule_change: Optional[Callable[["MatchAction"], None]] = None

    def add_port(self, egress: Link) -> int:
        """Attach an egress link; returns the port number. The caller wires
        the reverse direction by attaching ``switch.ingress(port)``."""
        self._ports.append(egress)
        return len(self._ports) - 1

    def attach_interposer(self, interposer: "NetworkInterposer") -> None:
        """Put a match-action element on the forwarding path: every frame
        runs :meth:`NetworkInterposer.process` before being forwarded, and
        rule installs become switch-state changes (``on_rule_change``)."""
        self._interposer = interposer
        interposer.on_rule_add = self._rule_changed

    def _rule_changed(self, rule: "MatchAction") -> None:
        if self.on_rule_change is not None:
            self.on_rule_change(rule)

    def attach_balancer(self, balancer) -> None:
        """Grow the L4 load-balancer stage (``CostModel.cluster_lb``):
        frames whose destination MAC is one of the balancer's virtual MACs
        are re-written to the chosen backend's MAC between the source learn
        and the destination lookup, then forwarded normally. The balancer
        announces its own steering-table changes through
        :meth:`notify_state_change` so the demote-before-effect contract
        extends to re-steering commits."""
        self._balancer = balancer

    def notify_state_change(self, what=None) -> None:
        """A balancer steering-table change is a switch-state change: fire
        the rule-change hook *before* the caller applies it, exactly like a
        match-action rule install."""
        if self.on_rule_change is not None:
            self.on_rule_change(what)

    def ingress(self, port: int) -> Callable[[Packet], None]:
        """Receive handler for frames arriving on ``port``."""
        if not 0 <= port < len(self._ports):
            raise SimulationError(f"no such port: {port}")

        def handler(pkt: Packet) -> None:
            self._forward(port, pkt)

        return handler

    def _forward(self, in_port: int, pkt: Packet) -> None:
        self._c_frames.inc()
        interposer = self._interposer
        if interposer is not None and not interposer.process(pkt):
            return
        eth = pkt.eth
        table = self._mac_table
        src = eth.src
        if table.get(src) != in_port:
            # Learn/move — a switch-state change; fluid flows demote first
            # so their flushed epochs replay against the pre-change table.
            if self.on_table_change is not None:
                self.on_table_change(src, in_port)
            table[src] = in_port
        balancer = self._balancer
        if balancer is not None:
            steered = balancer.steer(pkt)
            if steered is not None:
                # VIP frame: destination MAC re-written to the chosen
                # backend's; forwarding proceeds over the learned table.
                pkt = steered
                eth = pkt.eth
        dst = eth.dst
        out_port = table.get(dst)
        if dst.is_broadcast or out_port is None:
            if self.on_flood is not None:
                self.on_flood(pkt)
            self._c_flooded.inc()
            for port, link in enumerate(self._ports):
                if port != in_port:
                    link.send(pkt)
            return
        if out_port != in_port:
            self._ports[out_port].send(pkt)

    # -- fluid fast path (hybrid fidelity) ---------------------------------

    def fluid_ingress(self, port: int):
        """Bulk counterpart of :meth:`ingress`: a handler suitable for
        ``Link.attach_fluid`` on a host's uplink, forwarding fluid epochs
        through the learned-port fast path."""
        if not 0 <= port < len(self._ports):
            raise SimulationError(f"no such port: {port}")

        def handler(n: int, wire_len: int, dport: int = 0,
                    flow=None, eth_dst=None) -> None:
            self.forward_fluid(port, n, wire_len, dport, flow, eth_dst)

        return handler

    def forward_fluid(self, in_port: int, n: int, wire_len: int,
                      dport: int = 0, flow=None, eth_dst=None) -> None:
        """Forward ``n`` fast-forwarded same-shape frames along the learned
        path: frame counters move exactly as ``n`` exact frames would, and
        the bulk continues down the learned port's link. Only a frozen path
        may be traversed fluidly — the promotion gate checks it and every
        state change demotes first — so an unknown or hairpin destination
        here is a protocol violation, not a flood."""
        out_port = self._mac_table.get(eth_dst)
        if out_port is None or out_port == in_port:
            raise SimulationError(
                f"switch {self.name!r}: fluid forward to {eth_dst!r} has no "
                "frozen learned path — promotion gate / demotion hooks were "
                "bypassed")
        self._c_frames.inc(n)
        self._ports[out_port].send_fluid(n, wire_len, dport, flow, eth_dst)

    def ff_path_steady(self, mac: MacAddress, port: int) -> bool:
        """Whether the path to ``mac`` is frozen enough to promote over:
        learned on the expected port, and no match-action rules that could
        drop or mirror (any rule disqualifies — fluid epochs must not need
        per-packet rule evaluation)."""
        if self._mac_table.get(mac) != port:
            return False
        interposer = self._interposer
        return interposer is None or not interposer.rules

    def mac_table(self) -> Dict[MacAddress, int]:
        return dict(self._mac_table)


@dataclass(frozen=True)
class MatchAction:
    """One network-level match-action rule: header fields only.

    Any field left ``None`` is a wildcard. There are deliberately no
    pid/uid/comm fields — a switch cannot know them.
    """

    action: str  # "drop" | "allow" | "mirror"
    proto: Optional[int] = None
    src_ip: Optional[object] = None
    dst_ip: Optional[object] = None
    sport: Optional[int] = None
    dport: Optional[int] = None

    def matches(self, pkt: Packet) -> bool:
        ft = pkt.five_tuple
        if ft is None:
            return False
        return (
            (self.proto is None or ft.proto == self.proto)
            and (self.src_ip is None or ft.src_ip == self.src_ip)
            and (self.dst_ip is None or ft.dst_ip == self.dst_ip)
            and (self.sport is None or ft.sport == self.sport)
            and (self.dport is None or ft.dport == self.dport)
        )


class NetworkInterposer:
    """P4-switch/middlebox stand-in: header match-action on a wire tap.

    Insert it between two links with :meth:`process`; install rules with
    :meth:`add_rule`. Attempting anything that needs host state raises
    :class:`UnsupportedOperation`, which is the measured result in E3.
    """

    def __init__(self, sim: Simulator, name: str = "p4"):
        self.sim = sim
        self.name = name
        self.rules: List[MatchAction] = []
        self.mirrored: List[Packet] = []
        self.metrics = MetricSet(name)
        #: Fired as ``hook(rule)`` before a rule lands (wired by
        #: :meth:`L2Switch.attach_interposer`).
        self.on_rule_add: Optional[Callable[[MatchAction], None]] = None

    def add_rule(self, rule: MatchAction) -> None:
        if rule.action not in ("drop", "allow", "mirror"):
            raise SimulationError(f"unknown action: {rule.action}")
        if self.on_rule_add is not None:
            self.on_rule_add(rule)
        self.rules.append(rule)

    def add_owner_rule(self, **_kwargs: object) -> None:
        """Owner-based matching is impossible off-host; always refuses."""
        raise UnsupportedOperation(
            "network-level interposition cannot match on process owner: "
            "packets carry no pid/uid/comm"
        )

    def wake_process(self, _pid: int) -> None:
        """A network element cannot signal host processes."""
        raise UnsupportedOperation(
            "network-level interposition cannot signal or unblock host processes"
        )

    def process(self, pkt: Packet) -> bool:
        """Apply rules to a transiting packet. Returns False when dropped."""
        self.metrics.counter("seen").inc()
        for rule in self.rules:
            if not rule.matches(pkt):
                continue
            if rule.action == "drop":
                self.metrics.counter("dropped").inc()
                return False
            if rule.action == "mirror":
                self.mirrored.append(pkt)
                self.metrics.counter("mirrored").inc()
            return True
        return True

    def observed_five_tuples(self) -> List[str]:
        """What an operator at the network level can see: 5-tuples, never
        processes."""
        return [str(p.five_tuple) for p in self.mirrored if p.five_tuple]
