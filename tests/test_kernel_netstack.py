"""The in-kernel stack end to end: TX costs, RX wakeups, filtering, taps."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.errors import WouldBlock
from repro.host import Machine
from repro.kernel import DROP, Kernel, NetfilterRule
from repro.kernel.netfilter import CHAIN_OUTPUT
from repro.net import IPv4Address, MacAddress, PROTO_UDP, make_udp
from repro.sim import SimProcess

HOST_IP = IPv4Address.parse("10.0.0.1")
HOST_MAC = MacAddress.from_index(1)
PEER_IP = IPv4Address.parse("10.0.0.2")
PEER_MAC = MacAddress.from_index(2)


def build(n_cores=2):
    machine = Machine(n_cores=n_cores)
    wire = []
    kernel = Kernel(machine, HOST_IP, HOST_MAC, nic_send=wire.append)
    kernel.register_neighbor(PEER_IP, PEER_MAC)
    return machine, kernel, wire


class TestTx:
    def test_sendto_emits_attributed_packet(self):
        machine, kernel, wire = build()
        bob = kernel.add_user("bob")
        proc = kernel.spawn("postgres", bob)
        sock = kernel.sockets.bind(proc, PROTO_UDP, 5432)
        results = []
        kernel.netstack.sendto(proc, sock, PEER_IP, 9000, 1_000).add_callback(
            lambda s: results.append(s.value)
        )
        machine.sim.run()
        assert results == [True]
        assert len(wire) == 1
        pkt = wire[0]
        assert pkt.meta.owner_comm == "postgres"
        assert pkt.meta.owner_uid == bob.uid
        assert pkt.eth.dst == PEER_MAC
        assert pkt.five_tuple.dport == 9000

    def test_tx_charges_core_time(self):
        machine, kernel, _ = build()
        proc = kernel.spawn("app", "root", core_id=1)
        sock = kernel.sockets.bind(proc, PROTO_UDP, 2000)
        kernel.netstack.sendto(proc, sock, PEER_IP, 9000, 1_500)
        machine.sim.run()
        core = machine.cpus[1]
        floor = DEFAULT_COSTS.syscall_ns + DEFAULT_COSTS.kernel_tx_pkt_ns
        assert core.busy_ns >= floor
        assert kernel.syscalls.metrics.counter("sendto").value == 1

    def test_output_filter_drops_before_wire(self):
        machine, kernel, wire = build()
        bob = kernel.add_user("bob")
        proc = kernel.spawn("rogue", bob)
        sock = kernel.sockets.bind(proc, PROTO_UDP, 2000)
        kernel.filters.append(
            NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=9000, uid_owner=bob.uid)
        )
        results = []
        kernel.netstack.sendto(proc, sock, PEER_IP, 9000, 100).add_callback(
            lambda s: results.append(s.value)
        )
        machine.sim.run()
        assert results == [False]
        assert wire == []
        assert kernel.netstack.metrics.counter("tx_filtered").value == 1

    def test_mac_fallback_for_unknown_ip(self):
        machine, kernel, wire = build()
        proc = kernel.spawn("app", "root")
        sock = kernel.sockets.bind(proc, PROTO_UDP, 2000)
        stranger = IPv4Address.parse("172.16.5.9")
        kernel.netstack.sendto(proc, sock, stranger, 80, 10)
        machine.sim.run()
        assert wire[0].eth.dst == MacAddress.from_index(stranger.value & 0xFF_FFFF)


class TestRx:
    def rx_pkt(self, dport=7000, size=500, sport=555):
        return make_udp(PEER_MAC, HOST_MAC, PEER_IP, HOST_IP, sport, dport, size)

    def test_blocked_reader_wakes_with_message(self):
        machine, kernel, _ = build()
        proc = kernel.spawn("server", "root")
        sock = kernel.sockets.bind(proc, PROTO_UDP, 7000)
        got = []

        def server():
            msg = yield kernel.netstack.recv(proc, sock)
            got.append((machine.sim.now, msg))

        SimProcess(machine.sim, server())
        machine.sim.after(50_000, kernel.netstack.deliver, self.rx_pkt())
        machine.sim.run()
        assert len(got) == 1
        when, (size, src_ip, sport) = got[0]
        assert (size, src_ip, sport) == (500, PEER_IP, 555)
        # Wake path went through interrupt + scheduler + context switch.
        assert when >= 50_000 + kernel.scheduler.wake_latency_ns()

    def test_queued_delivery_without_reader(self):
        machine, kernel, _ = build()
        proc = kernel.spawn("server", "root")
        sock = kernel.sockets.bind(proc, PROTO_UDP, 7000)
        kernel.netstack.deliver(self.rx_pkt())
        machine.sim.run()
        assert len(sock.rx_queue) == 1
        got = []
        kernel.netstack.recv(proc, sock).add_callback(lambda s: got.append(s.value))
        machine.sim.run()
        assert got[0][0] == 500

    def test_nonblocking_recv_fails_fast(self):
        machine, kernel, _ = build()
        proc = kernel.spawn("poller", "root")
        sock = kernel.sockets.bind(proc, PROTO_UDP, 7000)
        errors = []
        sig = kernel.netstack.recv(proc, sock, blocking=False)
        sig.add_callback(lambda s: errors.append(type(s.exception)))
        machine.sim.run()
        assert errors == [WouldBlock]

    def test_rx_to_unbound_port_counted(self):
        machine, kernel, _ = build()
        kernel.netstack.deliver(self.rx_pkt(dport=4444))
        machine.sim.run()
        assert kernel.netstack.metrics.counter("rx_no_socket").value == 1

    def test_rx_attributes_owner_at_demux(self):
        machine, kernel, _ = build()
        bob = kernel.add_user("bob")
        proc = kernel.spawn("postgres", bob)
        kernel.sockets.bind(proc, PROTO_UDP, 7000)
        seen = []
        kernel.netstack.add_tap(seen.append)
        kernel.netstack.deliver(self.rx_pkt())
        machine.sim.run()
        assert seen[0].meta.owner_comm == "postgres"


class TestTaps:
    def test_tap_sees_both_directions_and_detaches(self):
        machine, kernel, _ = build()
        proc = kernel.spawn("app", "root")
        sock = kernel.sockets.bind(proc, PROTO_UDP, 7000)
        seen = []
        detach = kernel.netstack.add_tap(seen.append)
        kernel.netstack.sendto(proc, sock, PEER_IP, 9000, 10)
        pkt_in = make_udp(PEER_MAC, HOST_MAC, PEER_IP, HOST_IP, 555, 7000, 20)
        kernel.netstack.deliver(pkt_in)
        machine.sim.run()
        assert len(seen) == 2
        detach()
        kernel.netstack.sendto(proc, sock, PEER_IP, 9000, 10)
        machine.sim.run()
        assert len(seen) == 2


class TestKernelFacade:
    def test_spawn_validates_core(self):
        _, kernel, _ = build(n_cores=2)
        with pytest.raises(Exception):
            kernel.spawn("app", "root", core_id=7)

    def test_observe_arp_populates_cache(self):
        machine, kernel, _ = build()
        from repro.net import make_arp_request

        kernel.observe_arp(make_arp_request(PEER_MAC, PEER_IP, HOST_IP))
        assert kernel.arp_cache.lookup(PEER_IP).mac == PEER_MAC
        assert kernel.mac_for(PEER_IP) == PEER_MAC

    def test_snapshot_merges_subsystems(self):
        machine, kernel, _ = build()
        proc = kernel.spawn("app", "root")
        sock = kernel.sockets.bind(proc, PROTO_UDP, 2000)
        kernel.netstack.sendto(proc, sock, PEER_IP, 80, 10)
        machine.sim.run()
        snap = kernel.snapshot()
        assert snap["syscall.total"] >= 1
        assert snap["netstack.tx_pkts"] == 1

    def test_egress_paced_at_line_rate(self):
        """Back-to-back sends serialize at the NIC rate, not instantly."""
        machine = Machine(n_cores=1, costs=DEFAULT_COSTS.replace())
        times = []
        kernel = Kernel(
            machine, HOST_IP, HOST_MAC,
            nic_send=lambda p: times.append(machine.sim.now),
            tx_rate_bps=units.GBPS,
        )
        kernel.register_neighbor(PEER_IP, PEER_MAC)
        proc = kernel.spawn("app", "root")
        sock = kernel.sockets.bind(proc, PROTO_UDP, 2000)
        for _ in range(3):
            kernel.netstack.sendto(proc, sock, PEER_IP, 80, 958)
        machine.sim.run()
        assert len(times) == 3
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= 8_000 for g in gaps)  # 1000B wire at 1 Gbps
