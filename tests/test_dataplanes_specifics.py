"""Dataplane-specific behaviours and failure injection not covered by the
common parametrized suite."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.core import NormanOS
from repro.dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    QosConfig,
    SidecarDataplane,
    Testbed,
)
from repro.dataplanes.testbed import PEER_IP
from repro.errors import NicResourceExhausted
from repro.kernel import CHAIN_OUTPUT, DROP, NetfilterRule
from repro.net import PROTO_UDP
from repro.sim import SimProcess
from repro.apps import BulkSender


class TestSidecarSpecifics:
    def test_sidecar_core_is_burned_by_traffic(self):
        tb = Testbed(SidecarDataplane)
        sidecar_core = tb.dataplane.sidecar_core_id
        app = BulkSender(tb, comm="bulk", user="bob", core_id=1, count=100).start()
        tb.run_all()
        assert app.sent == 100
        assert tb.dataplane.sidecar_core_busy_ns() > 0
        # The sidecar core did more work than the fixed per-packet app cost.
        assert tb.machine.cpus[sidecar_core].busy_ns > tb.machine.cpus[1].busy_ns

    def test_sidecar_qos_splits_shares(self):
        tb = Testbed(SidecarDataplane, link_rate_bps=units.GBPS)
        tb.kernel.cgroups.create("/a")
        tb.kernel.cgroups.create("/b")
        a = BulkSender(tb, comm="appa", user="bob", core_id=1,
                       payload_len=1_000, count=None)
        b = BulkSender(tb, comm="appb", user="bob", core_id=2,
                       payload_len=1_000, count=None,
                       dst=(PEER_IP, 9_001))
        tb.kernel.cgroups.assign(a.proc, "/a")
        tb.kernel.cgroups.assign(b.proc, "/b")
        tb.dataplane.configure_qos(QosConfig(weights_by_cgroup={"/a": 1, "/b": 3}))
        a.start()
        b.start()
        tb.run(until=10 * units.MS)
        a.stop()
        b.stop()
        a_bytes = tb.peer.bytes_to_dport(9_000)
        b_bytes = tb.peer.bytes_to_dport(9_001)
        assert b_bytes / (a_bytes + b_bytes) == pytest.approx(0.75, abs=0.08)

    def test_sidecar_rx_filter_drops_before_app(self):
        tb = Testbed(SidecarDataplane)
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        tb.dataplane.install_filter_rule(
            NetfilterRule(verdict=DROP, chain="INPUT", dport=7000)
        )
        tb.peer.send_udp(1, 7000, 100)
        tb.run_all()
        assert len(ep.rx_queue) == 0

    def test_sidecar_port_arbitration(self):
        from repro.errors import AddressInUse, PermissionDenied

        tb = Testbed(SidecarDataplane)
        a = tb.spawn("a", "bob", core_id=1)
        b = tb.spawn("b", "charlie", core_id=2)
        tb.dataplane.open_endpoint(a, PROTO_UDP, 8000)
        with pytest.raises(AddressInUse):
            tb.dataplane.open_endpoint(b, PROTO_UDP, 8000)
        with pytest.raises(PermissionDenied):
            tb.dataplane.open_endpoint(b, PROTO_UDP, 53)


class TestHypervisorSpecifics:
    def test_vswitch_filters_tx_too(self):
        tb = Testbed(HypervisorDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        tb.dataplane.install_filter_rule(
            NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=9000)
        )
        ep.send(10, dst=(PEER_IP, 9000))
        ep.send(10, dst=(PEER_IP, 9001))
        tb.run_all()
        assert [p.five_tuple.dport for p in tb.peer.received] == [9001]

    def test_queue_exhaustion(self):
        tb = Testbed(HypervisorDataplane, n_queues=2)
        a = tb.spawn("a", "bob", core_id=1)
        tb.dataplane.open_endpoint(a, PROTO_UDP, 6000)
        tb.dataplane.open_endpoint(a, PROTO_UDP, 6001)
        with pytest.raises(NicResourceExhausted):
            tb.dataplane.open_endpoint(a, PROTO_UDP, 6002)


class TestBypassSpecifics:
    def test_queue_exhaustion(self):
        tb = Testbed(BypassDataplane, n_queues=1)
        a = tb.spawn("a", "bob", core_id=1)
        tb.dataplane.open_endpoint(a, PROTO_UDP, 6000)
        with pytest.raises(NicResourceExhausted):
            tb.dataplane.open_endpoint(a, PROTO_UDP, 6001)

    def test_total_polls_accounting(self):
        tb = Testbed(BypassDataplane)
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)

        def server():
            msg = yield ep.recv(blocking=True)
            ep.close()
            return msg

        SimProcess(tb.sim, server())
        tb.sim.after(100_000, tb.peer.send_udp, 1, 7000, 10)
        tb.run(until=1_000_000)
        assert tb.dataplane.total_polls() > 100


class TestOverloadFailureInjection:
    def test_ingress_link_drops_under_flood_without_deadlock(self):
        """Oversubscribing the wire loses packets at drop-tail queues;
        the system keeps running and accounts every loss."""
        tb = Testbed(NormanOS, link_queue_packets=16)
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        sent = dropped = 0
        for _ in range(200):  # all at t=0, way beyond the 16-slot queue
            if tb.peer.send_udp(1, 7000, 1_400):
                sent += 1
            else:
                dropped += 1
        tb.run_all()
        assert dropped > 0
        assert sent + dropped == 200
        assert tb.ingress.metrics.counter("dropped").value == dropped
        # Everything that made it onto the wire is in the ring or counted.
        delivered = ep.conn.rings.rx.occupancy
        ring_drops = tb.dataplane.nic.metrics.counter("rx_ring_drops").value
        assert delivered + ring_drops == sent

    def test_rx_ring_overflow_counted(self):
        costs = DEFAULT_COSTS.replace(rx_ring_entries=4)
        tb = Testbed(NormanOS, costs=costs)
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        for i in range(10):
            tb.sim.after(1_000 * (i + 1), tb.peer.send_udp, 1, 7000, 100)
        tb.run_all()
        assert ep.conn.rings.rx.occupancy == 4
        assert tb.dataplane.nic.metrics.counter("rx_ring_drops").value == 6

    def test_scheduler_backlog_drops_counted(self):
        """TX flood into a slow link: the NIC scheduler's queue is finite."""
        tb = Testbed(NormanOS, link_rate_bps=units.MBPS)
        proc = tb.spawn("blaster", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)

        def blast():
            for _ in range(200):
                yield ep.send(1_400, dst=(PEER_IP, 9000))

        SimProcess(tb.sim, blast())
        tb.run(until=50 * units.MS)
        nic = tb.dataplane.nic
        emitted = nic.metrics.counter("tx_pkts").value
        backlog = nic.scheduler.backlog
        drops = nic.metrics.counter("tx_sched_drops").value
        consumed = ep.conn.tx_packets
        assert consumed == emitted + backlog + drops  # conservation
