"""Scheduler block/wake and the syscall layer."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.errors import InvalidSyscall, KernelError
from repro.host import CpuSet
from repro.kernel import KernelScheduler, PROC_BLOCKED, PROC_RUNNING, SyscallLayer, User
from repro.kernel.process import Process
from repro.sim import SimProcess, Simulator


def setup():
    sim = Simulator()
    cpus = CpuSet(sim, 2, DEFAULT_COSTS)
    sched = KernelScheduler(sim, cpus, DEFAULT_COSTS)
    proc = Process(pid=1, comm="app", user=User(1000, "bob"), core_id=0)
    return sim, cpus, sched, proc


class TestScheduler:
    def test_block_leaves_core_idle(self):
        sim, cpus, sched, proc = setup()
        sched.block(proc)
        sim.run(until=1_000_000)
        assert cpus[0].busy_ns == 0
        assert proc.state == PROC_BLOCKED
        assert sched.is_blocked(1)

    def test_wake_charges_fixed_cost_then_resumes(self):
        sim, cpus, sched, proc = setup()
        got = []
        woken = sched.block(proc)
        woken.add_callback(lambda s: got.append((sim.now, s.value)))
        sim.after(10_000, sched.wake, proc, "data")
        sim.run()
        expected = 10_000 + sched.wake_latency_ns()
        assert got == [(expected, "data")]
        assert proc.state == PROC_RUNNING
        assert cpus[0].busy_ns == sched.wake_latency_ns()

    def test_wake_without_interrupt_cheaper(self):
        _, _, sched, _ = setup()
        assert (
            sched.wake_latency_ns(via_interrupt=False)
            == sched.wake_latency_ns() - DEFAULT_COSTS.interrupt_ns
        )

    def test_block_twice_rejected(self):
        _, _, sched, proc = setup()
        sched.block(proc)
        with pytest.raises(KernelError):
            sched.block(proc)

    def test_wake_unblocked_rejected(self):
        _, _, sched, proc = setup()
        with pytest.raises(KernelError):
            sched.wake(proc)

    def test_block_durations_recorded(self):
        sim, _, sched, proc = setup()
        sched.block(proc)
        sim.after(5_000, sched.wake, proc)
        sim.run()
        hist = sched.metrics.histogram("block_ns")
        assert hist.count == 1
        assert hist.mean >= 5_000

    def test_generator_integration(self):
        """A simulated process blocks in recv-style and resumes with data."""
        sim, _, sched, proc = setup()
        log = []

        def app():
            value = yield sched.block(proc, "recv")
            log.append((sim.now, value))

        SimProcess(sim, app())
        sim.after(1_000, sched.wake, proc, "pkt")
        sim.run()
        assert log[0][1] == "pkt"
        assert log[0][0] >= 1_000 + sched.wake_latency_ns()


class TestSyscallLayer:
    def test_invoke_charges_entry_plus_work(self):
        sim, cpus, _, proc = setup()
        syscalls = SyscallLayer(sim, cpus, DEFAULT_COSTS)
        done_at = []
        syscalls.invoke(proc, "sendto", work_ns=1_000).add_callback(
            lambda s: done_at.append(sim.now)
        )
        sim.run()
        assert done_at == [DEFAULT_COSTS.syscall_ns + 1_000]
        assert syscalls.total_syscalls == 1
        assert syscalls.metrics.counter("sendto").value == 1

    def test_copy_costs_accounted(self):
        sim, cpus, _, proc = setup()
        syscalls = SyscallLayer(sim, cpus, DEFAULT_COSTS)
        cost = syscalls.copy_to_kernel(proc, 10_000)
        assert cost == DEFAULT_COSTS.copy_ns(10_000)
        assert syscalls.metrics.counter("copy_in_bytes").value == 10_000
        syscalls.copy_to_user(proc, 500)
        assert syscalls.metrics.counter("copy_out_bytes").value == 500

    def test_negative_work_rejected(self):
        sim, cpus, _, proc = setup()
        syscalls = SyscallLayer(sim, cpus, DEFAULT_COSTS)
        with pytest.raises(InvalidSyscall):
            syscalls.invoke(proc, "bad", work_ns=-1)

    def test_syscalls_serialize_on_core(self):
        sim, cpus, _, proc = setup()
        syscalls = SyscallLayer(sim, cpus, DEFAULT_COSTS)
        ends = []
        syscalls.invoke(proc, "a").add_callback(lambda s: ends.append(sim.now))
        syscalls.invoke(proc, "b").add_callback(lambda s: ends.append(sim.now))
        sim.run()
        assert ends == [DEFAULT_COSTS.syscall_ns, 2 * DEFAULT_COSTS.syscall_ns]
