"""Two complete hosts joined by an L2 switch.

The single-host :class:`~repro.dataplanes.testbed.Testbed` talks to a
synthetic peer; this testbed builds *two full stacks* (each with its own
machine, kernel, NIC, and — possibly different — dataplane) so experiments
can exercise genuine end-to-end paths: a Norman host serving a bypass host,
attributed captures of cross-host RPC, switch MAC learning, and so on.
"""

from __future__ import annotations

from typing import List, Optional, Type

from ..config import DEFAULT_COSTS, CostModel
from ..host.machine import Machine
from ..net.addresses import IPv4Address, MacAddress
from ..net.link import Link
from ..net.switch import L2Switch
from ..sim import Simulator
from ..sim.fastforward import RackFastForward
from .base import Dataplane

HOST_A_IP = IPv4Address.parse("10.0.0.1")
HOST_A_MAC = MacAddress.from_index(1)
HOST_B_IP = IPv4Address.parse("10.0.0.2")
HOST_B_MAC = MacAddress.from_index(2)


class HostStack:
    """One host's machine + dataplane, wired to a switch port."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        plane_cls: Type[Dataplane],
        ip: IPv4Address,
        mac: MacAddress,
        switch: L2Switch,
        costs: CostModel,
        n_cores: int,
        link_rate_bps: int,
        **plane_kwargs: object,
    ):
        self.name = name
        self.ip = ip
        self.mac = mac
        self.machine = Machine(sim=sim, costs=costs, n_cores=n_cores)
        # Downlink: switch -> host, feeds the dataplane's RX entry.
        self.downlink = Link(sim, link_rate_bps, costs.link_propagation_ns,
                             name=f"{name}.down")
        self.port = switch.add_port(self.downlink)
        # Uplink: host -> switch; this is the dataplane's egress.
        self.uplink = Link(sim, link_rate_bps, costs.link_propagation_ns,
                           name=f"{name}.up")
        self.uplink.attach(switch.ingress(self.port))
        self.dataplane: Dataplane = plane_cls(  # type: ignore[call-arg]
            self.machine, ip, mac, self.uplink, **plane_kwargs
        )
        self.downlink.attach(self.dataplane.wire_rx)  # type: ignore[attr-defined]
        if costs.fast_forward and costs.ff_cross_machine:
            # The rack-scale fluid path: the uplink forwards epochs through
            # the switch's learned-port fast path, and the downlink lands
            # them in this host's promoted RX flows. A plane without a
            # fluid RX entry (the kernel stack) only skips the downlink
            # hook — its RX hot path never promotes, and the sender-side
            # gate refuses TX promotion toward an unpromoted receiver, so
            # no fluid epoch can ever be aimed at it.
            self.uplink.attach_fluid(switch.fluid_ingress(self.port))
            rx_fluid = getattr(self.dataplane, "wire_rx_fluid", None)
            if rx_fluid is not None:
                self.downlink.attach_fluid(rx_fluid)

    @property
    def kernel(self):
        return getattr(self.dataplane, "kernel")

    def user(self, name: str):
        users = self.kernel.users
        return users.by_name(name) if name in users else users.add(name)

    def spawn(self, comm: str, user_name: str = "root", core_id: int = 0):
        return self.kernel.spawn(comm, self.user(user_name), core_id=core_id)


class TwoHostTestbed:
    """Host A and host B on one switch, possibly running different
    dataplanes."""

    __test__ = False

    def __init__(
        self,
        plane_a: Type[Dataplane],
        plane_b: Type[Dataplane],
        costs: CostModel = DEFAULT_COSTS,
        n_cores: int = 4,
        link_rate_bps: Optional[int] = None,
        plane_a_kwargs: Optional[dict] = None,
        plane_b_kwargs: Optional[dict] = None,
    ):
        self.sim = Simulator()
        rate = link_rate_bps or costs.nic_line_rate_bps
        self.switch = L2Switch(self.sim)
        self.host_a = HostStack(
            self.sim, "hostA", plane_a, HOST_A_IP, HOST_A_MAC, self.switch,
            costs, n_cores, rate, **(plane_a_kwargs or {}),
        )
        self.host_b = HostStack(
            self.sim, "hostB", plane_b, HOST_B_IP, HOST_B_MAC, self.switch,
            costs, n_cores, rate, **(plane_b_kwargs or {}),
        )
        # The simulation's address book (no ARP resolution delays).
        self.host_a.kernel.register_neighbor(HOST_B_IP, HOST_B_MAC)
        self.host_b.kernel.register_neighbor(HOST_A_IP, HOST_A_MAC)
        # Rack-scale fast-forward: one coordinator above the per-machine
        # controllers binds steady A→switch→B flows into end-to-end epochs.
        self.rack: Optional[RackFastForward] = None
        if costs.fast_forward and costs.ff_cross_machine:
            self.rack = RackFastForward(self.switch)
            for host in (self.host_a, self.host_b):
                self.rack.add_host(
                    host.name, host.machine,
                    rx_plane=host.dataplane,
                    tx_plane=getattr(host.dataplane, "tx_ff", None),
                    ip=host.ip, mac=host.mac, port=host.port,
                    uplink=host.uplink, downlink=host.downlink,
                )

    @property
    def hosts(self) -> List[HostStack]:
        return [self.host_a, self.host_b]

    def run(self, until: Optional[int] = None) -> int:
        return self.sim.run(until=until)

    def run_all(self, max_events: int = 10_000_000) -> int:
        return self.sim.run_until_idle(max_events=max_events)
