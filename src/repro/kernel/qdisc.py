"""Queueing disciplines: pfifo, token bucket, deficit round robin, prio.

These are the `tc`-configurable policies of the §2 QoS scenario. The same
qdisc objects run in two places: inside the software kernel (baseline
dataplane) and compiled onto the SmartNIC scheduler (KOPI) — the point of
§4.4 is that the *policy* is identical, only its execution site moves.

The interface is poll-based so both a software runner and the NIC scheduler
can drive it:

* ``enqueue(pkt, cls)`` — admit a packet (False = tail drop);
* ``dequeue(now_ns)`` — next packet permitted to leave at ``now_ns``;
* ``next_ready_ns(now_ns)`` — when a dequeue could next succeed (None when
  empty), so the runner knows when to wake up without busy polling.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .. import units
from ..errors import PolicyError
from ..net.packet import Packet

DEFAULT_CLASS = "default"


class Qdisc:
    """Interface; see module docstring."""

    def enqueue(self, pkt: Packet, cls: str = DEFAULT_CLASS) -> bool:
        raise NotImplementedError

    def dequeue(self, now_ns: int) -> Optional[Packet]:
        raise NotImplementedError

    def next_ready_ns(self, now_ns: int) -> Optional[int]:
        raise NotImplementedError

    @property
    def backlog(self) -> int:
        raise NotImplementedError


class PfifoQdisc(Qdisc):
    """Plain FIFO with a packet-count limit (Linux default qdisc shape)."""

    def __init__(self, limit: int = 1_000):
        if limit < 1:
            raise PolicyError(f"pfifo limit must be >= 1, got {limit}")
        self.limit = limit
        self._queue: Deque[Packet] = deque()
        self.dropped = 0

    def enqueue(self, pkt: Packet, cls: str = DEFAULT_CLASS) -> bool:
        if len(self._queue) >= self.limit:
            self.dropped += 1
            return False
        self._queue.append(pkt)
        return True

    def dequeue(self, now_ns: int) -> Optional[Packet]:
        return self._queue.popleft() if self._queue else None

    def next_ready_ns(self, now_ns: int) -> Optional[int]:
        return now_ns if self._queue else None

    @property
    def backlog(self) -> int:
        return len(self._queue)


class TbfQdisc(Qdisc):
    """Token bucket filter: rate + burst, like ``tc qdisc add ... tbf``."""

    def __init__(self, rate_bps: int, burst_bytes: int, limit: int = 1_000):
        if rate_bps <= 0:
            raise PolicyError(f"tbf rate must be positive: {rate_bps}")
        if burst_bytes < 1:
            raise PolicyError(f"tbf burst must be >= 1 byte: {burst_bytes}")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.limit = limit
        self._queue: Deque[Packet] = deque()
        self._tokens = float(burst_bytes)
        self._last_fill_ns = 0
        self.dropped = 0

    def _refill(self, now_ns: int) -> None:
        elapsed = now_ns - self._last_fill_ns
        if elapsed <= 0:
            return
        self._tokens = min(
            float(self.burst_bytes),
            self._tokens + elapsed * self.rate_bps / (8 * units.SEC),
        )
        self._last_fill_ns = now_ns

    def enqueue(self, pkt: Packet, cls: str = DEFAULT_CLASS) -> bool:
        if pkt.wire_len > self.burst_bytes:
            # Linux tbf drops frames larger than the bucket — they could
            # never accumulate enough tokens to leave.
            self.dropped += 1
            return False
        if len(self._queue) >= self.limit:
            self.dropped += 1
            return False
        self._queue.append(pkt)
        return True

    def dequeue(self, now_ns: int) -> Optional[Packet]:
        if not self._queue:
            return None
        self._refill(now_ns)
        head = self._queue[0]
        if self._tokens < head.wire_len:
            return None
        self._tokens -= head.wire_len
        return self._queue.popleft()

    def next_ready_ns(self, now_ns: int) -> Optional[int]:
        if not self._queue:
            return None
        self._refill(now_ns)
        deficit = self._queue[0].wire_len - self._tokens
        if deficit <= 0:
            return now_ns
        wait = int(deficit * 8 * units.SEC / self.rate_bps) + 1
        return now_ns + wait

    @property
    def backlog(self) -> int:
        return len(self._queue)


class DrrQdisc(Qdisc):
    """Deficit round robin — the work-conserving weighted fair queueing of
    the §2 QoS scenario. Weights are relative byte shares."""

    def __init__(self, weights: Dict[str, int], quantum_bytes: int = 1_514, limit: int = 1_000):
        if not weights:
            raise PolicyError("DRR needs at least one class")
        if any(w < 1 for w in weights.values()):
            raise PolicyError(f"weights must be >= 1: {weights}")
        self.weights = dict(weights)
        self.quantum_bytes = quantum_bytes
        self.limit = limit
        self._queues: Dict[str, Deque[Packet]] = {c: deque() for c in weights}
        self._deficits: Dict[str, int] = {c: 0 for c in weights}
        self._active: Deque[str] = deque()
        self.dropped = 0
        self.sent_bytes: Dict[str, int] = {c: 0 for c in weights}

    def enqueue(self, pkt: Packet, cls: str = DEFAULT_CLASS) -> bool:
        if cls not in self._queues:
            raise PolicyError(f"unknown DRR class: {cls!r} (have {sorted(self._queues)})")
        q = self._queues[cls]
        if len(q) >= self.limit:
            self.dropped += 1
            return False
        q.append(pkt)
        if cls not in self._active:
            self._active.append(cls)
            self._deficits[cls] = 0
        return True

    def dequeue(self, now_ns: int) -> Optional[Packet]:
        # Bounded scan: each active class visited at most twice per call
        # (once to top up deficit, once after).
        for _ in range(2 * len(self._active) + 1):
            if not self._active:
                return None
            cls = self._active[0]
            q = self._queues[cls]
            if not q:
                self._active.popleft()
                continue
            head = q[0]
            if self._deficits[cls] >= head.wire_len:
                self._deficits[cls] -= head.wire_len
                self.sent_bytes[cls] += head.wire_len
                q.popleft()
                if not q:
                    self._active.popleft()
                return head
            # Give this class its quantum and rotate.
            self._deficits[cls] += self.quantum_bytes * self.weights[cls]
            self._active.rotate(-1)
        return None

    def next_ready_ns(self, now_ns: int) -> Optional[int]:
        return now_ns if any(self._queues.values()) else None

    @property
    def backlog(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def share_of(self, cls: str) -> float:
        """Fraction of all dequeued bytes that went to ``cls``."""
        total = sum(self.sent_bytes.values())
        return self.sent_bytes.get(cls, 0) / total if total else 0.0


class PrioQdisc(Qdisc):
    """Strict priority bands; band 0 always drains first."""

    def __init__(self, bands: int = 3, limit: int = 1_000):
        if bands < 1:
            raise PolicyError(f"need at least one band: {bands}")
        self.bands = bands
        self.limit = limit
        self._queues: List[Deque[Packet]] = [deque() for _ in range(bands)]
        self.dropped = 0

    def enqueue(self, pkt: Packet, cls: str = DEFAULT_CLASS) -> bool:
        try:
            band = 0 if cls == DEFAULT_CLASS else int(cls)
        except ValueError as exc:
            raise PolicyError(f"prio class must be a band number, got {cls!r}") from exc
        if not 0 <= band < self.bands:
            raise PolicyError(f"band out of range: {band}")
        q = self._queues[band]
        if len(q) >= self.limit:
            self.dropped += 1
            return False
        q.append(pkt)
        return True

    def dequeue(self, now_ns: int) -> Optional[Packet]:
        for q in self._queues:
            if q:
                return q.popleft()
        return None

    def next_ready_ns(self, now_ns: int) -> Optional[int]:
        return now_ns if any(self._queues) else None

    @property
    def backlog(self) -> int:
        return sum(len(q) for q in self._queues)


def qdisc_from_spec(kind: str, **params: object) -> Qdisc:
    """Factory used by the `tc` tool and the overlay compiler."""
    kinds = {
        "pfifo": PfifoQdisc,
        "tbf": TbfQdisc,
        "drr": DrrQdisc,
        "wfq": DrrQdisc,  # the paper says WFQ; DRR is its practical form
        "prio": PrioQdisc,
    }
    if kind not in kinds:
        raise PolicyError(f"unknown qdisc kind: {kind!r} (have {sorted(kinds)})")
    return kinds[kind](**params)  # type: ignore[arg-type]
