"""Point-to-point link with rate, propagation delay, and a drop-tail queue."""

from __future__ import annotations

from typing import Callable, Optional

from .. import units
from ..errors import SimulationError
from ..sim import MetricSet, Simulator
from ..trace import STAGE_WIRE, charge
from .packet import Packet

RxHandler = Callable[[Packet], None]
#: Bulk receiver: ``handler(n, wire_len, dport, flow, eth_dst)``.
FluidRxHandler = Callable[[int, int, int, object, object], None]


class Link:
    """Unidirectional link. ``send`` serializes at the line rate, waits the
    propagation delay, then hands the packet to the attached receiver.

    A finite buffer ahead of the serializer drops excess packets (drop-tail),
    so oversubscription shows up as loss, not as unbounded memory.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: int,
        propagation_ns: int = 500,
        queue_packets: int = 1_024,
        name: str = "link",
    ):
        if rate_bps <= 0:
            raise SimulationError(f"link rate must be positive: {rate_bps}")
        if queue_packets < 1:
            raise SimulationError(f"queue must hold at least 1 packet: {queue_packets}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.queue_packets = queue_packets
        self.name = name
        self.metrics = MetricSet(name)
        self._rx: Optional[RxHandler] = None
        self._rx_fluid: Optional[FluidRxHandler] = None
        self._tx_free_at = 0
        self._queued = 0
        # Hot-path handles: send()/send_fluid() run once per packet (or
        # epoch) on every cross-host hop, so the metric lookups are resolved
        # here instead of per call.
        self._c_sent = self.metrics.counter("sent")
        self._c_dropped = self.metrics.counter("dropped")
        self._m_bytes = self.metrics.meter("bytes")

    def attach(self, handler: RxHandler) -> None:
        """Set the receiver callback; replaces any previous one."""
        self._rx = handler

    def attach_fluid(self, handler: FluidRxHandler) -> None:
        """Set the bulk counterpart of the receiver: called as
        ``handler(n, wire_len, dport, flow, eth_dst)`` when a fluid epoch
        replays ``n`` same-shape sends (see :meth:`send_fluid`)."""
        self._rx_fluid = handler

    @property
    def has_fluid_rx(self) -> bool:
        """Whether a fluid epoch can land on the far end of this link. A
        plane must not promote a TX flow over a link without one — the wire
        would silently eat the bulk (see :meth:`send_fluid`)."""
        return self._rx_fluid is not None

    def send_fluid(self, n: int, wire_len: int, dport: int = 0,
                   flow=None, eth_dst=None) -> None:
        """Bulk accounting for ``n`` fast-forwarded same-shape packets:
        moves the wire counters exactly as ``n`` :meth:`send` calls would
        and hands the bulk to the receiver's fluid hook. No per-packet
        events fire and no buffer occupancy is modeled — fluid epochs only
        exist while the link is uncontended, which is the promoting plane's
        eligibility predicate to enforce. ``flow``/``eth_dst`` ride along
        for the cross-machine path (switch forwarding, receiver lookup).

        A link without a fluid receiver raises: counting bytes the far end
        never sees would silently diverge the two ends' meters, and the
        promotion protocol guarantees this cannot happen (``has_fluid_rx``
        is part of TX eligibility).
        """
        if self._rx_fluid is None:
            raise SimulationError(
                f"link {self.name!r}: send_fluid with no fluid receiver "
                "attached — the bulk would vanish from the far end's "
                "accounting")
        self._c_sent.inc(n)
        self._m_bytes.record(self.sim.now, n * wire_len)
        self._rx_fluid(n, wire_len, dport, flow, eth_dst)

    def send(self, pkt: Packet) -> bool:
        """Enqueue ``pkt`` for transmission. Returns False on drop."""
        if self._rx is None:
            raise SimulationError(f"link {self.name!r} has no receiver attached")
        sim = self.sim
        now = sim.now
        backlog_start = self._tx_free_at
        if backlog_start < now:
            backlog_start = now
        # How many packets are currently waiting or in flight on the wire?
        if self._queued >= self.queue_packets:
            self._c_dropped.inc()
            return False
        wire_len = pkt.wire_len
        ser = units.transmit_time_ns(wire_len, self.rate_bps)
        self._tx_free_at = backlog_start + ser
        self._queued += 1
        self._c_sent.inc()
        self._m_bytes.record(now, wire_len)
        deliver_at = self._tx_free_at + self.propagation_ns
        # Wire time as the packet experiences it: any backlog behind earlier
        # packets, serialization, and propagation.
        charge(STAGE_WIRE, deliver_at - now, pkt.meta.trace,
               cpu=False, label=self.name)
        sim.at(deliver_at, self._deliver, pkt)
        return True

    def _deliver(self, pkt: Packet) -> None:
        self._queued -= 1
        now = self.sim.now
        pkt.meta.delivered_ns = now
        tr = pkt.meta.trace
        if tr is not None and not tr.closed:
            tr.close(now)  # TX trace ends at the far end of the wire
        assert self._rx is not None
        self._rx(pkt)

    @property
    def in_flight(self) -> int:
        """Packets queued or serializing right now. Fluid sends never
        occupy the buffer (they model an uncontended wire), so this is the
        packet-exact backlog in both modes."""
        return self._queued

    def utilization(self, elapsed_ns: Optional[int] = None) -> float:
        """Fraction of the line rate used so far. Reads the bytes meter,
        which both :meth:`send` and :meth:`send_fluid` feed — fluid epochs
        count toward utilization exactly as the packets they replace."""
        window = elapsed_ns if elapsed_ns is not None else self.sim.now
        if window <= 0:
            return 0.0
        sent = self._m_bytes.total_bytes
        return min(1.0, units.bits(sent) / (self.rate_bps * units.ns_to_sec(window)))
