"""SmartNIC substrate: SRAM scarcity and FPGA reconfiguration."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.errors import NicError, NicResourceExhausted, VerifierError
from repro.nic.smartnic import Bitstream, FpgaFabric, SramAllocator
from repro.overlay import assemble
from repro.sim import Simulator


class TestSram:
    def test_alloc_and_accounting(self):
        sram = SramAllocator(capacity_bytes=1_000)
        a = sram.alloc(320, "conn_state")
        sram.alloc(64, "filter")
        assert sram.used_bytes == 384
        assert sram.free_bytes == 616
        assert sram.used_by_purpose() == {"conn_state": 320, "filter": 64}
        sram.free(a)
        assert sram.used_bytes == 64

    def test_exhaustion_raises_and_counts(self):
        sram = SramAllocator(capacity_bytes=100)
        sram.alloc(80, "conn_state")
        with pytest.raises(NicResourceExhausted):
            sram.alloc(30, "conn_state")
        assert sram.metrics.counter("exhaustions").value == 1
        sram.alloc(20, "conn_state")  # exact fit still works

    def test_double_free(self):
        sram = SramAllocator(capacity_bytes=100)
        b = sram.alloc(10, "x")
        sram.free(b)
        with pytest.raises(NicResourceExhausted):
            sram.free(b)

    def test_blocks_by_purpose_and_utilization(self):
        sram = SramAllocator(capacity_bytes=100)
        sram.alloc(25, "a")
        sram.alloc(25, "a")
        assert len(sram.blocks("a")) == 2
        assert sram.utilization() == 0.5

    def test_validation(self):
        with pytest.raises(NicResourceExhausted):
            SramAllocator(capacity_bytes=0)
        with pytest.raises(NicResourceExhausted):
            SramAllocator(capacity_bytes=10).alloc(0, "x")


KOPI_BITSTREAM = Bitstream(
    name="kopi-v1",
    overlay_slots=(("filter", 1_024), ("classifier", 512)),
    logic_units=500_000,
)


class TestFpgaFabric:
    def test_bitstream_load_takes_seconds_and_goes_offline(self):
        sim = Simulator()
        fpga = FpgaFabric(sim, DEFAULT_COSTS)
        offline_log = []
        fpga.on_offline_change(offline_log.append)
        done = []
        fpga.load_bitstream(KOPI_BITSTREAM).add_callback(lambda s: done.append(sim.now))
        assert fpga.offline
        sim.run()
        assert done == [DEFAULT_COSTS.bitstream_load_ns]
        assert done[0] >= 2 * units.SEC  # "seconds or longer"
        assert not fpga.offline
        assert offline_log == [True, False]
        assert set(fpga.slots) == {"filter", "classifier"}

    def test_overlay_load_is_microseconds_and_stays_online(self):
        sim = Simulator()
        fpga = FpgaFabric(sim, DEFAULT_COSTS)
        fpga.load_bitstream(KOPI_BITSTREAM)
        sim.run()
        start = sim.now
        loaded = []
        prog = assemble("accept", name="allow-all")
        fpga.load_overlay("filter", prog).add_callback(lambda s: loaded.append(sim.now))
        assert not fpga.offline  # dataplane live during overlay load
        sim.run()
        assert loaded == [start + DEFAULT_COSTS.overlay_load_ns]
        assert fpga.machine("filter") is not None
        assert fpga.machine("filter").program.name == "allow-all"

    def test_overlay_reload_replaces_program(self):
        sim = Simulator()
        fpga = FpgaFabric(sim, DEFAULT_COSTS)
        fpga.load_bitstream(KOPI_BITSTREAM)
        sim.run()
        fpga.load_overlay("filter", assemble("accept", name="v1"))
        sim.run()
        fpga.load_overlay("filter", assemble("drop", name="v2"))
        sim.run()
        assert fpga.machine("filter").program.name == "v2"
        assert fpga.slots["filter"].loads == 2

    def test_bitstream_wipes_overlays(self):
        sim = Simulator()
        fpga = FpgaFabric(sim, DEFAULT_COSTS)
        fpga.load_bitstream(KOPI_BITSTREAM)
        sim.run()
        fpga.load_overlay("filter", assemble("accept"))
        sim.run()
        fpga.load_bitstream(KOPI_BITSTREAM)
        sim.run()
        assert fpga.machine("filter") is None  # hardware was rewritten

    def test_program_exceeding_slot_capacity_rejected(self):
        sim = Simulator()
        fpga = FpgaFabric(sim, DEFAULT_COSTS)
        fpga.load_bitstream(KOPI_BITSTREAM)
        sim.run()
        big = assemble("\n".join(["ldi r0, 1"] * 600 + ["accept"]))
        with pytest.raises(VerifierError):
            fpga.load_overlay("classifier", big)  # 512-instr slot

    def test_errors(self):
        sim = Simulator()
        fpga = FpgaFabric(sim, DEFAULT_COSTS, logic_capacity=100)
        with pytest.raises(NicError, match="logic"):
            fpga.load_bitstream(KOPI_BITSTREAM)
        fpga2 = FpgaFabric(sim, DEFAULT_COSTS)
        with pytest.raises(NicError, match="no bitstream"):
            fpga2.load_overlay("filter", assemble("accept"))
        fpga2.load_bitstream(KOPI_BITSTREAM)
        with pytest.raises(NicError, match="in progress"):
            fpga2.load_bitstream(KOPI_BITSTREAM)
        sim.run()
        with pytest.raises(NicError, match="no slot"):
            fpga2.load_overlay("nat", assemble("accept"))
