"""PCIe DMA engine and MMIO costs.

DMA transfers serialize on the link (bandwidth model) and each carries a
fixed latency. Inbound DMA writes allocate into the LLC through DDIO (see
:mod:`repro.host.cache`); the NIC models call :meth:`DmaEngine.dma_write`
with the target region so the cache sees the exact line addresses.
"""

from __future__ import annotations

from typing import Optional

from .. import units
from ..config import CostModel
from ..errors import SimulationError
from ..sim import MetricSet, Signal, Simulator
from .cache import WayPartitionedCache
from .copies import LAYER_DMA, CopyLedger
from .memory import PinnedRegion


class DmaEngine:
    """Shared DMA engine between the NIC and host memory."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        llc: Optional[WayPartitionedCache] = None,
        ledger: Optional[CopyLedger] = None,
    ):
        self.sim = sim
        self.costs = costs
        self.llc = llc
        self._link_free_at = 0
        self.metrics = MetricSet("dma")
        self.ledger = ledger if ledger is not None else CopyLedger()
        #: Per-tenant weighted fair arbitration of link bytes
        #: (:class:`~repro.nic.tenant_sched.WeightedFairClock`). Wired by
        #: Machine only under ``tenant_isolation``; None keeps the seed's
        #: pure-FIFO link schedule.
        self.fair_clock = None

    def _serialize(self, nbytes: int, tenant=None) -> int:
        """Reserve link time for ``nbytes``; returns completion timestamp.

        With the fair clock wired and a tenant resolved, completion is the
        later of the FIFO link time and the tenant's weighted-share finish
        — a hog's bytes stretch to its share while a lone tenant still
        sees the raw link (work-conserving)."""
        start = max(self._link_free_at, self.sim.now)
        busy = units.transmit_time_ns(nbytes, self.costs.pcie_bandwidth_bps)
        self._link_free_at = start + busy
        if self.fair_clock is not None and tenant is not None:
            fair = self.fair_clock.finish(tenant, busy, self.sim.now)
            if fair > self._link_free_at:
                return fair
        return self._link_free_at

    def dma_write(
        self,
        region: PinnedRegion,
        nbytes: int,
        offset: int = 0,
        tenant=None,
    ) -> Signal:
        """Device -> host memory write of ``nbytes`` into ``region``.

        Lines land in the LLC via DDIO. The returned signal fires when the
        data is visible to the CPU and carries the number of lines written.
        """
        self._check(region, nbytes, offset)
        done = Signal("dma_write")
        lines = self._touch_lines(region, nbytes, offset, write=True)
        # tenant: attributed fair-queued link share when isolation is on.
        finish = self._serialize(nbytes, tenant) + self.costs.pcie_dma_latency_ns
        self.metrics.counter("writes").inc()
        self.metrics.meter("write_bytes").record(self.sim.now, nbytes)
        self.ledger.charge(
            LAYER_DMA, nbytes,
            units.transmit_time_ns(nbytes, self.costs.pcie_bandwidth_bps),
        )
        self.sim.at(finish, done.succeed, lines)
        return done

    def dma_read(self, region: PinnedRegion, nbytes: int, offset: int = 0,
                 tenant=None) -> Signal:
        """Host memory -> device read (TX path). The signal fires when the
        device holds the data."""
        self._check(region, nbytes, offset)
        done = Signal("dma_read")
        # tenant: attributed fair-queued link share when isolation is on.
        finish = self._serialize(nbytes, tenant) + self.costs.pcie_dma_latency_ns
        self.metrics.counter("reads").inc()
        self.metrics.meter("read_bytes").record(self.sim.now, nbytes)
        self.ledger.charge(
            LAYER_DMA, nbytes,
            units.transmit_time_ns(nbytes, self.costs.pcie_bandwidth_bps),
        )
        self.sim.at(finish, done.succeed, nbytes)
        return done

    def _check(self, region: PinnedRegion, nbytes: int, offset: int) -> None:
        if nbytes <= 0:
            raise SimulationError(f"DMA size must be positive, got {nbytes}")
        if offset < 0 or offset + nbytes > region.size:
            raise SimulationError(
                f"DMA beyond region {region.name!r}: offset={offset} size={nbytes}"
            )

    def _touch_lines(
        self, region: PinnedRegion, nbytes: int, offset: int, write: bool
    ) -> int:
        """Drive the LLC model for the lines this transfer covers."""
        if self.llc is None:
            return 0
        line = self.llc.line_bytes
        start = region.base + offset
        first = start - (start % line)
        count = 0
        for addr in range(first, start + nbytes, line):
            if write:
                # tenant: cache side effect of a transfer whose bytes were
                # already billed to the owning tenant in dma_read/dma_write.
                self.llc.dma_write(addr)
            count += 1
        return count

    def account_placement(self, layer: str, nbytes: int, ns: int, ops: int = 1) -> None:
        """Ledger-only entry for DMA movement modeled outside this engine
        (NIC ring posts, burst descriptor fetches). Records the bytes and the
        hardware time already charged by the caller — adds no cost itself."""
        self.ledger.charge(layer, nbytes, ns, ops=ops)

    # --- MMIO -------------------------------------------------------------

    def mmio_write_cost(self) -> int:
        """CPU-side cost of a posted register write (doorbell)."""
        self.metrics.counter("mmio_writes").inc()
        return self.costs.mmio_write_ns

    def mmio_read_cost(self) -> int:
        """CPU-side cost of a register read (full round trip)."""
        self.metrics.counter("mmio_reads").inc()
        return self.costs.mmio_read_ns
