"""Toeplitz RSS hash against Microsoft's published verification vectors."""

import pytest

from repro.errors import PacketError
from repro.net import FiveTuple, IPv4Address, PROTO_TCP, rss_queue, toeplitz_hash


def tcp_flow(src, sport, dst, dport):
    return FiveTuple(PROTO_TCP, IPv4Address.parse(src), sport, IPv4Address.parse(dst), dport)


# (src ip, sport, dst ip, dport) -> expected 32-bit hash, from the RSS
# verification suite in Microsoft's NDIS documentation.
VECTORS = [
    (("66.9.149.187", 2794, "161.142.100.80", 1766), 0x51CCC178),
    (("199.92.111.2", 14230, "65.69.140.83", 4739), 0xC626B0EA),
    (("24.19.198.95", 12898, "12.22.207.184", 38024), 0x5C2B394A),
    (("38.27.205.30", 48228, "209.142.163.6", 2217), 0xAFC7327F),
    (("153.39.163.191", 44251, "202.188.127.2", 1303), 0x10E828A2),
]


class TestToeplitzVectors:
    @pytest.mark.parametrize("flow_args,expected", VECTORS)
    def test_microsoft_verification_suite(self, flow_args, expected):
        src, sport, dst, dport = flow_args
        flow = tcp_flow(src, sport, dst, dport)
        data = (
            flow.src_ip.to_bytes()
            + flow.dst_ip.to_bytes()
            + sport.to_bytes(2, "big")
            + dport.to_bytes(2, "big")
        )
        assert toeplitz_hash(data) == expected

    def test_ip_only_vector(self):
        data = IPv4Address.parse("66.9.149.187").to_bytes() + IPv4Address.parse(
            "161.142.100.80"
        ).to_bytes()
        assert toeplitz_hash(data) == 0x323E8FC2

    def test_empty_input_hashes_to_zero(self):
        assert toeplitz_hash(b"") == 0

    def test_key_too_short_rejected(self):
        with pytest.raises(PacketError):
            toeplitz_hash(b"\x00" * 64, key=b"\x01" * 8)


class TestRssQueue:
    def test_deterministic(self):
        flow = tcp_flow("10.0.0.1", 1234, "10.0.0.2", 80)
        assert rss_queue(flow, 8) == rss_queue(flow, 8)

    def test_within_range(self):
        for sport in range(1000, 1050):
            flow = tcp_flow("10.0.0.1", sport, "10.0.0.2", 80)
            assert 0 <= rss_queue(flow, 8) < 8

    def test_spreads_flows(self):
        queues = {
            rss_queue(tcp_flow("10.0.0.1", sport, "10.0.0.2", 80), 8)
            for sport in range(1000, 1100)
        }
        assert len(queues) >= 6  # 100 flows should land on most of 8 queues

    def test_direction_sensitivity(self):
        # RSS is not symmetric under the standard key: forward and reverse
        # of a flow generally hash differently.
        fwd = tcp_flow("66.9.149.187", 2794, "161.142.100.80", 1766)
        data_f = (
            fwd.src_ip.to_bytes() + fwd.dst_ip.to_bytes()
            + fwd.sport.to_bytes(2, "big") + fwd.dport.to_bytes(2, "big")
        )
        rev = fwd.reversed()
        data_r = (
            rev.src_ip.to_bytes() + rev.dst_ip.to_bytes()
            + rev.sport.to_bytes(2, "big") + rev.dport.to_bytes(2, "big")
        )
        assert toeplitz_hash(data_f) != toeplitz_hash(data_r)

    def test_needs_queue(self):
        with pytest.raises(PacketError):
            rss_queue(tcp_flow("1.1.1.1", 1, "2.2.2.2", 2), 0)
