"""Ablation — §4.3 notification delivery: interrupts vs polled monitor.

"The control plane on the kernel can also choose to enable interrupts for
notification queues with low activity. This allows Norman to support both
blocking and non-blocking I/O while making efficient use of CPU cycles."

Interrupt delivery pays a fixed per-wake cost but wakes immediately; a
polled monitor batches wakes at its scan interval — cheap per event, but
adds up to one interval of latency. The right choice depends on queue
activity, which is why it is a control-plane knob and not hardware policy.
"""

from repro import units
from repro.core import NormanOS
from repro.dataplanes import Testbed
from repro.apps import BlockingWorker
from repro.experiments.common import fmt_table

MODES = (
    ("interrupt", None),
    ("poll", 10 * units.US),
    ("poll", 100 * units.US),
)
N_MESSAGES = 20
GAP_NS = 300_000


def run_modes():
    rows = []
    for mode, interval in MODES:
        tb = Testbed(NormanOS)
        worker = BlockingWorker(tb, port=7000, comm="worker", user="bob", core_id=1)
        if mode == "poll":
            tb.dataplane.control.set_monitor_mode(worker.proc.pid, "poll", interval)
        worker.start()
        for i in range(N_MESSAGES):
            tb.sim.after(GAP_NS * (i + 1), tb.peer.send_udp, 555, 7000, 100)
        window = GAP_NS * (N_MESSAGES + 2)
        tb.run(until=window)
        worker.stop()
        tb.run_all()
        starts = worker.service_starts()
        sends = [GAP_NS * (i + 1) for i in range(len(starts))]
        lats = sorted(s - t for s, t in zip(starts, sends))
        rows.append({
            "mode": mode if interval is None else f"poll {interval // units.US} us",
            "served": worker.served,
            "wake_us_p50": (lats[len(lats) // 2] / units.US) if lats else 0.0,
            "wake_us_max": (lats[-1] / units.US) if lats else 0.0,
            "monitor_core_busy_us": tb.machine.cpus[0].busy_ns / units.US,
        })
    return rows


def test_ablation_notification_delivery(once):
    rows = once(run_modes)
    print("\n" + fmt_table(rows))
    by_mode = {r["mode"]: r for r in rows}
    assert all(r["served"] == N_MESSAGES for r in rows)
    # Interrupts: lowest latency.
    assert by_mode["interrupt"]["wake_us_p50"] < by_mode["poll 10 us"]["wake_us_p50"]
    # Polling latency scales with the scan interval.
    assert (by_mode["poll 100 us"]["wake_us_p50"]
            > by_mode["poll 10 us"]["wake_us_p50"])
    assert by_mode["poll 100 us"]["wake_us_max"] <= 150  # bounded by ~interval
