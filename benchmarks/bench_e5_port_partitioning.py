"""E5 — §2 Partitioning ports: violation deliveries per dataplane."""

from repro.experiments.common import fmt_table
from repro.experiments.e5_port_partitioning import headline, run_e5


def test_e5_port_partitioning(once):
    rows = once(run_e5)
    print("\n" + fmt_table(rows))
    h = headline(rows)
    by_plane = {r["plane"]: r for r in rows}
    # Unenforceable off-host; enforced on-host.
    assert h["bypass_violations"] > 0
    assert by_plane["hypervisor"]["violations_delivered"] > 0
    assert h["kernel_violations"] == 0
    assert h["kopi_violations"] == 0
    assert by_plane["sidecar"]["violations_delivered"] == 0
    # KOPI blocks at bind time (kernel arbitration restored).
    assert by_plane["kopi"]["thief_bind_blocked"]
    assert by_plane["kopi"]["legit_served"] > 0
