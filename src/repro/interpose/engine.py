"""The per-machine policy engine: one registry over every interposition
mechanism, one commit history across every plane."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from ..errors import PolicyError
from ..sim import AllOf, Signal, Simulator
from .point import InterpositionPoint, PolicyCommit


class PolicyEngine:
    """Owned by each :class:`~repro.host.machine.Machine`.

    Mechanisms register their :class:`InterpositionPoint` at construction
    time; from then on every policy mutation — whether issued through a
    dataplane's admin surface, a tool like iptables/tc, or the KOPI control
    plane — lands in the same versioned commit stream, and every packet
    evaluation increments the same per-point counters. The engine is the
    single place an operator (or E14) can ask "what policy is installed
    where, when did it land, and what ran under the old version meanwhile".
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._points: Dict[str, InterpositionPoint] = {}
        self.history: List[PolicyCommit] = []
        #: Monotonic counter bumped whenever ANY point's version advances —
        #: the machine-wide policy epoch flow caches compare against.
        self.epoch = 0
        #: Commit observers, called (no args) after each epoch bump. The
        #: hybrid-fidelity controller registers here: a policy commit is a
        #: fidelity boundary, so every fluid flow demotes to packet-exact
        #: simulation before any packet runs under the new policy.
        self.on_commit: List[Callable[[], None]] = []

    def _on_commit(self, point: InterpositionPoint) -> None:
        """Called by a point when its version advances (a commit landed).
        Failed async commits leave the old table running and do NOT bump
        the epoch, so caches built over them stay valid."""
        self.epoch += 1
        for hook in self.on_commit:
            hook()

    def version_vector(self) -> "tuple[tuple[str, int], ...]":
        """The live (point name, version) pairs, sorted — the composite
        policy version a cached fast-path entry is stamped with."""
        return tuple(sorted((n, p.version) for n, p in self._points.items()))

    # --- registry ----------------------------------------------------------

    def register(self, point: InterpositionPoint) -> InterpositionPoint:
        """Register a point; duplicate names get a ``#N`` suffix (a machine
        may run several qdiscs, several tables...)."""
        base = point.name
        name, n = base, 1
        while name in self._points:
            n += 1
            name = f"{base}#{n}"
        point._bind(self, name)
        self._points[name] = point
        return point

    def get(self, name: str) -> InterpositionPoint:
        if name not in self._points:
            raise PolicyError(
                f"no interposition point {name!r} (have {sorted(self._points)})"
            )
        return self._points[name]

    def find(self, name: str) -> Optional[InterpositionPoint]:
        return self._points.get(name)

    def find_by_target(self, target: Any) -> Optional[InterpositionPoint]:
        """The point wrapping a given mechanism object — how tools resolve
        'the netfilter table I am editing' back to its registry entry."""
        for point in self._points.values():
            if point.target is target:
                return point
        return None

    def points(self) -> List[InterpositionPoint]:
        return list(self._points.values())

    def __iter__(self) -> Iterator[InterpositionPoint]:
        return iter(self._points.values())

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, name: str) -> bool:
        return name in self._points

    # --- commit tracking ---------------------------------------------------

    def pending(self) -> List[InterpositionPoint]:
        """Points with a commit in flight."""
        return [p for p in self._points.values() if p.pending_commits]

    def all_committed(self) -> Signal:
        """Fires when no point on this machine has a commit in flight —
        the engine's commit notification (succeeds immediately when idle)."""
        return AllOf(
            [p.committed() for p in self._points.values()],
            name="interpose.all_committed",
        )

    def commits_for(self, name: str) -> List[PolicyCommit]:
        return [c for c in self.history if c.point == name]

    # --- introspection -----------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat metrics across every point, plus live versions."""
        out: Dict[str, float] = {}
        for point in self._points.values():
            out.update(point.metrics.snapshot())
            out[f"interpose.{point.name}.version"] = float(point.version)
        return out
