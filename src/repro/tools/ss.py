"""ss analogue — socket statistics with Norman extensions.

On any dataplane it lists the kernel socket table (like
:class:`~repro.tools.netstat.Netstat` but stat-oriented); under KOPI it
additionally shows per-connection NIC state: ring occupancy, fast-path vs
software-fallback placement, and NIC-side packet counters — the operator
visibility §5's resource-exhaustion mitigation needs ("which tenant is
eating my SRAM?").
"""

from __future__ import annotations

from typing import List

from ..net.headers import PROTO_TCP, PROTO_UDP

_PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}


class Ss:
    def __init__(self, dataplane, kernel):
        self.dataplane = dataplane
        self.kernel = kernel

    def __call__(self) -> str:
        control = getattr(self.dataplane, "control", None)
        if control is not None and hasattr(control, "connections"):
            return self._norman(control)
        return self._sockets_only()

    def _sockets_only(self) -> str:
        lines = [f"{'Proto':<6}{'Local':<20}{'PID/Program':<18}{'RxB':>10}{'TxB':>10}"]
        for sock in self.kernel.sockets.sockets():
            lines.append(
                f"{_PROTO_NAMES.get(sock.proto, '?'):<6}"
                f"{f'{self.kernel.host_ip}:{sock.port}':<20}"
                f"{f'{sock.owner.pid}/{sock.owner.comm}':<18}"
                f"{sock.rx_bytes:>10}{sock.tx_bytes:>10}"
            )
        return "\n".join(lines)

    def _norman(self, control) -> str:
        header = (
            f"{'Conn':<6}{'Proto':<6}{'Local':<20}{'PID/Program':<18}"
            f"{'Path':<10}{'RxPkts':>8}{'TxPkts':>8}{'RxRing':>8}{'TxRing':>8}"
        )
        lines: List[str] = [header]
        for conn in control.connections():
            lines.append(
                f"{conn.conn_id:<6}"
                f"{_PROTO_NAMES.get(conn.proto, '?'):<6}"
                f"{f'{self.kernel.host_ip}:{conn.port}':<20}"
                f"{f'{conn.proc.pid}/{conn.proc.comm}':<18}"
                f"{'fallback' if conn.fallback else 'fast':<10}"
                f"{conn.rx_packets:>8}{conn.tx_packets:>8}"
                f"{conn.rings.rx.occupancy:>8}{conn.rings.tx.occupancy:>8}"
            )
        sram = getattr(self.dataplane, "nic", None)
        if sram is not None and hasattr(sram, "sram"):
            by_purpose = sram.sram.used_by_purpose()
            usage = ", ".join(f"{k}={v}B" for k, v in sorted(by_purpose.items()))
            lines.append(f"NIC SRAM: {sram.sram.used_bytes}/{sram.sram.capacity_bytes} B"
                         f" ({usage or 'idle'})")
        return "\n".join(lines)

    def fallback_count(self) -> int:
        control = getattr(self.dataplane, "control", None)
        if control is None:
            return 0
        return sum(1 for c in control.connections() if c.fallback)
