"""Static verifier for overlay programs.

The NIC refuses to load an unverified program. Checks:

* program fits the overlay's instruction capacity;
* all branch targets are **strictly forward** and in bounds — with no back
  edges the machine provably executes at most ``len(program)`` instructions
  per packet, which is what makes the per-packet latency bound honest;
* registers, fields, counter and meter indices are in range;
* the program cannot fall off the end: the last reachable slot must be a
  terminal instruction (``accept``/``drop``/``halt``) or an unconditional
  jump (which, being forward, would itself be out of bounds and is thus
  rejected earlier).
"""

from __future__ import annotations

from typing import Optional

from ..errors import VerifierError
from .isa import (
    ALU_OPS,
    BRANCH_OPS,
    FIELDS,
    Instr,
    N_REGISTERS,
    OP_CNT,
    OP_JMP,
    OP_LDF,
    OP_METER,
    OP_MIRROR,
    Program,
    TERMINAL_OPS,
)


def verify(
    program: Program,
    max_instrs: int = 4_096,
    max_counters: Optional[int] = None,
    max_meters: Optional[int] = None,
    max_taps: int = 8,
) -> None:
    """Raise :class:`~repro.errors.VerifierError` on any violation."""
    n = len(program.instrs)
    if n == 0:
        raise VerifierError("empty program")
    if n > max_instrs:
        raise VerifierError(f"program too large: {n} > capacity {max_instrs}")
    if max_counters is not None and program.n_counters > max_counters:
        raise VerifierError(
            f"declares {program.n_counters} counters > limit {max_counters}"
        )
    if max_meters is not None and program.n_meters > max_meters:
        raise VerifierError(f"declares {program.n_meters} meters > limit {max_meters}")

    for pc, instr in enumerate(program.instrs):
        _check_instr(program, pc, instr, max_taps)

    last = program.instrs[-1]
    if last.op not in TERMINAL_OPS:
        raise VerifierError(
            f"program may fall off the end: last instruction is {last.op!r}, "
            "expected accept/drop/halt"
        )


def _check_reg(pc: int, name: str, idx: Optional[int]) -> None:
    if idx is None:
        raise VerifierError(f"pc {pc}: missing register operand {name}")
    if not 0 <= idx < N_REGISTERS:
        raise VerifierError(f"pc {pc}: register r{idx} out of range")


def _check_instr(program: Program, pc: int, instr: Instr, max_taps: int) -> None:
    op = instr.op
    if op == OP_LDF:
        _check_reg(pc, "rd", instr.rd)
        if instr.field not in FIELDS:
            raise VerifierError(f"pc {pc}: unknown field {instr.field!r}")
        return
    if op in ALU_OPS or op in ("ldi", "mov"):
        _check_reg(pc, "rd", instr.rd)
        _check_src(pc, instr)
        return
    if op == OP_JMP or op in BRANCH_OPS:
        if instr.target is None:
            raise VerifierError(f"pc {pc}: branch without target")
        if instr.target <= pc:
            raise VerifierError(
                f"pc {pc}: backward or self jump to {instr.target} "
                "(overlay control flow must be forward-only)"
            )
        if instr.target >= len(program.instrs):
            raise VerifierError(f"pc {pc}: jump target {instr.target} out of bounds")
        if op in BRANCH_OPS:
            _check_reg(pc, "ra", instr.ra)
            _check_src(pc, instr)
        return
    if op in ("setq", "setcls"):
        _check_src(pc, instr)
        return
    if op == OP_MIRROR:
        if instr.index is None or not 0 <= instr.index < max_taps:
            raise VerifierError(f"pc {pc}: tap index {instr.index} out of range")
        return
    if op == OP_CNT:
        if instr.index is None or not 0 <= instr.index < program.n_counters:
            raise VerifierError(
                f"pc {pc}: counter {instr.index} not declared "
                f"(program has {program.n_counters})"
            )
        return
    if op == OP_METER:
        if instr.index is None or not 0 <= instr.index < program.n_meters:
            raise VerifierError(
                f"pc {pc}: meter {instr.index} not declared "
                f"(program has {program.n_meters})"
            )
        _check_reg(pc, "rd", instr.rd)
        return
    if op in TERMINAL_OPS:
        return
    raise VerifierError(f"pc {pc}: unverifiable opcode {op!r}")


def _check_src(pc: int, instr: Instr) -> None:
    if instr.src is None:
        raise VerifierError(f"pc {pc}: missing source operand")
    kind, value = instr.src
    if kind == "reg":
        _check_reg(pc, "src", value)
    elif kind == "imm":
        if not 0 <= value <= 0xFFFF_FFFF:
            raise VerifierError(f"pc {pc}: immediate {value} out of 32-bit range")
    else:
        raise VerifierError(f"pc {pc}: bad operand kind {kind!r}")
