"""E9 — §5: NIC SRAM exhaustion and the software fallback."""

from repro.experiments.common import fmt_table
from repro.experiments.e9_resource_exhaustion import (
    run_adversary,
    run_capacity_sweep,
    run_fallback_penalty,
)


def test_e9_capacity_sweep(once):
    rows = once(run_capacity_sweep)
    print("\n" + fmt_table(rows))
    # Fallback fraction grows once offered connections exceed SRAM capacity.
    for r in rows:
        capacity = r["fast_path"] + 0  # fast path never exceeds SRAM slots
        assert capacity <= r["offered_conns"]
        if r["offered_conns"] <= r["sram_kib"] * 1024 // 320:
            assert r["fallback"] == 0


def test_e9_fallback_penalty(once):
    rows = once(run_fallback_penalty, count=150)
    print("\n" + fmt_table(rows))
    fast = next(r for r in rows if r["path"] == "fast path")
    slow = next(r for r in rows if r["path"] == "fallback")
    assert not fast["fallback"] and slow["fallback"]
    # Degraded (kernel-path class), not dead.
    assert slow["goodput_gbps"] > 1
    assert fast["goodput_gbps"] > 5 * slow["goodput_gbps"]


def test_e9_adversary(once):
    rows = once(run_adversary)
    print("\n" + fmt_table(rows))
    attack = next(r for r in rows if r["phase"] == "under attack")
    fixed = next(r for r in rows if r["phase"] == "after mitigation")
    assert attack["victim_on_fallback"]
    assert not fixed["victim_on_fallback"]
