"""Process control block."""

from __future__ import annotations

from typing import Optional

from ..errors import KernelError
from .users import User

PROC_RUNNING = "running"
PROC_BLOCKED = "blocked"
PROC_EXITED = "exited"

_STATES = (PROC_RUNNING, PROC_BLOCKED, PROC_EXITED)


class Process:
    """One OS process: identity (pid/uid/comm), cgroup, core affinity.

    This object *is* the "process view" the paper keeps returning to:
    iptables' ``--cmd-owner``/``--uid-owner`` match against ``comm``/``uid``,
    tc classifies on ``cgroup``, and netstat joins sockets against ``pid``.
    """

    def __init__(self, pid: int, comm: str, user: User, core_id: int = 0):
        if pid < 1:
            raise KernelError(f"pid must be >= 1, got {pid}")
        if not comm:
            raise KernelError("comm must be non-empty")
        self.pid = pid
        self.comm = comm
        self.user = user
        self.core_id = core_id
        self.cgroup_path: str = "/"
        self.state = PROC_RUNNING
        self.blocked_count = 0
        self.voluntary_switches = 0

    @property
    def uid(self) -> int:
        return self.user.uid

    def set_state(self, state: str) -> None:
        if state not in _STATES:
            raise KernelError(f"unknown process state: {state!r}")
        if self.state == PROC_EXITED and state != PROC_EXITED:
            raise KernelError(f"pid {self.pid} already exited")
        if state == PROC_BLOCKED:
            self.blocked_count += 1
        self.state = state

    @property
    def alive(self) -> bool:
        return self.state != PROC_EXITED

    def __repr__(self) -> str:
        return f"<Process pid={self.pid} comm={self.comm!r} uid={self.uid} {self.state}>"


OwnerInfo = "tuple[int, int, str]"


def owner_info(proc: Optional[Process]) -> "Optional[tuple[int, int, str]]":
    """(pid, uid, comm) triple, or None for an unattributable packet."""
    if proc is None:
        return None
    return (proc.pid, proc.uid, proc.comm)
