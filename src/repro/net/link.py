"""Point-to-point link with rate, propagation delay, and a drop-tail queue."""

from __future__ import annotations

from typing import Callable, Optional

from .. import units
from ..errors import SimulationError
from ..sim import MetricSet, Simulator
from ..trace import STAGE_WIRE, charge
from .packet import Packet

RxHandler = Callable[[Packet], None]


class Link:
    """Unidirectional link. ``send`` serializes at the line rate, waits the
    propagation delay, then hands the packet to the attached receiver.

    A finite buffer ahead of the serializer drops excess packets (drop-tail),
    so oversubscription shows up as loss, not as unbounded memory.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: int,
        propagation_ns: int = 500,
        queue_packets: int = 1_024,
        name: str = "link",
    ):
        if rate_bps <= 0:
            raise SimulationError(f"link rate must be positive: {rate_bps}")
        if queue_packets < 1:
            raise SimulationError(f"queue must hold at least 1 packet: {queue_packets}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.queue_packets = queue_packets
        self.name = name
        self.metrics = MetricSet(name)
        self._rx: Optional[RxHandler] = None
        self._rx_fluid: Optional[Callable[[int, int, int], None]] = None
        self._tx_free_at = 0
        self._queued = 0

    def attach(self, handler: RxHandler) -> None:
        """Set the receiver callback; replaces any previous one."""
        self._rx = handler

    def attach_fluid(self, handler: Callable[[int, int, int], None]) -> None:
        """Set the bulk counterpart of the receiver: called as
        ``handler(n, wire_len, dport)`` when a fluid epoch replays ``n``
        same-shape sends (see :meth:`send_fluid`)."""
        self._rx_fluid = handler

    def send_fluid(self, n: int, wire_len: int, dport: int = 0) -> None:
        """Bulk accounting for ``n`` fast-forwarded same-shape packets:
        moves the wire counters exactly as ``n`` :meth:`send` calls would
        and hands the bulk to the receiver's fluid hook (if any). No
        per-packet events fire and no buffer occupancy is modeled — fluid
        epochs only exist while the link is uncontended, which is the
        promoting plane's eligibility predicate to enforce."""
        self.metrics.counter("sent").inc(n)
        self.metrics.meter("bytes").record(self.sim.now, n * wire_len)
        if self._rx_fluid is not None:
            self._rx_fluid(n, wire_len, dport)

    def send(self, pkt: Packet) -> bool:
        """Enqueue ``pkt`` for transmission. Returns False on drop."""
        if self._rx is None:
            raise SimulationError(f"link {self.name!r} has no receiver attached")
        backlog_start = max(self._tx_free_at, self.sim.now)
        # How many packets are currently waiting or in flight on the wire?
        if self._queued >= self.queue_packets:
            self.metrics.counter("dropped").inc()
            return False
        ser = units.transmit_time_ns(pkt.wire_len, self.rate_bps)
        self._tx_free_at = backlog_start + ser
        self._queued += 1
        self.metrics.counter("sent").inc()
        self.metrics.meter("bytes").record(self.sim.now, pkt.wire_len)
        deliver_at = self._tx_free_at + self.propagation_ns
        # Wire time as the packet experiences it: any backlog behind earlier
        # packets, serialization, and propagation.
        charge(STAGE_WIRE, deliver_at - self.sim.now, pkt.meta.trace,
               cpu=False, label=self.name)
        self.sim.at(deliver_at, self._deliver, pkt)
        return True

    def _deliver(self, pkt: Packet) -> None:
        self._queued -= 1
        pkt.meta.delivered_ns = self.sim.now
        tr = pkt.meta.trace
        if tr is not None and not tr.closed:
            tr.close(self.sim.now)  # TX trace ends at the far end of the wire
        assert self._rx is not None
        self._rx(pkt)

    @property
    def in_flight(self) -> int:
        return self._queued

    def utilization(self, elapsed_ns: Optional[int] = None) -> float:
        """Fraction of the line rate used so far."""
        window = elapsed_ns if elapsed_ns is not None else self.sim.now
        if window <= 0:
            return 0.0
        sent = self.metrics.meter("bytes").total_bytes
        return min(1.0, units.bits(sent) / (self.rate_bps * units.ns_to_sec(window)))
