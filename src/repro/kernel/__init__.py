"""The OS kernel substrate.

Everything the paper says interposition needs from the OS lives here: the
process table (pid/uid/comm — the "process view"), cgroups, a scheduler that
can block and wake threads, netfilter-style rule chains with owner matches,
queueing disciplines (pfifo/TBF/DRR/prio), sockets, and the classic in-kernel
network stack used as the baseline dataplane.
"""

from .arp import ArpCache, ArpEntry
from .cgroups import Cgroup, CgroupTree
from .kernel import Kernel
from .netfilter import (
    ACCEPT,
    CHAIN_INPUT,
    CHAIN_OUTPUT,
    DROP,
    NetfilterRule,
    RuleTable,
)
from .process import PROC_BLOCKED, PROC_EXITED, PROC_RUNNING, Process
from .proc_table import ProcessTable
from .qdisc import DrrQdisc, PfifoQdisc, PrioQdisc, TbfQdisc
from .scheduler import KernelScheduler
from .sockets import KernelSocket, SocketTable
from .syscall import SyscallLayer
from .users import User, UserTable

__all__ = [
    "ACCEPT",
    "ArpCache",
    "ArpEntry",
    "CHAIN_INPUT",
    "CHAIN_OUTPUT",
    "Cgroup",
    "CgroupTree",
    "DROP",
    "DrrQdisc",
    "Kernel",
    "KernelScheduler",
    "KernelSocket",
    "NetfilterRule",
    "PROC_BLOCKED",
    "PROC_EXITED",
    "PROC_RUNNING",
    "PfifoQdisc",
    "PrioQdisc",
    "Process",
    "ProcessTable",
    "RuleTable",
    "SocketTable",
    "SyscallLayer",
    "TbfQdisc",
    "User",
    "UserTable",
]
