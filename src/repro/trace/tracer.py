"""The tracing spine: spans, per-packet contexts, and the ``charge`` chokepoint.

Every cost-charging site in the tree routes its nanoseconds through
:func:`charge` (per-packet, attributed to a :class:`TraceContext`) or
:meth:`Tracer.loose` (work that cannot be pinned to one packet: wakeups,
poll spins, app serve loops). Both return the cost unchanged, so call sites
compose with the existing ``work = a + b + c`` arithmetic — tracing observes
the schedule, it never perturbs it.

Two invariants make the data trustworthy:

* **Default-off is free.** With ``CostModel.trace`` off no context is ever
  created, ``charge(..., ctx=None)`` is a returns-its-argument no-op, and the
  seed event trace stays byte-identical.
* **No lost nanoseconds.** For every closed context, the span sum equals the
  end-to-end latency (``closed_ns - t0_ns``). Deterministic delays are
  charged where they are scheduled; variable waits (ring residency, qdisc
  backlog, a busy core) are closed out with :meth:`TraceContext.fill_gap`
  at the hand-off points where the elapsed time becomes known.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.metrics import Histogram
from .stages import STAGES


class Span:
    """One attributed slice of a packet's life: ``ns`` in ``stage``.

    ``cpu`` distinguishes nanoseconds that occupy a core (and therefore show
    up in ``Core.busy_ns``) from hardware/wire time that elapses without
    burning cycles — E16 compares the CPU subset against measured core busy
    deltas.
    """

    __slots__ = ("stage", "ns", "cpu", "label")

    def __init__(self, stage: str, ns: int, cpu: bool = True, label: str = ""):
        self.stage = stage
        self.ns = ns
        self.cpu = cpu
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "cpu" if self.cpu else "hw"
        tag = f" {self.label}" if self.label else ""
        return f"<Span {self.stage}{tag} {self.ns}ns {kind}>"


class TraceContext:
    """The span tree of one packet, from first charge to delivery."""

    __slots__ = ("trace_id", "plane", "t0_ns", "closed_ns", "spans")

    def __init__(self, trace_id: int, plane: str, t0_ns: int):
        self.trace_id = trace_id
        self.plane = plane
        self.t0_ns = t0_ns
        self.closed_ns: Optional[int] = None
        self.spans: List[Span] = []

    def add(self, stage: str, ns: int, cpu: bool = True, label: str = "") -> None:
        self.spans.append(Span(stage, ns, cpu, label))

    def span_sum(self) -> int:
        return sum(s.ns for s in self.spans)

    def cpu_ns(self) -> int:
        return sum(s.ns for s in self.spans if s.cpu)

    def by_stage(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.spans:
            out[s.stage] = out.get(s.stage, 0) + s.ns
        return out

    def fill_gap(self, stage: str, now_ns: int, cpu: bool = False,
                 label: str = "wait") -> int:
        """Charge whatever elapsed time the spans recorded so far do not
        cover, attributing it to ``stage``. Used at hand-off points (ring
        consume, descriptor fetch) where residency only becomes known when
        the next hop picks the packet up. Returns the gap charged."""
        gap = (now_ns - self.t0_ns) - self.span_sum()
        if gap > 0:
            self.add(stage, gap, cpu=cpu, label=label)
            return gap
        return 0

    @property
    def closed(self) -> bool:
        return self.closed_ns is not None

    def close(self, now_ns: int) -> None:
        if self.closed_ns is None:
            self.closed_ns = now_ns

    def latency_ns(self) -> int:
        if self.closed_ns is None:
            raise ValueError(f"trace #{self.trace_id} is still open")
        return self.closed_ns - self.t0_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"closed@{self.closed_ns}" if self.closed else "open"
        return (f"<TraceContext #{self.trace_id} {self.plane} "
                f"t0={self.t0_ns} {len(self.spans)} spans {state}>")


def charge(stage: str, cost_ns: int, ctx: Optional[TraceContext],
           cpu: bool = True, label: str = "") -> int:
    """The chokepoint: attribute ``cost_ns`` to ``stage`` on ``ctx`` and
    return it unchanged. With tracing off every ``ctx`` is ``None`` and this
    is a no-op, so charging sites can wrap their arithmetic unconditionally."""
    if ctx is not None and cost_ns > 0:
        ctx.add(stage, cost_ns, cpu=cpu, label=label)
    return cost_ns


class Tracer:
    """Per-machine span collector.

    Lives on :class:`~repro.host.machine.Machine` (like the flow fast path,
    it is wired whether or not it is enabled; disabled it creates nothing).
    The active dataplane stamps :attr:`plane` at construction so every
    context carries its plane tag for per-plane per-stage histograms.
    """

    def __init__(self, sim, enabled: bool = False, plane: str = "host"):
        self.sim = sim
        self.enabled = enabled
        self.plane = plane
        self.contexts: List[TraceContext] = []
        self._next_id = 1
        # (plane, stage) -> [total_ns, cpu_ns, ops] for work with no packet.
        self._loose: Dict[Tuple[str, str], List[int]] = {}
        # Fluid epochs: (plane, packet count, span tuples). One entry stands
        # for ``count`` identical packets whose per-packet spans are the
        # given (stage, ns, cpu, label) tuples — the hybrid-fidelity engine
        # records its bulk charges here so per-stage histograms and latency
        # summaries weight them as count packets, not one.
        self._epochs: List[Tuple[str, int,
                                 Tuple[Tuple[str, int, bool, str], ...]]] = []

    # -- recording ---------------------------------------------------------

    def begin(self, pkt, plane: Optional[str] = None) -> Optional[TraceContext]:
        """Open a context for ``pkt`` (stamped onto ``pkt.meta.trace``) at
        ``sim.now``. Returns ``None`` when tracing is disabled. A packet that
        already carries a *closed* context (a TX trace arriving at the far
        host's NIC) gets a fresh one; the old context stays retained."""
        if not self.enabled:
            return None
        ctx = TraceContext(self._next_id, plane or self.plane, self.sim.now)
        self._next_id += 1
        self.contexts.append(ctx)
        pkt.meta.trace = ctx
        return ctx

    def loose(self, stage: str, ns: int, cpu: bool = True, label: str = "") -> int:
        """Attribute work that belongs to the plane but not to any single
        packet (wakeups after delivery, poll spins, app serve loops).
        Returns ``ns`` unchanged so call sites wrap their arithmetic."""
        if self.enabled and ns > 0:
            key = (self.plane, stage)
            bucket = self._loose.setdefault(key, [0, 0, 0])
            bucket[0] += ns
            if cpu:
                bucket[1] += ns
            bucket[2] += 1
        return ns

    def epoch(self, count: int,
              spans: Tuple[Tuple[str, int, bool, str], ...],
              plane: Optional[str] = None) -> None:
        """Record one fluid epoch: ``count`` packets that each charged the
        per-packet ``spans`` (``(stage, ns, cpu, label)`` tuples). The
        epoch's per-packet latency is the span sum by construction, so the
        conservation invariant (span sums tile end-to-end latency) holds
        for fluid packets exactly as for per-packet contexts."""
        if self.enabled and count > 0:
            self._epochs.append((plane or self.plane, count, tuple(spans)))

    def reset(self) -> None:
        """Drop every recorded context, loose bucket, and fluid epoch (the
        enabled flag and plane tag survive). Measurement drivers call this
        after their setup phase so the trace window matches the measurement
        window — resetting observes nothing and perturbs nothing."""
        self.contexts = []
        self._loose = {}
        self._epochs = []

    # -- analysis ----------------------------------------------------------

    def closed_contexts(self, plane: Optional[str] = None) -> List[TraceContext]:
        return [c for c in self.contexts
                if c.closed and (plane is None or c.plane == plane)]

    def epochs(self, plane: Optional[str] = None):
        """The recorded fluid epochs (optionally one plane's)."""
        return [e for e in self._epochs if plane is None or e[0] == plane]

    def fluid_packets(self, plane: Optional[str] = None) -> int:
        """Packets represented by fluid epochs rather than contexts."""
        return sum(count for _pl, count, _spans in self.epochs(plane))

    def loose_totals(self, plane: Optional[str] = None) -> Dict[str, Dict[str, int]]:
        """``{stage: {"ns": total, "cpu_ns": cpu subset, "ops": n}}``."""
        out: Dict[str, Dict[str, int]] = {}
        for (pl, stage), (ns, cpu_ns, ops) in sorted(self._loose.items()):
            if plane is not None and pl != plane:
                continue
            slot = out.setdefault(stage, {"ns": 0, "cpu_ns": 0, "ops": 0})
            slot["ns"] += ns
            slot["cpu_ns"] += cpu_ns
            slot["ops"] += ops
        return out

    def stage_histograms(self, plane: Optional[str] = None) -> Dict[str, Histogram]:
        """Per-stage histograms of *per-packet* nanoseconds over every
        closed context (optionally one plane's). Fluid epochs contribute
        their per-packet stage sums weighted by packet count, so hybrid
        runs report the same shape packet-exact runs do."""
        hists = {stage: Histogram(f"trace.{stage}") for stage in STAGES}
        for ctx in self.closed_contexts(plane):
            for stage, ns in ctx.by_stage().items():
                hists.setdefault(stage, Histogram(f"trace.{stage}")).observe(ns)
        for _pl, count, spans in self.epochs(plane):
            per_stage: Dict[str, int] = {}
            for stage, ns, _cpu, _label in spans:
                per_stage[stage] = per_stage.get(stage, 0) + ns
            for stage, ns in per_stage.items():
                hists.setdefault(stage, Histogram(f"trace.{stage}")).observe(
                    ns, n=count)
        return {stage: h for stage, h in hists.items() if h.count}

    def work_by_stage(self, plane: Optional[str] = None,
                      include_wait: bool = True) -> Dict[str, int]:
        """Total attributed nanoseconds per stage over contexts and fluid
        epochs. ``include_wait=False`` drops spans whose label ends in
        ``_wait`` (ring/queue/pipeline residency) — the workload-dependent
        part no frozen profile models — leaving the deterministic per-packet
        work E21 compares across fidelity modes."""
        out: Dict[str, int] = {}
        for ctx in self.closed_contexts(plane):
            for s in ctx.spans:
                if not include_wait and s.label.endswith("_wait"):
                    continue
                out[s.stage] = out.get(s.stage, 0) + s.ns
        for _pl, count, spans in self.epochs(plane):
            for stage, ns, _cpu, label in spans:
                if not include_wait and label.endswith("_wait"):
                    continue
                out[stage] = out.get(stage, 0) + ns * count
        return out

    def report(self, plane: Optional[str] = None) -> Dict[str, object]:
        """Everything E16 and the CLI need: per-stage per-packet summaries,
        loose totals, attributed CPU time, and mean end-to-end latency."""
        closed = self.closed_contexts(plane)
        loose = self.loose_totals(plane)
        fluid = self.epochs(plane)
        ctx_cpu = sum(c.cpu_ns() for c in closed)
        fluid_cpu = sum(count * sum(ns for _st, ns, cpu, _lb in spans if cpu)
                        for _pl, count, spans in fluid)
        loose_cpu = sum(v["cpu_ns"] for v in loose.values())
        lat = Histogram("trace.latency")
        lat.extend(float(c.latency_ns()) for c in closed)
        for _pl, count, spans in fluid:
            # An epoch packet's latency is its span sum by construction.
            lat.observe(float(sum(ns for _st, ns, _cpu, _lb in spans)),
                        n=count)
        return {
            "plane": plane or self.plane,
            "packets": len(closed) + self.fluid_packets(plane),
            "fluid_packets": self.fluid_packets(plane),
            "stages": {s: h.summary() for s, h in
                       self.stage_histograms(plane).items()},
            "loose": loose,
            "cpu_ns_total": ctx_cpu + fluid_cpu + loose_cpu,
            "cpu_ns_attributed": ctx_cpu + fluid_cpu,
            "latency": lat.summary(),
        }

    def merged_stage_histogram(self, stages: Iterable[str],
                               plane: Optional[str] = None) -> Histogram:
        """One histogram merging several stages' per-packet samples —
        exercises :meth:`Histogram.merge` for grouped reporting."""
        hists = self.stage_histograms(plane)
        merged = Histogram("trace.merged")
        for stage in stages:
            if stage in hists:
                merged.merge(hists[stage])
        return merged
