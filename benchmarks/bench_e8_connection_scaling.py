"""E8 — §5: throughput vs concurrent connections (the DDIO cliff)."""

from repro.experiments.common import fmt_table
from repro.experiments.e8_connection_scaling import headline, run_e8


def test_e8_connection_scaling(once):
    rows = once(run_e8, packets_per_point=8_192)
    print("\n" + fmt_table(rows))
    h = headline(rows)
    by_n = {r["connections"]: r for r in rows}
    # Full line rate through 1024 connections — the paper's breaking point.
    assert by_n[1_024]["line_rate_pct"] > 99
    assert by_n[1_024]["llc_miss_rate"] < 0.01
    # Collapse beyond it.
    assert by_n[2_048]["line_rate_pct"] < 90
    assert by_n[4_096]["line_rate_pct"] < by_n[2_048]["line_rate_pct"]
    assert by_n[4_096]["llc_miss_rate"] > 0.3
    assert h["last_full_rate_conns"] == 1_024
