"""Counters, histograms, time series, rate meters."""

import pytest

from repro import units
from repro.sim import Counter, Histogram, MetricSet, RateMeter, TimeSeries


class TestCounter:
    def test_increments(self):
        c = Counter("pkts")
        c.inc()
        c.inc(9)
        assert c.value == 10
        assert int(c) == 10

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("lat")
        h.extend([10, 20, 30, 40])
        assert h.count == 4
        assert h.mean == 25
        assert h.minimum == 10
        assert h.maximum == 40

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        h.extend(range(1, 101))
        assert h.percentile(50) == 50
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100
        assert h.percentile(1) == 1

    def test_percentile_interleaved_with_observation(self):
        h = Histogram()
        h.observe(5)
        assert h.p50 == 5
        h.observe(1)
        assert h.p50 == 1  # re-sorts after new sample

    def test_empty_histogram_is_zero(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.p99 == 0.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)


class TestHistogramSummary:
    def test_summary_has_p90_between_p50_and_p99(self):
        h = Histogram("lat")
        h.extend(range(1, 101))
        s = h.summary()
        assert s["p90"] == 90
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["max"]
        assert set(s) == {"count", "mean", "min", "p50", "p90", "p99", "max"}

    def test_summary_of_empty_histogram(self):
        s = Histogram().summary()
        assert s["count"] == 0.0
        assert s["mean"] == s["p50"] == s["p90"] == s["p99"] == 0.0

    def test_summary_of_single_sample(self):
        h = Histogram()
        h.observe(42)
        s = h.summary()
        # Every percentile of a one-sample distribution is that sample.
        assert s["min"] == s["p50"] == s["p90"] == s["p99"] == s["max"] == 42
        assert s["count"] == 1.0


class TestHistogramMerge:
    def test_merge_equals_combined_observation(self):
        a, b, both = Histogram(), Histogram(), Histogram()
        a.extend([1, 2, 3])
        b.extend([4, 5, 6])
        both.extend([1, 2, 3, 4, 5, 6])
        a.merge(b)
        assert a.summary() == both.summary()

    def test_merge_into_empty_and_merge_of_empty(self):
        a, b = Histogram(), Histogram()
        b.extend([7, 9])
        assert a.merge(b).summary() == b.summary()  # empty <- populated
        before = b.summary()
        assert b.merge(Histogram()).summary() == before  # populated <- empty

    def test_merge_returns_self_for_chaining(self):
        a, b, c = Histogram(), Histogram(), Histogram()
        b.observe(1)
        c.observe(2)
        assert a.merge(b).merge(c) is a
        assert a.count == 2

    def test_merge_reservoir_capped_keeps_exact_aggregates(self):
        a = Histogram(max_samples=16)
        b = Histogram(max_samples=16)
        a.extend(range(100))
        b.extend(range(100, 200))
        a.merge(b)
        # Decimation never touches count/total/min/max...
        assert a.count == 200
        assert a.total == sum(range(200))
        assert a.minimum == 0 and a.maximum == 199
        # ...the reservoir stays within its cap, and percentiles stay
        # monotone over the combined (approximate) sample.
        assert len(a._samples) < 16
        assert a.p50 <= a.p90 <= a.p99
        assert 0 <= a.p50 <= 199


class TestTimeSeries:
    def test_records_and_window_mean(self):
        ts = TimeSeries("depth")
        ts.record(0, 1.0)
        ts.record(10, 3.0)
        ts.record(20, 5.0)
        assert ts.last == 5.0
        assert ts.window_mean(0, 10) == 2.0
        assert len(ts) == 3

    def test_rejects_time_travel(self):
        ts = TimeSeries()
        ts.record(10, 1.0)
        with pytest.raises(ValueError):
            ts.record(5, 2.0)


class TestRateMeter:
    def test_average_rate(self):
        m = RateMeter("rx")
        m.record(0, 0)
        m.record(units.SEC, 125_000_000)  # 1 Gbit over 1 second
        assert m.rate_bps() == pytest.approx(units.GBPS)

    def test_explicit_end_time(self):
        m = RateMeter()
        m.record(0, 125_000_000)
        assert m.rate_bps(end_ns=2 * units.SEC) == pytest.approx(units.GBPS / 2)

    def test_empty_meter(self):
        assert RateMeter().rate_bps() == 0.0


class TestMetricSet:
    def test_lazy_creation_and_identity(self):
        ms = MetricSet("nic0")
        assert ms.counter("rx") is ms.counter("rx")
        assert ms.histogram("lat") is ms.histogram("lat")
        assert ms.series("depth") is ms.series("depth")
        assert ms.meter("bytes") is ms.meter("bytes")

    def test_snapshot_qualifies_names(self):
        ms = MetricSet("nic0")
        ms.counter("rx").inc(3)
        ms.histogram("lat").observe(7)
        snap = ms.snapshot()
        assert snap["nic0.rx"] == 3.0
        assert snap["nic0.lat.mean"] == 7.0
