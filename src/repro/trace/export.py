"""Chrome trace-event / Perfetto JSON export.

Emits the (legacy but universally supported) Trace Event Format JSON that
both ``chrome://tracing`` and https://ui.perfetto.dev open directly: one
process track per plane, one thread track per packet, and one complete
(``"ph": "X"``) event per span. Spans are laid out sequentially from the
context's ``t0`` — the conservation invariant guarantees they tile the
packet's end-to-end latency exactly, so the visual gap-free bar *is* the
proof that no nanoseconds were lost.

Timestamps are microseconds (the format's unit); we keep three decimals so
single-digit-ns spans stay visible.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .tracer import Tracer


def to_trace_events(tracer: Tracer, limit: Optional[int] = None) -> Dict[str, object]:
    """Build the trace-event dict for ``tracer``'s closed contexts (at most
    ``limit`` packets, earliest first, to keep exports viewable)."""
    contexts = sorted(tracer.closed_contexts(), key=lambda c: (c.t0_ns, c.trace_id))
    if limit is not None:
        contexts = contexts[:limit]
    planes = sorted({c.plane for c in contexts})
    pids = {plane: i + 1 for i, plane in enumerate(planes)}

    events: List[Dict[str, object]] = []
    for plane, pid in pids.items():
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"plane:{plane}"},
        })
    for ctx in contexts:
        pid = pids[ctx.plane]
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": ctx.trace_id,
            "args": {"name": f"pkt#{ctx.trace_id}"},
        })
        cursor = ctx.t0_ns
        for span in ctx.spans:
            events.append({
                "name": span.label or span.stage,
                "cat": span.stage + ("," + ("cpu" if span.cpu else "hw")),
                "ph": "X",
                "pid": pid,
                "tid": ctx.trace_id,
                "ts": round(cursor / 1_000.0, 3),
                "dur": round(span.ns / 1_000.0, 3),
                "args": {"stage": span.stage, "ns": span.ns, "cpu": span.cpu},
            })
            cursor += span.ns
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def to_json(tracer: Tracer, limit: Optional[int] = None) -> str:
    return json.dumps(to_trace_events(tracer, limit=limit), indent=1)


def write_trace(tracer: Tracer, path, limit: Optional[int] = None) -> int:
    """Write the export to ``path``; returns the number of events written."""
    doc = to_trace_events(tracer, limit=limit)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return len(doc["traceEvents"])
