"""Application behaviours across dataplanes."""

import pytest

from repro.core import NormanOS
from repro.dataplanes import BypassDataplane, KernelPathDataplane, Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.apps import (
    ArpFlooder,
    BlockingWorker,
    BulkSender,
    DatabaseServer,
    EchoServer,
    GameClient,
    MisconfiguredDatabase,
    PollingWorker,
    RpcClient,
    SinkServer,
)


class TestBulkSender:
    def test_counts_and_goodput(self):
        tb = Testbed(NormanOS)
        app = BulkSender(tb, comm="bulk", user="bob", core_id=1,
                         payload_len=1_000, count=50).start()
        tb.run_all()
        assert app.sent == 50
        assert len(tb.peer.received) == 50
        assert app.goodput_bps() > 0

    def test_runs_on_kernel_path(self):
        tb = Testbed(KernelPathDataplane)
        app = BulkSender(tb, comm="bulk", user="bob", core_id=1, count=10).start()
        tb.run_all()
        assert app.sent == 10


class TestSinkAndEcho:
    def test_sink_counts_messages(self):
        tb = Testbed(NormanOS)
        sink = SinkServer(tb, port=7000, comm="sink", user="bob", core_id=1).start()
        for i in range(5):
            tb.sim.after(1_000 * (i + 1), tb.peer.send_udp, 555, 7000, 300)
        tb.run_all()
        assert sink.messages == 5
        assert sink.bytes == 1_500
        sink.stop()
        tb.run_all()

    def test_echo_replies(self):
        tb = Testbed(NormanOS)
        echo = EchoServer(tb, port=7000, comm="echo", user="bob", core_id=1).start()
        tb.sim.after(1_000, tb.peer.send_udp, 555, 7000, 200)
        tb.run_all()
        assert echo.served == 1
        replies = [p for p in tb.peer.received if p.five_tuple.dport == 555]
        assert len(replies) == 1
        assert replies[0].payload_len == 200


class TestRpcClient:
    def test_rtt_measured_against_echoing_peer(self):
        tb = Testbed(NormanOS)
        tb.peer.enable_echo(lambda pkt: pkt.payload_len)
        rpc = RpcClient(tb, comm="rpc", user="bob", core_id=1, count=10).start()
        tb.run_all()
        assert rpc.completed == 10
        assert rpc.rtt.count == 10
        assert rpc.rtt.minimum > 0


class TestDatabases:
    def test_database_serves_queries(self):
        tb = Testbed(NormanOS)
        db = DatabaseServer(tb, comm="postgres", user="bob", port=5432, core_id=1).start()
        tb.sim.after(1_000, tb.peer.send_udp, 555, 5432, 100)
        tb.run_all()
        assert db.queries == 1
        assert any(p.five_tuple.dport == 555 for p in tb.peer.received)

    def test_misconfigured_db_steals_on_bypass(self):
        tb = Testbed(BypassDataplane)
        thief = MisconfiguredDatabase(tb, core_id=1).start()
        tb.sim.after(1_000, tb.peer.send_udp, 555, 5432, 100)
        tb.run(until=1_000_000)
        thief.stop()
        tb.run_all()
        assert thief.stolen == 1

    def test_misconfigured_db_cannot_even_bind_under_kopi_conflict(self):
        from repro.errors import AddressInUse

        tb = Testbed(NormanOS)
        DatabaseServer(tb, comm="postgres", user="bob", port=5432, core_id=1)
        with pytest.raises(AddressInUse):
            MisconfiguredDatabase(tb, core_id=2)


class TestGameClient:
    def test_hops_ports_between_sessions(self):
        tb = Testbed(NormanOS)
        game = GameClient(tb, user="bob", core_id=1, sessions=3,
                          packets_per_session=5, seed=7).start()
        tb.run_all()
        assert len(set(game.ports_used)) == 3
        assert game.sent == 15
        # Peer meters count wire bytes (payload + 42B of headers).
        assert game.goodput_bytes_at_peer() == game.sent_bytes + 42 * game.sent

    def test_deterministic_under_seed(self):
        ports = []
        for _ in range(2):
            tb = Testbed(NormanOS)
            game = GameClient(tb, user="bob", core_id=1, sessions=3,
                              packets_per_session=1, seed=42).start()
            tb.run_all()
            ports.append(tuple(game.ports_used))
        assert ports[0] == ports[1]


class TestArpFlooder:
    def test_floods_on_bypass(self):
        tb = Testbed(BypassDataplane)
        flooder = ArpFlooder(tb, user="bob", count=10, core_id=1).start()
        tb.run_all()
        assert flooder.sent == 10
        assert not flooder.refused
        assert sum(1 for p in tb.peer.received if p.is_arp) == 10

    def test_refused_on_kernel_path(self):
        tb = Testbed(KernelPathDataplane)
        flooder = ArpFlooder(tb, user="bob", count=10, core_id=1).start()
        tb.run_all()
        assert flooder.refused
        assert flooder.sent == 0


class TestWorkers:
    def _drive(self, tb, worker, n_messages=5, gap_ns=500_000):
        worker.start()
        for i in range(n_messages):
            tb.sim.after(gap_ns * (i + 1), tb.peer.send_udp, 555, worker.ep.port, 100)
        tb.run(until=gap_ns * (n_messages + 2))
        worker.stop()
        tb.run_all()

    def test_blocking_worker_low_utilization(self):
        tb = Testbed(NormanOS)
        worker = BlockingWorker(tb, port=7000, comm="blk", user="bob", core_id=1)
        self._drive(tb, worker)
        assert worker.served == 5
        assert tb.machine.cpus[1].utilization() < 0.10

    def test_polling_worker_burns_core(self):
        tb = Testbed(BypassDataplane)
        worker = PollingWorker(tb, port=7000, comm="poll", user="bob", core_id=1)
        self._drive(tb, worker)
        assert worker.served == 5
        assert tb.machine.cpus[1].utilization() > 0.90

    def test_polling_kopi_also_possible(self):
        """KOPI supports both modes (§4.3) — polling works too."""
        tb = Testbed(NormanOS)
        worker = PollingWorker(tb, port=7000, comm="poll", user="bob", core_id=1)
        self._drive(tb, worker)
        assert worker.served == 5
        assert tb.machine.cpus[1].utilization() > 0.90
