"""First-class tenants: one identity object per resource principal.

The paper's argument is that interposition matters *because the NIC is
shared* — many mutually distrusting applications contend for the same
SmartNIC pipeline, SRAM, flowtable and DMA link. Until now that identity
existed only as scattered fragments (a uid here, a cgroup classid there,
the fastpath's owner-pid scope). :class:`Tenant` makes it one object,
registered per machine, that every charging site can resolve and every
quota/scheduler can key on (OSMOSIS / SuperNIC in PAPERS.md design
exactly this layer).

Resolution is deterministic and cheap: a process maps to the tenant
registered for its *current* cgroup path first, else the tenant
registered for its uid, else the built-in ``system`` tenant (tid 0).
Because `CgroupTree` re-resolves membership on move/delete (and never
recycles classids), a migrated process can never classify into a stale
tenant.

Everything here is passive until the ``CostModel.tenants`` knob is on:
the registry always exists on the machine, but no counter moves and no
schedule changes unless a caller resolves and passes a tenant — keeping
the default path byte-identical to the seed fingerprint.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from ..errors import ConfigError

#: The implicit tenant every unregistered process belongs to. Its traffic
#: rides the scheduler's default class and is never quota-limited.
TENANT_SYSTEM_TID = 0
TENANT_SYSTEM_NAME = "system"


def tenant_class(tid: int) -> str:
    """The NIC scheduler class name for a tenant (``t<tid>``)."""
    return f"t{tid}"


class Tenant:
    """One resource principal: a uid- or cgroup-scoped application.

    ``weight`` is the relative share the per-tenant NIC scheduler grants
    (DRR byte quantum multiplier / WFQ rate share). ``flow_quota`` caps
    this tenant's flowtable (fastpath) entries; ``sram_quota_bytes`` caps
    its on-NIC SRAM. ``None`` quotas mean unlimited — attribution without
    enforcement.
    """

    __slots__ = ("tid", "name", "uid", "cgroup_path", "weight",
                 "flow_quota", "sram_quota_bytes")

    def __init__(
        self,
        tid: int,
        name: str,
        uid: Optional[int] = None,
        cgroup_path: Optional[str] = None,
        weight: int = 1,
        flow_quota: Optional[int] = None,
        sram_quota_bytes: Optional[int] = None,
    ):
        self.tid = tid
        self.name = name
        self.uid = uid
        self.cgroup_path = cgroup_path
        self.weight = weight
        self.flow_quota = flow_quota
        self.sram_quota_bytes = sram_quota_bytes

    @property
    def sched_class(self) -> str:
        return tenant_class(self.tid)

    def __repr__(self) -> str:
        scope = []
        if self.uid is not None:
            scope.append(f"uid={self.uid}")
        if self.cgroup_path is not None:
            scope.append(f"cgroup={self.cgroup_path}")
        return (f"<Tenant #{self.tid} {self.name!r} "
                f"{' '.join(scope) or 'unscoped'} w={self.weight}>")


class TenantRegistry:
    """Per-machine tenant table: registration, deterministic resolution,
    and the weight map the per-tenant NIC scheduler is built from.

    ``on_change`` observers fire after every registration or weight
    change; the KOPI control path subscribes when isolation is on so the
    egress scheduler is rebuilt with the new class set.
    """

    def __init__(self, costs):
        self.costs = costs
        self.enabled = bool(costs.tenants)
        self.isolation = bool(costs.tenant_isolation)
        self.system = Tenant(TENANT_SYSTEM_TID, TENANT_SYSTEM_NAME,
                             weight=costs.tenant_default_weight)
        self._by_tid: Dict[int, Tenant] = {TENANT_SYSTEM_TID: self.system}
        self._by_uid: Dict[int, Tenant] = {}
        self._by_cgroup: Dict[str, Tenant] = {}
        self._next_tid = 1
        self.on_change: List[Callable[[], None]] = []

    # --- registration ------------------------------------------------------

    def register(
        self,
        name: str,
        uid: Optional[int] = None,
        cgroup_path: Optional[str] = None,
        weight: Optional[int] = None,
        flow_quota: Optional[int] = None,
        sram_quota_bytes: Optional[int] = None,
    ) -> Tenant:
        """Create a tenant scoped to a uid and/or a cgroup path. At least
        one scope is required — an unresolvable tenant could never be
        charged."""
        if uid is None and cgroup_path is None:
            raise ConfigError(f"tenant {name!r} needs a uid or cgroup scope")
        if uid is not None and uid in self._by_uid:
            raise ConfigError(
                f"uid {uid} already owned by {self._by_uid[uid]!r}")
        if cgroup_path is not None and cgroup_path in self._by_cgroup:
            raise ConfigError(
                f"cgroup {cgroup_path!r} already owned by "
                f"{self._by_cgroup[cgroup_path]!r}")
        w = self.costs.tenant_default_weight if weight is None else weight
        if w < 1:
            raise ConfigError(f"tenant weight must be >= 1: {w}")
        tenant = Tenant(self._next_tid, name, uid=uid,
                        cgroup_path=cgroup_path, weight=w,
                        flow_quota=flow_quota,
                        sram_quota_bytes=sram_quota_bytes)
        self._next_tid += 1
        self._by_tid[tenant.tid] = tenant
        if uid is not None:
            self._by_uid[uid] = tenant
        if cgroup_path is not None:
            self._by_cgroup[cgroup_path] = tenant
        self._fire()
        return tenant

    def set_weight(self, tid: int, weight: int) -> None:
        if weight < 1:
            raise ConfigError(f"tenant weight must be >= 1: {weight}")
        self._by_tid[tid].weight = weight
        self._fire()

    def set_flow_quota(self, tid: int, quota: Optional[int]) -> None:
        self._by_tid[tid].flow_quota = quota

    def set_sram_quota(self, tid: int, nbytes: Optional[int]) -> None:
        """Resize a tenant's SRAM cap. Shrinking below its current use is
        allowed: existing blocks stay, new allocations fail until frees
        bring it back under (see docs/multi_tenancy.md)."""
        self._by_tid[tid].sram_quota_bytes = nbytes

    def _fire(self) -> None:
        for hook in self.on_change:
            hook()

    # --- resolution --------------------------------------------------------

    def resolve(self, proc) -> Tenant:
        """Process -> tenant: current cgroup path first (the §2 scenario —
        ports lie, the process tree doesn't), then uid, else ``system``.
        Always resolves; attribution never dangles."""
        t = self._by_cgroup.get(proc.cgroup_path)
        if t is not None:
            return t
        t = self._by_uid.get(proc.uid)
        if t is not None:
            return t
        return self.system

    def resolve_uid(self, uid: Optional[int]) -> Tenant:
        """NIC-side resolution from packet metadata (``owner_uid``), for
        charging sites that never see the process object."""
        if uid is None:
            return self.system
        return self._by_uid.get(uid, self.system)

    def get(self, tid: int) -> Optional[Tenant]:
        return self._by_tid.get(tid)

    def tenants(self) -> List[Tenant]:
        return [self._by_tid[tid] for tid in sorted(self._by_tid)]

    def __len__(self) -> int:
        return len(self._by_tid)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self.tenants())

    def __contains__(self, tid: int) -> bool:
        return tid in self._by_tid

    # --- scheduler view ----------------------------------------------------

    def sched_weights(self) -> Dict[str, int]:
        """Class -> weight map for the per-tenant egress qdisc: one class
        per registered tenant plus the default class (system tenant and
        anything unresolvable)."""
        from ..kernel.qdisc import DEFAULT_CLASS

        weights = {DEFAULT_CLASS: self.system.weight}
        for tenant in self._by_tid.values():
            if tenant.tid != TENANT_SYSTEM_TID:
                weights[tenant.sched_class] = tenant.weight
        return weights
