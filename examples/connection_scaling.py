#!/usr/bin/env python3
"""§5, the open scaling question: sweep concurrent connections and watch
throughput collapse once the ring working set outgrows DDIO — then rerun
with shared rings (the paper's candidate mitigation).

Run:  python examples/connection_scaling.py         (~1 minute)
"""

from repro.experiments.common import fmt_table
from repro.experiments.e8_connection_scaling import run_point

SWEEP = (256, 1_024, 2_048, 4_096)


def main() -> None:
    print("per-connection rings (the paper's current design):")
    rows = [run_point(n, packets_total=8_192) for n in SWEEP]
    print(fmt_table(rows, columns=[
        "connections", "hot_set_mib", "ddio_mib", "llc_miss_rate",
        "cpu_ns_per_pkt", "goodput_gbps", "line_rate_pct",
    ]))

    print("\nshared rings per process (the §5 mitigation):")
    rows = [run_point(n, packets_total=8_192, shared_rings=True) for n in SWEEP]
    print(fmt_table(rows, columns=[
        "connections", "hot_set_mib", "llc_miss_rate",
        "cpu_ns_per_pkt", "goodput_gbps", "line_rate_pct",
    ]))

    print("\nThe cliff sits where hot_set crosses the DDIO slice (~6 MiB, "
          "~1024 connections) — and disappears when rings are shared, at the "
          "cost of per-connection semantics.")


if __name__ == "__main__":
    main()
