"""Descriptor rings, notification queues, steering tables."""

import pytest

from repro import units
from repro.errors import NicError, NicResourceExhausted, RingEmpty, RingFull
from repro.host import MemorySystem
from repro.net import FiveTuple, IPv4Address, PROTO_TCP
from repro.nic import (
    DescriptorRing,
    Notification,
    NotificationQueue,
    RingPair,
    SteeringTable,
)
from repro.nic.notification import KIND_RX_READY, KIND_TX_DRAINED


def ring(entries=4, size=4_096, name="r"):
    mem = MemorySystem(total_bytes=1 * units.MB)
    return DescriptorRing(entries, mem.alloc_pinned(size, owner="t", name=name), name)


class TestDescriptorRing:
    def test_fifo_post_consume(self):
        r = ring()
        r.post("a")
        r.post("b")
        assert r.consume() == "a"
        assert r.consume() == "b"

    def test_full_and_empty_raise(self):
        r = ring(entries=2)
        r.post(1)
        r.post(2)
        with pytest.raises(RingFull):
            r.post(3)
        r.consume()
        r.consume()
        with pytest.raises(RingEmpty):
            r.consume()

    def test_try_variants(self):
        r = ring(entries=1)
        assert r.try_post("x") is True
        assert r.try_post("y") is False
        assert r.metrics.counter("full_drops").value == 1
        assert r.try_consume() == "x"
        assert r.try_consume() is None

    def test_head_tail_indices(self):
        r = ring(entries=4)
        for i in range(3):
            r.post(i)
        r.consume()
        assert (r.head, r.tail, r.occupancy, r.free_slots) == (3, 1, 2, 2)

    def test_slot_wraps(self):
        r = ring(entries=2)
        assert r.post("a") == 0
        r.consume()
        assert r.post("b") == 1
        r.consume()
        assert r.post("c") == 0

    def test_next_lines_cycle_through_region(self):
        r = ring(entries=4, size=256)  # 4 cache lines
        first = r.next_lines(4)
        again = r.next_lines(4)
        assert first == again  # wrapped around
        assert len(set(first)) == 4

    def test_ring_pair_pinned_accounting(self):
        mem = MemorySystem(total_bytes=1 * units.MB)
        rx = DescriptorRing(4, mem.alloc_pinned(4_096, owner="c1"), "rx")
        tx = DescriptorRing(4, mem.alloc_pinned(2_048, owner="c1"), "tx")
        pair = RingPair(conn_id=1, rx=rx, tx=tx)
        assert pair.pinned_bytes == 6_144


class TestNotificationQueue:
    def test_post_then_poll(self):
        q = NotificationQueue(owner_pid=5)
        q.post(Notification(conn_id=1, kind=KIND_RX_READY, time_ns=100))
        n = q.poll()
        assert (n.conn_id, n.kind) == (1, KIND_RX_READY)
        assert q.poll() is None

    def test_subscriber_sees_posts(self):
        q = NotificationQueue(owner_pid=5)
        seen = []
        unsub = q.subscribe(seen.append)
        q.post(Notification(1, KIND_RX_READY, 0))
        q.post(Notification(2, KIND_TX_DRAINED, 1))
        assert [n.conn_id for n in seen] == [1, 2]
        unsub()
        q.post(Notification(3, KIND_RX_READY, 2))
        assert len(seen) == 2

    def test_overflow_is_lossy_not_fatal(self):
        q = NotificationQueue(owner_pid=5, capacity=1)
        assert q.post(Notification(1, KIND_RX_READY, 0)) is True
        assert q.post(Notification(2, KIND_RX_READY, 1)) is False
        assert q.metrics.counter("overflows").value == 1
        assert q.depth == 1

    def test_subscribers_fire_even_on_overflow(self):
        """A full event queue must not suppress the wake-up path: the
        kernel monitor taps the post, like an interrupt."""
        q = NotificationQueue(owner_pid=5, capacity=1)
        seen = []
        q.subscribe(seen.append)
        q.post(Notification(1, KIND_RX_READY, 0))
        q.post(Notification(2, KIND_RX_READY, 1))  # storage overflow
        assert [n.conn_id for n in seen] == [1, 2]

    def test_drain(self):
        q = NotificationQueue(owner_pid=5)
        for i in range(3):
            q.post(Notification(i, KIND_RX_READY, i))
        assert [n.conn_id for n in q.drain()] == [0, 1, 2]
        assert q.depth == 0

    def test_interrupt_toggle(self):
        q = NotificationQueue(owner_pid=5)
        assert not q.interrupts_enabled
        q.enable_interrupts()
        assert q.interrupts_enabled

    def test_validation(self):
        with pytest.raises(NicError):
            NotificationQueue(owner_pid=1, capacity=0)
        with pytest.raises(NicError):
            Notification(1, "bogus", 0)


class TestSteeringTable:
    def flow(self, sport=1000):
        return FiveTuple(
            PROTO_TCP,
            IPv4Address.parse("10.0.0.1"), sport,
            IPv4Address.parse("10.0.0.2"), 80,
        )

    def test_exact_match_beats_rss(self):
        t = SteeringTable(n_queues=8)
        t.install(self.flow(), conn_id=42)
        assert t.lookup(self.flow()) == 42
        assert t.lookup(self.flow(sport=2000)) is None

    def test_capacity_enforced(self):
        t = SteeringTable(n_queues=4, capacity=2)
        t.install(self.flow(1), 1)
        t.install(self.flow(2), 2)
        with pytest.raises(NicResourceExhausted):
            t.install(self.flow(3), 3)
        # Updating an existing entry does not consume capacity.
        t.install(self.flow(1), 99)
        assert t.lookup(self.flow(1)) == 99

    def test_remove_frees_capacity(self):
        t = SteeringTable(n_queues=4, capacity=1)
        t.install(self.flow(1), 1)
        t.remove(self.flow(1))
        t.install(self.flow(2), 2)
        assert t.entries == 1

    def test_rss_fallback_deterministic_in_range(self):
        t = SteeringTable(n_queues=4)
        q = t.rss_fallback(self.flow())
        assert 0 <= q < 4
        assert q == t.rss_fallback(self.flow())
