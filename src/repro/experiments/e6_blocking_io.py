"""E6 — §2 Process scheduling: blocking vs polling I/O.

Intermittent load at varying inter-arrival gaps. Kernel bypass forces the
worker to poll — the core burns at ~100% regardless of load; the kernel
path and KOPI let it block — utilization tracks the real work, at the price
of a microsecond-scale wake latency per message. KOPI is additionally run
in polling mode to show §4.3's "supports both".
"""

from __future__ import annotations

from typing import List, Type

from .. import units
from ..core import NormanOS
from ..dataplanes import BypassDataplane, KernelPathDataplane, Testbed
from ..apps import BlockingWorker, PollingWorker
from .common import Row, fmt_table

GAPS_NS = (50_000, 500_000, 5_000_000)  # 20k, 2k, 200 msgs/sec equivalents
N_MESSAGES = 30

MODES = (
    ("bypass", BypassDataplane, PollingWorker, "poll (forced)"),
    ("kernel", KernelPathDataplane, BlockingWorker, "block"),
    ("kopi", NormanOS, BlockingWorker, "block"),
    ("kopi", NormanOS, PollingWorker, "poll (optional)"),
)


def run_e6(gaps_ns: "tuple[int, ...]" = GAPS_NS, n_messages: int = N_MESSAGES) -> List[Row]:
    rows: List[Row] = []
    for gap_ns in gaps_ns:
        for plane_name, plane_cls, worker_cls, mode in MODES:
            tb = Testbed(plane_cls)
            worker = worker_cls(tb, port=7000, comm="worker", user="bob", core_id=1)
            worker.start()
            for i in range(n_messages):
                tb.sim.after(gap_ns * (i + 1), tb.peer.send_udp, 555, 7000, 200)
            window = gap_ns * (n_messages + 2)
            tb.run(until=window)
            worker.stop()
            tb.run_all()
            starts = worker.service_starts()
            sends = [gap_ns * (i + 1) for i in range(len(starts))]
            dispatches = sorted(s - t for s, t in zip(starts, sends))
            p50 = dispatches[len(dispatches) // 2] if dispatches else 0
            rows.append({
                "plane": plane_name,
                "mode": mode,
                "msg_per_sec": round(units.SEC / gap_ns),
                "served": worker.served,
                "core_util_pct": 100 * tb.machine.cpus[1].utilization(window),
                "dispatch_us_p50": p50 / units.US,
            })
    return rows


def headline(rows: List[Row]) -> dict:
    lowest = min(r["msg_per_sec"] for r in rows)
    low = {(r["plane"], r["mode"]): r for r in rows if r["msg_per_sec"] == lowest}
    return {
        "low_load_msgs_per_sec": lowest,
        "bypass_poll_util_pct": low[("bypass", "poll (forced)")]["core_util_pct"],
        "kopi_block_util_pct": low[("kopi", "block")]["core_util_pct"],
    }


def main() -> str:
    rows = run_e6()
    h = headline(rows)
    return "\n".join([
        fmt_table(rows),
        "",
        f"headline: at {h['low_load_msgs_per_sec']} msgs/s, bypass polling burns "
        f"{h['bypass_poll_util_pct']:.0f}% of a core; KOPI blocking uses "
        f"{h['kopi_block_util_pct']:.2f}%",
    ])


if __name__ == "__main__":
    print(main())
