"""Property-based tests: NAT translation round trips, conntrack bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conntrack import CT_ENTRY_BYTES, ConntrackTable, NatTable
from repro.net import IPv4Address, MacAddress, make_tcp, make_udp
from repro.net.checksum import internet_checksum
from repro.net.headers import PROTO_TCP
from repro.nic.smartnic import SramAllocator

MAC_A, MAC_B = MacAddress.from_index(1), MacAddress.from_index(9)
HOST = IPv4Address.parse("10.0.0.1")
PUBLIC = IPv4Address.parse("192.0.2.1")


def flows():
    return st.tuples(
        st.booleans(),                      # tcp?
        st.integers(1, 0xFFFF),             # sport
        st.integers(1, 0xFFFF),             # dport
        st.integers(0, (1 << 32) - 1),      # remote ip
        st.integers(0, 1400),               # payload
    )


def build(flow):
    tcp, sport, dport, remote, size = flow
    maker = make_tcp if tcp else make_udp
    return maker(MAC_A, MAC_B, HOST, IPv4Address(remote), sport, dport, size)


class TestNatProperties:
    @given(flow=flows())
    @settings(max_examples=200)
    def test_out_then_reply_in_round_trips(self, flow):
        nat = NatTable(SramAllocator(1 << 20), PUBLIC)
        pkt = build(flow)
        out = nat.translate_out(pkt)
        assert out is not None
        assert out.ipv4.src == PUBLIC
        assert out.ipv4.dst == pkt.ipv4.dst
        assert out.l4.dport == pkt.l4.dport
        assert out.payload_len == pkt.payload_len
        assert internet_checksum(out.ipv4.to_bytes()) == 0

        # Build the peer's reply to what it saw and translate it back.
        ft = out.five_tuple
        maker = make_tcp if ft.proto == PROTO_TCP else make_udp
        reply = maker(MAC_B, MAC_A, ft.dst_ip, PUBLIC, ft.dport, ft.sport, 10)
        back = nat.translate_in(reply)
        assert back.ipv4.dst == HOST
        assert back.l4.dport == pkt.l4.sport  # original source restored

    @given(flow_list=st.lists(flows(), min_size=1, max_size=40, unique=True))
    @settings(max_examples=50)
    def test_public_ports_never_collide(self, flow_list):
        nat = NatTable(SramAllocator(1 << 20), PUBLIC)
        seen = {}
        for flow in flow_list:
            pkt = build(flow)
            out = nat.translate_out(pkt)
            key = (out.five_tuple.proto, out.l4.sport)
            internal = pkt.five_tuple
            if key in seen:
                assert seen[key] == internal  # same binding -> same flow
            seen[key] = internal

    @given(flow=flows())
    def test_translation_is_stable(self, flow):
        nat = NatTable(SramAllocator(1 << 20), PUBLIC)
        a = nat.translate_out(build(flow))
        b = nat.translate_out(build(flow))
        assert a.l4.sport == b.l4.sport
        assert len(nat.bindings()) == 1


class TestConntrackProperties:
    @given(
        flow_list=st.lists(flows(), min_size=1, max_size=60),
        capacity_entries=st.integers(1, 20),
    )
    @settings(max_examples=100)
    def test_entries_never_exceed_sram(self, flow_list, capacity_entries):
        sram = SramAllocator(capacity_entries * CT_ENTRY_BYTES)
        ct = ConntrackTable(sram)
        for i, flow in enumerate(flow_list):
            ct.observe(build(flow), now_ns=i)
            assert len(ct) <= capacity_entries
            assert sram.used_bytes == len(ct) * CT_ENTRY_BYTES

    @given(flow_list=st.lists(flows(), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_packet_accounting_conserved(self, flow_list):
        ct = ConntrackTable(SramAllocator(1 << 20))
        tracked = 0
        for i, flow in enumerate(flow_list):
            if ct.observe(build(flow), now_ns=i) is not None:
                tracked += 1
        assert sum(e.packets for e in ct.entries()) == tracked
