"""Generator-based simulated processes.

A simulated process is a Python generator that yields one of:

* an ``int`` — sleep that many nanoseconds;
* a :class:`~repro.sim.events.Signal` — block until it resolves; the signal's
  value is sent back into the generator (a failed signal is thrown in);
* another :class:`SimProcess` — block until it finishes; its return value is
  sent back.

The process itself exposes a ``done`` signal carrying the generator's return
value, so processes compose. An exception that escapes a generator fails
``done``; if nothing is waiting on ``done`` the exception propagates out of
the engine, so failures never pass silently.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from ..errors import SimulationError
from .engine import Simulator
from .events import Signal

Yieldable = Union[int, Signal, "SimProcess"]


class SimProcess:
    """Drives a generator inside a :class:`Simulator`."""

    _ids = 0

    def __init__(
        self,
        sim: Simulator,
        gen: Generator[Yieldable, Any, Any],
        name: str = "",
    ):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"SimProcess needs a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        SimProcess._ids += 1
        self.pid = SimProcess._ids
        self.name = name or f"proc-{self.pid}"
        self.sim = sim
        self.done = Signal(f"{self.name}.done")
        self._gen = gen
        self._waiting_on: Optional[Signal] = None
        sim.after(0, self._step, None, None)

    # --- public -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Throw ``exc`` (default :class:`ProcessInterrupted`) into the
        generator at its current wait point."""
        if self.finished:
            return
        exc = exc or ProcessInterrupted(f"{self.name} interrupted")
        self._waiting_on = None
        self.sim.after(0, self._step, None, exc)

    # --- engine plumbing ----------------------------------------------------

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self.finished:
            return
        try:
            if throw_exc is not None:
                yielded = self._gen.throw(throw_exc)
            else:
                yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.done.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate fan-out
            if self.done._callbacks:  # someone is waiting; deliver there
                self.done.fail(exc)
                return
            self.done.fail(exc)
            raise
        self._wait_for(yielded)

    def _wait_for(self, yielded: Yieldable) -> None:
        if isinstance(yielded, int):
            if yielded < 0:
                self._throw_soon(SimulationError(f"negative sleep: {yielded}"))
                return
            self.sim.after(yielded, self._step, None, None)
            return
        if isinstance(yielded, SimProcess):
            yielded = yielded.done
        if isinstance(yielded, Signal):
            self._waiting_on = yielded
            yielded.add_callback(self._on_signal)
            return
        self._throw_soon(
            SimulationError(
                f"{self.name} yielded {yielded!r}; expected int, Signal, or SimProcess"
            )
        )

    def _on_signal(self, signal: Signal) -> None:
        if self._waiting_on is not signal:
            return  # stale callback after an interrupt
        self._waiting_on = None
        if signal.failed:
            self.sim.after(0, self._step, None, signal.exception)
        else:
            self.sim.after(0, self._step, signal.value, None)

    def _throw_soon(self, exc: BaseException) -> None:
        self.sim.after(0, self._step, None, exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "running"
        return f"<SimProcess {self.name} {state}>"


class ProcessInterrupted(SimulationError):
    """Raised inside a generator when its process is interrupted."""
