"""Flow steering: five-tuple -> connection/queue, with RSS fallback."""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import NicResourceExhausted
from ..net.flow import FiveTuple
from ..net.rss import rss_queue
from ..sim import MetricSet


class SteeringTable:
    """Exact-match steering entries, optionally capacity-limited (on-NIC
    memory is scarce — §5). Misses fall back to RSS hashing over
    ``n_queues``."""

    def __init__(self, n_queues: int, capacity: Optional[int] = None, name: str = "steer"):
        if n_queues < 1:
            raise NicResourceExhausted(f"need at least one queue: {n_queues}")
        self.n_queues = n_queues
        self.capacity = capacity
        self._exact: Dict[FiveTuple, int] = {}
        self._dport: Dict["tuple[int, int]", int] = {}  # (proto, dport) -> conn
        self.metrics = MetricSet(name)
        self.point = None  # Optional[InterpositionPoint], set at registration

    def _committed(self) -> None:
        if self.point is not None:
            self.point.record_update()

    def install(self, flow: FiveTuple, conn_id: int) -> None:
        if flow in self._exact:
            self._exact[flow] = conn_id
            self._committed()
            return
        if self.capacity is not None and len(self._exact) >= self.capacity:
            raise NicResourceExhausted(
                f"steering table full ({self.capacity} entries)"
            )
        self._exact[flow] = conn_id
        self._committed()

    def remove(self, flow: FiveTuple) -> None:
        if self._exact.pop(flow, None) is not None:
            self._committed()

    def install_dport(self, proto: int, dport: int, conn_id: int) -> None:
        """Wildcard-source steering for listeners: any flow to (proto,
        dport) lands on ``conn_id``. Shares the capacity budget."""
        key = (proto, dport)
        if key in self._dport:
            self._dport[key] = conn_id
            self._committed()
            return
        if self.capacity is not None and self.entries >= self.capacity:
            raise NicResourceExhausted(f"steering table full ({self.capacity} entries)")
        self._dport[key] = conn_id
        self._committed()

    def remove_dport(self, proto: int, dport: int) -> None:
        if self._dport.pop((proto, dport), None) is not None:
            self._committed()

    def lookup(self, flow: FiveTuple) -> Optional[int]:
        """Exact-match then dport-match connection id, or None (caller
        falls back to RSS)."""
        conn = self._exact.get(flow)
        if conn is None:
            conn = self._dport.get((flow.proto, flow.dport))
        if conn is not None:
            self.metrics.counter("exact_hits").inc()
        else:
            self.metrics.counter("misses").inc()
        if self.point is not None:
            self.point.record_eval(hit=(conn is not None))
        return conn

    def peek(self, flow: FiveTuple) -> Optional[int]:
        """:meth:`lookup` without the side effects: no counters move and
        the interposition point records nothing. Control-plane readers
        (e.g. the migration coordinator resolving which connection a
        replayed verdict should land on) must not perturb the datapath's
        hit/miss accounting."""
        conn = self._exact.get(flow)
        if conn is None:
            conn = self._dport.get((flow.proto, flow.dport))
        return conn

    def rss_fallback(self, flow: FiveTuple) -> int:
        return rss_queue(flow, self.n_queues)

    @property
    def entries(self) -> int:
        return len(self._exact) + len(self._dport)
