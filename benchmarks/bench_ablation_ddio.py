"""Ablation — DDIO sizing: the cliff's location is set by the DDIO slice.

The §5 mechanism predicts the breaking point at
``connections ≈ ddio_capacity / per-connection hot footprint``. Sweeping
``ddio_ways`` (1, 2, 4 of 11) should move the measured cliff proportionally
(512, 1024, 2048 connections with the default 6 KiB footprint) — a strong
check that the model's cliff comes from the claimed mechanism and not from
an artifact.
"""

from repro.config import DEFAULT_COSTS
from repro.experiments.common import fmt_table
from repro.experiments.e8_connection_scaling import run_point


def predicted_breakpoint(costs) -> int:
    return costs.ddio_capacity_bytes // costs.conn_footprint_bytes


def run_ablation(packets_per_point: int = 4_096):
    rows = []
    for ways in (1, 2, 4):
        costs = DEFAULT_COSTS.replace(ddio_ways=ways)
        expected = predicted_breakpoint(costs)
        for n in (expected // 2, expected, 2 * expected):
            row = run_point(n, packets_total=packets_per_point, costs=costs)
            row["ddio_ways"] = ways
            row["predicted_break"] = expected
            rows.append(row)
    return rows


def test_ablation_ddio_ways(once):
    rows = once(run_ablation)
    print("\n" + fmt_table(rows, columns=[
        "ddio_ways", "predicted_break", "connections", "hot_set_mib",
        "llc_miss_rate", "goodput_gbps", "line_rate_pct",
    ]))
    for ways in (1, 2, 4):
        sub = [r for r in rows if r["ddio_ways"] == ways]
        half, at, double = sub
        assert half["llc_miss_rate"] == 0.0
        assert at["llc_miss_rate"] < 0.01
        assert double["llc_miss_rate"] > 0.3  # cliff crossed right where predicted
        assert double["goodput_gbps"] < at["goodput_gbps"]


def test_analytic_model_tracks_structural(once):
    """The closed-form DDIO model and the structural cache agree on the
    miss rate above the cliff (hit ≈ capacity / working set)."""

    def both():
        out = []
        for n in (2_048, 4_096):
            structural = run_point(n, packets_total=4_096)
            analytic_hit = min(
                1.0,
                DEFAULT_COSTS.ddio_capacity_bytes
                / (n * DEFAULT_COSTS.conn_footprint_bytes),
            )
            out.append((n, structural["llc_miss_rate"], 1 - analytic_hit))
        return out

    results = once(both)
    print("\nconnections  structural_miss  analytic_miss")
    for n, measured, predicted in results:
        print(f"{n:>10}  {measured:>14.3f}  {predicted:>12.3f}")
        assert abs(measured - predicted) < 0.05
