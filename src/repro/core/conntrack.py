"""On-NIC connection tracking and NAT.

§3 inventories what KOPI must absorb: "filtering, queueing, per-connection
state, NAT, and everything else the kernel does today". This module holds
the per-flow state machine (conntrack) and source NAT (masquerade), both
resident in SmartNIC SRAM — so they inherit §5's exhaustion behaviour: when
SRAM runs out, new flows fail over to the software path rather than
silently breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import NicResourceExhausted, PolicyError
from ..net.addresses import IPv4Address
from ..net.flow import FiveTuple
from ..net.headers import EthernetHeader, Ipv4Header, TcpHeader, UdpHeader
from ..net.packet import Packet
from ..nic.smartnic.sram import SramAllocator, SramBlock
from ..sim import MetricSet

STATE_NEW = "NEW"
STATE_ESTABLISHED = "ESTABLISHED"

CT_ENTRY_BYTES = 64
NAT_ENTRY_BYTES = 48
NAT_PORT_BASE = 30_000


@dataclass
class CtEntry:
    flow: FiveTuple
    state: str
    packets: int
    bytes: int
    last_seen_ns: int
    sram: SramBlock
    tenant_tid: Optional[int] = None
    """Owning tenant (tid) — the conntrack side of owner scoping: a
    tenant's flows are enumerable and its SRAM entries quota-charged."""


class ConntrackTable:
    """Flow state machine with SRAM-bounded capacity.

    ``observe`` returns the entry (creating it in SRAM when new) or None
    when SRAM is exhausted — the caller then treats the flow as untracked.
    """

    def __init__(self, sram: SramAllocator):
        self.sram = sram
        self._entries: Dict[FiveTuple, CtEntry] = {}
        self.metrics = MetricSet("conntrack")
        self.point = None  # Optional[InterpositionPoint], set at registration
        self.fastpath = None  # Optional[FlowFastPath]: expiry evicts flows

    def observe(self, pkt: Packet, now_ns: int, tenant=None) -> Optional[CtEntry]:
        ft = pkt.five_tuple
        if ft is None:
            return None
        entry = self._entries.get(ft)
        created = False
        if entry is None:
            reverse = self._entries.get(ft.reversed())
            if reverse is not None:
                # Reply traffic: the forward entry graduates to ESTABLISHED.
                reverse.state = STATE_ESTABLISHED
                reverse.packets += 1
                reverse.bytes += pkt.wire_len
                reverse.last_seen_ns = now_ns
                self.metrics.counter("established").inc()
                if self.point is not None:
                    self.point.record_eval(hit=True)
                return reverse
            try:
                # tenant: the entry's SRAM bytes bill against the owning
                # tenant's quota; a hog exhausts its own cap, not the table.
                block = self.sram.alloc(CT_ENTRY_BYTES, "conntrack",
                                        tenant=tenant)
            except NicResourceExhausted:
                self.metrics.counter("untracked").inc()
                if self.point is not None:
                    self.point.record_eval(hit=False)
                return None
            entry = CtEntry(flow=ft, state=STATE_NEW, packets=0, bytes=0,
                            last_seen_ns=now_ns, sram=block,
                            tenant_tid=tenant.tid if tenant is not None
                            else None)
            self._entries[ft] = entry
            self.metrics.counter("created").inc()
            created = True
        entry.packets += 1
        entry.bytes += pkt.wire_len
        entry.last_seen_ns = now_ns
        if self.point is not None:
            # A new flow writes a table entry (a commit); a known flow is a
            # lookup hit against the existing table version.
            self.point.record_eval(hit=not created)
            if created:
                self.point.record_update()
        return entry

    def lookup(self, flow: FiveTuple) -> Optional[CtEntry]:
        return self._entries.get(flow) or self._entries.get(flow.reversed())

    def expire_older_than(self, cutoff_ns: int) -> int:
        """Garbage-collect idle flows; returns how many were reclaimed."""
        stale = [ft for ft, e in self._entries.items() if e.last_seen_ns < cutoff_ns]
        for ft in stale:
            self.sram.free(self._entries[ft].sram)
            del self._entries[ft]
            if self.fastpath is not None:
                # An expired flow's cached verdicts hold a dead CtEntry
                # reference — evict them (both directions) eagerly.
                self.fastpath.evict_flow(ft)
        if stale:
            self.metrics.counter("expired").inc(len(stale))
        return len(stale)

    # -- live flow migration (cluster scale-out, E18) ----------------------

    def snapshot(self, flow: FiveTuple) -> Optional[Dict[str, object]]:
        """Serializable copy of the exact-key entry for ``flow`` (no
        reverse-direction fallback — migration moves one direction's state
        under its own key). Pure read: no counters move, the entry stays."""
        entry = self._entries.get(flow)
        if entry is None:
            return None
        return {
            "flow": entry.flow,
            "state": entry.state,
            "packets": entry.packets,
            "bytes": entry.bytes,
            "last_seen_ns": entry.last_seen_ns,
            "tenant_tid": entry.tenant_tid,
        }

    def adopt(self, snap: Dict[str, object], now_ns: int,
              tenant=None) -> Optional[CtEntry]:
        """Replay a migrated-in :meth:`snapshot` onto this table.

        Counters are *merged*, not overwritten: packets the new backend
        already served before the snapshot arrived (re-steered traffic
        racing the state transfer) stay counted, so source + target always
        sum to what a no-migration run would have seen. Adoption writes a
        table entry, so it is a policy commit (``record_update``) on this
        machine's engine — the epoch bump is what invalidates any stale
        verdicts cached here, extending the epoch-stamped invalidation
        contract across machines. Returns None when SRAM is exhausted (the
        flow arrives untracked, like any new flow under pressure)."""
        ft = snap["flow"]
        entry = self._entries.get(ft)
        if entry is None:
            try:
                block = self.sram.alloc(CT_ENTRY_BYTES, "conntrack",
                                        tenant=tenant)
            except NicResourceExhausted:
                self.metrics.counter("untracked").inc()
                return None
            entry = CtEntry(flow=ft, state=snap["state"], packets=0, bytes=0,
                            last_seen_ns=snap["last_seen_ns"], sram=block,
                            tenant_tid=snap["tenant_tid"])
            self._entries[ft] = entry
        entry.packets += snap["packets"]
        entry.bytes += snap["bytes"]
        if snap["state"] == STATE_ESTABLISHED:
            entry.state = STATE_ESTABLISHED
        entry.last_seen_ns = max(entry.last_seen_ns, snap["last_seen_ns"],
                                 now_ns)
        self.metrics.counter("adopted").inc()
        if self.point is not None:
            self.point.record_update()
        return entry

    def release_flow(self, flow: FiveTuple) -> Optional[Dict[str, object]]:
        """Drop the exact-key entry for ``flow`` (migration hand-off
        complete: the target owns the state now). Frees the SRAM block,
        evicts the flow's cached verdicts, and returns a final
        :meth:`snapshot` so the coordinator can reconcile packets the
        source served after the first copy. The removal is itself a commit."""
        entry = self._entries.get(flow)
        if entry is None:
            return None
        snap = self.snapshot(flow)
        self.sram.free(entry.sram)
        del self._entries[flow]
        self.metrics.counter("migrated_out").inc()
        if self.fastpath is not None:
            self.fastpath.evict_flow(flow)
        if self.point is not None:
            self.point.record_update()
        return snap

    def entries(self) -> List[CtEntry]:
        return sorted(self._entries.values(), key=lambda e: str(e.flow))

    def entries_for_tenant(self, tid: int) -> List[CtEntry]:
        """Owner-scoped view: one tenant's tracked flows."""
        return [e for e in self.entries() if e.tenant_tid == tid]

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class NatBinding:
    internal: FiveTuple        # original outbound flow
    public_port: int
    sram: SramBlock


class NatTable:
    """Source NAT (masquerade): rewrite outbound flows to a public address,
    reverse-translate inbound replies.

    The translated packet is *rebuilt* (new headers, recomputed IPv4
    checksum) — captures downstream of NAT see the rewritten truth.
    """

    def __init__(self, sram: SramAllocator, public_ip: IPv4Address):
        self.sram = sram
        self.public_ip = public_ip
        self._by_internal: Dict[FiveTuple, NatBinding] = {}
        self._by_public_port: Dict[Tuple[int, int], NatBinding] = {}  # (proto, port)
        self._next_port = NAT_PORT_BASE
        self.metrics = MetricSet("nat")

    def _allocate_port(self, proto: int) -> int:
        for _ in range(0x10000 - NAT_PORT_BASE):
            port = NAT_PORT_BASE + (self._next_port - NAT_PORT_BASE) % (0x10000 - NAT_PORT_BASE)
            self._next_port += 1
            if (proto, port) not in self._by_public_port:
                return port
        raise PolicyError("NAT public port space exhausted")

    def translate_out(self, pkt: Packet) -> Optional[Packet]:
        """Outbound: source becomes (public_ip, allocated port). Returns the
        rewritten packet, or None when SRAM is exhausted (caller decides:
        drop or software path)."""
        ft = pkt.five_tuple
        if ft is None or pkt.ipv4 is None or pkt.l4 is None:
            return pkt
        binding = self._by_internal.get(ft)
        if binding is None:
            try:
                # tenant: NAT bindings are admin-installed machine policy,
                # not per-flow tenant state — they bill the shared pool.
                block = self.sram.alloc(NAT_ENTRY_BYTES, "nat")
            except NicResourceExhausted:
                self.metrics.counter("exhausted").inc()
                return None
            binding = NatBinding(internal=ft, public_port=self._allocate_port(ft.proto),
                                 sram=block)
            self._by_internal[ft] = binding
            self._by_public_port[(ft.proto, binding.public_port)] = binding
            self.metrics.counter("bindings").inc()
        self.metrics.counter("translated_out").inc()
        return _rewrite(pkt, src_ip=self.public_ip, sport=binding.public_port)

    def translate_in(self, pkt: Packet) -> Packet:
        """Inbound: a reply to (public_ip, public port) is rewritten back to
        the internal flow. Unbound inbound traffic passes through unchanged
        (steering and filters downstream decide its fate — NAT is a
        translator, not a firewall)."""
        ft = pkt.five_tuple
        if ft is None or pkt.ipv4 is None or pkt.l4 is None:
            return pkt
        if ft.dst_ip != self.public_ip:
            return pkt
        binding = self._by_public_port.get((ft.proto, ft.dport))
        if binding is None:
            self.metrics.counter("no_binding").inc()
            return pkt
        self.metrics.counter("translated_in").inc()
        internal = binding.internal
        return _rewrite(pkt, dst_ip=internal.src_ip, dport=internal.sport)

    def bindings(self) -> List[NatBinding]:
        return list(self._by_internal.values())

    def release(self, internal: FiveTuple) -> None:
        binding = self._by_internal.pop(internal, None)
        if binding is None:
            raise PolicyError(f"no NAT binding for {internal}")
        del self._by_public_port[(internal.proto, binding.public_port)]
        self.sram.free(binding.sram)


def _rewrite(
    pkt: Packet,
    src_ip: Optional[IPv4Address] = None,
    dst_ip: Optional[IPv4Address] = None,
    sport: Optional[int] = None,
    dport: Optional[int] = None,
) -> Packet:
    """Rebuild a packet with rewritten address fields (checksums redone)."""
    assert pkt.ipv4 is not None and pkt.l4 is not None
    new_ip = Ipv4Header(
        src=src_ip or pkt.ipv4.src,
        dst=dst_ip or pkt.ipv4.dst,
        proto=pkt.ipv4.proto,
        payload_len=pkt.ipv4.payload_len,
        ttl=pkt.ipv4.ttl,
        dscp=pkt.ipv4.dscp,
        ident=pkt.ipv4.ident,
    )
    if isinstance(pkt.l4, TcpHeader):
        new_l4 = TcpHeader(
            sport=sport if sport is not None else pkt.l4.sport,
            dport=dport if dport is not None else pkt.l4.dport,
            seq=pkt.l4.seq, ack=pkt.l4.ack, flags=pkt.l4.flags, window=pkt.l4.window,
        )
    else:
        assert isinstance(pkt.l4, UdpHeader)
        new_l4 = UdpHeader(
            sport=sport if sport is not None else pkt.l4.sport,
            dport=dport if dport is not None else pkt.l4.dport,
            payload_len=pkt.l4.payload_len,
        )
    new_pkt = Packet(
        eth=EthernetHeader(dst=pkt.eth.dst, src=pkt.eth.src, ethertype=pkt.eth.ethertype),
        ipv4=new_ip,
        l4=new_l4,
        payload_len=pkt.payload_len,
    )
    new_pkt.meta = pkt.meta  # translation preserves attribution
    return new_pkt
