"""The discrete-event engine.

A :class:`Simulator` owns a calendar queue of pending events. Each event
is a plain callback scheduled at an absolute integer-nanosecond
timestamp. Ties are broken by insertion order, so a run is fully
deterministic.

The calendar queue buckets the near future (a fixed window of
``N_BUCKETS`` buckets of ``2**BUCKET_SHIFT`` ns each) so the hot
schedule/pop path is O(1): most simulated work schedules a few hundred
to a few thousand ns ahead, which lands in a small per-bucket heap
instead of one binary heap shared by every pending event. Events beyond
the window go to an overflow heap and migrate into buckets (at most
once each) when the window advances past them — so epoch and horizon
timers at million-flow scale stop paying O(log n) against each other.
Firing order is identical to a single global heap: the queue partitions
the (time, seq) key space by time range, and the scan always drains the
lowest occupied bucket first.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import SimulationError

#: log2 of the bucket width: 1024 ns per bucket.
BUCKET_SHIFT = 10
#: Buckets in the near window: 2048 * 1024 ns ~= 2.1 ms of simulated time.
N_BUCKETS = 2048
#: Absolute span of the near window in ns.
WINDOW_NS = N_BUCKETS << BUCKET_SHIFT


class EventHandle:
    """Handle to a scheduled callback; allows cancellation.

    Cancellation is lazy: the queue entry stays in place and is skipped
    when it surfaces, which keeps scheduling O(1). The owning simulator
    tracks how many cancelled entries its queue carries and compacts when
    they dominate (see :meth:`Simulator._compact`).
    """

    __slots__ = ("time", "_fn", "_args", "_cancelled", "_sim")

    def __init__(
        self,
        time: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call more than once."""
        if self._cancelled:
            return
        self._cancelled = True
        self._fn = _cancelled_fn
        self._args = ()
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        self._fn(*self._args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time} {state}>"


def _cancelled_fn() -> None:
    """Body of a cancelled event."""


def _fire_burst(fn: Callable[..., Any], items: Tuple[Any, ...]) -> None:
    """Body of a coalesced burst event: apply ``fn`` to each item in order."""
    for item in items:
        fn(item)


class Simulator:
    """Deterministic discrete-event simulator with integer-ns time."""

    #: Below this queue size, compaction is not worth the rebuild.
    COMPACT_MIN_HEAP = 64

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._events_fired = 0
        self._cancelled_pending = 0
        self._compactions = 0
        # Calendar: near-window buckets (each a (time, seq, handle) heap),
        # an occupancy bitmap over them, and an overflow heap for events
        # past the window. ``_base`` is bucket 0's start time; ``_cur`` is
        # a scan hint — no occupied bucket lies below it.
        self._base = 0
        self._cur = 0
        self._buckets: List[List[Tuple[int, int, EventHandle]]] = [
            [] for _ in range(N_BUCKETS)
        ]
        self._occupied = 0
        self._near_count = 0
        self._far: List[Tuple[int, int, EventHandle]] = []
        self._rebases = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (observability / tests)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of queue entries (including lazily-cancelled ones)."""
        return self._near_count + len(self._far)

    @property
    def cancelled_pending(self) -> int:
        """Lazily-cancelled entries still occupying queue slots."""
        return self._cancelled_pending

    @property
    def heap_compactions(self) -> int:
        """How many times the queue has been compacted (observability)."""
        return self._compactions

    @property
    def far_pending(self) -> int:
        """Entries waiting in the overflow heap beyond the near window."""
        return len(self._far)

    @property
    def calendar_rebases(self) -> int:
        """How many times the near window has advanced over the overflow
        heap (observability)."""
        return self._rebases

    # --- calendar internals -------------------------------------------------

    def _push(self, entry: Tuple[int, int, EventHandle]) -> None:
        idx = (entry[0] - self._base) >> BUCKET_SHIFT
        if idx >= N_BUCKETS:
            heappush(self._far, entry)
            return
        if idx < 0:
            # Entry predates the window base (a rebase moved base past
            # ``now``). Clamping to bucket 0 is order-safe: such entries
            # are globally smallest, and bucket 0 is scanned first.
            idx = 0
        heappush(self._buckets[idx], entry)
        self._occupied |= 1 << idx
        if idx < self._cur:
            self._cur = idx
        self._near_count += 1

    def _rebase(self) -> None:
        """Advance the window to the earliest overflow entry and pull every
        overflow entry now inside it into buckets. Only called with all
        buckets empty, so each overflow entry migrates at most once."""
        far = self._far
        while far and far[0][2].cancelled:
            heappop(far)
            self._cancelled_pending -= 1
        if not far:
            return
        base = far[0][0]
        self._base = base
        self._cur = 0
        limit = base + WINDOW_NS
        buckets = self._buckets
        while far and far[0][0] < limit:
            entry = heappop(far)
            idx = (entry[0] - base) >> BUCKET_SHIFT
            heappush(buckets[idx], entry)
            self._occupied |= 1 << idx
            self._near_count += 1
        self._rebases += 1

    def _min_bucket(self) -> Optional[List[Tuple[int, int, EventHandle]]]:
        """The bucket holding the earliest live event, with cancelled heads
        drained, or None when the queue holds no live events. Leaves
        ``_cur`` at that bucket's index (so callers can clear its
        occupancy bit after popping it empty)."""
        while True:
            occ = self._occupied
            if occ:
                m = occ >> self._cur
                if not m:  # pragma: no cover - defensive; _cur is a hint
                    self._cur = 0
                    m = occ
                idx = self._cur + ((m & -m).bit_length() - 1)
                self._cur = idx
                bucket = self._buckets[idx]
                while bucket and bucket[0][2].cancelled:
                    heappop(bucket)
                    self._near_count -= 1
                    self._cancelled_pending -= 1
                if bucket:
                    return bucket
                self._occupied &= ~(1 << idx)
                continue
            if not self._far:
                return None
            self._rebase()

    def _pop_from(self, bucket: List[Tuple[int, int, EventHandle]]):
        """Pop the head of a bucket returned by :meth:`_min_bucket`."""
        entry = heappop(bucket)
        self._near_count -= 1
        if not bucket:
            self._occupied &= ~(1 << self._cur)
        return entry

    def _note_cancelled(self) -> None:
        """Queue hygiene: when cancelled entries exceed 50% of ``pending``,
        rebuild the calendar without them. Lazy cancellation otherwise
        leaks the slots for the lifetime of a run (timer-heavy workloads
        cancel far more events than they fire)."""
        self._cancelled_pending += 1
        pending = self._near_count + len(self._far)
        if pending >= self.COMPACT_MIN_HEAP and self._cancelled_pending * 2 > pending:
            self._compact()

    def _compact(self) -> None:
        # Rebuild the calendar from the live entries only. Re-pushing
        # preserves firing order because (time, seq) keys are unique and
        # totally ordered, and every live entry's time is >= ``now`` (the
        # clock only advances to fired-event times or idle ``until``
        # marks), so re-basing the window at ``now`` strands nothing.
        live = [e for b in self._buckets for e in b if not e[2].cancelled]
        live.extend(e for e in self._far if not e[2].cancelled)
        self._base = self._now
        self._cur = 0
        self._occupied = 0
        self._near_count = 0
        self._far = []
        for bucket in self._buckets:
            del bucket[:]
        for entry in live:
            self._push(entry)
        self._cancelled_pending = 0
        self._compactions += 1

    # --- scheduling ---------------------------------------------------------

    def at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ns} ns; now is {self._now} ns"
            )
        handle = EventHandle(time_ns, fn, args, self)
        self._seq += 1
        self._push((time_ns, self._seq, handle))
        return handle

    def after(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.at(self._now + delay_ns, fn, *args)

    def at_burst(
        self, time_ns: int, fn: Callable[..., Any], items: Sequence[Any]
    ) -> EventHandle:
        """Coalesced-event fast path: schedule ``fn(item)`` for every item
        of a burst under ONE queue entry (and one callback execution).

        This is what makes large-batch sweeps cheap in wall-clock terms:
        a burst of 64 packets costs one queue push/pop instead of 64.
        Cancelling the handle cancels the whole burst.
        """
        if not items:
            raise SimulationError("at_burst needs at least one item")
        return self.at(time_ns, _fire_burst, fn, tuple(items))

    def after_burst(
        self, delay_ns: int, fn: Callable[..., Any], items: Sequence[Any]
    ) -> EventHandle:
        """Burst counterpart of :meth:`after`; see :meth:`at_burst`."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.at_burst(self._now + delay_ns, fn, items)

    # --- execution ----------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Timestamp of the next non-cancelled event, or None if idle."""
        bucket = self._min_bucket()
        if bucket is None:
            return None
        return bucket[0][0]

    def step(self) -> bool:
        """Execute the next event. Returns False when no events remain."""
        bucket = self._min_bucket()
        if bucket is None:
            return False
        time_ns, _, handle = self._pop_from(bucket)
        self._now = time_ns
        self._events_fired += 1
        handle._fire()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the simulated time afterwards. When stopping at ``until``,
        the clock is advanced to ``until`` even if no event fires exactly
        there, so back-to-back ``run(until=...)`` calls behave like wall
        clock segments.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                return self._now
            # _min_bucket() leaves a non-cancelled entry at the head, so
            # pop it directly — one queue traversal per event.
            bucket = self._min_bucket()
            if bucket is None:
                if until is not None and until > self._now:
                    self._now = until
                return self._now
            nxt = bucket[0][0]
            if until is not None and nxt > until:
                self._now = until
                return self._now
            time_ns, _, handle = self._pop_from(bucket)
            self._now = time_ns
            self._events_fired += 1
            handle._fire()
            fired += 1

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the event queue completely; guard against runaway loops.

        Delegates to :meth:`run`, which pops via :meth:`_min_bucket` — one
        queue traversal per event. Fires at most ``max_events`` callbacks;
        if non-cancelled work remains after that, raises.
        """
        self.run(max_events=max_events)
        if self.peek() is not None:
            raise SimulationError(
                f"run_until_idle exceeded {max_events} events; likely a livelock"
            )
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now}ns pending={self.pending}>"
