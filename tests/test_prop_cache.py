"""Property-based tests on the DDIO cache model's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.cache import CPU_OWNER, DDIO_OWNER, WayPartitionedCache

LINE = 64


def ops_strategy():
    """A random mixed access trace: (is_dma, line_index)."""
    return st.lists(
        st.tuples(st.booleans(), st.integers(0, 255)), min_size=1, max_size=300
    )


def geometry():
    return st.tuples(
        st.integers(1, 8),   # sets
        st.integers(1, 8),   # ways
    ).flatmap(
        lambda sw: st.tuples(st.just(sw[0]), st.just(sw[1]), st.integers(0, sw[1]))
    )


class TestStructuralInvariants:
    @given(geom=geometry(), ops=ops_strategy())
    @settings(max_examples=200)
    def test_capacity_and_ddio_cap_never_violated(self, geom, ops):
        sets, ways, ddio_ways = geom
        cache = WayPartitionedCache(sets=sets, ways=ways, ddio_ways=ddio_ways, line_bytes=LINE)
        for is_dma, idx in ops:
            addr = idx * LINE
            if is_dma:
                cache.dma_write(addr)
            else:
                cache.cpu_read(addr)
            for s in cache._lines:
                assert len(s) <= ways
                ddio_count = sum(1 for o in s.values() if o == DDIO_OWNER)
                assert ddio_count <= ddio_ways
        assert cache.resident_lines() <= sets * ways

    @given(geom=geometry(), ops=ops_strategy())
    @settings(max_examples=100)
    def test_stats_are_consistent(self, geom, ops):
        sets, ways, ddio_ways = geom
        cache = WayPartitionedCache(sets=sets, ways=ways, ddio_ways=ddio_ways, line_bytes=LINE)
        dma_ops = cpu_ops = 0
        for is_dma, idx in ops:
            addr = idx * LINE
            if is_dma:
                cache.dma_write(addr)
                dma_ops += 1
            else:
                cache.cpu_read(addr)
                cpu_ops += 1
        s = cache.stats
        assert s["dma_hits"] + s["dma_fills"] == dma_ops
        assert s["cpu_hits"] + s["cpu_misses"] == cpu_ops
        assert 0 <= cache.cpu_miss_rate() <= 1

    @given(ops=ops_strategy())
    @settings(max_examples=100)
    def test_read_immediately_after_dma_write_hits(self, ops):
        cache = WayPartitionedCache(sets=4, ways=4, ddio_ways=2, line_bytes=LINE)
        for is_dma, idx in ops:
            addr = idx * LINE
            if is_dma:
                cache.dma_write(addr)
                assert cache.cpu_read(addr) is True  # DDIO made it resident
            else:
                cache.cpu_read(addr)

    @given(ops=ops_strategy())
    @settings(max_examples=100)
    def test_no_allocate_mode_never_installs_cpu_lines(self, ops):
        cache = WayPartitionedCache(
            sets=4, ways=4, ddio_ways=2, line_bytes=LINE, cpu_fills_allocate=False
        )
        for is_dma, idx in ops:
            addr = idx * LINE
            if is_dma:
                cache.dma_write(addr)
            else:
                cache.cpu_read(addr)
            for s in cache._lines:
                assert all(o == DDIO_OWNER for o in s.values())

    @given(n_lines=st.integers(1, 64))
    def test_working_set_within_ddio_always_hits_steady_state(self, n_lines):
        """Fundamental DDIO property: a cyclic DMA/read working set that
        fits the DDIO slice never misses after warmup."""
        cache = WayPartitionedCache(sets=16, ways=4, ddio_ways=2, line_bytes=LINE)
        addrs = [i * LINE for i in range(min(n_lines, 32))]  # slice = 32 lines
        for a in addrs:  # warm
            cache.dma_write(a)
        cache.reset_stats()
        for _round in range(3):
            for a in addrs:
                cache.dma_write(a)
            for a in addrs:
                cache.cpu_read(a)
        assert cache.cpu_miss_rate() == 0.0
