"""The tracing spine (repro.trace): default-off invisibility, the
no-lost-nanoseconds conservation invariant across every dataplane, stage
attribution, loose work, the capture join, and the Chrome-trace export."""

import json
from dataclasses import replace

from repro import units
from repro.config import DEFAULT_COSTS
from repro.core import NormanOS
from repro.dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    SidecarDataplane,
    Testbed,
)
from repro.apps import BlockingWorker
from repro.experiments.common import planes_under_test, run_bulk_tx
from repro.experiments.e4_debugging import capture_trace_join
from repro.trace import (
    STAGE_APP,
    STAGE_COPY,
    STAGE_PROTO,
    STAGE_QDISC,
    STAGE_RING,
    STAGE_SYSCALL,
    STAGE_WIRE,
    TraceContext,
    Tracer,
    charge,
    to_trace_events,
    write_trace,
)

TRACED = replace(DEFAULT_COSTS, trace=True)


def _traced_run(plane_cls, count=30, burst=1):
    row = run_bulk_tx(plane_cls, 1_000, count, costs=TRACED, burst=burst,
                      return_tb=True)
    return row, row.pop("tb").machine.tracer


class TestDefaultOff:
    def test_disabled_tracer_records_nothing(self):
        row = run_bulk_tx(KernelPathDataplane, 1_000, 10, return_tb=True)
        tracer = row.pop("tb").machine.tracer
        assert not tracer.enabled
        assert tracer.contexts == []
        assert tracer.loose_totals() == {}
        assert tracer.begin(object()) is None
        assert tracer.loose(STAGE_APP, 123) == 123  # returns ns, records nothing
        assert tracer.loose_totals() == {}

    def test_charge_without_context_is_identity(self):
        assert charge(STAGE_SYSCALL, 500, None) == 500
        assert charge(STAGE_SYSCALL, 0, None) == 0

    def test_tracing_on_does_not_perturb_tx_measurements(self):
        """Tracing observes the schedule; it must not change it. Every
        measured column of a bulk-TX run is identical with tracing on."""
        for plane_cls in planes_under_test():
            base = run_bulk_tx(plane_cls, 1_000, 20)
            traced = run_bulk_tx(plane_cls, 1_000, 20, costs=TRACED)
            assert base == traced, plane_cls.name


class TestConservation:
    def test_no_lost_nanoseconds_every_plane(self):
        """The tentpole invariant: for every closed context on every
        dataplane, the span sum equals the end-to-end latency exactly."""
        for plane_cls in planes_under_test():
            row, tracer = _traced_run(plane_cls)
            closed = tracer.closed_contexts()
            assert len(closed) == row["delivered"] > 0, plane_cls.name
            for ctx in closed:
                assert ctx.span_sum() == ctx.latency_ns(), (
                    plane_cls.name, ctx.trace_id, ctx.by_stage(),
                    ctx.latency_ns(),
                )

    def test_cpu_spans_reproduce_measured_busy(self):
        """The cpu=True subset plus loose CPU work equals the measured
        host-CPU delta, per plane."""
        for plane_cls in planes_under_test():
            row, tracer = _traced_run(plane_cls)
            rep = tracer.report()
            measured = round(row["host_cpu_ns_per_pkt"] * row["delivered"])
            assert rep["cpu_ns_total"] == measured, plane_cls.name

    def test_fill_gap_charges_uncovered_time_only(self):
        ctx = TraceContext(1, "test", t0_ns=100)
        ctx.add(STAGE_SYSCALL, 40)
        assert ctx.fill_gap(STAGE_RING, 200) == 60
        assert ctx.fill_gap(STAGE_RING, 200) == 0  # nothing left to absorb
        ctx.close(200)
        assert ctx.span_sum() == ctx.latency_ns() == 100


class TestStageAttribution:
    def test_kernel_anatomy_has_the_expected_stages(self):
        _row, tracer = _traced_run(KernelPathDataplane)
        stages = tracer.report()["stages"]
        for stage in (STAGE_SYSCALL, STAGE_COPY, STAGE_PROTO, STAGE_QDISC,
                      STAGE_WIRE):
            assert stage in stages, stage
        # Every kernel TX packet pays exactly one syscall span.
        assert stages[STAGE_SYSCALL]["p50"] == DEFAULT_COSTS.syscall_ns

    def test_bypass_anatomy_has_no_syscalls_or_copies(self):
        _row, tracer = _traced_run(BypassDataplane)
        stages = tracer.report()["stages"]
        assert STAGE_SYSCALL not in stages
        assert STAGE_COPY not in stages
        assert STAGE_RING in stages and STAGE_WIRE in stages

    def test_plane_tags_follow_the_dataplane(self):
        for plane_cls in (KernelPathDataplane, SidecarDataplane, NormanOS,
                          HypervisorDataplane, BypassDataplane):
            _row, tracer = _traced_run(plane_cls, count=5)
            assert tracer.plane == plane_cls.name
            assert {c.plane for c in tracer.closed_contexts()} == {plane_cls.name}

    def test_burst_amortization_conserves_at_the_lead(self):
        """Shared burst costs land on the lead packet; siblings absorb the
        elapsed time as waits — the invariant still holds for every packet."""
        costs = replace(TRACED, batch_size=8)
        for plane_cls in planes_under_test():
            row = run_bulk_tx(plane_cls, 1_000, 32, costs=costs,
                              burst=8, return_tb=True)
            tracer = row.pop("tb").machine.tracer
            closed = tracer.closed_contexts()
            assert len(closed) == row["delivered"], plane_cls.name
            for ctx in closed:
                assert ctx.span_sum() == ctx.latency_ns(), (
                    plane_cls.name, ctx.trace_id, ctx.by_stage(),
                    ctx.latency_ns(),
                )


class TestSidecarWakeDrainFix:
    def _wake_drain_busy(self, costs):
        tb = Testbed(SidecarDataplane, costs=costs)
        worker = BlockingWorker(tb, port=7_000, work_ns=2_000, comm="blk",
                                user="bob", core_id=1)
        worker.start()
        tb.sim.at(5 * units.US, tb.peer.send_udp, 555, 7_000, 256)
        tb.run_all()
        assert worker.served == 1
        return tb.machine.cpus[1].busy_ns

    def test_wake_path_drain_charged_only_under_trace(self):
        """Bugfix, gated on costs.trace: the sidecar wake path used to hand
        drained messages to the app for free while the queued path charges
        per-message descriptor reads. With tracing on the wake path now
        charges the same per-message cost; off reproduces the seed."""
        off = self._wake_drain_busy(DEFAULT_COSTS)
        on = self._wake_drain_busy(TRACED)
        assert on - off == DEFAULT_COSTS.bypass_rx_pkt_ns


class TestCaptureJoin:
    def test_capture_rows_resolve_to_contexts(self):
        result = capture_trace_join(n_apps=4)
        assert result["captured"] > 0
        assert len(result["joined"]) > 0
        assert all(r["resolved"] for r in result["joined"])
        assert all(r["spans"] > 0 for r in result["joined"])


class TestExport:
    def test_chrome_trace_events_shape(self):
        _row, tracer = _traced_run(KernelPathDataplane, count=5)
        doc = to_trace_events(tracer)
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert metas and spans
        for ev in spans:
            assert ev["dur"] > 0 and ev["ts"] >= 0
            assert "," in ev["cat"]  # stage,cpu|hw

    def test_write_trace_round_trips_json(self, tmp_path):
        _row, tracer = _traced_run(KernelPathDataplane, count=5)
        path = tmp_path / "trace.json"
        n = write_trace(tracer, str(path))
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == n > 0

    def test_reset_clears_recorded_state(self):
        tracer = Tracer(sim=None, enabled=True, plane="p")
        tracer.loose(STAGE_APP, 10)
        tracer._loose and tracer.reset()
        assert tracer.loose_totals() == {}
        assert tracer.enabled and tracer.plane == "p"


class TestCli:
    def test_trace_subcommand_writes_perfetto_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "kernel.json"
        assert main(["trace", "kernel", "--out", str(out)]) == 0
        assert "trace events" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]

    def test_trace_subcommand_rejects_unknown_plane(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "nope"]) == 2
        assert "unknown plane" in capsys.readouterr().err
