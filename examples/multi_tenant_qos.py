#!/usr/bin/env python3
"""§2 QoS, end to end: Bob's game (which hops ports every session) competes
with Charlie's build traffic on a 2 Gbps egress. Alice shapes the game to a
1:3 share with plain `tc` — enforced on the SmartNIC.

Run:  python examples/multi_tenant_qos.py
"""

from repro import units
from repro.core import NormanOS
from repro.dataplanes import BypassDataplane, Testbed
from repro.apps import BulkSender, GameClient
from repro.tools import Tc

LINK = 2 * units.GBPS
WINDOW = 20 * units.MS


def run(plane_cls, shaped: bool):
    tb = Testbed(plane_cls, link_rate_bps=LINK)
    tb.kernel.cgroups.create("/games")
    tb.kernel.cgroups.create("/work")
    game = GameClient(tb, user="bob", core_id=1, payload_len=1_200,
                      packets_per_session=100_000, sessions=1, seed=11)
    work = BulkSender(tb, comm="builder", user="charlie", core_id=2,
                      payload_len=1_200, count=None)
    tb.kernel.cgroups.assign(game.proc, "/games")
    tb.kernel.cgroups.assign(work.proc, "/work")
    if shaped:
        print(Tc(tb.dataplane, tb.kernel)("qdisc replace dev nic0 root wfq /games:1 /work:3"))
        tb.run_all()
    game.start()
    work.start()
    tb.run(until=WINDOW)
    game.stop()
    work.stop()
    game_bytes = sum(tb.peer.bytes_to_dport(p) for p in set(game.ports_used))
    work_bytes = tb.peer.bytes_to_dport(9_000)
    total = game_bytes + work_bytes
    print(f"  game ports this run: {sorted(set(game.ports_used))}")
    print(f"  game share: {100 * game_bytes / total:5.1f}%   "
          f"work share: {100 * work_bytes / total:5.1f}%")


def main() -> None:
    print("=== kernel bypass: no shaping possible ===")
    run(BypassDataplane, shaped=False)

    print("\n=== KOPI: tc wfq /games:1 /work:3, compiled onto the NIC ===")
    run(NormanOS, shaped=True)

    print("\nNote the game's server port changes per session — a port-based "
          "policy (all a hypervisor vswitch could offer) would never hold.")


if __name__ == "__main__":
    main()
