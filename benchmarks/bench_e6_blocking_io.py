"""E6 — §2 Process scheduling: polling burns cores, blocking doesn't."""

from repro.experiments.common import fmt_table
from repro.experiments.e6_blocking_io import headline, run_e6


def test_e6_blocking_io(once):
    rows = once(run_e6)
    print("\n" + fmt_table(rows))
    h = headline(rows)
    # Polling pegs the core regardless of load; blocking tracks load.
    assert h["bypass_poll_util_pct"] > 95
    assert h["kopi_block_util_pct"] < 2
    # Everyone served everything — efficiency, not starvation.
    assert all(r["served"] == 30 for r in rows)
    # Blocking pays a bounded wake latency (microseconds, not ms).
    block_rows = [r for r in rows if r["mode"] == "block"]
    assert all(0 < r["dispatch_us_p50"] < 50 for r in block_rows)
