"""The online game from the §2 QoS scenario.

The crucial property: "the game server uses different ports in each
session", so port-based shaping cannot pin it down — only a process/cgroup
view can. Each session picks a fresh server port and blasts bursty traffic.
"""

from __future__ import annotations

from typing import Generator

from ..dataplanes.testbed import PEER_IP, Testbed
from ..sim.rand import exponential_ns, make_rng
from .base import App


class GameClient(App):
    """Bursty sender that hops ports between sessions."""

    def __init__(
        self,
        testbed: Testbed,
        user: str,
        payload_len: int = 1_200,
        packets_per_session: int = 200,
        sessions: int = 4,
        session_gap_mean_ns: int = 50_000,
        seed: int = 0,
        **kwargs,
    ):
        super().__init__(testbed, comm="game", user=user, **kwargs)
        self.payload_len = payload_len
        self.packets_per_session = packets_per_session
        self.sessions = sessions
        self.session_gap_mean_ns = session_gap_mean_ns
        self.rng = make_rng(seed, f"game.{self.proc.pid}")
        self.ports_used: "list[int]" = []
        self.sent = 0
        self.sent_bytes = 0

    def run(self) -> Generator:
        for session in range(self.sessions):
            # A new session lands on a new, unpredictable server port.
            port = self.rng.randrange(20_000, 60_000)
            self.ports_used.append(port)
            for _ in range(self.packets_per_session):
                ok = yield self.ep.send(self.payload_len, dst=(PEER_IP, port))
                if ok:
                    self.sent += 1
                    self.sent_bytes += self.payload_len
            if session < self.sessions - 1:
                yield exponential_ns(self.rng, self.session_gap_mean_ns)

    def goodput_bytes_at_peer(self) -> int:
        return sum(self.tb.peer.bytes_to_dport(p) for p in self.ports_used)
