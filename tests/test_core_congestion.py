"""On-NIC congestion control: AIMD pacing against local egress backlog."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.core import NormanOS
from repro.core.congestion import LocalCongestionManager
from repro.dataplanes import Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.errors import KernelError
from repro.net import PROTO_UDP
from repro.sim import SimProcess, Simulator


class FakeConn:
    def __init__(self, conn_id=1):
        self.conn_id = conn_id
        self.rate_bps = None
        self.closed = False


class TestAimdLogic:
    def manager(self, sim=None, **kwargs):
        sim = sim or Simulator()
        return sim, LocalCongestionManager(sim, DEFAULT_COSTS, **kwargs)

    def test_first_signal_clamps_to_wire_then_halves(self):
        sim, cc = self.manager(wire_rate_bps=units.GBPS, cooldown_ns=10)
        conn = FakeConn()
        cc.bind_resolver({1: conn}.get)
        cc.on_backpressure(conn, backlog=1, dropped=True)
        assert conn.rate_bps == units.GBPS  # clamp to wire first
        sim._now += 100  # past the cooldown
        cc.on_backpressure(conn, backlog=1, dropped=True)
        assert conn.rate_bps == units.GBPS // 2
        assert cc.metrics.counter("decreases").value == 2

    def test_shallow_backlog_ignored(self):
        sim, cc = self.manager(backlog_threshold=64)
        conn = FakeConn()
        cc.on_backpressure(conn, backlog=10, dropped=False)
        assert conn.rate_bps is None

    def test_cooldown_limits_decreases(self):
        sim, cc = self.manager(cooldown_ns=1_000_000)
        conn = FakeConn()
        cc.bind_resolver({1: conn}.get)
        for _ in range(10):
            cc.on_backpressure(conn, backlog=1, dropped=True)
        assert cc.metrics.counter("decreases").value == 1  # one per cooldown

    def test_rate_floored_at_min(self):
        sim, cc = self.manager(min_rate_bps=units.MBPS, cooldown_ns=0)
        conn = FakeConn()
        cc.bind_resolver({1: conn}.get)
        for i in range(64):
            sim._now = i  # distinct timestamps past the zero cooldown
            cc.on_backpressure(conn, backlog=1, dropped=True)
        assert conn.rate_bps == units.MBPS

    def test_additive_recovery_to_unpaced(self):
        sim, cc = self.manager(
            increase_bps=50 * units.GBPS, tick_ns=1_000,
        )
        conn = FakeConn()
        cc.bind_resolver({1: conn}.get)
        cc.on_backpressure(conn, backlog=1, dropped=True)
        assert conn.rate_bps is not None
        sim.run()
        assert conn.rate_bps is None  # recovered fully
        assert cc.paced_connections() == 0
        assert cc.metrics.counter("increases").value >= 1

    def test_closed_connection_dropped_from_pacing(self):
        sim, cc = self.manager(tick_ns=1_000)
        conn = FakeConn()
        cc.bind_resolver({1: conn}.get)
        cc.on_backpressure(conn, backlog=1, dropped=True)
        conn.closed = True
        sim.run()
        assert cc.paced_connections() == 0

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(KernelError):
            LocalCongestionManager(sim, DEFAULT_COSTS, backlog_threshold=0)
        with pytest.raises(KernelError):
            LocalCongestionManager(sim, DEFAULT_COSTS, min_rate_bps=0)


class TestEndToEnd:
    def flood(self, tb, n_pkts=400, window_ns=100 * units.MS):
        proc = tb.spawn("blaster", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)

        def blast():
            for _ in range(n_pkts):
                yield ep.send(1_400, dst=(PEER_IP, 9000))

        SimProcess(tb.sim, blast())
        tb.run(until=window_ns)
        tb.run_all()
        return ep

    def test_cc_eliminates_scheduler_drops(self):
        """A flood deeper than the 4096-entry scheduler: without CC the
        overflow is dropped; with CC the connection is paced (excess load
        waits in its own ring) and losses vanish."""
        n = 6_000
        without = Testbed(NormanOS, link_rate_bps=100 * units.MBPS)
        self.flood(without, n_pkts=n, window_ns=units.SEC)
        drops_without = without.dataplane.nic.metrics.counter("tx_sched_drops").value
        assert drops_without > 0

        with_cc = Testbed(NormanOS, link_rate_bps=100 * units.MBPS)
        with_cc.dataplane.control.enable_congestion_control(backlog_threshold=32)
        ep = self.flood(with_cc, n_pkts=n, window_ns=2 * units.SEC)
        drops_with = with_cc.dataplane.nic.metrics.counter("tx_sched_drops").value
        assert drops_with == 0
        assert with_cc.dataplane.nic.congestion.metrics.counter("decreases").value >= 1
        # Every packet eventually made it (paced, not dropped).
        assert ep.conn.tx_packets == n

    def test_cc_is_per_connection(self):
        """Only the congesting connection is paced; an idle one stays
        unpaced."""
        tb = Testbed(NormanOS, link_rate_bps=100 * units.MBPS)
        tb.dataplane.control.enable_congestion_control(backlog_threshold=32)
        idle_proc = tb.spawn("idle", "bob", core_id=2)
        idle_ep = tb.dataplane.open_endpoint(idle_proc, PROTO_UDP, 7000)
        self.flood(tb)
        assert idle_ep.conn.rate_bps is None

    def test_enable_is_idempotent(self):
        tb = Testbed(NormanOS)
        a = tb.dataplane.control.enable_congestion_control()
        b = tb.dataplane.control.enable_congestion_control()
        assert a is b
