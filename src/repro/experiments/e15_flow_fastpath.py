"""E15 — flow fast path: megaflow-style verdict cache over the plane.

PR 3 unified every mechanism behind versioned interposition points; this
experiment measures what that buys on the datapath. With
``CostModel.flow_fastpath`` on, the first packet of a flow walks the full
slow path (netfilter chains, qdisc classification, vswitch match-action,
NIC steering, overlay filters, conntrack) and the composed outcome is
cached under the five-tuple; every later packet pays one exact-match
lookup (``flowtable_hit_ns``) instead of re-walking N rules — the OVS
megaflow / netfilter-flowtable structure, applied uniformly to all five
architectures.

Three questions, three sweeps:

* **(a) per-plane speedup** — the same bidirectional stream on every
  plane, fast path off vs on, with a deliberately long (but non-matching)
  rule chain installed where the plane supports one. Reports modeled CPU
  per packet, slow-path filter evaluations per packet, and the cache hit
  rate. Steady-state traffic is a handful of flows, so the hit rate should
  be ≥ 90% and filter evaluations should collapse to ~one per flow.
* **(b) wall-clock speedup** — :func:`run_e8_wallclock` replays the E8
  connection-scaling point with the cache on and off and measures real
  seconds: the cache elides Python-level rule walks, so the simulator
  itself runs faster (recorded in the E15 bench artifact).
* **(c) churn sensitivity** — the E14 scenario: an operator toggles an
  unrelated rule at increasing rates while the stream runs. Every commit
  bumps the engine epoch and lazily invalidates the whole cache, so the
  hit rate degrades from its steady-state ceiling as churn approaches the
  per-flow packet interval — the revalidation cost megaflows pay too.
"""

from __future__ import annotations

import time
from typing import List, Optional, Type

from .. import units
from ..apps import BulkSender
from ..config import DEFAULT_COSTS, CostModel
from ..dataplanes import KernelPathDataplane, Testbed
from ..dataplanes.base import Dataplane
from ..errors import UnsupportedOperation
from ..kernel.netfilter import CHAIN_OUTPUT, NetfilterRule
from ..net.headers import PROTO_UDP
from ..tools import Iptables
from .common import Row, fmt_table, planes_under_test
from . import e8_connection_scaling as e8

#: Distractor chain length: rules that never match the stream, so verdicts
#: are identical with the cache on — only the walk cost disappears.
DEFAULT_RULES = 16

#: Churn toggle intervals (kernel plane); ``None`` is the no-churn baseline.
INTERVALS_NS: "tuple[Optional[int], ...]" = (None, 200_000, 50_000, 10_000)

DEFAULT_COUNT = 256
PAYLOAD = 1_458

PLANE_COLUMNS = [
    "plane", "rules", "delivered", "cpu_off_ns_pkt", "cpu_on_ns_pkt",
    "cpu_speedup", "filter_evals_off", "filter_evals_on", "hit_rate",
]

CHURN_COLUMNS = [
    "interval_us", "commits", "hit_rate", "invalidated", "installs",
    "delivered",
]


def _install_rules(tb: Testbed, n: int) -> int:
    """Install ``n`` header-only DROP rules that never match the workload
    (high dports). Planes without a filtering point (bypass) install
    none — exactly the paper's capability gap."""
    installed = 0
    for i in range(n):
        try:
            tb.dataplane.install_filter_rule(
                NetfilterRule(
                    verdict="DROP", chain=CHAIN_OUTPUT, proto=PROTO_UDP,
                    dport=60_000 + i, comment=f"e15 distractor {i}",
                )
            )
        except UnsupportedOperation:
            break
        installed += 1
    tb.run_all()  # async planes (KOPI overlays) commit before traffic
    return installed


def _filter_evals(tb: Testbed) -> int:
    """Slow-path filter evaluations recorded by whichever point enforces
    filtering on this plane (cache hits never reach the point)."""
    engine = tb.machine.interpose
    total = 0
    for name in ("netfilter", "overlay_filters", "vswitch"):
        point = engine.find(name)
        if point is not None:
            total += point.evaluated
    return total


def run_plane_point(
    plane_cls: Type[Dataplane],
    fastpath: bool,
    count: int = DEFAULT_COUNT,
    rules: int = DEFAULT_RULES,
    costs: CostModel = DEFAULT_COSTS,
) -> Row:
    """One cell: a closed-loop TX stream plus a reply stream back into the
    sender's port, with ``rules`` distractor rules installed."""
    tb = Testbed(plane_cls, costs=costs.replace(flow_fastpath=fastpath))
    installed = _install_rules(tb, rules)
    app = BulkSender(
        tb, comm="bulk", user="bob", core_id=1, payload_len=PAYLOAD, count=count
    )
    host_busy0 = tb.machine.cpus.total_busy_ns()
    app.start()
    tb.run_all()
    # Reply direction: the peer streams back into the sender's port, so
    # the INPUT/RX chains and NIC steering see repeated flows too.
    gap = units.transmit_time_ns(PAYLOAD + 50, tb.ingress.rate_bps) + 10
    base = tb.sim.now + 1_000
    for i in range(count):
        tb.sim.at(base + i * gap, tb.peer.send_udp, 9_000, app.ep.port, PAYLOAD)
    tb.run_all()

    delivered = [
        p for p in tb.peer.received if p.five_tuple and p.five_tuple.dport == 9_000
    ]
    host_cpu = tb.machine.cpus.total_busy_ns() - host_busy0
    pkts = max(len(delivered) + count, 1)
    fp = tb.machine.fastpath
    return {
        "plane": plane_cls.name,
        "fastpath": "on" if fastpath else "off",
        "rules": installed,
        "delivered": len(delivered),
        "goodput_gbps": app.goodput_bps() / units.GBPS,
        "host_cpu_ns_pkt": host_cpu / pkts,
        "sim_us": tb.sim.now / units.US,
        "filter_evals": _filter_evals(tb),
        "hit_rate": fp.hit_rate if fp is not None else 0.0,
        "fp_hits": fp.hits if fp is not None else 0,
        "fp_misses": fp.misses if fp is not None else 0,
        "fp_entries": len(fp) if fp is not None else 0,
    }


def run_e15_planes(
    count: int = DEFAULT_COUNT,
    rules: int = DEFAULT_RULES,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    """Sweep (a): every plane, cache off vs on, folded to one row each."""
    rows: List[Row] = []
    for plane_cls in planes_under_test():
        off = run_plane_point(plane_cls, False, count=count, rules=rules, costs=costs)
        on = run_plane_point(plane_cls, True, count=count, rules=rules, costs=costs)
        cpu_off = float(off["host_cpu_ns_pkt"])
        cpu_on = float(on["host_cpu_ns_pkt"])
        rows.append({
            "plane": plane_cls.name,
            "rules": off["rules"],
            "delivered": on["delivered"],
            "cpu_off_ns_pkt": cpu_off,
            "cpu_on_ns_pkt": cpu_on,
            "cpu_speedup": cpu_off / cpu_on if cpu_on else 0.0,
            "filter_evals_off": off["filter_evals"],
            "filter_evals_on": on["filter_evals"],
            "hit_rate": on["hit_rate"],
        })
    return rows


def run_churn_point(
    interval_ns: Optional[int],
    count: int = DEFAULT_COUNT,
    rules: int = DEFAULT_RULES,
    costs: CostModel = DEFAULT_COSTS,
) -> Row:
    """Sweep (c): kernel plane, cache on, an unrelated rule toggled every
    ``interval_ns`` — each commit bumps the engine epoch and the next
    lookup per flow discovers its entry stale."""
    tb = Testbed(
        KernelPathDataplane, costs=costs.replace(flow_fastpath=True)
    )
    _install_rules(tb, rules)
    ipt = Iptables(tb.dataplane, tb.kernel)
    app = BulkSender(
        tb, comm="bulk", user="bob", core_id=1, payload_len=PAYLOAD, count=count
    )
    point = tb.machine.interpose.get("netfilter")
    updates0 = point.version
    state = {"installed": False}

    def _toggle() -> None:
        # Add/delete one unrelated rule (never a flush: the distractor
        # chain must stay put so the slow-path walk is equally long at
        # every churn rate). Both directions are commits — each bumps the
        # engine epoch and invalidates every cached flow.
        if state["installed"]:
            ipt(f"-D OUTPUT {rules + 1}")  # the appended toggle rule
        else:
            ipt("-A OUTPUT -p udp --dport 9999 -j DROP")
        state["installed"] = not state["installed"]
        if app.sent < count:
            tb.sim.after(interval_ns, _toggle)

    app.start()
    if interval_ns is not None:
        tb.sim.after(interval_ns, _toggle)
    tb.run_all()

    fp = tb.machine.fastpath
    assert fp is not None
    delivered = [
        p for p in tb.peer.received if p.five_tuple and p.five_tuple.dport == 9_000
    ]
    return {
        "interval_us": interval_ns / units.US if interval_ns is not None else 0.0,
        "commits": point.version - updates0,
        "hit_rate": fp.hit_rate,
        "invalidated": fp.invalidated,
        "installs": fp.metrics.counter("installs").value,
        "delivered": len(delivered),
    }


def run_e15_churn(
    intervals: "tuple[Optional[int], ...]" = INTERVALS_NS,
    count: int = DEFAULT_COUNT,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    return [run_churn_point(iv, count=count, costs=costs) for iv in intervals]


def run_e8_wallclock(
    n_conns: int = 1_024,
    packets_total: int = 8_192,
    rules: int = 8,
    costs: CostModel = DEFAULT_COSTS,
) -> Row:
    """Sweep (b): the E8 connection-scaling point under a ``rules``-deep
    filter chain, cache off vs on, in real seconds. On KOPI the chain
    compiles to an overlay program the NIC *executes per packet* — a
    Python-level interpreter loop the cache elides down to once per flow,
    so the replay itself gets faster (this is the one wall-clock
    measurement in the suite — bench-only, never part of a deterministic
    fingerprint)."""

    def _setup(tb: Testbed) -> None:
        for i in range(rules):
            tb.dataplane.install_filter_rule(
                NetfilterRule(
                    verdict="DROP", chain="INPUT", proto=PROTO_UDP,
                    dport=60_000 + i, comment=f"e15 distractor {i}",
                )
            )

    t0 = time.perf_counter()
    off = e8.run_point(n_conns, packets_total, costs=costs, setup=_setup)
    wall_off = time.perf_counter() - t0
    t0 = time.perf_counter()
    on = e8.run_point(
        n_conns, packets_total,
        costs=costs.replace(flow_fastpath=True), setup=_setup,
    )
    wall_on = time.perf_counter() - t0
    return {
        "connections": n_conns,
        "packets": packets_total,
        "wall_s_off": wall_off,
        "wall_s_on": wall_on,
        "wall_speedup": wall_off / wall_on if wall_on else 0.0,
        "hit_rate": on.get("fastpath_hit_rate", 0.0),
        "goodput_off_gbps": off["goodput_gbps"],
        "goodput_on_gbps": on["goodput_gbps"],
    }


def headline(plane_rows: List[Row], churn_rows: List[Row]) -> dict:
    kernel = next(r for r in plane_rows if r["plane"] == "kernel")
    baseline = next(r for r in churn_rows if r["interval_us"] == 0.0)
    fastest = min(
        (r for r in churn_rows if r["interval_us"]),
        key=lambda r: r["interval_us"],
        default=None,
    )
    return {
        "kernel_hit_rate": kernel["hit_rate"],
        "kernel_cpu_speedup": kernel["cpu_speedup"],
        "kernel_evals_off": kernel["filter_evals_off"],
        "kernel_evals_on": kernel["filter_evals_on"],
        "steady_state_hit_rate": baseline["hit_rate"],
        "churn_hit_rate": fastest["hit_rate"] if fastest is not None else None,
    }


def main() -> str:
    plane_rows = run_e15_planes()
    churn_rows = run_e15_churn()
    h = headline(plane_rows, churn_rows)
    return "\n".join([
        "per-plane: fast path off vs on (distractor rules installed)",
        fmt_table(plane_rows, columns=PLANE_COLUMNS),
        "",
        "churn sensitivity (kernel plane, cache on)",
        fmt_table(churn_rows, columns=CHURN_COLUMNS),
        "",
        f"headline: kernel-path hit rate {h['kernel_hit_rate']:.3f} with "
        f"{h['kernel_evals_on']} slow-path filter evals (vs "
        f"{h['kernel_evals_off']} without the cache); churn at the fastest "
        f"toggle rate drags the hit rate to {h['churn_hit_rate']:.3f}",
    ])


if __name__ == "__main__":
    print(main())
