"""The classic kernel-stack dataplane.

Everything §2 wants works here — owner filtering, cgroup QoS, attributed
tcpdump, blocking I/O, a global ARP cache — because every packet crosses the
kernel. The price is §1's virtual data movement: a syscall and a copy per
packet, all on the application's core.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CostModel
from ..errors import UnsupportedOperation
from ..host.machine import Machine
from ..interpose import InterpositionPoint
from ..kernel.kernel import Kernel
from ..kernel.netfilter import NetfilterRule
from ..kernel.qdisc import DEFAULT_CLASS, DrrQdisc
from ..net.addresses import IPv4Address, MacAddress
from ..net.link import Link
from ..net.packet import Packet
from ..nic.base import BasicNic
from ..sim import Signal
from .base import (
    CaptureSession,
    Dataplane,
    Endpoint,
    PacketFilter,
    QosConfig,
    _as_bool,
    _as_first,
    describe_qos,
)


class KernelEndpoint(Endpoint):
    """Endpoint over a kernel socket."""

    def __init__(self, dataplane: "KernelPathDataplane", proc, proto: int, port: Optional[int]):
        self._dp = dataplane
        if port is None:
            self.sock = dataplane.kernel.sockets.bind_ephemeral(proc, proto)
        else:
            self.sock = dataplane.kernel.sockets.bind(proc, proto, port)
        super().__init__(dataplane, proc, proto, self.sock.port)

    def connect(self, dst_ip: IPv4Address, dport: int) -> Signal:
        return self._dp.kernel.netstack.connect(self.proc, self.sock, dst_ip, dport)

    def send(self, payload_len: int, dst: Optional[Tuple[IPv4Address, int]] = None) -> Signal:
        return _as_bool(self.send_burst((payload_len,), dst), "kernel.send")

    def send_burst(
        self, payload_lens: Sequence[int], dst: Optional[Tuple[IPv4Address, int]] = None
    ) -> Signal:
        """sendmmsg: one kernel crossing for the whole burst."""
        if dst is None:
            if self.sock.peer is None:
                raise UnsupportedOperation("send without destination on unconnected socket")
            dst = self.sock.peer
        return self._dp.kernel.netstack.sendmmsg(
            self.proc, self.sock, dst[0], dst[1], payload_lens
        )

    def recv(self, blocking: bool = True) -> Signal:
        return _as_first(self.recv_burst(1, blocking=blocking), "kernel.recv")

    def recv_burst(self, max_msgs: int, blocking: bool = True) -> Signal:
        """recvmmsg: drain queued messages under one crossing."""
        return self._dp.kernel.netstack.recvmmsg(
            self.proc, self.sock, max_msgs, blocking=blocking
        )

    def send_raw(self, pkt: Packet) -> Signal:
        raise UnsupportedOperation(
            "kernel path: applications cannot inject raw frames; the kernel "
            "owns ARP and L2"
        )

    def close(self) -> None:
        if not self.closed:
            self._dp.kernel.sockets.close(self.sock)
        super().close()


class KernelPathDataplane(Dataplane):
    """Kernel stack + conventional NIC."""

    name = "kernel"
    supports_blocking_io = True

    def __init__(
        self,
        machine: Machine,
        host_ip: IPv4Address,
        host_mac: MacAddress,
        egress: Link,
        n_queues: int = 8,
    ):
        self.machine = machine
        self.costs: CostModel = machine.costs
        machine.tracer.plane = self.name
        self.nic = BasicNic(
            machine.sim, machine.costs, machine.dma, egress, n_queues=n_queues,
            fastpath=machine.fastpath, tracer=machine.tracer,
        )
        self.kernel = Kernel(
            machine, host_ip, host_mac,
            nic_send=self._kernel_tx, tx_rate_bps=egress.rate_bps,
        )
        for queue in self.nic.queues:
            queue.set_handler(self._nic_rx, burst_handler=self._nic_rx_burst)
        # Register every interposition mechanism this plane owns with the
        # machine's PolicyEngine ("netfilter" is registered by Kernel itself).
        engine = machine.interpose
        qdisc_point = engine.register(InterpositionPoint(
            name="qdisc", plane="kernel", mechanism="qdisc",
            install_latency_ns=self.costs.kernel_update_ns,
            target=self.kernel.netstack.egress,
        ))
        qdisc_point.describe = lambda: describe_qos(qdisc_point.policy)
        self.kernel.netstack.egress.point = qdisc_point
        self.kernel.netstack.tap_point = engine.register(InterpositionPoint(
            name="sniffer", plane="kernel", mechanism="tap",
            install_latency_ns=self.costs.kernel_update_ns,
            target=self.kernel.netstack,
        ))
        self.nic.steering.point = engine.register(InterpositionPoint(
            name="steering", plane="nic", mechanism="steering",
            install_latency_ns=self.costs.table_update_ns,
            target=self.nic.steering,
        ))

    # --- wire plumbing -----------------------------------------------------

    def _kernel_tx(self, pkt: Packet) -> None:
        self.nic.tx(pkt)

    def wire_rx(self, pkt: Packet) -> None:
        """Attach this to the ingress link."""
        self.nic.rx_from_wire(pkt)

    def _nic_rx(self, pkt: Packet) -> None:
        if pkt.is_arp:
            self.kernel.observe_arp(pkt)
            self.kernel.netstack._run_taps(pkt)
            return
        self.kernel.netstack.deliver(pkt)

    def _nic_rx_burst(self, pkts: List[Packet]) -> None:
        """NAPI poll: one softirq for the whole coalesced burst."""
        data = []
        for pkt in pkts:
            if pkt.is_arp:
                self.kernel.observe_arp(pkt)
                self.kernel.netstack._run_taps(pkt)
            else:
                data.append(pkt)
        if data:
            self.kernel.netstack.deliver_burst(data)

    # --- application surface --------------------------------------------------

    def open_endpoint(self, proc, proto: int, port: Optional[int] = None) -> KernelEndpoint:
        return KernelEndpoint(self, proc, proto, port)

    # --- administrative surface --------------------------------------------------

    def install_filter_rule(self, rule: NetfilterRule) -> None:
        self.kernel.filters.append(rule)

    def configure_qos(self, config: QosConfig) -> None:
        weights = dict(config.weights_by_cgroup)
        weights.setdefault(DEFAULT_CLASS, 1)
        qdisc = DrrQdisc(weights=weights, quantum_bytes=config.quantum_bytes)
        if self.kernel.netstack.egress.point is not None:
            self.kernel.netstack.egress.point.policy = config
        self.kernel.netstack.egress.replace_qdisc(qdisc)
        cgroups = self.kernel.cgroups

        def classify(_pkt: Packet, pid: Optional[int]) -> str:
            if pid is None:
                return DEFAULT_CLASS
            path = cgroups.group_of(pid).path
            return path if path in weights else DEFAULT_CLASS

        self.kernel.netstack.classify = classify

    def start_capture(
        self, match: Optional[PacketFilter] = None, name: str = "capture"
    ) -> CaptureSession:
        from ..net.pcap import PcapWriter

        session = CaptureSession(name=name, attributed=True)
        session.pcap = PcapWriter()

        def tap(pkt: Packet) -> None:
            if match is None or match(pkt):
                session.packets.append(pkt)
                session.pcap.write(self.machine.sim.now, pkt)

        session._detach = self.kernel.netstack.add_tap(tap)
        return session

    def attribution_of(self, pkt: Packet) -> Optional[Tuple[int, int, str]]:
        if pkt.meta.owner_pid is None:
            return None
        return (pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm)

    def arp_entries(self) -> List[object]:
        return self.kernel.arp_cache.entries()

    def data_movements(self) -> Dict[str, int]:
        syscalls = self.kernel.syscalls.metrics.counter("total").value
        copies = (
            self.kernel.syscalls.metrics.counter("copy_in_bytes").value
            + self.kernel.syscalls.metrics.counter("copy_out_bytes").value
        )
        return {"virtual": syscalls, "virtual_copied_bytes": copies, "physical": 0}

    # --- hybrid fidelity ---------------------------------------------------
    #
    # The kernel plane exposes the eligibility predicate, bulk-charge
    # contract, and a deliver closure that lands fluid epochs on the socket
    # queue (``KernelNetStack.deliver_fluid`` — read-side copy costs stay
    # exact because recv/recvmmsg charge them at read time). Promotion here
    # happens through the controller API (exercised by the fidelity tests),
    # not from the RX hot path, so the kernel stack never self-promotes on
    # the multihost testbed — which is what keeps the rack gate from ever
    # aiming a cross-machine epoch at it.

    def _ff_sock(self, flow):
        from ..kernel.netfilter import DROP

        fp = self.machine.fastpath
        if fp is None:
            return None
        sock = self.kernel.sockets.lookup(flow.proto, flow.dport)
        if sock is None:
            return None
        from ..kernel.netfilter import CHAIN_INPUT

        entry = fp.peek(CHAIN_INPUT, flow, sock.owner.pid)
        if entry is None or entry.verdict == DROP:
            return None
        return sock

    def ff_eligible(self, flow) -> bool:
        """Steady state here: the INPUT-chain verdict for (flow, owner) is
        live in the flow cache, it is not a drop, and no tap (tcpdump) needs
        to see individual packets."""
        if self.kernel.netstack._taps:
            return False
        return self._ff_sock(flow) is not None

    def ff_profile(self, flow, pkt):
        from ..sim.fastforward import FlowProfile
        from ..trace import STAGE_FASTPATH, STAGE_NIC_PIPELINE, STAGE_PROTO

        sock = self._ff_sock(flow)
        if sock is None:
            return None
        fp = self.machine.fastpath
        costs = self.costs
        spans = (
            (STAGE_NIC_PIPELINE, costs.nic_pipeline_ns, False, "rx_pipeline"),
            (STAGE_PROTO, costs.kernel_rx_pkt_ns, True, "rx_proto"),
            (STAGE_FASTPATH, fp.hit_ns, True, "input_chain"),
            (STAGE_PROTO, costs.socket_demux_ns, True, "demux"),
        )
        from ..kernel.netfilter import CHAIN_INPUT

        entry = fp.peek(CHAIN_INPUT, flow, sock.owner.pid)
        netstack = self.kernel.netstack
        payload_len = pkt.payload_len
        src_ip, sport = flow.src_ip, flow.sport
        pid = sock.owner.pid
        points = entry.points if entry is not None else 0
        ft = flow

        def deliver(n: int) -> None:
            fp.bulk_hit(CHAIN_INPUT, ft, pid, n, points=points)
            netstack.deliver_fluid(sock, n, payload_len, src_ip, sport)

        return FlowProfile(
            spans, core_id=sock.owner.core_id, wire_len=pkt.wire_len,
            payload_len=payload_len, src_ip=src_ip, sport=sport,
            deliver=deliver,
            versions=entry.versions if entry is not None else (),
        )
