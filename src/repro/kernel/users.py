"""User accounts — the `uid-owner` half of the process view."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import KernelError

ROOT_UID = 0


@dataclass(frozen=True)
class User:
    uid: int
    name: str

    @property
    def is_root(self) -> bool:
        return self.uid == ROOT_UID


class UserTable:
    """uid <-> name registry. ``root`` always exists."""

    def __init__(self) -> None:
        self._by_uid: Dict[int, User] = {}
        self._by_name: Dict[str, User] = {}
        self.add("root", uid=ROOT_UID)

    def add(self, name: str, uid: Optional[int] = None) -> User:
        if name in self._by_name:
            raise KernelError(f"user {name!r} already exists")
        if uid is None:
            uid = max(max(self._by_uid), 999) + 1
        if uid in self._by_uid:
            raise KernelError(f"uid {uid} already exists")
        user = User(uid=uid, name=name)
        self._by_uid[uid] = user
        self._by_name[name] = user
        return user

    def by_uid(self, uid: int) -> User:
        if uid not in self._by_uid:
            raise KernelError(f"no such uid: {uid}")
        return self._by_uid[uid]

    def by_name(self, name: str) -> User:
        if name not in self._by_name:
            raise KernelError(f"no such user: {name!r}")
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_uid)
