"""The on-SmartNIC interposition dataplane.

Every packet, both directions, passes through (Figure 1):

``wire → [attribute → filter → classify → mirror → steer] → per-conn ring``
``ring → [attribute → filter → classify → mirror] → scheduler → wire``

*attribute* stamps pid/uid/comm resolved from the connection registry the
kernel maintains; *filter* and *classify* run verified overlay programs;
*mirror* feeds sniffer sessions; the egress *scheduler* is a qdisc (DRR for
QoS) drained at line rate. Per-packet latency is the fixed pipeline cost
plus the overlay programs' instruction counts — bounded because the
verifier forbids loops.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from .. import units
from ..config import CostModel
from ..errors import NicError
from ..host.copies import LAYER_DMA, LAYER_DMA_DIRECT
from ..host.machine import Machine
from ..interpose.fastpath import CHAIN_KOPI_RX, CHAIN_KOPI_TX
from ..kernel.qdisc import DEFAULT_CLASS, DrrQdisc, PfifoQdisc, Qdisc
from ..kernel.qdisc_runner import PacedQdiscRunner
from ..net.link import Link
from ..net.packet import Packet
from ..nic.smartnic.fpga import Bitstream, FpgaFabric
from ..nic.smartnic.sram import SramAllocator
from ..nic.tenant_sched import WeightedFairClock
from ..nic.steering import SteeringTable
from ..overlay.isa import VERDICT_DROP
from ..sim import MetricSet
from ..trace import (
    STAGE_DMA,
    STAGE_FASTPATH,
    STAGE_NETFILTER,
    STAGE_NIC_PIPELINE,
    charge,
)
from .connection import NormanConnection
from .sniffer import Sniffer

SLOT_FILTER_RX = "filter_rx"
SLOT_FILTER_TX = "filter_tx"
SLOT_CLASSIFIER = "classifier"
SLOT_POLICER = "policer"

KOPI_BITSTREAM = Bitstream(
    name="norman-kopi-v1",
    overlay_slots=(
        (SLOT_FILTER_RX, 4_096),
        (SLOT_FILTER_TX, 4_096),
        (SLOT_CLASSIFIER, 2_048),
        (SLOT_POLICER, 2_048),
    ),
    logic_units=600_000,
)

N_PIPELINE_STAGES = 4  # attribute, filter, classify, mirror/steer

ConnResolver = Callable[[int], Optional[NormanConnection]]
NotifyFn = Callable[..., None]  # (conn, kind, count=1)
ArpHook = Callable[[Packet], None]
FallbackRx = Callable[[Packet], None]


class KopiNic:
    """The SmartNIC running Norman's dataplane."""

    def __init__(
        self,
        machine: Machine,
        egress: Link,
        sniffer: Sniffer,
        name: str = "kopi0",
    ):
        self.machine = machine
        self.sim = machine.sim
        self.costs: CostModel = machine.costs
        self.egress = egress
        self.sniffer = sniffer
        self.name = name
        self.metrics = MetricSet(name)

        self.fpga = FpgaFabric(self.sim, self.costs, name=f"{name}.fpga")
        self.sram = SramAllocator(self.costs.smartnic_sram_bytes, name=f"{name}.sram")
        self.steering = SteeringTable(n_queues=1, name=f"{name}.steer")
        self.scheduler = PacedQdiscRunner(
            self.sim, PfifoQdisc(limit=4_096), egress.rate_bps, self._tx_out,
            name=f"{name}.sched",
        )
        self._sched_classes: "set[str]" = set()
        #: Tenant registry when attribution is on; None keeps every
        #: tenant-resolution branch dead (the seed default).
        self.tenants = machine.tenants if self.costs.tenants else None
        #: True once the control plane installed the per-tenant egress
        #: qdisc — then _tx_effects classifies by owning tenant.
        self.tenant_classes = False
        #: Weighted fair arbiter over SmartNIC pipeline passes (isolation
        #: only): a hog's passes stretch to its share, a victim's do not
        #: wait behind them.
        self.pipeline_clock = (
            WeightedFairClock(machine.tenants, name=f"{name}.pipeline")
            if self.costs.tenant_isolation else None
        )
        self._draining: "set[int]" = set()
        self._tx_drained: Dict[int, int] = {}  # conn_id -> pkts this doorbell session
        self.offline = False
        self.fpga.on_offline_change(self._set_offline)

        # Wired by the control plane.
        self.conn_resolver: ConnResolver = lambda _cid: None
        self.notify: Optional[NotifyFn] = None
        self.on_arp: Optional[ArpHook] = None
        self.fallback_rx: Optional[FallbackRx] = None
        self.filter_point = None  # overlay InterpositionPoint, wired by the control plane
        self.ff_plane = None  # the owning NormanOS, wired when fast_forward is on
        self.tx_ff_plane = None  # its TX surface, wired when ff_tx is also on

        # Optional offloaded kernel functionality (§3: "per-connection
        # state, NAT, and everything else the kernel does today").
        self.conntrack = None  # Optional[ConntrackTable]
        self.nat = None  # Optional[NatTable]
        self.congestion = None  # Optional[LocalCongestionManager]

    def _set_offline(self, offline: bool) -> None:
        self.offline = offline

    # --- pipeline cost helpers -----------------------------------------------

    def _fixed_latency(self) -> int:
        return self.costs.nic_pipeline_ns + N_PIPELINE_STAGES * self.costs.smartnic_stage_ns

    def _tenant_of(self, conn: Optional[NormanConnection],
                   pkt: Optional[Packet] = None):
        """Resolve the tenant this work bills to: the connection's owning
        process when the control plane knows it, else the packet's stamped
        owner uid, else the system tenant. Returns None (no attribution at
        all) only when the machine runs without tenants."""
        if self.tenants is None:
            return None
        if conn is not None:
            return self.tenants.resolve(conn.proc)
        if pkt is not None:
            return self.tenants.resolve_uid(pkt.meta.owner_uid)
        return self.tenants.system

    def _pipeline_arb_ns(self, tenant, busy_ns: int) -> int:
        """Extra pipeline wait the per-tenant arbiter imposes (isolation
        only; 0 for an uncontended or unattributed pass)."""
        if self.pipeline_clock is None or tenant is None:
            return 0
        return self.pipeline_clock.delay(tenant, busy_ns, self.sim.now)

    def _lines_for(self, pkt: Packet) -> int:
        line = self.costs.cache_line_bytes
        return math.ceil((pkt.wire_len + self.costs.ring_desc_bytes) / line)

    # --- RX path ----------------------------------------------------------------

    def rx_from_wire(self, pkt: Packet) -> None:
        if self.offline:
            self.metrics.counter("rx_offline_drops").inc()
            return
        ff = self.machine.ff
        if ff is not None and not pkt.is_arp:
            # Hybrid fidelity: a promoted (fluid) flow absorbs the packet —
            # counted into the pending epoch, not simulated. Every counter
            # and cost this exact path would have moved is replayed by the
            # profile's deliver closure at flush. A shape mismatch inside
            # absorb_packet demotes and falls through to exact simulation.
            aft = pkt.five_tuple
            if aft is not None and ff.absorb_packet(aft, pkt.wire_len):
                return
        self.metrics.counter("rx_pkts").inc()
        self.metrics.meter("rx_bytes").record(self.sim.now, pkt.wire_len)

        if self.nat is not None and not pkt.is_arp:
            pkt = self.nat.translate_in(pkt)

        fp = self.machine.fastpath
        ft = pkt.five_tuple if fp is not None else None
        if ft is not None:
            entry = fp.lookup(CHAIN_KOPI_RX, ft)
            if entry is not None:
                # Flow-cache hit: steering + overlay filter collapse into
                # one flowtable lookup; attribution still stamps from the
                # resolved connection (identity is never cached away).
                conn = (
                    self.conn_resolver(entry.conn_id)
                    if entry.conn_id is not None else None
                )
                if conn is not None:
                    pkt.meta.conn_id = conn.conn_id
                    pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm = (
                        conn.owner
                    )
                ctx = self.machine.tracer.begin(pkt)
                charge(STAGE_NIC_PIPELINE, self._fixed_latency(), ctx,
                       cpu=False, label="rx_pipeline")
                charge(STAGE_FASTPATH, fp.hit_ns, ctx, cpu=False,
                       label="rx_flow_cache")
                latency = self._fixed_latency() + fp.hit_ns
                # tenant: the pipeline pass bills to the flow's owner; under
                # isolation a contending hog's pass stretches to its share.
                tenant = self._tenant_of(conn, pkt)
                if tenant is not None:
                    pkt.meta.tenant_tid = tenant.tid
                arb = self._pipeline_arb_ns(tenant, self._fixed_latency())
                if arb:
                    charge(STAGE_NIC_PIPELINE, arb, ctx, cpu=False,
                           label="pipeline_arb")
                    latency += arb
                self.sim.after(latency, self._rx_effects, pkt, conn, entry.verdict,
                               entry, True)
                if ff is not None and self.ff_plane is not None:
                    # One more consecutive steady-state packet; promotion
                    # happens here once the streak and eligibility line up.
                    ff.note_exact(self.ff_plane, pkt.five_tuple, pkt)
                return

        # Resolve + attribute before filtering so owner-compiled rules and
        # the sniffer both see identity.
        conn = self._resolve_rx(pkt)
        if conn is not None:
            pkt.meta.conn_id = conn.conn_id
            pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm = conn.owner

        ctx = self.machine.tracer.begin(pkt)
        latency = charge(STAGE_NIC_PIPELINE, self._fixed_latency(), ctx,
                         cpu=False, label="rx_pipeline")
        # tenant: slow-path passes bill to the resolved owner too.
        tenant = self._tenant_of(conn, pkt)
        if tenant is not None:
            pkt.meta.tenant_tid = tenant.tid
        arb = self._pipeline_arb_ns(tenant, self._fixed_latency())
        if arb:
            latency += charge(STAGE_NIC_PIPELINE, arb, ctx, cpu=False,
                              label="pipeline_arb")
        verdict = None
        machine = self.fpga.machine(SLOT_FILTER_RX)
        if machine is not None:
            result = machine.execute(pkt, self.sim.now)
            latency += charge(STAGE_NETFILTER, result.cost_ns, ctx,
                              cpu=False, label="overlay_filter")
            verdict = result.verdict
            if self.filter_point is not None:
                # Evaluations during an overlay-load window run on the old
                # program and are tallied stale by the engine.
                self.filter_point.record_eval(
                    hit=(verdict == VERDICT_DROP), dropped=(verdict == VERDICT_DROP)
                )
        fp_entry = None
        if ft is not None:
            points = ("steering",) + (("overlay_filters",) if machine is not None else ())
            fp_entry = fp.install(
                CHAIN_KOPI_RX, ft, verdict=verdict,
                conn_id=conn.conn_id if conn is not None else None,
                points=points, tenant=tenant,
            )
        self.sim.after(latency, self._rx_effects, pkt, conn, verdict, fp_entry, False)

    def _resolve_rx(self, pkt: Packet) -> Optional[NormanConnection]:
        ft = pkt.five_tuple
        if ft is None:
            return None
        # The control plane installs inbound-perspective entries: exact
        # (remote -> host) flows for connected sockets, (proto, local port)
        # wildcards for listeners.
        conn_id = self.steering.lookup(ft)
        if conn_id is None:
            return None
        return self.conn_resolver(conn_id)

    def _rx_effects(
        self,
        pkt: Packet,
        conn: Optional[NormanConnection],
        verdict: Optional[str],
        fp_entry=None,
        fp_hit: bool = False,
    ) -> None:
        if pkt.is_arp and self.on_arp is not None:
            self.on_arp(pkt)
        self.sniffer.mirror(pkt)
        if verdict == VERDICT_DROP:
            self.metrics.counter("rx_filtered").inc()
            if pkt.meta.trace is not None:
                pkt.meta.trace.close(self.sim.now)
            return
        if pkt.is_arp:
            return
        if self.conntrack is not None:
            self._observe_conntrack(pkt, fp_entry, fp_hit,
                                    tenant=self._tenant_of(conn, pkt))
        if conn is None or conn.closed:
            if self.fallback_rx is not None:
                self.metrics.counter("rx_fallback").inc()
                self.fallback_rx(pkt)
            else:
                self.metrics.counter("rx_no_conn_drops").inc()
                if pkt.meta.trace is not None:
                    pkt.meta.trace.close(self.sim.now)
            return
        if conn.fallback:
            # Connection exists but lives on the software path (E9).
            self.metrics.counter("rx_fallback").inc()
            if self.fallback_rx is not None:
                self.fallback_rx(pkt)
            return
        self._deliver_to_ring(pkt, conn)

    def _observe_conntrack(self, pkt: Packet, fp_entry, fp_hit: bool,
                           tenant=None) -> None:
        """Conntrack update for one packet. A flow-cache hit updates the
        cached :class:`~repro.core.conntrack.CtEntry` in place (exact
        per-flow accounting, no table walk); misses take the full observe
        path and attach the live entry to the cache. New entries carry the
        resolved tenant so SRAM bytes land on its quota."""
        if fp_hit and fp_entry is not None and fp_entry.ct_entry is not None:
            cached = fp_entry.ct_entry
            cached.packets += 1
            cached.bytes += pkt.wire_len
            cached.last_seen_ns = self.sim.now
            fp = self.machine.fastpath
            if fp is not None:
                fp.note_skipped("conntrack")
            return
        entry = self.conntrack.observe(pkt, self.sim.now, tenant=tenant)
        if fp_entry is not None and entry is not None:
            fp_entry.ct_entry = entry

    def _deliver_to_ring(self, pkt: Packet, conn: NormanConnection) -> None:
        lines = self._lines_for(pkt)
        ring = conn.rings.rx
        capped = min(lines, len(ring.region.line_addrs()))
        addrs = ring.next_lines(capped)
        llc = self.machine.llc
        if llc is not None:
            for addr in addrs:
                llc.dma_write(addr)
        pkt.meta.notes["lines"] = addrs
        was_empty = ring.is_empty
        if not ring.try_post(pkt):
            self.metrics.counter("rx_ring_drops").inc()
            ff = self.machine.ff
            if ff is not None and pkt.five_tuple is not None:
                # A full RX ring means delivery is now load-dependent
                # (packets are being lost) — a queue-occupancy boundary.
                from ..sim.fastforward import REASON_QDISC

                ff.demote(pkt.five_tuple, REASON_QDISC)
            if pkt.meta.trace is not None:
                pkt.meta.trace.close(self.sim.now)
            return
        # KOPI delivery is DMA-direct: lines land in the app-readable ring
        # (through DDIO when the structural LLC is wired); no CPU copy ever.
        self.machine.copies.charge(LAYER_DMA_DIRECT, pkt.wire_len, 0)
        conn.rx_packets += 1
        if conn.notify_rx and self.notify is not None:
            if self.costs.batch_size > 1 and not was_empty:
                # Interrupt coalescing: the outstanding RX_READY already
                # covers this packet — a burst-draining reader picks it up
                # on the same wake, so no second notification is raised.
                self.metrics.counter("rx_notify_coalesced").inc()
                return
            from ..nic.notification import KIND_RX_READY

            self.notify(conn, KIND_RX_READY)

    # --- TX path -------------------------------------------------------------------

    def doorbell(self, conn: NormanConnection) -> None:
        """MMIO write from the library: TX descriptors are available.

        One drain engine runs per connection; a doorbell while it is
        already active is a no-op (otherwise every doorbell would spawn a
        parallel drain chain and pacing would multiply away).
        """
        if self.offline:
            self.metrics.counter("tx_offline_drops").inc()
            return
        if conn.conn_id in self._draining:
            return
        self._draining.add(conn.conn_id)
        self.sim.after(self.costs.pcie_dma_latency_ns, self._drain_tx, conn)

    def _tx_pipeline(self, pkt: Packet, tenant=None):
        """Run the TX overlay pipeline for one packet; returns
        (verdict, sched_class, overlay_cost_ns, fastpath entry, hit flag).

        A loaded policer disables caching on this path: its token bucket is
        stateful, so a per-flow verdict cache would replay decisions that
        depend on arrival time (megaflows cannot cache meter actions
        either)."""
        fp = self.machine.fastpath
        policer = self.fpga.machine(SLOT_POLICER)
        ft = pkt.five_tuple if (fp is not None and policer is None) else None
        if ft is not None:
            entry = fp.lookup(CHAIN_KOPI_TX, ft, tenant=tenant)
            if entry is not None:
                return entry.verdict, entry.qdisc_class, fp.hit_ns, entry, True
        cost = 0
        verdict: Optional[str] = None
        sched_class: Optional[int] = None
        filt = self.fpga.machine(SLOT_FILTER_TX)
        if filt is not None:
            result = filt.execute(pkt, self.sim.now)
            cost += result.cost_ns
            verdict = result.verdict
            if self.filter_point is not None:
                self.filter_point.record_eval(
                    hit=(verdict == VERDICT_DROP), dropped=(verdict == VERDICT_DROP)
                )
        classifier = self.fpga.machine(SLOT_CLASSIFIER)
        if classifier is not None and verdict != VERDICT_DROP:
            cresult = classifier.execute(pkt, self.sim.now)
            cost += cresult.cost_ns
            sched_class = cresult.sched_class
        if policer is not None and verdict != VERDICT_DROP:
            presult = policer.execute(pkt, self.sim.now)
            cost += presult.cost_ns
            if presult.verdict == VERDICT_DROP:
                verdict = VERDICT_DROP
                self.metrics.counter("tx_policed").inc()
        fp_entry = None
        if ft is not None:
            points = (
                ("overlay_filters",)
                if (filt is not None or classifier is not None) else ()
            )
            fp_entry = fp.install(
                CHAIN_KOPI_TX, ft, verdict=verdict, qdisc_class=sched_class,
                conn_id=pkt.meta.conn_id, points=points, tenant=tenant,
            )
        return verdict, sched_class, cost, fp_entry, False

    def _dma_fair_gap(self, tenant, nbytes: int, gap: int) -> int:
        """Stretch a drain-pacing gap to the tenant's weighted DMA share
        (isolation only): the hog's descriptor fetches slow to its share
        of PCIe bytes while an uncontended tenant keeps the raw gap."""
        fc = self.machine.dma.fair_clock
        if fc is None or tenant is None:
            return gap
        busy = units.transmit_time_ns(nbytes, self.costs.pcie_bandwidth_bps)
        fin = fc.finish(tenant, busy, self.sim.now)
        return max(gap, fin - self.sim.now)

    def _drain_tx(self, conn: NormanConnection) -> None:
        if self.costs.batch_size > 1:
            self._drain_tx_burst(conn)
            return
        pkt = conn.rings.tx.try_consume()
        if pkt is None:
            self._draining.discard(conn.conn_id)
            return
        pkt.meta.conn_id = conn.conn_id
        pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm = conn.owner
        conn.tx_packets += 1
        # tenant: the descriptor fetch's DMA bytes and the pipeline pass
        # below bill to the connection's owner.
        tenant = self._tenant_of(conn, pkt)
        if tenant is not None:
            pkt.meta.tenant_tid = tenant.tid
        self.machine.copies.charge(
            LAYER_DMA, pkt.wire_len,
            units.transmit_time_ns(pkt.wire_len, self.costs.pcie_bandwidth_bps),
        )

        verdict, sched_class, overlay_cost, fp_entry, fp_hit = \
            self._tx_pipeline(pkt, tenant=tenant)
        if fp_hit and verdict != VERDICT_DROP and self.tx_ff_plane is not None:
            ff = self.machine.ff
            if ff is not None and pkt.five_tuple is not None:
                ff.note_exact(self.tx_ff_plane, pkt.five_tuple, pkt)
        arb = self._pipeline_arb_ns(tenant, self._fixed_latency())
        if pkt.meta.trace is not None:
            # Doorbell MMIO latency + ring residency since the library post.
            pkt.meta.trace.fill_gap(STAGE_DMA, self.sim.now, label="desc_fetch")
            charge(STAGE_FASTPATH if fp_hit else STAGE_NETFILTER, overlay_cost,
                   pkt.meta.trace, cpu=False,
                   label="tx_flow_cache" if fp_hit else "overlay_tx")
            charge(STAGE_NIC_PIPELINE, self._fixed_latency(), pkt.meta.trace,
                   cpu=False, label="tx_pipeline")
            if arb:
                charge(STAGE_NIC_PIPELINE, arb, pkt.meta.trace,
                       cpu=False, label="pipeline_arb")
        latency = self._fixed_latency() + overlay_cost + arb
        self.sim.after(latency, self._tx_effects, pkt, conn, verdict, sched_class,
                       fp_entry, fp_hit)

        if not conn.rings.tx.is_empty:
            # Keep draining, paced by PCIe fetch bandwidth — or by the
            # connection's congestion-control rate when one is set.
            gap = units.transmit_time_ns(pkt.wire_len, self.costs.pcie_bandwidth_bps)
            if conn.rate_bps is not None:
                gap = max(gap, units.transmit_time_ns(pkt.wire_len, conn.rate_bps))
            gap = self._dma_fair_gap(tenant, pkt.wire_len, gap)
            self.sim.after(max(gap, 1), self._drain_tx, conn)
        else:
            self._draining.discard(conn.conn_id)
            if self.notify is not None:
                from ..nic.notification import KIND_TX_DRAINED

                self.notify(conn, KIND_TX_DRAINED)

    def _drain_tx_burst(self, conn: NormanConnection) -> None:
        """Batched drain: one descriptor fetch pulls up to ``batch_size``
        packets, one fixed pipeline pass covers the burst, and their effects
        land in a single coalesced simulator event."""
        pkts = conn.rings.tx.consume_burst(self.costs.batch_size)
        if not pkts:
            self._draining.discard(conn.conn_id)
            self._tx_drained.pop(conn.conn_id, None)
            return
        self.metrics.counter("tx_bursts").inc()
        self._tx_drained[conn.conn_id] = self._tx_drained.get(conn.conn_id, 0) + len(pkts)
        # tenant: one burst belongs to one connection, hence one tenant —
        # its pipeline pass and DMA bytes bill there.
        tenant = self._tenant_of(conn, pkts[0])
        latency = self._fixed_latency()
        # One pipeline pass covers the burst: the fixed latency lands on the
        # lead packet's trace; each packet carries its own overlay cost.
        charge(STAGE_NIC_PIPELINE, self._fixed_latency(), pkts[0].meta.trace,
               cpu=False, label="tx_pipeline")
        arb = self._pipeline_arb_ns(tenant, self._fixed_latency())
        if arb:
            latency += charge(STAGE_NIC_PIPELINE, arb, pkts[0].meta.trace,
                              cpu=False, label="pipeline_arb")
        total_wire = 0
        items = []
        for pkt in pkts:
            pkt.meta.conn_id = conn.conn_id
            pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm = conn.owner
            if tenant is not None:
                pkt.meta.tenant_tid = tenant.tid
            conn.tx_packets += 1
            total_wire += pkt.wire_len
            verdict, sched_class, overlay_cost, fp_entry, fp_hit = \
                self._tx_pipeline(pkt, tenant=tenant)
            if fp_hit and verdict != VERDICT_DROP and self.tx_ff_plane is not None:
                ff = self.machine.ff
                if ff is not None and pkt.five_tuple is not None:
                    ff.note_exact(self.tx_ff_plane, pkt.five_tuple, pkt)
            if pkt.meta.trace is not None:
                pkt.meta.trace.fill_gap(STAGE_DMA, self.sim.now, label="desc_fetch")
                charge(STAGE_FASTPATH if fp_hit else STAGE_NETFILTER,
                       overlay_cost, pkt.meta.trace, cpu=False,
                       label="tx_flow_cache" if fp_hit else "overlay_tx")
            latency += overlay_cost
            items.append((pkt, conn, verdict, sched_class, fp_entry, fp_hit))
        self.machine.copies.charge(
            LAYER_DMA, total_wire,
            units.transmit_time_ns(total_wire, self.costs.pcie_bandwidth_bps),
            ops=len(pkts),
        )
        self.sim.after_burst(latency, self._tx_effects_item, items)

        if not conn.rings.tx.is_empty:
            gap = units.transmit_time_ns(total_wire, self.costs.pcie_bandwidth_bps)
            if conn.rate_bps is not None:
                gap = max(gap, units.transmit_time_ns(total_wire, conn.rate_bps))
            gap = self._dma_fair_gap(tenant, total_wire, gap)
            self.sim.after(max(gap, 1), self._drain_tx, conn)
        else:
            self._draining.discard(conn.conn_id)
            drained = self._tx_drained.pop(conn.conn_id, len(pkts))
            if self.notify is not None:
                from ..nic.notification import KIND_TX_DRAINED

                # One notification covers every packet this doorbell session
                # drained — the amortization the Notification.count records.
                self.notify(conn, KIND_TX_DRAINED, drained)

    def _tx_effects_item(self, item) -> None:
        pkt, conn, verdict, sched_class, fp_entry, fp_hit = item
        self._tx_effects(pkt, conn, verdict, sched_class, fp_entry, fp_hit)

    def _tx_effects(
        self,
        pkt: Packet,
        conn: NormanConnection,
        verdict: Optional[str],
        sched_class: Optional[int],
        fp_entry=None,
        fp_hit: bool = False,
    ) -> None:
        if pkt.is_arp and self.on_arp is not None:
            self.on_arp(pkt)
        if pkt.meta.trace is not None:
            # Absorb the shared pipeline pass a burst sibling rode through
            # (the lead carries the explicit tx_pipeline span; zero at
            # batch_size=1, where that span covers the whole window).
            pkt.meta.trace.fill_gap(STAGE_NIC_PIPELINE, self.sim.now,
                                    cpu=False, label="pipeline_wait")
        if verdict == VERDICT_DROP:
            self.sniffer.mirror(pkt)
            self.metrics.counter("tx_filtered").inc()
            if pkt.meta.trace is not None:
                pkt.meta.trace.close(self.sim.now)
            return
        tenant = self._tenant_of(conn, pkt)
        if self.conntrack is not None and not pkt.is_arp:
            self._observe_conntrack(pkt, fp_entry, fp_hit, tenant=tenant)
        if self.nat is not None and not pkt.is_arp:
            translated = self.nat.translate_out(pkt)
            if translated is None:
                self.metrics.counter("tx_nat_exhausted").inc()
                self.sniffer.mirror(pkt)
                if pkt.meta.trace is not None:
                    pkt.meta.trace.close(self.sim.now)
                return
            pkt = translated
        # Mirror post-NAT: captures show what is actually on the wire.
        self.sniffer.mirror(pkt)
        cls = str(sched_class) if sched_class is not None else DEFAULT_CLASS
        if self.tenant_classes and tenant is not None:
            # Per-tenant egress scheduling: the owning tenant's class wins
            # over any cgroup/classifier class — each tenant drains from
            # its own DRR queue, so a hog's backlog is not a victim's.
            tcls = tenant.sched_class
            if tcls in self._sched_classes:
                cls = tcls
        if cls not in self._sched_classes:
            cls = DEFAULT_CLASS
        admitted = self.scheduler.submit(pkt, cls)
        if not admitted:
            self.metrics.counter("tx_sched_drops").inc()
            if pkt.meta.trace is not None:
                pkt.meta.trace.close(self.sim.now)
        if self.congestion is not None:
            self.congestion.on_backpressure(
                conn, backlog=self.scheduler.backlog, dropped=not admitted
            )

    def _tx_out(self, pkt: Packet) -> None:
        self.metrics.counter("tx_pkts").inc()
        self.metrics.meter("tx_bytes").record(self.sim.now, pkt.wire_len)
        self.egress.send(pkt)

    # --- control-plane configuration ------------------------------------------------

    def set_scheduler(self, qdisc: Qdisc, class_names: "set[str]") -> None:
        """Install a new egress discipline (compiled from tc)."""
        if isinstance(qdisc, DrrQdisc) and DEFAULT_CLASS not in qdisc.weights:
            raise NicError("scheduler must include the default class")
        self._sched_classes = set(class_names)
        self.scheduler.replace_qdisc(qdisc)

    def stats(self) -> Dict[str, float]:
        return self.metrics.snapshot()
