"""MAC and IPv4 address value types."""

from __future__ import annotations

from ..errors import AddressError


class MacAddress:
    """An immutable 48-bit Ethernet address."""

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not 0 <= value < 1 << 48:
            raise AddressError(f"MAC out of range: {value:#x}")
        object.__setattr__(self, "_value", value)

    def __setattr__(self, *_args: object) -> None:
        raise AttributeError("MacAddress is immutable")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise AddressError(f"malformed MAC: {text!r}")
        try:
            octets = [int(p, 16) for p in parts]
        except ValueError as exc:
            raise AddressError(f"malformed MAC: {text!r}") from exc
        if any(not 0 <= o <= 0xFF for o in octets):
            raise AddressError(f"malformed MAC: {text!r}")
        value = 0
        for o in octets:
            value = (value << 8) | o
        return cls(value)

    @classmethod
    def from_index(cls, idx: int, oui: int = 0x02_00_00) -> "MacAddress":
        """Locally-administered MAC ``02:00:00:xx:xx:xx`` for host ``idx``."""
        if not 0 <= idx < 1 << 24:
            raise AddressError(f"MAC index out of range: {idx}")
        return cls((oui << 24) | idx)

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(6, "big")

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.to_bytes())

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and other._value == self._value

    def __hash__(self) -> int:
        return hash(("mac", self._value))


BROADCAST_MAC = MacAddress((1 << 48) - 1)


class IPv4Address:
    """An immutable 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not 0 <= value < 1 << 32:
            raise AddressError(f"IPv4 out of range: {value:#x}")
        object.__setattr__(self, "_value", value)

    def __setattr__(self, *_args: object) -> None:
        raise AttributeError("IPv4Address is immutable")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4: {text!r}")
        try:
            octets = [int(p, 10) for p in parts]
        except ValueError as exc:
            raise AddressError(f"malformed IPv4: {text!r}") from exc
        if any(not 0 <= o <= 255 for o in octets):
            raise AddressError(f"malformed IPv4: {text!r}")
        value = 0
        for o in octets:
            value = (value << 8) | o
        return cls(value)

    @property
    def value(self) -> int:
        return self._value

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(4, "big")

    def __str__(self) -> str:
        return ".".join(str(b) for b in self.to_bytes())

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and other._value == self._value

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))
