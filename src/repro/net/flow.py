"""Five-tuple flow identity."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PacketError
from .addresses import IPv4Address


@dataclass(frozen=True)
class FiveTuple:
    """(proto, src ip/port, dst ip/port) — the unit of steering and NAT."""

    proto: int
    src_ip: IPv4Address
    sport: int
    dst_ip: IPv4Address
    dport: int

    def __post_init__(self) -> None:
        if not 0 <= self.proto <= 0xFF:
            raise PacketError(f"proto out of range: {self.proto}")
        for name, port in (("sport", self.sport), ("dport", self.dport)):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"{name} out of range: {port}")

    def reversed(self) -> "FiveTuple":
        """The reply direction of this flow."""
        return FiveTuple(
            proto=self.proto,
            src_ip=self.dst_ip,
            sport=self.dport,
            dst_ip=self.src_ip,
            dport=self.sport,
        )

    def __str__(self) -> str:
        return (
            f"{self.src_ip}:{self.sport} -> {self.dst_ip}:{self.dport} "
            f"proto={self.proto}"
        )
