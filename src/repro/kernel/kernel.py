"""The assembled kernel: process view + policies + software stack."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import CostModel
from ..errors import KernelError
from ..host.machine import Machine
from ..interpose import InterpositionPoint
from ..net.addresses import IPv4Address, MacAddress
from ..net.packet import Packet
from .arp import ArpCache
from .cgroups import CgroupTree
from .netfilter import RuleTable
from .netstack import KernelNetStack
from .proc_table import ProcessTable
from .process import Process
from .scheduler import KernelScheduler
from .sockets import SocketTable
from .syscall import SyscallLayer
from .users import User, UserTable


class Kernel:
    """One host's kernel.

    Owns the authoritative process view (users, processes, cgroups), the
    policy state (netfilter rules, qdisc config), and the software network
    stack. Dataplanes and the KOPI control plane are built over this object.
    """

    def __init__(
        self,
        machine: Machine,
        host_ip: IPv4Address,
        host_mac: MacAddress,
        nic_send: Callable[[Packet], None],
        tx_rate_bps: Optional[int] = None,
    ):
        self.machine = machine
        self.sim = machine.sim
        self.costs: CostModel = machine.costs
        self.host_ip = host_ip
        self.host_mac = host_mac

        self.users = UserTable()
        self.procs = ProcessTable()
        self.cgroups = CgroupTree()
        self.scheduler = KernelScheduler(
            self.sim, machine.cpus, self.costs, tracer=machine.tracer
        )
        self.syscalls = SyscallLayer(
            self.sim, machine.cpus, self.costs, ledger=machine.copies,
            tracer=machine.tracer,
        )
        self.sockets = SocketTable()
        self.filters = RuleTable()
        # The netfilter chains are an interposition point: a kernel table
        # write is synchronous (live when the call returns), modeled at
        # kernel_update_ns per commit.
        self.filters.bind_point(
            machine.interpose.register(
                InterpositionPoint(
                    name="netfilter",
                    plane="kernel",
                    mechanism="netfilter",
                    install_latency_ns=self.costs.kernel_update_ns,
                    target=self.filters,
                )
            )
        )
        self.arp_cache = ArpCache()
        self._neighbors: Dict[IPv4Address, MacAddress] = {}

        self.netstack = KernelNetStack(
            sim=self.sim,
            costs=self.costs,
            cpus=machine.cpus,
            scheduler=self.scheduler,
            syscalls=self.syscalls,
            sockets=self.sockets,
            filters=self.filters,
            host_ip=host_ip,
            host_mac=host_mac,
            tx_rate_bps=tx_rate_bps or self.costs.nic_line_rate_bps,
            nic_send=nic_send,
            mac_for=self.mac_for,
            fastpath=machine.fastpath,
            tracer=machine.tracer,
            tenants=machine.tenants,
        )

    # --- identity & neighbors ------------------------------------------------

    def register_neighbor(self, ip: IPv4Address, mac: MacAddress) -> None:
        """Static neighbor entry (the simulation's address book)."""
        self._neighbors[ip] = mac

    def mac_for(self, ip: IPv4Address) -> MacAddress:
        """Resolve a destination MAC: static neighbors, then the ARP cache,
        then a deterministic fallback derived from the IP (so simulations
        without explicit topology still produce valid frames)."""
        if ip in self._neighbors:
            return self._neighbors[ip]
        entry = self.arp_cache.lookup(ip)
        if entry is not None:
            return entry.mac
        return MacAddress.from_index(ip.value & 0xFF_FFFF)

    # --- process management -----------------------------------------------------

    def add_user(self, name: str) -> User:
        return self.users.add(name)

    def spawn(self, comm: str, user: "User | str", core_id: int = 0) -> Process:
        if isinstance(user, str):
            user = self.users.by_name(user)
        if not 0 <= core_id < len(self.machine.cpus):
            raise KernelError(f"no such core: {core_id}")
        return self.procs.spawn(comm=comm, user=user, core_id=core_id)

    # --- observability -------------------------------------------------------------

    def observe_arp(self, pkt: Packet) -> None:
        self.arp_cache.observe(pkt, self.sim.now)

    def snapshot(self) -> Dict[str, float]:
        """Flat metrics view across kernel subsystems."""
        out: Dict[str, float] = {}
        out.update(self.syscalls.metrics.snapshot())
        out.update(self.scheduler.metrics.snapshot())
        out.update(self.netstack.metrics.snapshot())
        return out
