"""F1 — Figure 1: every arrow of the Norman architecture, traced live.

The paper's only figure shows: applications talking to ring buffers over
DMA+MMIO; the library entering the kernel for connect; tools (tc, iptables)
entering the kernel control plane; the kernel configuring the KOPI
dataplane through registers; and the dataplane sitting on-path between host
and wire. Each row below is one arrow, verified by running traffic and
checking the counters that only that arrow could have moved.
"""

from __future__ import annotations

from typing import List

from ..core import NormanOS
from ..dataplanes import Testbed
from ..dataplanes.testbed import PEER_IP
from ..net.headers import PROTO_UDP
from ..sim import SimProcess
from ..tools import Iptables, Tc
from .common import Row, fmt_table


def run_f1() -> List[Row]:
    rows: List[Row] = []
    tb = Testbed(NormanOS)
    proc = tb.spawn("app", "bob", core_id=1)

    # Arrow: library --connect--> kernel (syscall).
    sys0 = tb.kernel.syscalls.metrics.counter("norman_connect").value
    ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
    tb.run_all()
    rows.append({
        "arrow": "library -> kernel: connect/setup syscall",
        "verified": tb.kernel.syscalls.metrics.counter("norman_connect").value == sys0 + 1,
        "evidence": "norman_connect syscall counted at setup",
    })

    # Arrow: app <-> ring buffers (DMA + MMIO), kernel NOT on the datapath.
    mmio0 = tb.machine.dma.metrics.counter("mmio_writes").value
    ktx0 = tb.kernel.netstack.metrics.counter("tx_pkts").value
    sys1 = tb.kernel.syscalls.total_syscalls

    def client():
        for _ in range(5):
            yield ep.send(300, dst=(PEER_IP, 9000))

    SimProcess(tb.sim, client())
    tb.run_all()
    rows.append({
        "arrow": "app <-> rings: DMA + MMIO doorbells",
        "verified": tb.machine.dma.metrics.counter("mmio_writes").value >= mmio0 + 5,
        "evidence": "one doorbell per send",
    })
    rows.append({
        "arrow": "dataplane packets do not pass the software kernel",
        "verified": (tb.kernel.netstack.metrics.counter("tx_pkts").value == ktx0
                     and tb.kernel.syscalls.total_syscalls == sys1),
        "evidence": "kernel stack tx counter and syscall count unchanged",
    })

    # Arrow: tools -> kernel control plane -> NIC registers/overlays.
    loads0 = tb.dataplane.nic.fpga.metrics.counter("overlay_loads").value
    Iptables(tb.dataplane, tb.kernel)("-A OUTPUT --dport 81 -j DROP")
    tb.run_all()
    rows.append({
        "arrow": "iptables -> control plane -> overlay load",
        "verified": tb.dataplane.nic.fpga.metrics.counter("overlay_loads").value > loads0,
        "evidence": "filter overlay reloaded after rule insert",
    })

    tb.kernel.cgroups.create("/work")
    Tc(tb.dataplane, tb.kernel)("qdisc replace dev nic0 root wfq /work:3")
    tb.run_all()
    from repro.core.nic_dataplane import SLOT_CLASSIFIER

    rows.append({
        "arrow": "tc -> control plane -> NIC scheduler + classifier",
        "verified": tb.dataplane.nic.fpga.machine(SLOT_CLASSIFIER) is not None,
        "evidence": "classifier overlay present, DRR installed",
    })

    # Arrow: NIC on-path between host and wire (sees RX and TX).
    seen = tb.dataplane.nic.metrics.counter("rx_pkts").value
    tb.peer.send_udp(555, 6000, 100)
    tb.run_all()
    rows.append({
        "arrow": "KOPI dataplane on-path for RX and TX",
        "verified": tb.dataplane.nic.metrics.counter("rx_pkts").value == seen + 1,
        "evidence": "inbound frame traversed the NIC pipeline",
    })

    # Arrow: notification queue shared between NIC, process, and kernel.
    q = tb.dataplane.control.notification_queue(proc.pid)
    rows.append({
        "arrow": "NIC -> notification queue -> kernel monitor",
        "verified": q is not None and q.metrics.counter("posted").value >= 1,
        "evidence": "rx_ready notification posted on packet arrival",
    })
    return rows


def main() -> str:
    rows = run_f1()
    ok = all(r["verified"] for r in rows)
    return "\n".join([
        fmt_table(rows),
        "",
        f"headline: {'all' if ok else 'NOT all'} Figure-1 arrows verified live "
        f"({sum(1 for r in rows if r['verified'])}/{len(rows)})",
    ])


if __name__ == "__main__":
    print(main())
