"""Socket table: binding, privileges, ephemeral ports."""

import pytest

from repro.errors import AddressInUse, KernelError, PermissionDenied
from repro.kernel import SocketTable, User
from repro.kernel.process import Process
from repro.kernel.sockets import EPHEMERAL_BASE
from repro.net import IPv4Address, PROTO_TCP, PROTO_UDP

ROOT = User(0, "root")
BOB = User(1000, "bob")


def proc(user=BOB, comm="app", pid=1):
    return Process(pid=pid, comm=comm, user=user)


class TestBinding:
    def test_bind_and_lookup(self):
        table = SocketTable()
        sock = table.bind(proc(), PROTO_TCP, 5432)
        assert table.lookup(PROTO_TCP, 5432) is sock
        assert table.lookup(PROTO_UDP, 5432) is None

    def test_conflict_detection(self):
        table = SocketTable()
        table.bind(proc(pid=1), PROTO_TCP, 8080)
        with pytest.raises(AddressInUse):
            table.bind(proc(pid=2), PROTO_TCP, 8080)
        # Different protocol is fine.
        table.bind(proc(pid=2), PROTO_UDP, 8080)

    def test_privileged_ports_require_root(self):
        table = SocketTable()
        with pytest.raises(PermissionDenied):
            table.bind(proc(user=BOB), PROTO_TCP, 22)
        table.bind(proc(user=ROOT), PROTO_TCP, 22)

    def test_port_range_and_proto_validation(self):
        table = SocketTable()
        with pytest.raises(KernelError):
            table.bind(proc(), PROTO_TCP, 0)
        with pytest.raises(KernelError):
            table.bind(proc(), PROTO_TCP, 70_000)
        with pytest.raises(KernelError):
            table.bind(proc(), 99, 8080)

    def test_close_releases_port(self):
        table = SocketTable()
        sock = table.bind(proc(), PROTO_TCP, 8080)
        table.close(sock)
        assert table.lookup(PROTO_TCP, 8080) is None
        table.bind(proc(pid=2), PROTO_TCP, 8080)  # rebindable
        with pytest.raises(KernelError):
            table.close(sock)


class TestEphemeral:
    def test_allocates_distinct_ports(self):
        table = SocketTable()
        ports = {table.bind_ephemeral(proc(pid=i + 1), PROTO_UDP).port for i in range(50)}
        assert len(ports) == 50
        assert all(p >= EPHEMERAL_BASE for p in ports)


class TestIntrospection:
    def test_sockets_sorted_and_owned(self):
        table = SocketTable()
        p1, p2 = proc(pid=1, comm="postgres"), proc(pid=2, comm="mysql")
        table.bind(p1, PROTO_TCP, 5432)
        table.bind(p2, PROTO_TCP, 3306)
        socks = table.sockets()
        assert [s.port for s in socks] == [3306, 5432]
        assert len(table.sockets_of(1)) == 1
        assert table.sockets_of(1)[0].owner.comm == "postgres"

    def test_socket_states(self):
        table = SocketTable()
        tcp = table.bind(proc(), PROTO_TCP, 8080)
        assert tcp.state == "LISTEN"
        tcp.connect(IPv4Address.parse("10.0.0.9"), 443)
        assert tcp.state == "ESTABLISHED"
        udp = table.bind(proc(pid=2), PROTO_UDP, 9999)
        assert udp.state == "UNCONN"
