#!/usr/bin/env python3
"""§2 Partitioning ports, end to end: only Bob's postgres may use 5432.
Charlie's misconfigured MySQL tries to take the port.

Run:  python examples/port_partitioning.py
"""

from repro.core import NormanOS
from repro.dataplanes import BypassDataplane, Testbed
from repro.errors import AddressInUse
from repro.apps import DatabaseServer, MisconfiguredDatabase
from repro.tools import Iptables, Netstat

N_QUERIES = 10


def drive_queries(tb):
    for i in range(N_QUERIES):
        tb.sim.after(50_000 * (i + 1), tb.peer.send_udp, 700 + i, 5432, 200)
    tb.run(until=50_000 * (N_QUERIES + 4))


def main() -> None:
    print("=== kernel bypass ===")
    tb = Testbed(BypassDataplane)
    tb.user("bob")
    legit = DatabaseServer(tb, comm="postgres", user="bob", port=5432, core_id=1).start()
    thief = MisconfiguredDatabase(tb, core_id=2).start()  # nothing stops this
    drive_queries(tb)
    legit.stop()
    thief.stop()
    tb.run_all()
    print(f"  postgres served {legit.queries} queries; the misconfigured app "
          f"silently absorbed {thief.stolen}")

    print("\n=== KOPI (Norman) ===")
    tb = Testbed(NormanOS)
    tb.user("bob")
    ipt = Iptables(tb.dataplane, tb.kernel)
    print(" ", ipt("-A INPUT -p udp --dport 5432 -m owner --uid-owner bob "
                   "--cmd-owner postgres -j ACCEPT"))
    print(" ", ipt("-A INPUT -p udp --dport 5432 -j DROP"))
    legit = DatabaseServer(tb, comm="postgres", user="bob", port=5432, core_id=1).start()
    try:
        MisconfiguredDatabase(tb, core_id=2).start()
    except AddressInUse as exc:
        print(f"  misconfigured bind refused outright: {exc}")
    drive_queries(tb)
    legit.stop()
    tb.run_all()
    print(f"  postgres served {legit.queries} queries; violations delivered: 0")
    print("\n" + Netstat(tb.kernel)())


if __name__ == "__main__":
    main()
