"""AccelNet-style hypervisor vswitch offloaded to the NIC.

Performance is bypass-class (the switch sits in NIC hardware, on-path), and
unlike raw bypass there *is* a global interposition point — but it is
logically isolated from the OS: it sees headers, never processes. Owner
rules, cgroup QoS, blocking I/O, and packet→process attribution all refuse,
which is the paper's §1 argument for OS-integrated (not hypervisor-level)
interposition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CostModel
from ..errors import EndpointClosed, UnsupportedOperation, WouldBlock
from ..host.copies import LAYER_HV_VRING
from ..host.machine import Machine
from ..interpose import InterpositionPoint
from ..interpose.fastpath import CHAIN_VSWITCH
from ..kernel.arp import ArpCache
from ..kernel.kernel import Kernel
from ..kernel.netfilter import NetfilterRule
from ..net.addresses import IPv4Address, MacAddress
from ..net.headers import PROTO_TCP
from ..net.link import Link
from ..net.packet import Packet, make_tcp, make_udp
from ..net.switch import MatchAction
from ..nic.base import BasicNic
from ..nic.rings import DescriptorRing, RingPair
from ..sim import MetricSet, Signal
from ..trace import (
    STAGE_DMA,
    STAGE_NIC_PIPELINE,
    STAGE_RING,
    STAGE_SCHED_WAKE,
    charge,
)
from .base import (
    CaptureSession,
    Dataplane,
    Endpoint,
    PacketFilter,
    QosConfig,
    _as_bool,
    _as_first,
)
from .bypass import _message_of


class HypervisorEndpoint(Endpoint):
    """App view: identical to bypass (direct rings, polling only)."""

    def __init__(self, dataplane: "HypervisorDataplane", proc, proto: int, port: int,
                 rings: RingPair):
        super().__init__(dataplane, proc, proto, port)
        self._dp = dataplane
        self.rings = rings
        self.peer: Optional[Tuple[IPv4Address, int]] = None
        self.polls = 0

    @property
    def _core(self):
        return self._dp.machine.cpus[self.proc.core_id]

    def connect(self, dst_ip: IPv4Address, dport: int) -> Signal:
        self.peer = (dst_ip, dport)
        done = Signal("hv.connect")
        self._dp.machine.sim.after(0, done.succeed, True)
        return done

    def send(self, payload_len: int, dst: Optional[Tuple[IPv4Address, int]] = None) -> Signal:
        return _as_bool(self.send_burst((payload_len,), dst), "hv.send")

    def send_raw(self, pkt: Packet) -> Signal:
        return _as_bool(self._send_raw_burst((pkt,)), "hv.send")

    def send_burst(
        self, payload_lens: Sequence[int], dst: Optional[Tuple[IPv4Address, int]] = None
    ) -> Signal:
        dst = dst or self.peer
        if dst is None:
            raise UnsupportedOperation("send without destination on unconnected endpoint")
        dst_mac = MacAddress.from_index(dst[0].value & 0xFF_FFFF)
        maker = make_tcp if self.proto == PROTO_TCP else make_udp
        pkts = [
            maker(self._dp.host_mac, dst_mac, self._dp.host_ip, dst[0],
                  self.port, dst[1], length)
            for length in payload_lens
        ]
        return self._send_raw_burst(pkts)

    def _send_raw_burst(self, pkts: Sequence[Packet]) -> Signal:
        result = Signal("hv.send_burst")
        tracer = self._dp.machine.tracer
        now = self._dp.machine.sim.now
        lead_ctx = None
        cost = 0
        for pkt in pkts:
            pkt.meta.created_ns = now
            ctx = tracer.begin(pkt)
            if lead_ctx is None:
                lead_ctx = ctx
            cost += charge(STAGE_RING, self._dp.costs.bypass_tx_pkt_ns, ctx,
                           label="tx_desc")
        cost += charge(STAGE_DMA, self._dp.costs.mmio_write_ns, lead_ctx,
                       label="doorbell")

        def _done(_sig: Signal) -> None:
            posted = 0 if self.closed else self.rings.tx.post_burst(pkts)
            if posted:
                self._dp.nic_consume_tx(self.rings, posted)
            result.succeed(posted)

        self._core.execute(cost, "hv_tx", ctx=lead_ctx).add_callback(_done)
        return result

    def recv(self, blocking: bool = True) -> Signal:
        return _as_first(self.recv_burst(1, blocking=blocking), "hv.recv")

    def recv_burst(self, max_msgs: int, blocking: bool = True) -> Signal:
        result = Signal("hv.recv_burst")

        def _attempt(_sig: Optional[Signal] = None) -> None:
            if self.closed:
                result.fail(EndpointClosed(f"endpoint :{self.port} closed"))
                return
            pkts = self.rings.rx.consume_burst(max_msgs)
            if pkts:
                cost = sum(
                    charge(STAGE_RING, self._dp.costs.bypass_rx_pkt_ns,
                           p.meta.trace, label="rx_desc")
                    for p in pkts
                )

                def _drained(_s: Signal) -> None:
                    now = self._dp.machine.sim.now
                    for p in pkts:
                        if p.meta.trace is not None:
                            p.meta.trace.fill_gap(STAGE_RING, now, label="ring_wait")
                            p.meta.trace.close(now)
                    result.succeed([_message_of(p) for p in pkts])

                self._core.execute(cost, "hv_rx").add_callback(_drained)
                return
            if not blocking:
                result.fail(WouldBlock(f"ring empty on :{self.port}"))
                return
            self.polls += 1
            self._core.execute(
                self._dp.machine.tracer.loose(
                    STAGE_SCHED_WAKE, self._dp.costs.poll_iteration_ns, label="poll"
                ),
                "poll",
            ).add_callback(_attempt)

        _attempt()
        return result


class HypervisorDataplane(Dataplane):
    """vswitch-on-NIC: global header view, zero process view."""

    name = "hypervisor"
    supports_blocking_io = False

    def __init__(
        self,
        machine: Machine,
        host_ip: IPv4Address,
        host_mac: MacAddress,
        egress: Link,
        n_queues: int = 64,
        ring_entries: int = 256,
    ):
        self.machine = machine
        self.costs: CostModel = machine.costs
        self.host_ip = host_ip
        self.host_mac = host_mac
        self.ring_entries = ring_entries
        machine.tracer.plane = self.name
        self.nic = BasicNic(
            machine.sim, machine.costs, machine.dma, egress, n_queues=n_queues,
            fastpath=machine.fastpath, tracer=machine.tracer,
        )
        self.kernel = Kernel(machine, host_ip, host_mac, nic_send=self.nic.tx)
        self.vswitch_rules: List[MatchAction] = []
        self.arp_observed = ArpCache()
        self.metrics = MetricSet("vswitch")
        self._captures: List[Tuple[Optional[PacketFilter], CaptureSession]] = []
        self._endpoints: List[HypervisorEndpoint] = []
        self._next_conn = 0
        # The vswitch's interposition mechanisms. Header-only match-action
        # compiles from netfilter rules, so the mechanism is "netfilter" even
        # though it runs below the OS ("netfilter" proper is registered by
        # Kernel; its table is off-path here).
        engine = machine.interpose
        self._vswitch_point = engine.register(InterpositionPoint(
            name="vswitch", plane="hypervisor", mechanism="netfilter",
            install_latency_ns=self.costs.table_update_ns,
            target=self.vswitch_rules,
        ))
        self._sniffer_point = engine.register(InterpositionPoint(
            name="sniffer", plane="hypervisor", mechanism="tap",
            install_latency_ns=self.costs.table_update_ns,
            target=self._captures,
        ))
        self.nic.steering.point = engine.register(InterpositionPoint(
            name="steering", plane="nic", mechanism="steering",
            install_latency_ns=self.costs.table_update_ns,
            target=self.nic.steering,
        ))

    # --- vswitch pipeline (runs on the NIC, both directions) ---------------------

    def _vswitch(self, pkt: Packet) -> bool:
        """Returns False when dropped. Header-only: meta.owner_* is never
        consulted — the hypervisor cannot know it."""
        if pkt.is_arp:
            self.arp_observed.observe(pkt, self.machine.sim.now)
        if self._captures:
            mirrored = False
            for match, session in self._captures:
                if match is None or match(pkt):
                    session.packets.append(pkt)
                    mirrored = True
            self._sniffer_point.record_eval(hit=mirrored)
        matched = False
        verdict_drop = False
        if self.vswitch_rules:
            fp = self.machine.fastpath
            ft = pkt.five_tuple if fp is not None else None
            entry = fp.lookup(CHAIN_VSWITCH, ft) if ft is not None else None
            if entry is not None:
                # Hit: cached header verdict, no match-action walk, no eval
                # recorded (the hardware flow cache sits before the rules).
                verdict_drop = entry.verdict == "drop"
            else:
                for rule in self.vswitch_rules:
                    if rule.matches(pkt):
                        matched = True
                        verdict_drop = rule.action == "drop"
                        break
                if fp is not None and ft is not None:
                    fp.install(
                        CHAIN_VSWITCH, ft,
                        verdict="drop" if verdict_drop else "allow",
                        points=("vswitch",),
                    )
                self._vswitch_point.record_eval(hit=matched, dropped=verdict_drop)
        if verdict_drop:
            self.metrics.counter("dropped").inc()
            return False
        return True

    def wire_rx(self, pkt: Packet) -> None:
        if not self._vswitch(pkt):
            return
        self.nic.rx_from_wire(pkt)

    def nic_consume_tx(self, rings: RingPair, count: int = 1) -> None:
        fetch_ns = self.costs.dma_burst_ns(count)
        delay = fetch_ns + self.costs.nic_pipeline_ns

        def _fetch() -> None:
            pkts = rings.tx.consume_burst(count)
            if pkts:
                # The vswitch pulls every guest-posted packet through the
                # vring: interposition by copy, charged to the ledger.
                self.machine.copies.charge(
                    LAYER_HV_VRING,
                    sum(p.wire_len for p in pkts),
                    fetch_ns,
                    ops=len(pkts),
                )
            now = self.machine.sim.now
            for pkt in pkts:
                if pkt.meta.trace is not None:
                    charge(STAGE_NIC_PIPELINE, self.costs.nic_pipeline_ns,
                           pkt.meta.trace, cpu=False, label="tx_pipeline")
                    pkt.meta.trace.fill_gap(STAGE_DMA, now, label="vring_fetch")
                if self._vswitch(pkt):
                    self.nic.tx(pkt)
                elif pkt.meta.trace is not None:
                    pkt.meta.trace.close(now)  # dropped by the vswitch

        self.machine.sim.after(delay, _fetch)

    # --- application surface ------------------------------------------------------

    def open_endpoint(self, proc, proto: int, port: Optional[int] = None) -> HypervisorEndpoint:
        if port is None:
            port = 50_000 + self._next_conn
        if self._next_conn >= len(self.nic.queues):
            from ..errors import NicResourceExhausted

            raise NicResourceExhausted("all vswitch queues claimed")
        conn_id = self._next_conn
        self._next_conn += 1
        rx = DescriptorRing(
            self.ring_entries,
            self.machine.memory.alloc_pinned(self.ring_entries * 64, owner=f"pid{proc.pid}"),
            f"hv.rx{conn_id}",
        )
        tx = DescriptorRing(
            self.ring_entries,
            self.machine.memory.alloc_pinned(self.ring_entries * 64, owner=f"pid{proc.pid}"),
            f"hv.tx{conn_id}",
        )
        rings = RingPair(conn_id, rx=rx, tx=tx)
        self.nic.queues[conn_id].ring = rx
        self.nic.steering.install_dport(proto, port, conn_id)
        ep = HypervisorEndpoint(self, proc, proto, port, rings)
        self._endpoints.append(ep)
        return ep

    # --- administrative surface ------------------------------------------------------

    def install_filter_rule(self, rule: NetfilterRule) -> None:
        """Header rules compile to vswitch match-action; owner rules are
        impossible off-OS."""
        if rule.needs_owner:
            raise UnsupportedOperation(
                "hypervisor vswitch cannot match on process owner: it is "
                "logically isolated from the OS process table"
            )
        self.vswitch_rules.append(
            MatchAction(
                action="drop" if rule.verdict == "DROP" else "allow",
                proto=rule.proto,
                src_ip=rule.src_ip,
                dst_ip=rule.dst_ip,
                sport=rule.sport,
                dport=rule.dport,
            )
        )
        self._vswitch_point.record_update()

    def configure_qos(self, config: QosConfig) -> None:
        raise UnsupportedOperation(
            "hypervisor vswitch cannot shape by cgroup/user/process: "
            "packets carry no process identity (it could shape by port, but "
            "the game hops ports — §2)"
        )

    def start_capture(
        self, match: Optional[PacketFilter] = None, name: str = "capture"
    ) -> CaptureSession:
        """Global capture works — but unattributed."""
        session = CaptureSession(name=name, attributed=False)
        self._captures.append((match, session))
        self._sniffer_point.record_update()

        def _detach() -> None:
            self._captures.remove((match, session))
            self._sniffer_point.record_update()

        session._detach = _detach
        return session

    def attribution_of(self, pkt: Packet) -> Optional[Tuple[int, int, str]]:
        return None  # by construction

    def arp_entries(self) -> List[object]:
        """MAC/IP pairs only; ``source_pid`` is always None here."""
        return self.arp_observed.entries()

    def data_movements(self) -> Dict[str, int]:
        return {"virtual": 0, "virtual_copied_bytes": 0, "physical": 0}

    # --- hybrid fidelity ---------------------------------------------------
    #
    # The hypervisor exposes the predicate/profile contract; fluid delivery
    # into guest vrings is not wired — only KOPI receives fluidly.
    # Promotion here goes through the controller API (the fidelity tests).

    def _ff_endpoint(self, flow):
        fp = self.machine.fastpath
        if fp is None:
            return None
        entry = fp.peek(CHAIN_VSWITCH, flow)
        if entry is None or entry.verdict == "drop":
            return None
        for ep in self._endpoints:
            if not ep.closed and ep.proto == flow.proto and ep.port == flow.dport:
                return ep
        return None

    def ff_eligible(self, flow) -> bool:
        """Steady state on the hypervisor: the vswitch match-action verdict
        is cached live and not a drop, an open guest endpoint owns the port,
        and no capture session needs per-packet visibility."""
        if self._captures:
            return False
        return self._ff_endpoint(flow) is not None

    def ff_profile(self, flow, pkt):
        from ..sim.fastforward import FlowProfile
        from ..trace import STAGE_FASTPATH, STAGE_NIC_PIPELINE, STAGE_RING

        ep = self._ff_endpoint(flow)
        if ep is None:
            return None
        fp = self.machine.fastpath
        costs = self.costs
        spans = (
            (STAGE_FASTPATH, fp.hit_ns, False, "vswitch_cache"),
            (STAGE_NIC_PIPELINE, costs.nic_pipeline_ns, False, "rx_pipeline"),
            (STAGE_RING, costs.bypass_rx_pkt_ns, True, "rx_desc"),
        )
        entry = fp.peek(CHAIN_VSWITCH, flow)
        return FlowProfile(
            spans, core_id=ep.proc.core_id, wire_len=pkt.wire_len,
            payload_len=pkt.payload_len, src_ip=flow.src_ip, sport=flow.sport,
            versions=entry.versions if entry is not None else (),
        )
