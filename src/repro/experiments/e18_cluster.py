"""E18 — cluster scale-out: in-switch L4 balancer + live flow migration.

The rack becomes a real cluster: N backend machines behind the switch's
consistent-hashing VIP stage (:class:`~repro.cluster.L4LoadBalancer`),
with :class:`~repro.cluster.MigrationCoordinator` moving live flows
between backends — conntrack snapshot/adopt, verdict replay, fast-forward
demotion, one atomic re-steering commit, then a counter-reconciling
release. Two legs defend the two claims:

* **(a) migration parity** — a client drives flows at a VIP over three
  backends; midway through the schedule one flow is live-migrated *while
  its packets are in flight*. Against a no-migration run of the identical
  schedule, every counted observable summed across the cluster must match
  **exactly** (0.0000%): delivered messages in total and per flow, NIC
  TX/RX packet counters, conntrack packets/bytes (including the migrated
  flow's own entry, summed over whichever machines hold a piece of it),
  switch frame/flood counters, and the link meters. Loss-free and
  counter-conserving means the migration is *invisible* in the sums —
  only the distribution across machines moves.
* **(b) rebalancing under heavy-tailed load** — an elephant flow and a
  population of mice consistently hash onto the same victim backend; the
  elephant's bursts (fast uplink into a slow backend downlink) queue in
  front of every mouse. Live-migrating the elephant to the idle backend
  must cut the victims' p99 delivery latency measurably versus the same
  schedule without migration.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..config import DEFAULT_COSTS, CostModel
from ..core import NormanOS
from ..dataplanes.multihost import HostSpec, Rack
from ..net.addresses import IPv4Address
from ..net.flow import FiveTuple
from ..net.headers import PROTO_UDP
from .common import Row, fmt_table
from .e21_fidelity_crossover import PARITY_COLUMNS

VIP_IP = IPv4Address.parse("10.0.9.9")

PAYLOAD = 1_458
N_BACKENDS = 3
N_FLOWS = 24
ROUNDS = 8
SENDS_PER_ROUND = 2

#: Port plan: backends listen on the service ports, the client sends from
#: its own bound ports; one extra client port receives the switch-teach
#: packets each backend emits before traffic starts.
SERVICE_PORT_BASE = 2_000
CLIENT_PORT_BASE = 22_000
TEACH_PORT = 21_000

SEND_GAP_NS = 2_000

#: Cluster-summed counters that must match a no-migration run exactly.
EXACT_KEYS = (
    "delivered_total",
    "client_tx_pkts", "backend_rx_pkts",
    "switch_frames", "switch_flooded",
    "client_up_sent", "client_up_bytes",
    "backend_down_sent", "backend_down_bytes",
    "ct_packets", "ct_bytes",
    "flow0_ct_packets", "flow0_ct_bytes",
)

# Leg (b): heavy-tailed load on a slow rack.
MICE = 8
MOUSE_PAYLOAD = 256
ELEPHANT_BURST = 64
ELEPHANT_DPORT = SERVICE_PORT_BASE + 999
REBALANCE_ROUNDS = 6
BACKEND_RATE_BPS = 10_000_000_000       # 10G backend links
ELEPHANT_RATE_BPS = 100_000_000_000     # 100G elephant uplink
MIN_P99_IMPROVEMENT = 1.5


def _parity_costs(costs: CostModel, n_flows: int) -> CostModel:
    """Cluster knobs on, capacity sized for listeners on every backend,
    and (host-local) fast-forward live so a migration's demote step is
    exercised against real promotions."""
    return costs.replace(
        flow_fastpath=True,
        flow_fastpath_entries=max(costs.flow_fastpath_entries, 8 * n_flows),
        smartnic_sram_bytes=max(
            costs.smartnic_sram_bytes, 8 * n_flows * costs.conn_state_bytes),
        rx_ring_entries=2_048, tx_ring_entries=2_048,
        fast_forward=True, ff_tx=True, ff_promote_after=2,
        cluster_lb=True, flow_migration=True,
    )


def _rebalance_costs(costs: CostModel) -> CostModel:
    """Leg (b) keeps every delivery packet-exact (latency is the measured
    quantity) — fast-forward off, balancer + migration on."""
    return costs.replace(
        flow_fastpath=True,
        flow_fastpath_entries=max(costs.flow_fastpath_entries, 256),
        smartnic_sram_bytes=max(
            costs.smartnic_sram_bytes, 256 * costs.conn_state_bytes),
        rx_ring_entries=4_096, tx_ring_entries=4_096,
        cluster_lb=True, flow_migration=True,
    )


def _backend_names(n: int) -> List[str]:
    return [f"srv{i}" for i in range(n)]


def _build_cluster(costs: CostModel, n_backends: int, n_flows: int):
    """Client + N backends behind one VIP: backend listeners on every
    service port (a migrated flow finds a listener wherever it lands),
    the switch taught where each backend lives before traffic starts."""
    names = _backend_names(n_backends)
    specs = [HostSpec.indexed(0, "client", NormanOS)] + [
        HostSpec.indexed(1 + i, name, NormanOS)
        for i, name in enumerate(names)
    ]
    rack = Rack(specs, costs=costs)
    client = rack.host("client")
    rack.add_vip(VIP_IP, names)
    for name in names:
        rack.host(name).dataplane.control.enable_conntrack()  # type: ignore[attr-defined]

    cli_procs = [client.spawn(f"cli{c}", "bob", core_id=c)
                 for c in range(1, 4)]
    cli_eps = [
        client.dataplane.open_endpoint(  # type: ignore[attr-defined]
            cli_procs[i % len(cli_procs)], PROTO_UDP, CLIENT_PORT_BASE + i)
        for i in range(n_flows)
    ]
    teach_ep = client.dataplane.open_endpoint(  # type: ignore[attr-defined]
        cli_procs[0], PROTO_UDP, TEACH_PORT)
    srv_eps: Dict[str, list] = {}
    for name in names:
        host = rack.host(name)
        procs = [host.spawn(f"srv{c}", "carol", core_id=c)
                 for c in range(1, 4)]
        srv_eps[name] = [
            host.dataplane.open_endpoint(  # type: ignore[attr-defined]
                procs[i % len(procs)], PROTO_UDP, SERVICE_PORT_BASE + i)
            for i in range(n_flows)
        ]
    rack.run_all()
    for name in names:
        srv_eps[name][0].send(64, (client.ip, TEACH_PORT))
    rack.run_all()
    return rack, client, cli_eps, srv_eps, teach_ep


def _send_round(rack: Rack, cli_eps, per_conn: int) -> Tuple[int, int]:
    """Spaced single-packet sends from every client endpoint toward its
    VIP service port; returns (scheduled, window_end_offset)."""
    base = rack.sim.now + 1_000
    i = 0
    for _round in range(per_conn):
        for e in range(len(cli_eps)):
            rack.sim.at(base + i * SEND_GAP_NS, cli_eps[e].send, PAYLOAD,
                        (VIP_IP, SERVICE_PORT_BASE + e))
            i += 1
    return i, i * SEND_GAP_NS


def _drain_backends(rack: Rack, srv_eps, per_flow: Dict[int, int]) -> int:
    """Non-blocking drain of every backend listener until the cluster is
    dry; tallies per service flow regardless of which machine served it."""
    consumed = [0]

    def _count(flow_idx: int):
        def _cb(sig):
            if sig.ok:
                consumed[0] += len(sig.value)
                per_flow[flow_idx] = per_flow.get(flow_idx, 0) + len(sig.value)
        return _cb

    while True:
        before = consumed[0]
        for eps in srv_eps.values():
            for i, ep in enumerate(eps):
                ep.recv_burst(64, blocking=False).add_callback(_count(i))
        rack.run_all()
        if consumed[0] == before:
            return consumed[0]


def _ct_totals(rack: Rack, names: List[str],
               flow: FiveTuple) -> Tuple[int, int, int, int]:
    """Conntrack packets/bytes summed over every backend, plus the one
    flow's own entry summed over however many machines hold a piece of
    it (during a migration's drain window that can briefly be two)."""
    pkts = bts = f_pkts = f_bts = 0
    for name in names:
        ct = rack.host(name).dataplane.nic.conntrack  # type: ignore[attr-defined]
        for entry in ct.entries():
            pkts += entry.packets
            bts += entry.bytes
        entry = ct.lookup(flow)
        if entry is not None:
            f_pkts += entry.packets
            f_bts += entry.bytes
    return pkts, bts, f_pkts, f_bts


def _observe(rack: Rack, names: List[str], delivered: int,
             per_flow: Dict[int, int], flow0: FiveTuple) -> Dict[str, object]:
    client = rack.host("client")
    nic_c = client.dataplane.nic  # type: ignore[attr-defined]
    ct_p, ct_b, f_p, f_b = _ct_totals(rack, names, flow0)
    obs: Dict[str, object] = {
        "delivered_total": delivered,
        "per_flow": dict(per_flow),
        "client_tx_pkts": int(nic_c.metrics.counter("tx_pkts").value),
        "backend_rx_pkts": sum(
            int(rack.host(n).dataplane.nic.metrics  # type: ignore[attr-defined]
                .counter("rx_pkts").value)
            for n in names),
        "switch_frames": int(rack.switch.metrics.counter("frames").value),
        "switch_flooded": int(rack.switch.metrics.counter("flooded").value),
        "client_up_sent": int(client.uplink.metrics.counter("sent").value),
        "client_up_bytes": int(
            client.uplink.metrics.meter("bytes").total_bytes),
        "backend_down_sent": sum(
            int(rack.host(n).downlink.metrics.counter("sent").value)
            for n in names),
        "backend_down_bytes": sum(
            int(rack.host(n).downlink.metrics.meter("bytes").total_bytes)
            for n in names),
        "ct_packets": ct_p, "ct_bytes": ct_b,
        "flow0_ct_packets": f_p, "flow0_ct_bytes": f_b,
        "events": rack.sim.events_fired,
    }
    return obs


def run_leg(n_backends: int, n_flows: int, rounds: int, costs: CostModel,
            migrate: bool) -> Dict[str, object]:
    """One parity leg. Both legs run the identical schedule with identical
    knobs (the coordinator is *built* in both); only the migrate leg
    actually calls :meth:`Rack.migrate` — in the middle of a round's send
    window, so the re-steer commit lands with packets in flight."""
    names = _backend_names(n_backends)
    rack, client, cli_eps, srv_eps, _teach = _build_cluster(
        costs, n_backends, n_flows)
    flow0 = FiveTuple(PROTO_UDP, client.ip, CLIENT_PORT_BASE,
                      VIP_IP, SERVICE_PORT_BASE)
    assert rack.balancer is not None
    source = rack.balancer.backend_for(flow0)
    target = names[(names.index(source) + 1) % len(names)]
    per_flow: Dict[int, int] = {}
    delivered = 0
    migration = []
    t0 = time.perf_counter()
    for rnd in range(rounds):
        _scheduled, window = _send_round(rack, cli_eps, SENDS_PER_ROUND)
        if migrate and rnd == rounds // 2:
            rack.sim.at(rack.sim.now + 1_000 + window // 2,
                        lambda: migration.append(rack.migrate(flow0, target)))
        rack.run_all()
        delivered += _drain_backends(rack, srv_eps, per_flow)
    wall = time.perf_counter() - t0
    obs = _observe(rack, names, delivered, per_flow, flow0)
    obs["wall_s"] = wall
    obs["source"] = source
    obs["target"] = target
    if migrate:
        assert rack.coordinator is not None
        obs["migration"] = migration[0] if migration else None
        obs["coordinator"] = rack.coordinator.stats()
        obs["commit_stats"] = rack.balancer.commit_stats()
    return obs


def run_parity(
    n_backends: int = N_BACKENDS,
    n_flows: int = N_FLOWS,
    rounds: int = ROUNDS,
    costs: CostModel = DEFAULT_COSTS,
) -> Dict[str, object]:
    """Leg (a): live-migration run vs no-migration run, same schedule."""
    leg_costs = _parity_costs(costs, n_flows)
    base = run_leg(n_backends, n_flows, rounds, leg_costs, migrate=False)
    mig = run_leg(n_backends, n_flows, rounds, leg_costs, migrate=True)
    rows: List[Row] = []
    ok = True
    for key in EXACT_KEYS:
        b, m = float(base[key]), float(mig[key])
        err = abs(m - b) / max(abs(b), 1e-9)
        this_ok = m == b
        ok = ok and this_ok
        rows.append({
            "observable": key, "exact": b, "hybrid": m,
            "rel_err": err, "ok": this_ok,
        })
    flows_ok = base["per_flow"] == mig["per_flow"]
    ok = ok and flows_ok
    record = mig.get("migration")
    mig_done = record is not None and record.status == "done"
    ok = ok and mig_done
    # The migrated flow's observed packets must be fully accounted for by
    # the protocol's two copies: snapshot + post-commit delta on the
    # target plus whatever re-steered packets landed there directly.
    moved_ok = (record is not None
                and record.moved_packets <= int(mig["flow0_ct_packets"])
                and record.moved_packets > 0)
    ok = ok and moved_ok
    return {
        "rows": rows,
        "base": base,
        "mig": mig,
        "ok": bool(ok),
        "flows_ok": bool(flows_ok),
        "migration_done": bool(mig_done),
        "moved_ok": bool(moved_ok),
        "migration": record,
        "coordinator": mig.get("coordinator", {}),
        "commit_stats": mig.get("commit_stats", {}),
        "max_rel_err": max(float(r["rel_err"]) for r in rows),
    }


# -- leg (b): rebalancing a hot backend ------------------------------------


def _pick_sport(balancer, src_ip, dport: int, start: int,
                victim: str, used) -> int:
    """Smallest unused source port whose five-tuple consistently hashes
    onto ``victim`` (deterministic: the ring is CRC32)."""
    sport = start
    while True:
        ft = FiveTuple(PROTO_UDP, src_ip, sport, VIP_IP, dport)
        if sport not in used and balancer.backend_for(ft) == victim:
            used.add(sport)
            return sport
        sport += 1


def _arm_reader(rack: Rack, ep, fifo: deque, lats: List[Tuple[int, int]],
                burst: int = 8) -> None:
    """Blocking reader loop: records (send_ns, latency_ns) per message
    against the flow's send-time FIFO, then re-arms."""

    def _cb(sig):
        if not sig.ok:
            return
        now = rack.sim.now
        for _msg in sig.value:
            sent = fifo.popleft()
            lats.append((sent, now - sent))
        _arm_reader(rack, ep, fifo, lats, burst)

    ep.recv_burst(burst, blocking=True).add_callback(_cb)


def _drain_loop(rack: Rack, ep, burst: int = ELEPHANT_BURST) -> None:
    """Blocking sink for the elephant: keeps its ring from overflowing."""

    def _cb(sig):
        if sig.ok:
            _drain_loop(rack, ep, burst)

    ep.recv_burst(burst, blocking=True).add_callback(_cb)


def run_rebalance(
    mice: int = MICE,
    rounds: int = REBALANCE_ROUNDS,
    costs: CostModel = DEFAULT_COSTS,
    migrate: bool = True,
) -> Dict[str, object]:
    """Leg (b) (one run): elephant + mice hashed onto srv0; after
    ``rounds`` pre-rounds the elephant migrates to srv1 (or not — the
    baseline), then ``rounds`` post-rounds measure the victims again."""
    leg_costs = _rebalance_costs(costs)
    names = _backend_names(2)
    specs = [
        HostSpec.indexed(0, "client", NormanOS),
        HostSpec.indexed(3, "heavy", NormanOS,
                         ).with_rate(ELEPHANT_RATE_BPS),
        HostSpec.indexed(1, "srv0", NormanOS).with_rate(BACKEND_RATE_BPS),
        HostSpec.indexed(2, "srv1", NormanOS).with_rate(BACKEND_RATE_BPS),
    ]
    rack = Rack(specs, costs=leg_costs, link_rate_bps=BACKEND_RATE_BPS)
    client, heavy = rack.host("client"), rack.host("heavy")
    rack.add_vip(VIP_IP, names)
    assert rack.balancer is not None

    used: set = set()
    mouse_sports = [
        _pick_sport(rack.balancer, client.ip, SERVICE_PORT_BASE + i,
                    CLIENT_PORT_BASE, "srv0", used)
        for i in range(mice)
    ]
    eleph_sport = _pick_sport(rack.balancer, heavy.ip, ELEPHANT_DPORT,
                              CLIENT_PORT_BASE, "srv0", set())
    eleph_flow = FiveTuple(PROTO_UDP, heavy.ip, eleph_sport,
                           VIP_IP, ELEPHANT_DPORT)

    cli_procs = [client.spawn(f"cli{c}", "bob", core_id=c)
                 for c in range(1, 4)]
    mice_eps = [
        client.dataplane.open_endpoint(  # type: ignore[attr-defined]
            cli_procs[i % len(cli_procs)], PROTO_UDP, mouse_sports[i])
        for i in range(mice)
    ]
    teach_ep = client.dataplane.open_endpoint(  # type: ignore[attr-defined]
        cli_procs[0], PROTO_UDP, TEACH_PORT)
    heavy_proc = heavy.spawn("elephant", "mallory", core_id=1)
    heavy_ep = heavy.dataplane.open_endpoint(  # type: ignore[attr-defined]
        heavy_proc, PROTO_UDP, eleph_sport)

    fifos: List[deque] = [deque() for _ in range(mice)]
    lats: List[Tuple[int, int]] = []
    for name in names:
        host = rack.host(name)
        # One process per blocking reader (a process can only block once).
        procs = [host.spawn(f"srv{i}", "carol", core_id=1 + i % 3)
                 for i in range(mice + 1)]
        for i in range(mice):
            ep = host.dataplane.open_endpoint(  # type: ignore[attr-defined]
                procs[i], PROTO_UDP, SERVICE_PORT_BASE + i)
            if name == "srv0":  # mice never move; the elephant does
                _arm_reader(rack, ep, fifos[i], lats)
        eleph_sink = host.dataplane.open_endpoint(  # type: ignore[attr-defined]
            procs[mice], PROTO_UDP, ELEPHANT_DPORT)
        _drain_loop(rack, eleph_sink)
        rack.run_all()
        # Teach the switch this backend's port before traffic.
        eleph_sink.send(64, (client.ip, TEACH_PORT))
    rack.run_all()

    # One round: the elephant's burst slams the victim downlink, mice
    # trickle through the same queue at spaced offsets.
    window = (ELEPHANT_BURST * (PAYLOAD + 64) * 8 * 1_000_000_000
              // BACKEND_RATE_BPS)

    def _round() -> None:
        base = rack.sim.now + 1_000
        rack.sim.at(base, heavy_ep.send_burst,
                    [PAYLOAD] * ELEPHANT_BURST, (VIP_IP, ELEPHANT_DPORT))
        for i in range(mice):
            t = base + 500 + (i * window) // mice
            fifos[i].append(t)
            rack.sim.at(t, mice_eps[i].send, MOUSE_PAYLOAD,
                        (VIP_IP, SERVICE_PORT_BASE + i))
        rack.run_all()

    for _ in range(rounds):
        _round()
    t_migrate = rack.sim.now
    if migrate:
        rack.migrate(eleph_flow, "srv1")
        rack.run_all()
    for _ in range(rounds):
        _round()

    pre = sorted(lat for sent, lat in lats if sent < t_migrate)
    post = sorted(lat for sent, lat in lats if sent >= t_migrate)

    def _p99(xs: List[int]) -> float:
        return float(xs[int(0.99 * (len(xs) - 1))]) if xs else 0.0

    return {
        "migrated": migrate,
        "mice_delivered": len(lats),
        "mice_expected": 2 * rounds * mice,
        "p99_pre_ns": _p99(pre),
        "p99_post_ns": _p99(post),
        "p50_post_ns": float(post[len(post) // 2]) if post else 0.0,
        "migration": (rack.coordinator.migrations[0]
                      if migrate and rack.coordinator is not None
                      and rack.coordinator.migrations else None),
    }


def run_rebalance_pair(
    mice: int = MICE,
    rounds: int = REBALANCE_ROUNDS,
    costs: CostModel = DEFAULT_COSTS,
) -> Dict[str, object]:
    base = run_rebalance(mice, rounds, costs, migrate=False)
    mig = run_rebalance(mice, rounds, costs, migrate=True)
    improvement = (float(base["p99_post_ns"])
                   / max(float(mig["p99_post_ns"]), 1e-9))
    complete = (base["mice_delivered"] == base["mice_expected"]
                and mig["mice_delivered"] == mig["mice_expected"])
    record = mig["migration"]
    ok = (improvement >= MIN_P99_IMPROVEMENT and complete
          and record is not None and record.status == "done")
    return {
        "base": base, "mig": mig,
        "improvement": improvement,
        "complete": bool(complete),
        "ok": bool(ok),
    }


def headline(parity: Dict[str, object],
             rebalance: Optional[Dict[str, object]]) -> dict:
    h = {
        "parity_ok": parity["ok"],
        "max_rel_err": parity["max_rel_err"],
        "flows_ok": parity["flows_ok"],
        "migration_done": parity["migration_done"],
        "stale_evals": parity["commit_stats"].get("stale_evals", 0),
    }
    if rebalance is not None:
        h["p99_improvement"] = rebalance["improvement"]
        h["rebalance_ok"] = rebalance["ok"]
    return h


def main() -> str:
    parity = run_parity()
    rebalance = run_rebalance_pair()
    h = headline(parity, rebalance)
    record = parity["migration"]
    mig_row: Row = {
        "flow": str(record.flow) if record else "-",
        "source": record.source if record else "-",
        "target": record.target if record else "-",
        "snap_pkts": record.snap_packets if record else 0,
        "delta_pkts": record.delta_packets if record else 0,
        "verdicts": record.verdicts_replayed if record else 0,
        "ff_demoted": record.ff_demoted if record else 0,
        "commit_ns": (record.committed_ns - record.requested_ns
                      if record else 0),
        "total_ns": (record.finalized_ns - record.requested_ns
                     if record else 0),
    }
    base_b, mig_b = rebalance["base"], rebalance["mig"]
    reb_rows: List[Row] = [
        {"leg": "no-migration", "p99_pre_us": base_b["p99_pre_ns"] / 1e3,
         "p99_post_us": base_b["p99_post_ns"] / 1e3,
         "p50_post_us": base_b["p50_post_ns"] / 1e3,
         "mice": base_b["mice_delivered"]},
        {"leg": "migrate-elephant", "p99_pre_us": mig_b["p99_pre_ns"] / 1e3,
         "p99_post_us": mig_b["p99_post_ns"] / 1e3,
         "p50_post_us": mig_b["p50_post_ns"] / 1e3,
         "mice": mig_b["mice_delivered"]},
    ]
    return "\n".join([
        "migration parity (no-migration vs live-migration, cluster sums)",
        fmt_table(parity["rows"], columns=PARITY_COLUMNS),
        "",
        "the migration",
        fmt_table([mig_row]),
        "",
        "rebalancing a hot backend (victim mice latency)",
        fmt_table(reb_rows),
        "",
        f"headline: live migration is loss-free and counter-conserving "
        f"(max relative error {h['max_rel_err']:.4%} across cluster sums, "
        f"per-flow delivery identical, {h['stale_evals']} in-window packets "
        f"served by the old steering), and rebalancing the elephant cuts "
        f"victim p99 by {h['p99_improvement']:.1f}x",
    ])


if __name__ == "__main__":
    print(main())
