"""netfilter-style rule chains with owner matching.

The port-partitioning scenario of §2 is exactly an iptables rule with
``-m owner --cmd-owner postgres --uid-owner bob``: a match that needs the
process view. :class:`RuleTable` evaluates chains against a packet plus the
kernel-supplied owner triple; rules that require an owner simply never match
packets whose owner is unknown — which is how off-host interposers fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import PolicyError
from ..net.addresses import IPv4Address
from ..net.packet import Packet
from ..sim import MetricSet

CHAIN_INPUT = "INPUT"
CHAIN_OUTPUT = "OUTPUT"
_CHAINS = (CHAIN_INPUT, CHAIN_OUTPUT)

ACCEPT = "ACCEPT"
DROP = "DROP"
_VERDICTS = (ACCEPT, DROP)

OwnerTriple = Tuple[int, int, str]  # (pid, uid, comm)


@dataclass
class NetfilterRule:
    """One rule: header matches + optional owner matches + verdict.

    ``None`` fields are wildcards. ``uid_owner``/``cmd_owner``/``pid_owner``
    require the evaluator to supply the packet's owner; without one the rule
    does not match (matching Linux semantics, where the owner module only
    matches locally-generated, socket-attributed traffic).
    """

    verdict: str
    chain: str = CHAIN_OUTPUT
    proto: Optional[int] = None
    src_ip: Optional[IPv4Address] = None
    dst_ip: Optional[IPv4Address] = None
    sport: Optional[int] = None
    dport: Optional[int] = None
    uid_owner: Optional[int] = None
    cmd_owner: Optional[str] = None
    pid_owner: Optional[int] = None
    comment: str = ""
    packets: int = field(default=0, compare=False)
    bytes: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.verdict not in _VERDICTS:
            raise PolicyError(f"unknown verdict: {self.verdict!r}")
        if self.chain not in _CHAINS:
            raise PolicyError(f"unknown chain: {self.chain!r}")
        # Precomputed once: matches() runs per packet per rule, and the
        # owner fields never change after construction.
        self.needs_owner: bool = (
            self.uid_owner is not None
            or self.cmd_owner is not None
            or self.pid_owner is not None
        )

    def matches(self, pkt: Packet, owner: Optional[OwnerTriple]) -> bool:
        ft = pkt.five_tuple
        if ft is None:
            return False
        if self.proto is not None and ft.proto != self.proto:
            return False
        if self.src_ip is not None and ft.src_ip != self.src_ip:
            return False
        if self.dst_ip is not None and ft.dst_ip != self.dst_ip:
            return False
        if self.sport is not None and ft.sport != self.sport:
            return False
        if self.dport is not None and ft.dport != self.dport:
            return False
        if self.needs_owner:
            if owner is None:
                return False
            pid, uid, comm = owner
            if self.pid_owner is not None and pid != self.pid_owner:
                return False
            if self.uid_owner is not None and uid != self.uid_owner:
                return False
            if self.cmd_owner is not None and comm != self.cmd_owner:
                return False
        return True

    def describe(self) -> str:
        parts = [f"-A {self.chain}"]
        if self.proto is not None:
            parts.append(f"-p {self.proto}")
        if self.src_ip is not None:
            parts.append(f"-s {self.src_ip}")
        if self.dst_ip is not None:
            parts.append(f"-d {self.dst_ip}")
        if self.sport is not None:
            parts.append(f"--sport {self.sport}")
        if self.dport is not None:
            parts.append(f"--dport {self.dport}")
        if self.needs_owner:
            parts.append("-m owner")
            if self.uid_owner is not None:
                parts.append(f"--uid-owner {self.uid_owner}")
            if self.cmd_owner is not None:
                parts.append(f"--cmd-owner {self.cmd_owner}")
            if self.pid_owner is not None:
                parts.append(f"--pid-owner {self.pid_owner}")
        parts.append(f"-j {self.verdict}")
        return " ".join(parts)


class RuleTable:
    """Ordered rule chains with ACCEPT default policy and hit counters.

    Mutations are copy-on-write: each one builds the new chain list and
    swaps it in whole, so a packet evaluation that captured the old list
    runs against exactly one table version — never a half-edited chain
    (the engine's atomic-commit contract). When bound to an
    :class:`~repro.interpose.InterpositionPoint`, every mutation advances
    the point's version, whichever surface issued it (dataplane admin
    call, iptables, control plane) — tool and engine state cannot diverge.
    """

    def __init__(self, default_verdict: str = ACCEPT):
        if default_verdict not in _VERDICTS:
            raise PolicyError(f"unknown default verdict: {default_verdict!r}")
        self.default_verdict = default_verdict
        self._chains: "dict[str, List[NetfilterRule]]" = {c: [] for c in _CHAINS}
        self._chain_needs_owner: "dict[str, bool]" = {c: False for c in _CHAINS}
        self.metrics = MetricSet("netfilter")
        self.update_count = 0
        self.point = None  # Optional[InterpositionPoint], via bind_point

    def bind_point(self, point) -> None:
        self.point = point

    def needs_owner(self, chain: str) -> bool:
        """True when any rule in ``chain`` matches on the owner triple —
        only then does evaluation consult the kernel's process view."""
        if chain not in self._chains:
            raise PolicyError(f"unknown chain: {chain!r}")
        return self._chain_needs_owner[chain]

    def _committed(self) -> None:
        self.update_count += 1
        # Tables are small and mutations rare: recompute the per-chain
        # owner-match flags wholesale on every commit.
        self._chain_needs_owner = {
            c: any(r.needs_owner for r in rules) for c, rules in self._chains.items()
        }
        if self.point is not None:
            self.point.record_update()

    def append(self, rule: NetfilterRule) -> None:
        chain = self._chains[rule.chain]
        self._chains[rule.chain] = chain + [rule]
        self._committed()

    def insert(self, rule: NetfilterRule, index: int = 0) -> None:
        chain = list(self._chains[rule.chain])
        chain.insert(index, rule)
        self._chains[rule.chain] = chain
        self._committed()

    def delete(self, rule: NetfilterRule) -> None:
        chain = list(self._chains[rule.chain])
        try:
            chain.remove(rule)
        except ValueError as exc:
            raise PolicyError(f"rule not present: {rule.describe()}") from exc
        self._chains[rule.chain] = chain
        self._committed()

    def flush(self, chain: Optional[str] = None) -> None:
        chains = [chain] if chain else list(self._chains)
        for c in chains:
            if c not in self._chains:
                raise PolicyError(f"unknown chain: {c!r}")
            self._chains[c] = []
        self._committed()

    def rules(self, chain: str) -> List[NetfilterRule]:
        if chain not in self._chains:
            raise PolicyError(f"unknown chain: {chain!r}")
        return list(self._chains[chain])

    def evaluate(
        self, chain: str, pkt: Packet, owner: Optional[OwnerTriple]
    ) -> "tuple[str, int]":
        """First-match evaluation. Returns (verdict, rules_examined); the
        caller converts rules_examined into CPU or NIC time."""
        if chain not in self._chains:
            raise PolicyError(f"unknown chain: {chain!r}")
        # Snapshot the chain: copy-on-write mutations swap the whole list,
        # so this evaluation sees one version even if an update lands
        # mid-walk (the RCU read side).
        rules = self._chains[chain]
        if not rules:
            # Empty chain: default policy, nothing examined, counters as
            # the walk below would have produced.
            self.metrics.counter(f"{chain.lower()}_default").inc()
            if self.point is not None:
                version = self.point.record_eval(
                    hit=False, dropped=(self.default_verdict == DROP)
                )
                pkt.meta.notes["nf_eval"] = (chain, version, self.default_verdict, 0)
            return self.default_verdict, 0
        if owner is not None and not self._chain_needs_owner[chain]:
            # No rule in this chain matches on the owner triple: drop it so
            # rule matching never touches the process view (verdicts are
            # unchanged — owner-less rules never read it anyway).
            owner = None
        examined = 0
        verdict = self.default_verdict
        matched = False
        for rule in rules:
            examined += 1
            if rule.matches(pkt, owner):
                rule.packets += 1
                rule.bytes += pkt.wire_len
                self.metrics.counter(f"{chain.lower()}_{rule.verdict.lower()}").inc()
                verdict = rule.verdict
                matched = True
                break
        if not matched:
            self.metrics.counter(f"{chain.lower()}_default").inc()
        if self.point is not None:
            version = self.point.record_eval(hit=matched, dropped=(verdict == DROP))
            # Epoch stamp: which table version judged this packet (the
            # property test checks version -> ruleset is a function).
            pkt.meta.notes["nf_eval"] = (chain, version, verdict, examined)
        return verdict, examined

    def total_rules(self) -> int:
        return sum(len(rules) for rules in self._chains.values())
