"""E5 — §2 Partitioning ports.

Policy: only Bob's postgres may receive on 5432. Charlie's misconfigured
MySQL tries to bind/steer 5432; the peer then sends Postgres traffic. We
count violation deliveries (packets the wrong process received) under each
dataplane, and record the mechanism that stopped (or failed to stop) them.
"""

from __future__ import annotations

from typing import List

from ..core import NormanOS
from ..dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    SidecarDataplane,
    Testbed,
)
from ..errors import AddressInUse
from ..kernel.netfilter import ACCEPT, CHAIN_INPUT, DROP, NetfilterRule
from ..apps import DatabaseServer, MisconfiguredDatabase
from .common import Row, fmt_table, planes_under_test

N_QUERIES = 20
POSTGRES_PORT = 5432


def _owner_policy(tb: Testbed) -> None:
    bob = tb.user("bob")
    tb.dataplane.install_filter_rule(
        NetfilterRule(verdict=ACCEPT, chain=CHAIN_INPUT, dport=POSTGRES_PORT,
                      uid_owner=bob.uid, cmd_owner="postgres")
    )
    tb.dataplane.install_filter_rule(
        NetfilterRule(verdict=DROP, chain=CHAIN_INPUT, dport=POSTGRES_PORT)
    )


def run_e5() -> List[Row]:
    rows: List[Row] = []
    for plane_cls in planes_under_test():
        tb = Testbed(plane_cls)
        tb.user("bob")
        tb.user("charlie")

        policy = "none possible"
        try:
            _owner_policy(tb)
            policy = "owner rule (uid+comm)"
        except Exception as exc:  # UnsupportedOperation from off-host planes
            policy = f"refused: {type(exc).__name__}"
        tb.run_all()  # commit policy loads

        # Bob's postgres is already serving when Charlie's misconfiguration
        # arrives — the realistic failure order.
        legit = DatabaseServer(tb, comm="postgres", user="bob",
                               port=POSTGRES_PORT, core_id=1).start()
        bind_blocked = False
        thief = None
        try:
            thief = MisconfiguredDatabase(tb, core_id=2).start()
        except AddressInUse:
            bind_blocked = True

        for i in range(N_QUERIES):
            tb.sim.after(50_000 * (i + 1), tb.peer.send_udp, 700 + i, POSTGRES_PORT, 200)
        tb.run(until=50_000 * (N_QUERIES + 4))
        if thief is not None:
            thief.stop()
        if legit is not None:
            legit.stop()
        tb.run_all()

        stolen = thief.stolen if thief is not None else 0
        rows.append({
            "plane": plane_cls.name,
            "policy": policy,
            "thief_bind_blocked": bind_blocked,
            "violations_delivered": stolen,
            "legit_served": legit.queries if legit is not None else 0,
        })
    return rows


def headline(rows: List[Row]) -> dict:
    by_plane = {r["plane"]: r for r in rows}
    return {
        "bypass_violations": by_plane["bypass"]["violations_delivered"],
        "kopi_violations": by_plane["kopi"]["violations_delivered"],
        "kernel_violations": by_plane["kernel"]["violations_delivered"],
    }


def main() -> str:
    rows = run_e5()
    h = headline(rows)
    return "\n".join([
        fmt_table(rows),
        "",
        f"headline: bypass delivered {h['bypass_violations']} violating packets "
        f"to the wrong process; kernel and KOPI delivered "
        f"{h['kernel_violations']} and {h['kopi_violations']}",
    ])


if __name__ == "__main__":
    print(main())
