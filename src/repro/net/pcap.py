"""pcap file writer.

The tcpdump analogue writes real libpcap-format captures so that output can
be inspected with any standard tool. Format: classic pcap (magic 0xa1b2c3d4),
microsecond timestamps, LINKTYPE_ETHERNET.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, List, Optional, Tuple

from .. import units
from .packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
DEFAULT_SNAPLEN = 65_535


class PcapWriter:
    """Accumulates (timestamp_ns, Packet) records and serializes them."""

    def __init__(self, snaplen: int = DEFAULT_SNAPLEN):
        self.snaplen = snaplen
        self._records: List[Tuple[int, bytes, int]] = []

    def write(self, time_ns: int, pkt: Packet) -> None:
        data = pkt.to_bytes()
        self._records.append((time_ns, data[: self.snaplen], len(data)))

    @property
    def count(self) -> int:
        return len(self._records)

    def to_bytes(self) -> bytes:
        buf = io.BytesIO()
        self.dump(buf)
        return buf.getvalue()

    def dump(self, out: BinaryIO) -> None:
        out.write(
            struct.pack(
                "!IHHiIII",
                PCAP_MAGIC,
                PCAP_VERSION[0],
                PCAP_VERSION[1],
                0,  # timezone offset
                0,  # sigfigs
                self.snaplen,
                LINKTYPE_ETHERNET,
            )
        )
        for time_ns, data, orig_len in self._records:
            ts_sec, rem = divmod(time_ns, units.SEC)
            ts_usec = rem // units.US
            out.write(struct.pack("!IIII", ts_sec, ts_usec, len(data), orig_len))
            out.write(data)

    def save(self, path: str) -> None:
        with open(path, "wb") as f:
            self.dump(f)


def read_pcap_summary(data: bytes) -> Tuple[int, Optional[int]]:
    """Parse pcap bytes minimally: returns (record_count, linktype).

    Exists so tests can verify round trips without external tools.
    """
    if len(data) < 24:
        raise ValueError("truncated pcap header")
    magic, _vmaj, _vmin, _tz, _sig, _snap, linktype = struct.unpack("!IHHiIII", data[:24])
    if magic != PCAP_MAGIC:
        raise ValueError(f"bad pcap magic: {magic:#x}")
    offset = 24
    count = 0
    while offset < len(data):
        if offset + 16 > len(data):
            raise ValueError("truncated record header")
        _sec, _usec, incl, _orig = struct.unpack("!IIII", data[offset : offset + 16])
        offset += 16 + incl
        count += 1
    if offset != len(data):
        raise ValueError("trailing bytes after last record")
    return count, linktype
