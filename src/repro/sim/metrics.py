"""Lightweight metrics: counters, histograms, time series, rate meters.

Every subsystem exposes its observability through these so that experiments
read results the same way an operator would read ``/proc`` or ``ethtool -S``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from .. import units


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """Histogram of observed samples.

    By default every value is stored, so percentiles are exact — which
    matters when asserting latency distributions in tests, but grows without
    bound under long workloads. Pass ``max_samples`` to cap retention: the
    histogram then keeps a *deterministic* systematic reservoir (no RNG, so
    simulation runs stay reproducible) — whenever the buffer fills it drops
    every other retained sample and doubles its sampling stride. Count,
    total, mean, min, and max stay exact in both modes; percentiles become
    approximate (computed over the reservoir) once decimation kicks in.
    """

    __slots__ = (
        "name", "_samples", "_sorted", "max_samples",
        "_stride", "_skip", "_count", "_total", "_min", "_max",
    )

    def __init__(self, name: str = "", max_samples: Optional[int] = None):
        if max_samples is not None and max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._sorted = True
        self._stride = 1  # retain every _stride-th observation
        self._skip = 0  # observations to skip before the next retained one
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value``; with ``n > 1``, record it as ``n`` identical
        observations (a fluid epoch charging one per-packet cost N times).
        Count, total, min, and max account for all ``n`` exactly; the sample
        buffer retains ``value`` once per call, so percentiles under heavy
        weighting carry the same approximation caveat as decimation."""
        if n < 1:
            raise ValueError(f"histogram {self.name!r} observe needs n >= 1, got {n}")
        self._count += n
        self._total += value * n
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self.max_samples is not None:
            if self._skip > 0:
                self._skip -= 1
                return
            self._skip = self._stride - 1
        self._samples.append(value)
        self._sorted = False
        if self.max_samples is not None and len(self._samples) >= self.max_samples:
            del self._samples[1::2]  # halve the reservoir, double the stride
            self._stride *= 2
            self._skip = self._stride - 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._max is not None else 0.0

    @property
    def retained(self) -> int:
        """Samples actually held (== count unless decimation kicked in)."""
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """p-th percentile (nearest-rank), 0 <= p <= 100. Exact in
        unbounded mode; over the reservoir once ``max_samples`` bites."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(1, math.ceil(p / 100 * len(self._samples)))
        return self._samples[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram in place.

        Count, total, min, and max merge exactly. Retained samples are
        concatenated and re-decimated if the result overflows
        ``max_samples``, so percentiles carry the same caveat as
        :meth:`observe` under decimation: approximate, over the combined
        reservoir. Returns ``self`` for chaining."""
        self._count += other._count
        self._total += other._total
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max
        self._samples.extend(other._samples)
        self._sorted = False
        if self.max_samples is not None:
            while len(self._samples) >= self.max_samples:
                del self._samples[1::2]
                self._stride *= 2
                self._skip = self._stride - 1
        return self

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.1f}>"


class TimeSeries:
    """(timestamp_ns, value) samples, e.g. queue depth over time."""

    __slots__ = ("name", "points")

    def __init__(self, name: str = ""):
        self.name = name
        self.points: List[Tuple[int, float]] = []

    def record(self, time_ns: int, value: float) -> None:
        if self.points and time_ns < self.points[-1][0]:
            raise ValueError(
                f"time series {self.name!r} timestamps must be non-decreasing"
            )
        self.points.append((time_ns, value))

    @property
    def last(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def window_mean(self, start_ns: int, end_ns: int) -> float:
        vals = [v for t, v in self.points if start_ns <= t <= end_ns]
        return sum(vals) / len(vals) if vals else 0.0

    def __len__(self) -> int:
        return len(self.points)


class RateMeter:
    """Accumulates bytes (or events) and reports an average rate."""

    __slots__ = ("name", "total_bytes", "first_ns", "last_ns")

    def __init__(self, name: str = ""):
        self.name = name
        self.total_bytes = 0
        self.first_ns: Optional[int] = None
        self.last_ns: Optional[int] = None

    def record(self, time_ns: int, nbytes: int) -> None:
        if self.first_ns is None:
            self.first_ns = time_ns
        self.last_ns = time_ns
        self.total_bytes += nbytes

    def rate_bps(self, end_ns: Optional[int] = None) -> float:
        """Average rate from first sample to ``end_ns`` (default last)."""
        if self.first_ns is None:
            return 0.0
        end = end_ns if end_ns is not None else self.last_ns
        assert end is not None
        return units.throughput_bps(self.total_bytes, end - self.first_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RateMeter {self.name} bytes={self.total_bytes}>"


class MetricSet:
    """A named bag of metrics with lazy creation, one per subsystem."""

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._meters: Dict[str, RateMeter] = {}

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(self._qualify(name))
        return self._counters[name]

    def histogram(self, name: str, max_samples: Optional[int] = None) -> Histogram:
        """Get-or-create a histogram. ``max_samples`` (reservoir bound) only
        applies on first creation; later lookups return the existing one."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(self._qualify(name), max_samples=max_samples)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(self._qualify(name))
        return self._series[name]

    def meter(self, name: str) -> RateMeter:
        if name not in self._meters:
            self._meters[name] = RateMeter(self._qualify(name))
        return self._meters[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat view of counters and histogram means (for reports/tests)."""
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[self._qualify(name)] = float(counter.value)
        for name, hist in self._histograms.items():
            out[self._qualify(name) + ".mean"] = hist.mean
            out[self._qualify(name) + ".count"] = float(hist.count)
        return out
