"""Feature upgrades and custom overlay programs: policy survival, verifier
safety, failure injection."""

import pytest

from repro import units
from repro.core import KOPI_BITSTREAM, NormanOS
from repro.core.nic_dataplane import SLOT_FILTER_RX
from repro.dataplanes import Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.errors import AssemblerError, VerifierError
from repro.kernel import CHAIN_OUTPUT, DROP, NetfilterRule
from repro.net import PROTO_UDP


class TestBitstreamUpgrade:
    def setup_policy(self, tb):
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        tb.dataplane.install_filter_rule(
            NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=9000)
        )
        tb.run_all()
        return ep

    def assert_enforced(self, tb, ep):
        before = len(tb.peer.received)
        ep.send(10, dst=(PEER_IP, 9000))
        ep.send(10, dst=(PEER_IP, 9001))
        tb.run_all()
        dports = [p.five_tuple.dport for p in tb.peer.received[before:]]
        assert dports == [9001]

    def test_raw_bitstream_reload_loses_policies(self):
        """The hazard the upgrade wrapper exists for: a bare fabric reload
        silently drops the firewall."""
        tb = Testbed(NormanOS)
        ep = self.setup_policy(tb)
        self.assert_enforced(tb, ep)
        tb.dataplane.nic.fpga.load_bitstream(KOPI_BITSTREAM)
        tb.run_all()
        assert tb.dataplane.nic.fpga.machine(SLOT_FILTER_RX) is None
        before = len(tb.peer.received)
        ep.send(10, dst=(PEER_IP, 9000))  # should be dropped... but isn't
        tb.run_all()
        assert len(tb.peer.received) == before + 1  # policy silently gone

    def test_upgrade_wrapper_restores_policies(self):
        tb = Testbed(NormanOS)
        ep = self.setup_policy(tb)
        self.assert_enforced(tb, ep)
        done = []
        tb.dataplane.control.upgrade_bitstream(KOPI_BITSTREAM).add_callback(
            lambda s: done.append(tb.sim.now)
        )
        tb.run_all()
        assert done and done[0] >= 2 * units.SEC
        self.assert_enforced(tb, ep)  # firewall survived the upgrade

    def test_connections_survive_upgrade(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        tb.dataplane.control.upgrade_bitstream(KOPI_BITSTREAM)
        tb.run_all()
        tb.peer.send_udp(555, 7000, 123)
        tb.run_all()
        assert ep.conn.rings.rx.occupancy == 1  # steering/rings intact


class TestCustomPrograms:
    def test_custom_ttl_filter(self):
        """An operator-written program: drop anything with TTL < 5."""
        tb = Testbed(NormanOS)
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        tb.dataplane.control.load_custom_rx_program(
            """
                ldf r0, ip.ttl
                jlt r0, 5, bad
                accept
            bad:
                drop
            """
        )
        tb.run_all()
        from repro.dataplanes.testbed import HOST_IP, HOST_MAC, PEER_MAC
        from repro.net import make_udp
        from repro.net.headers import Ipv4Header, UdpHeader
        from repro.net.packet import Packet
        from repro.net.headers import EthernetHeader

        ok_pkt = make_udp(PEER_MAC, HOST_MAC, PEER_IP, HOST_IP, 1, 7000, 10)
        low_ttl = Packet(
            eth=EthernetHeader(dst=HOST_MAC, src=PEER_MAC),
            ipv4=Ipv4Header(src=PEER_IP, dst=HOST_IP, proto=17, payload_len=18, ttl=2),
            l4=UdpHeader(sport=1, dport=7000, payload_len=10),
            payload_len=10,
        )
        tb.peer.send(ok_pkt)
        tb.peer.send(low_ttl)
        tb.run_all()
        assert ep.conn.rings.rx.occupancy == 1
        assert tb.dataplane.nic.metrics.counter("rx_filtered").value == 1

    def test_rejected_program_leaves_old_one_running(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        tb.dataplane.control.load_custom_rx_program("drop")  # drop everything
        tb.run_all()
        with pytest.raises(VerifierError):
            # counter 0 not declared -> verifier refuses at load time
            tb.dataplane.control.load_custom_rx_program("cnt 0\naccept")
        tb.run_all()
        tb.peer.send_udp(1, 7000, 10)
        tb.run_all()
        assert ep.conn.rings.rx.occupancy == 0  # old drop-all still active

    def test_syntax_errors_surface(self):
        tb = Testbed(NormanOS)
        with pytest.raises(AssemblerError):
            tb.dataplane.control.load_custom_rx_program("frobnicate r0, 1")

    def test_custom_program_with_counters(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("srv", "bob", core_id=1)
        tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        tb.dataplane.control.load_custom_rx_program(
            "ldf r0, ip.proto\njeq r0, 17, isudp\naccept\nisudp: cnt 0\naccept",
            n_counters=1,
        )
        tb.run_all()
        for _ in range(3):
            tb.peer.send_udp(1, 7000, 10)
        tb.run_all()
        machine = tb.dataplane.nic.fpga.machine(SLOT_FILTER_RX)
        assert machine.counters[0] == 3
