"""The programmable SmartNIC substrate: scarce SRAM + reconfigurable FPGA.

The KOPI interposition pipeline itself lives in :mod:`repro.core` (it is the
paper's contribution); this package models the *device* properties the
paper's open questions hinge on — limited on-board memory (§5 resource
exhaustion) and two reconfiguration granularities (§4.4: overlay program
loads in microseconds vs full bitstreams in seconds, during which the
dataplane is offline).
"""

from .fpga import Bitstream, FpgaFabric, OverlaySlot
from .sram import SramAllocator, SramBlock

__all__ = ["Bitstream", "FpgaFabric", "OverlaySlot", "SramAllocator", "SramBlock"]
