"""E3 — §2: the capability matrix, measured.

Each cell is the outcome of actually running the scenario against the
dataplane (see :mod:`repro.core.capabilities`). The paper's prediction:
kernel and sidecar support everything (at E1/E2's cost), bypass supports
nothing, the hypervisor has the global view but not the process view, and
KOPI supports everything at bypass cost.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.capabilities import SCENARIOS, capability_matrix, render_matrix
from .common import Row, planes_under_test


def run_e3() -> Dict[str, Dict[str, str]]:
    return capability_matrix(planes_under_test())


def rows_of(matrix: Dict[str, Dict[str, str]]) -> List[Row]:
    rows: List[Row] = []
    for scenario in SCENARIOS:
        row: Row = {"scenario": scenario}
        for plane, cells in matrix.items():
            row[plane] = "yes" if cells[scenario] == "yes" else "no"
        rows.append(row)
    return rows


def headline(matrix: Dict[str, Dict[str, str]]) -> dict:
    def score(plane: str) -> int:
        return sum(1 for v in matrix[plane].values() if v == "yes")

    return {plane: f"{score(plane)}/{len(SCENARIOS)}" for plane in matrix}


def main() -> str:
    matrix = run_e3()
    scores = headline(matrix)
    return "\n".join(
        [
            render_matrix(matrix),
            "",
            "scenarios supported: "
            + ", ".join(f"{p}={s}" for p, s in scores.items()),
        ]
    )


if __name__ == "__main__":
    print(main())
