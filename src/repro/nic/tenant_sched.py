"""Per-tenant arbitration of the NIC's serial resources.

The egress wire already has a real packet scheduler (the DRR qdisc the
control plane installs per tenant). The *other* serial resources a hog
can monopolize — PCIe DMA bytes and SmartNIC pipeline passes — are
modeled as latency charges, not queues, so they get a fluid arbiter
instead: :class:`WeightedFairClock`, a start-time fair-queueing clock in
the GPS tradition (OSMOSIS's DMA arbiter, PAPERS.md).

Each tenant carries a virtual finish time. A grant of ``busy_ns`` work
starts at ``max(now, own previous finish)`` and finishes after
``busy * (sum of active weights) / own weight`` — i.e. the work is
stretched to the tenant's weighted share of the resource while other
tenants are active, and runs at full rate when it is alone
(work-conserving: an idle NIC is never slowed, so with one tenant the
clock is FIFO-identical). Callers take ``max(fifo_finish, fair_finish)``
so the physical serialization bound still applies.
"""

from __future__ import annotations

from typing import Dict

# tenant: every grant below is billed to the Tenant object the caller
# resolved; there is no anonymous path through this arbiter.


class WeightedFairClock:
    """Start-time fair queueing over one serial NIC resource."""

    def __init__(self, registry, name: str = "fair_clock"):
        self.registry = registry
        self.name = name
        #: tenant tid -> virtual finish time of its last grant.
        self._vfinish: Dict[int, int] = {}
        self.grants = 0
        self.contended_grants = 0

    def active_weight(self, now_ns: int, exclude_tid: int = -1) -> int:
        """Sum of weights of tenants with work still in (virtual) flight.
        Prunes finished tenants as a side effect."""
        total = 0
        stale = None
        for tid, fin in self._vfinish.items():
            if fin <= now_ns:
                stale = (stale or [])
                stale.append(tid)
            elif tid != exclude_tid:
                t = self.registry.get(tid)
                total += t.weight if t is not None else 1
        if stale:
            for tid in stale:
                del self._vfinish[tid]
        return total

    def finish(self, tenant, busy_ns: int, now_ns: int) -> int:
        """Reserve ``busy_ns`` of the resource for ``tenant``; returns the
        completion time under weighted sharing (>= now + busy)."""
        self.grants += 1
        w = tenant.weight if tenant.weight >= 1 else 1
        others = self.active_weight(now_ns, exclude_tid=tenant.tid)
        start = self._vfinish.get(tenant.tid, 0)
        if start < now_ns:
            start = now_ns
        if others:
            self.contended_grants += 1
            fin = start + (busy_ns * (w + others)) // w
        else:
            fin = start + busy_ns
        self._vfinish[tenant.tid] = fin
        return fin

    def delay(self, tenant, busy_ns: int, now_ns: int) -> int:
        """Extra wait the weighted share imposes beyond running the same
        work alone — the number a charging site adds to its latency (and
        attributes to the tenant) when isolation is on."""
        return max(0, self.finish(tenant, busy_ns, now_ns)
                   - (now_ns + busy_ns))

    def backlog_ns(self, tid: int, now_ns: int) -> int:
        """How far this tenant's virtual clock runs ahead of real time."""
        return max(0, self._vfinish.get(tid, 0) - now_ns)
