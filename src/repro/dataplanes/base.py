"""The dataplane interface every architecture implements.

The administrative surface mirrors §2's four scenarios:

* :meth:`Dataplane.install_filter_rule` — iptables (port partitioning);
* :meth:`Dataplane.configure_qos` — tc (traffic shaping);
* :meth:`Dataplane.start_capture` — tcpdump (debugging);
* blocking :meth:`Endpoint.recv` — the process-scheduling scenario.

Implementations raise :class:`~repro.errors.UnsupportedOperation` for
anything their placement cannot do; the capability matrix is computed from
those refusals, not from hand-written tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import UnsupportedOperation
from ..kernel.netfilter import NetfilterRule
from ..net.addresses import IPv4Address
from ..net.packet import Packet
from ..sim import Signal

Message = Tuple[int, IPv4Address, int]  # (payload_len, src_ip, sport)
PacketFilter = Callable[[Packet], bool]


def _as_bool(burst_sig: Signal, name: str) -> Signal:
    """Adapt a send_burst count signal to the per-packet bool contract."""
    out = Signal(name)

    def _done(sig: Signal) -> None:
        if sig.failed:
            out.fail(sig.exception)
        else:
            out.succeed(bool(sig.value))

    burst_sig.add_callback(_done)
    return out


def _as_first(burst_sig: Signal, name: str) -> Signal:
    """Adapt a recv_burst message-list signal to the single-message contract."""
    out = Signal(name)

    def _done(sig: Signal) -> None:
        if sig.failed:
            out.fail(sig.exception)
        else:
            out.succeed(sig.value[0])

    burst_sig.add_callback(_done)
    return out


@dataclass
class QosConfig:
    """A tc-style shaping policy: relative weights per cgroup path, drained
    work-conservingly at the link rate (WFQ/DRR semantics)."""

    weights_by_cgroup: Dict[str, int]
    quantum_bytes: int = 1_514

    def __post_init__(self) -> None:
        if not self.weights_by_cgroup:
            raise UnsupportedOperation("QoS config needs at least one class")


def describe_qos(policy: Optional[QosConfig]) -> str:
    """Render the committed shaping policy the way ``tc qdisc show`` does.

    Derived from the qdisc interposition point's committed policy object so
    tool output can never diverge from engine state.
    """
    if policy is None:
        return "pfifo (default)"
    weights = " ".join(
        f"{path}:{w}" for path, w in sorted(policy.weights_by_cgroup.items())
    )
    return f"wfq {weights}"


@dataclass
class CaptureSession:
    """A running tcpdump-style capture."""

    name: str
    packets: List[Packet] = field(default_factory=list)
    _detach: Optional[Callable[[], None]] = None
    attributed: bool = False
    """True when captured packets carry owner (pid/uid/comm) metadata."""

    pcap: Optional[object] = None
    """A :class:`~repro.net.pcap.PcapWriter` when the backend produces one."""

    def stop(self) -> None:
        if self._detach is not None:
            self._detach()
            self._detach = None

    def summaries(self) -> List[str]:
        return [p.summary() for p in self.packets]


class Endpoint:
    """One application's handle onto the network."""

    def __init__(self, dataplane: "Dataplane", proc, proto: int, port: int):
        self.dataplane = dataplane
        self.proc = proc
        self.proto = proto
        self.port = port
        self.closed = False

    def connect(self, dst_ip: IPv4Address, dport: int) -> Signal:
        """Establish a connection to a peer; resolves when usable."""
        raise NotImplementedError

    def send(self, payload_len: int, dst: Optional[Tuple[IPv4Address, int]] = None) -> Signal:
        """Send one message; resolves True when handed to the wire layer,
        False when dropped by policy or backpressure."""
        raise NotImplementedError

    def recv(self, blocking: bool = True) -> Signal:
        """Receive one :data:`Message`. Blocking semantics (sleep vs poll)
        are the dataplane's — that difference is experiment E6."""
        raise NotImplementedError

    # --- burst interface ---------------------------------------------------
    #
    # The burst calls are the real dataplane surface; per-packet send/recv
    # are the degenerate burst of one. Planes with a native batched path
    # (rings with one doorbell per burst, sendmmsg, NAPI drains) override
    # these; the defaults below sequentially replay per-packet calls so
    # every endpoint supports the API even without amortization.

    def send_burst(
        self, payload_lens: Sequence[int], dst: Optional[Tuple[IPv4Address, int]] = None
    ) -> Signal:
        """Send a burst of messages; resolves with the number admitted."""
        lens = list(payload_lens)
        result = Signal("send_burst")
        state = {"sent": 0, "idx": 0}

        def _next(sig: Optional[Signal] = None) -> None:
            if sig is not None and sig.ok and sig.value:
                state["sent"] += 1
            if state["idx"] >= len(lens):
                result.succeed(state["sent"])
                return
            i = state["idx"]
            state["idx"] += 1
            self.send(lens[i], dst).add_callback(_next)

        _next()
        return result

    def recv_burst(self, max_msgs: int, blocking: bool = True) -> Signal:
        """Receive up to ``max_msgs`` messages; resolves with the list.

        Blocking semantics follow :meth:`recv` for the *first* message;
        the rest are taken only if already available (MSG_WAITFORONE).
        """
        result = Signal("recv_burst")
        msgs: List[Message] = []

        def _next(sig: Optional[Signal] = None) -> None:
            if sig is not None:
                if sig.failed:
                    if msgs:
                        result.succeed(msgs)
                    else:
                        result.fail(sig.exception)
                    return
                msgs.append(sig.value)
                if len(msgs) >= max_msgs:
                    result.succeed(msgs)
                    return
            self.recv(blocking=blocking if not msgs else False).add_callback(_next)

        _next()
        return result

    def close(self) -> None:
        self.closed = True


class Dataplane:
    """Interface + shared refusal helpers."""

    name = "abstract"

    #: Whether a blocked receiver sleeps (True) or must burn a core polling.
    supports_blocking_io = False

    def open_endpoint(self, proc, proto: int, port: Optional[int] = None) -> Endpoint:
        raise NotImplementedError

    # --- administrative surface ------------------------------------------

    def install_filter_rule(self, rule: NetfilterRule) -> None:
        """Apply an iptables-style rule (owner matches included)."""
        raise UnsupportedOperation(f"{self.name}: no interposition point for filtering")

    def configure_qos(self, config: QosConfig) -> None:
        """Apply a tc-style cgroup shaping policy."""
        raise UnsupportedOperation(f"{self.name}: no interposition point for QoS")

    def start_capture(
        self, match: Optional[PacketFilter] = None, name: str = "capture"
    ) -> CaptureSession:
        """tcpdump: observe *all* of the host's traffic."""
        raise UnsupportedOperation(f"{self.name}: no global capture point")

    def attribution_of(self, pkt: Packet) -> Optional[Tuple[int, int, str]]:
        """(pid, uid, comm) for a packet, if this layer can know it."""
        return None

    def arp_entries(self) -> List[object]:
        """The host-wide ARP view an admin can inspect (``ifconfig``/ARP
        cache); empty when no layer observes ARP globally."""
        return []

    # --- hybrid fidelity (flow-level fast-forward, experiment E21) ---------

    def ff_eligible(self, flow) -> bool:
        """Whether ``flow`` is in a steady state this plane can fluid-
        approximate: its composed RX verdict sits live in the flow fast
        path under the current policy epoch and nothing per-packet-
        interesting (a capture, a NAT rewrite, a fallback path) is
        attached. The default is an honest ``False`` — a plane must opt in
        by overriding, and must then also implement :meth:`ff_profile`."""
        return False

    def ff_profile(self, flow, pkt):
        """Capture the frozen per-packet cost shape of ``flow``'s steady
        state as a :class:`~repro.sim.fastforward.FlowProfile` (or ``None``
        to refuse promotion after all). ``pkt`` is the packet whose exact
        simulation just completed — the template the profile freezes."""
        raise UnsupportedOperation(f"{self.name}: no fast-forward profile")

    def ff_bulk_charge(self, flow, n: int, profile) -> None:
        """Charge one ``FlowEpoch``: ``n`` packets of ``flow`` at the
        frozen per-packet ``profile``, as one event. The trace spine gets
        a count-weighted epoch (so the E16 taxonomy still sums exactly),
        the profile's core absorbs ``n ×`` its per-packet CPU share, and
        the plane-supplied ``deliver`` closure replays every remaining
        side effect N exact packets would have had. Planes needing more
        than this shared shape override and extend."""
        machine = self.machine  # every concrete plane holds its Machine
        machine.tracer.epoch(n, profile.spans, plane=self.name)
        if profile.cpu_ns:
            machine.cpus[profile.core_id].execute(
                n * profile.cpu_ns, "ff_epoch")
        if profile.deliver is not None:
            profile.deliver(n)

    def ff_group_charge(self, members, total_n: int, profile) -> None:
        """Charge one *group* epoch: ``total_n`` packets spread over
        ``members`` (``(flow, n, profile)`` triples sharing this plane,
        chain-version-vector, and span shape) as ONE event. The trace
        spine gets a single count-weighted epoch and the shared core one
        bulk execute — CPU busy time is additive, so coalescing is exact —
        while each member's ``deliver`` closure still replays its own
        connection-scoped side effects (counters, credit, conntrack)."""
        machine = self.machine
        machine.tracer.epoch(total_n, profile.spans, plane=self.name)
        if profile.cpu_ns:
            machine.cpus[profile.core_id].execute(
                total_n * profile.cpu_ns, "ff_epoch")
        for _flow, n, prof in members:
            if prof.deliver is not None:
                prof.deliver(n)

    # --- accounting -----------------------------------------------------------

    def data_movements(self) -> Dict[str, int]:
        """How many virtual (copy/syscall) and physical (cross-core) moves
        this dataplane performed — §1's taxonomy, reported by E2."""
        return {"virtual": 0, "physical": 0}
