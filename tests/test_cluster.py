"""Cluster scale-out: the in-switch L4 balancer and live flow migration.

The two contracts under test mirror E18's two legs. *Atomicity*: a
re-steering commit is a single boundary in time — every packet forwarded
before it steers by the complete old table, every packet after by the
complete new one, and no interleaving of commits and traffic can expose a
half-installed rule (hypothesis property over commit/arrival schedules).
*Conservation*: migrating a live flow at any point in its life preserves
every cluster-summed observable — delivered messages per flow, conntrack
packets/bytes — exactly (hypothesis property over migration points). Plus
the cross-machine epoch contract (adopting a flow's state bumps the
target's policy epoch, invalidating whatever the target had cached) and
the seed-identity guard (knobs off ⇒ no balancer object, trace-identical
to the pre-cluster rack).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing, vip_mac
from repro.cluster.balancer import L4LoadBalancer
from repro.config import DEFAULT_COSTS
from repro.core.norman import NormanOS
from repro.dataplanes.multihost import HostSpec, Rack, TwoHostTestbed
from repro.errors import ConfigError, PolicyError
from repro.interpose.fastpath import CHAIN_KOPI_RX
from repro.net import MacAddress, make_udp
from repro.net.addresses import BROADCAST_MAC
from repro.net.addresses import IPv4Address
from repro.net.flow import FiveTuple
from repro.net.headers import PROTO_UDP
from repro.net.link import Link
from repro.net.switch import L2Switch
from repro.sim import Simulator

VIP = IPv4Address.parse("10.0.9.9")
SERVICE_PORT = 2_000
CLIENT_PORT = 22_000
TEACH_PORT = 21_000
PAYLOAD = 600


def _costs(**over):
    base = dict(
        flow_fastpath=True, fast_forward=True, ff_tx=True,
        ff_promote_after=2, cluster_lb=True, flow_migration=True,
    )
    base.update(over)
    return DEFAULT_COSTS.replace(**base)


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(16), HashRing(16)
        for name in ("x", "y", "z"):
            a.add(name)
            b.add(name)
        keys = [f"flow-{i}" for i in range(200)]
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]

    def test_every_backend_reachable(self):
        ring = HashRing(32)
        for name in ("x", "y", "z"):
            ring.add(name)
        seen = {ring.lookup(f"flow-{i}") for i in range(500)}
        assert seen == {"x", "y", "z"}

    def test_remove_only_remaps_removed_backends_keys(self):
        ring = HashRing(32)
        for name in ("x", "y", "z"):
            ring.add(name)
        keys = [f"flow-{i}" for i in range(300)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove("z")
        for k in keys:
            if before[k] != "z":
                # Consistent hashing: survivors keep their assignment.
                assert ring.lookup(k) == before[k]

    def test_errors(self):
        ring = HashRing(4)
        with pytest.raises(PolicyError):
            ring.lookup("anything")  # empty ring
        ring.add("x")
        with pytest.raises(PolicyError):
            ring.add("x")
        with pytest.raises(PolicyError):
            ring.remove("y")
        with pytest.raises(PolicyError):
            HashRing(0)


def _cluster(n_flows=2, costs=None):
    """Client + two backends behind one VIP, listeners everywhere, switch
    taught; returns (rack, client eps, {backend: eps})."""
    costs = costs or _costs()
    specs = [HostSpec.indexed(0, "client", NormanOS),
             HostSpec.indexed(1, "srv0", NormanOS),
             HostSpec.indexed(2, "srv1", NormanOS)]
    rack = Rack(specs, costs=costs, n_cores=2)
    client = rack.host("client")
    rack.add_vip(VIP, ["srv0", "srv1"])
    for name in ("srv0", "srv1"):
        rack.host(name).dataplane.control.enable_conntrack()
    cli_proc = client.spawn("cli", "bob", core_id=1)
    cli_eps = [client.dataplane.open_endpoint(cli_proc, PROTO_UDP,
                                              CLIENT_PORT + i)
               for i in range(n_flows)]
    client.dataplane.open_endpoint(cli_proc, PROTO_UDP, TEACH_PORT)
    srv_eps = {}
    for name in ("srv0", "srv1"):
        host = rack.host(name)
        proc = host.spawn("srv", "carol", core_id=1)
        srv_eps[name] = [host.dataplane.open_endpoint(proc, PROTO_UDP,
                                                      SERVICE_PORT + i)
                         for i in range(n_flows)]
    rack.run_all()
    for name in ("srv0", "srv1"):
        srv_eps[name][0].send(64, (client.ip, TEACH_PORT))
    rack.run_all()
    return rack, cli_eps, srv_eps


def _flow(rack, i=0):
    return FiveTuple(PROTO_UDP, rack.host("client").ip, CLIENT_PORT + i,
                     VIP, SERVICE_PORT + i)


def _send(rack, cli_eps, rounds, gap_ns=2_000):
    base = rack.sim.now + 1_000
    k = 0
    for _ in range(rounds):
        for i, ep in enumerate(cli_eps):
            rack.sim.at(base + k * gap_ns, ep.send, PAYLOAD,
                        (VIP, SERVICE_PORT + i))
            k += 1
    rack.run_all()
    return k


def _drain(rack, srv_eps):
    per_flow = {}
    got = [0]

    def _cb(i):
        def cb(sig):
            if sig.ok:
                got[0] += len(sig.value)
                per_flow[i] = per_flow.get(i, 0) + len(sig.value)
        return cb

    while True:
        before = got[0]
        for eps in srv_eps.values():
            for i, ep in enumerate(eps):
                ep.recv_burst(64, blocking=False).add_callback(_cb(i))
        rack.run_all()
        if got[0] == before:
            return got[0], per_flow


def _ct(rack, name):
    return rack.host(name).dataplane.nic.conntrack


class TestBalancer:
    def test_steer_rewrites_mac_and_delivers(self):
        rack, cli_eps, srv_eps = _cluster()
        sent = _send(rack, cli_eps, rounds=3)
        delivered, per_flow = _drain(rack, srv_eps)
        assert delivered == sent == 6
        assert rack.balancer.metrics.counter("steered").value == sent
        # Every flow landed wholly on its ring-chosen backend.
        for i in (0, 1):
            home = rack.balancer.backend_for(_flow(rack, i))
            entry = _ct(rack, home).lookup(_flow(rack, i))
            assert entry is not None and entry.packets == 3

    def test_vip_validation(self):
        rack, _, _ = _cluster()
        with pytest.raises(PolicyError):
            rack.add_vip(VIP, ["srv0"])  # already installed
        with pytest.raises(PolicyError):
            rack.add_vip(IPv4Address.parse("10.0.9.10"), ["nope"])

    def test_add_vip_requires_knob(self):
        tb = TwoHostTestbed(NormanOS, NormanOS)
        assert tb.balancer is None
        with pytest.raises(PolicyError):
            tb.add_vip(VIP, ["hostB"])

    def test_override_invisible_until_commit_fires(self):
        rack, _, _ = _cluster()
        flow = _flow(rack)
        home = rack.balancer.backend_for(flow)
        other = "srv1" if home == "srv0" else "srv0"
        done = rack.balancer.begin_resteer(flow, other)
        # Staged but not committed: the decision surface still shows the
        # ring's choice.
        assert rack.balancer.backend_for(flow) == home
        rack.sim.after(500, done.succeed, True)
        rack.run_all()
        assert done.ok
        assert rack.balancer.backend_for(flow) == other
        stats = rack.balancer.commit_stats()
        assert stats["resteers"] == 1 and stats["commits"] >= 1

    def test_backend_kernels_know_their_vip(self):
        rack, _, _ = _cluster()
        assert rack.host("srv0").kernel.netstack.serves_vip(VIP)
        assert not rack.host("client").kernel.netstack.serves_vip(VIP)


class TestResteerAtomicity:
    """No packet is ever evaluated against a half-installed steering rule:
    over arbitrary interleavings of frame arrivals and a re-steer commit,
    the delivery split is a single boundary exactly at the commit fire."""

    CLIENT_MAC = MacAddress.from_index(10)
    B1_MAC = MacAddress.from_index(11)
    B2_MAC = MacAddress.from_index(12)
    CLIENT_IP = IPv4Address.parse("10.1.0.1")

    def _switch(self):
        sim = Simulator()
        switch = L2Switch(sim)
        arrivals = {"b1": [], "b2": [], "client": []}
        ports = {}
        for name in ("client", "b1", "b2"):
            link = Link(sim, 100_000_000_000, 5, name=name)
            port = switch.add_port(link)
            link.attach(
                lambda pkt, name=name: arrivals[name].append(pkt))
            ports[name] = port
        # Teach the switch where everything lives (src-learn on real
        # frames, as the rack does with its teach packets), then flush the
        # teach floods out of the collectors.
        for name, mac in (("client", self.CLIENT_MAC), ("b1", self.B1_MAC),
                          ("b2", self.B2_MAC)):
            teach = make_udp(mac, BROADCAST_MAC, self.CLIENT_IP,
                             self.CLIENT_IP, 1, 1, 1)
            switch.ingress(ports[name])(teach)
        sim.run_until_idle()
        for lst in arrivals.values():
            lst.clear()
        balancer = L4LoadBalancer(sim, switch, _costs())
        balancer.register_backend("b1", self.B1_MAC)
        balancer.register_backend("b2", self.B2_MAC)
        balancer.add_vip(VIP, vip_mac(0), ["b1"])
        return sim, switch, balancer, ports, arrivals

    @given(
        frame_offsets=st.lists(
            st.integers(min_value=0, max_value=200),
            min_size=1, max_size=24),
        commit_at=st.integers(min_value=0, max_value=200),
        commit_delay=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_monotonic_boundary(self, frame_offsets, commit_at,
                                       commit_delay):
        sim, switch, balancer, ports, arrivals = self._switch()
        ingress = switch.ingress(ports["client"])
        flow = FiveTuple(PROTO_UDP, self.CLIENT_IP, CLIENT_PORT,
                         VIP, SERVICE_PORT)
        # Frames on even offsets, the commit firing on an odd one: the
        # steering decision happens synchronously at ingress, so there are
        # never same-instant ties to adjudicate.
        base = sim.now + (sim.now % 2)  # first even instant >= now
        boundary = base + 1 + 2 * (commit_at + commit_delay)
        forwarded = {}
        sizes = {}

        def _frame(seq):
            # Every frame is the SAME five-tuple (the one being
            # re-steered); a unique payload length identifies it on
            # arrival.
            pkt = make_udp(self.CLIENT_MAC, vip_mac(0), self.CLIENT_IP,
                           VIP, CLIENT_PORT, SERVICE_PORT, PAYLOAD + seq)
            sizes[pkt.ipv4.payload_len] = seq
            forwarded[seq] = sim.now
            ingress(pkt)

        for seq, off in enumerate(frame_offsets):
            sim.at(base + 2 * off, _frame, seq)
        done = balancer.begin_resteer(flow, "b2")
        sim.at(base + 1 + 2 * commit_at, lambda: sim.after(
            2 * commit_delay, done.succeed, True))
        sim.run_until_idle()

        assert done.ok
        b1_seqs = [sizes[p.ipv4.payload_len] for p in arrivals["b1"]]
        b2_seqs = [sizes[p.ipv4.payload_len] for p in arrivals["b2"]]
        # Exactly-once delivery: no frame lost, duplicated, or flooded.
        assert sorted(b1_seqs + b2_seqs) == sorted(range(len(frame_offsets)))
        assert not arrivals["client"]
        # Single monotonic boundary exactly at the commit fire: every
        # frame forwarded before it steered by the complete old table
        # (b1), every frame after by the complete new one (b2). No frame
        # ever sees a half-installed rule.
        assert all(forwarded[s] < boundary for s in b1_seqs)
        assert all(forwarded[s] > boundary for s in b2_seqs)
        # And afterwards the decision surface agrees with the last frame.
        assert balancer.backend_for(flow) == "b2"


class TestMigration:
    def test_conservation_and_state_handoff(self):
        rack, cli_eps, srv_eps = _cluster()
        flow = _flow(rack)
        _send(rack, cli_eps, rounds=4)
        _drain(rack, srv_eps)
        source = rack.balancer.backend_for(flow)
        target = "srv1" if source == "srv0" else "srv0"
        src_ct, dst_ct = _ct(rack, source), _ct(rack, target)
        before = src_ct.lookup(flow)
        assert before is not None and before.packets == 4
        sram_before = rack.host(source).dataplane.nic.sram.used_bytes

        m = rack.migrate(flow, target)
        rack.run_all()
        assert m.status == "done"
        assert m.snap_packets == 4 and m.delta_packets == 0
        assert m.verdicts_replayed >= 1
        # Source entry released (conntrack gone, SRAM freed)...
        assert src_ct.lookup(flow) is None
        assert rack.host(source).dataplane.nic.sram.used_bytes < sram_before
        # ...and the target owns the full count.
        entry = dst_ct.lookup(flow)
        assert entry is not None
        assert entry.packets == 4 and entry.bytes == before.bytes

        # The flow keeps running on the target, counters continuous.
        _send(rack, cli_eps, rounds=2)
        delivered, _ = _drain(rack, srv_eps)
        assert delivered == 4  # 2 rounds x 2 flows
        assert dst_ct.lookup(flow).packets == 6

    def test_migrate_demotes_source_fast_forward(self):
        rack, cli_eps, srv_eps = _cluster()
        flow = _flow(rack)
        _send(rack, cli_eps, rounds=6)
        _drain(rack, srv_eps)
        source = rack.balancer.backend_for(flow)
        target = "srv1" if source == "srv0" else "srv0"
        ff = rack.host(source).machine.ff
        assert ff is not None and ff.promoted(flow)
        m = rack.migrate(flow, target)
        rack.run_all()
        assert m.ff_demoted >= 1
        assert not ff.promoted(flow)
        assert ff.stats()["demotions"]["flow_migration"] >= 1

    def test_adopt_bumps_target_epoch_invalidating_stale_verdicts(self):
        """The PR3/PR4 epoch-stamped invalidation contract across
        machines: whatever the target had cached about the flow is stale
        the instant the adoption commit lands, and the replayed verdicts
        carry the fresh epoch."""
        rack, cli_eps, srv_eps = _cluster()
        flow = _flow(rack)
        _send(rack, cli_eps, rounds=3)
        _drain(rack, srv_eps)
        source = rack.balancer.backend_for(flow)
        target = "srv1" if source == "srv0" else "srv0"
        tgt_fp = rack.host(target).machine.fastpath
        stale = tgt_fp.install(CHAIN_KOPI_RX, flow, verdict="accept")
        epoch_before = tgt_fp.engine.epoch
        assert [e for e in tgt_fp.entries_for(flow)] == [stale]
        rack.migrate(flow, target)
        rack.run_all()
        assert tgt_fp.engine.epoch > epoch_before
        live = tgt_fp.entries_for(flow)
        assert stale not in live  # pre-adoption cache is dead
        assert live, "replayed verdicts must carry the fresh epoch"

    def test_migrate_errors(self):
        rack, cli_eps, srv_eps = _cluster()
        flow = _flow(rack)
        _send(rack, cli_eps, rounds=1)
        _drain(rack, srv_eps)
        home = rack.balancer.backend_for(flow)
        with pytest.raises(PolicyError):
            rack.migrate(flow, home)  # already there
        with pytest.raises(PolicyError):
            rack.migrate(flow, "nonexistent")
        not_vip = FiveTuple(PROTO_UDP, rack.host("client").ip, CLIENT_PORT,
                            rack.host("srv0").ip, SERVICE_PORT)
        with pytest.raises(PolicyError):
            rack.migrate(not_vip, "srv1")

    def test_migrate_requires_knob(self):
        rack, _, _ = _cluster(costs=_costs(flow_migration=False))
        assert rack.coordinator is None
        with pytest.raises(PolicyError):
            rack.migrate(_flow(rack), "srv1")


class TestMigrationConservation:
    """Hypothesis leg: migrating at a *random point* in the schedule —
    including mid-round, with packets in flight around the commit — never
    changes any cluster-summed observable."""

    BASELINE = {}

    @classmethod
    def _run(cls, migrate_after_round, rounds=4):
        rack, cli_eps, srv_eps = _cluster()
        flow = _flow(rack)
        source = rack.balancer.backend_for(flow)
        target = "srv1" if source == "srv0" else "srv0"
        delivered = 0
        per_flow = {}
        for rnd in range(rounds):
            if migrate_after_round is not None and rnd == migrate_after_round:
                # Mid-window: the commit lands with sends still scheduled.
                rack.sim.at(rack.sim.now + 3_000, rack.migrate, flow, target)
            _send(rack, cli_eps, rounds=1)
            got, pf = _drain(rack, srv_eps)
            delivered += got
            for k, v in pf.items():
                per_flow[k] = per_flow.get(k, 0) + v
        ct_pkts = ct_bytes = f_pkts = 0
        for name in ("srv0", "srv1"):
            for entry in _ct(rack, name).entries():
                ct_pkts += entry.packets
                ct_bytes += entry.bytes
            entry = _ct(rack, name).lookup(flow)
            if entry is not None:
                f_pkts += entry.packets
        return {
            "delivered": delivered,
            "per_flow": per_flow,
            "ct_pkts": ct_pkts,
            "ct_bytes": ct_bytes,
            "flow0_pkts": f_pkts,
            "client_tx": int(rack.host("client").dataplane.nic.metrics
                             .counter("tx_pkts").value),
            "frames": int(rack.switch.metrics.counter("frames").value),
        }

    @given(migrate_after_round=st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_migration_point_never_changes_the_sums(self,
                                                    migrate_after_round):
        if not self.BASELINE:
            self.BASELINE.update(self._run(None))
        assert self._run(migrate_after_round) == self.BASELINE


class TestSeedIdentity:
    """With the knobs off nothing cluster-shaped exists, and a knob-on
    rack that never installs a VIP is event-trace-identical to knob-off
    (the balancer probe in the forwarding loop must be free)."""

    def test_default_costs_build_no_cluster(self):
        tb = TwoHostTestbed(NormanOS, NormanOS)
        assert tb.balancer is None
        assert tb.coordinator is None
        assert tb.switch._balancer is None

    def test_flow_migration_requires_cluster_lb(self):
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(flow_migration=True)

    def test_lb_vnodes_validated(self):
        with pytest.raises(ConfigError):
            DEFAULT_COSTS.replace(cluster_lb=True, lb_vnodes=0)

    @staticmethod
    def _fingerprint(costs):
        specs = [HostSpec.indexed(0, "client", NormanOS),
                 HostSpec.indexed(1, "srv0", NormanOS)]
        rack = Rack(specs, costs=costs, n_cores=2)
        client, srv = rack.host("client"), rack.host("srv0")
        cli = client.spawn("cli", "bob", core_id=1)
        srvp = srv.spawn("srv", "carol", core_id=1)
        ep_c = client.dataplane.open_endpoint(cli, PROTO_UDP, CLIENT_PORT)
        ep_s = srv.dataplane.open_endpoint(srvp, PROTO_UDP, SERVICE_PORT)
        rack.run_all()
        ep_s.send(64, (client.ip, CLIENT_PORT))
        rack.run_all()
        for k in range(8):
            rack.sim.at(rack.sim.now + 1_000, ep_c.send, PAYLOAD,
                        (srv.ip, SERVICE_PORT))
            rack.run_all()
        got = [0]
        ep_s.recv_burst(16, blocking=False).add_callback(
            lambda s: got.__setitem__(0, len(s.value)) if s.ok else None)
        rack.run_all()
        return {
            "end_time": rack.sim.now,
            "events": rack.sim.events_fired,
            "delivered": got[0],
            "frames": rack.switch.metrics.counter("frames").value,
            "busy": tuple(c.busy_ns
                          for h in rack.hosts for c in h.machine.cpus.cores),
        }

    def test_knob_on_without_vip_is_trace_identical(self):
        base = dict(flow_fastpath=True)
        off = self._fingerprint(DEFAULT_COSTS.replace(**base))
        on = self._fingerprint(DEFAULT_COSTS.replace(
            cluster_lb=True, flow_migration=True, **base))
        assert on == off
        assert on["delivered"] == 8
