"""Grep-lint: no NIC-side charging site may bill work anonymously.

Every place NIC-side work is billed — SRAM allocations, DMA byte
transfers, SmartNIC pipeline passes, DDIO line touches, conntrack entry
updates — must resolve who the work belongs to: by passing a resolved
``tenant=``/``tenant`` argument, resolving one nearby
(``_tenant_of(`` / ``resolve_uid(``), or carrying an explicit
``# tenant:`` marker pointing at where the attribution happens (e.g. the
packet's stamped ``meta.tenant_tid``). A new charging site added without
any of these fails this test — the "every resource touch is
tenant-attributed" invariant stays enforceable by inspection, exactly
like the tracing spine's ``test_trace_coverage``.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The NIC-side files where work is billed. The mechanism modules
#: (``nic/smartnic/sram.py``, ``nic/tenant_sched.py``) implement the
#: accounting itself and are covered by their own unit tests.
SCOPE = (
    "core/nic_dataplane.py",
    "core/control_plane.py",
    "core/conntrack.py",
    "host/pcie.py",
    "nic/base.py",
    "nic/fixed_function.py",
    "nic/rings.py",
)

#: A billing call: SRAM bytes, DMA bytes, pipeline/DMA latency charges,
#: DDIO line writes, or a conntrack entry update.
CHARGING = re.compile(
    r"sram\.alloc\(|\.dma_read\(|\.dma_write\(|"
    r"charge\(STAGE_NIC_PIPELINE|charge\(STAGE_DMA|conntrack\.observe\("
)

#: Evidence the site is attributed: a tenant argument or resolution in
#: the surrounding lines, or a ``# tenant:`` marker naming where the
#: attribution lands.
ATTRIBUTION = re.compile(r"tenant")

# Attribution usually precedes the charge (the tenant is resolved, then
# billed); the KOPI RX hit path assembles its fixed charges first and
# resolves the tenant for the arbitration charge just below them.
BEFORE, AFTER = 12, 7


def _charge_sites():
    for rel in SCOPE:
        path = SRC / rel
        if not path.exists():
            continue
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            if CHARGING.search(line):
                window = "\n".join(
                    lines[max(0, i - BEFORE): i + 1 + AFTER]
                )
                yield rel, i + 1, line.strip(), window


def test_scan_finds_the_known_charging_sites():
    """The billing pattern must actually match the codebase — if the
    charging calls were all renamed the lint would silently pass."""
    sites = list(_charge_sites())
    assert len(sites) >= 12, [f"{r}:{n}" for r, n, _l, _w in sites]
    files = {r for r, _n, _l, _w in sites}
    for expected in ("core/nic_dataplane.py", "core/control_plane.py",
                     "core/conntrack.py", "host/pcie.py"):
        assert expected in files, expected


def test_every_nic_charge_names_its_tenant():
    naked = [
        f"{rel}:{lineno}: {line}"
        for rel, lineno, line, window in _charge_sites()
        if not ATTRIBUTION.search(window)
    ]
    assert not naked, (
        "NIC-side charging sites with no tenant attribution (pass a "
        "resolved tenant=, resolve one nearby, or add a '# tenant:' "
        "marker naming where the work is attributed):\n" + "\n".join(naked)
    )
