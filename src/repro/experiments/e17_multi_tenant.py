"""E17 — noisy neighbor: per-tenant NIC scheduling removes the interference.

The paper's argument is that interposition matters *because the NIC is
shared*: many mutually distrusting tenants contend for one SmartNIC
pipeline, one flowtable, one DMA link, one wire. This experiment puts that
sharing under stress — one closed-loop hog against N paced victims on a
deliberately modest link — and measures what the victims feel, three ways:

* **solo** — victims alone (tenant attribution on, no hog): the baseline
  each victim's tail is judged against;
* **contended, isolation off** — the hog shares the factory FIFO egress
  with the victims: its backlog stands in front of every victim packet;
* **contended, isolation on** — ``tenant_isolation`` replaces the FIFO
  drain with a per-tenant DRR/WFQ scheduler (plus quota-capped flowtable
  and SRAM, and weighted-fair pipeline/DMA arbitration): the hog keeps
  only its share.

Victim one-way latency is decomposed with the E16 stage spine, so the
tables show not just *that* the hog hurts but *where* the interference
lands (almost entirely ``qdisc`` queue-wait) and that the scheduler
removes precisely that stage. The run asserts the isolation contract:
with isolation on, pooled victim p99 stays within 2x its solo baseline
while the hog still moves the bulk of the bytes; with isolation off, the
victim p99 degrades by far more than the ISOLATION_FACTOR bound.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Generator, List, Optional

from .. import units
from ..config import DEFAULT_COSTS, CostModel
from ..core import NormanOS
from ..apps.base import App
from ..dataplanes import Testbed
from ..dataplanes.testbed import PEER_IP
from ..sim import Histogram
from ..trace.stages import STAGES
from .common import Row, fmt_table

#: Victim destination ports are VICTIM_PORT_BASE + index; the hog uses 9000.
VICTIM_PORT_BASE = 10_000
HOG_PORT = 9_000

#: The isolation contract asserted by :func:`run_e17`: with the per-tenant
#: scheduler on, pooled victim p99 must stay within this factor of the solo
#: baseline; with it off, contention must exceed it (the off leg typically
#: lands orders of magnitude above).
ISOLATION_FACTOR = 2.0

DEFAULT_VICTIMS = 200
DEFAULT_VICTIM_COUNT = 25
DEFAULT_LINK_RATE_BPS = 10 * units.GBPS
#: Latency-sensitive tenants get a higher scheduler weight than the hog —
#: the operator knob the WFQ/DRR weights exist for.
VICTIM_WEIGHT = 4
VICTIM_PAYLOAD = 1_458

#: Per-victim send period such that the victims *collectively* offer ~2
#: Gbps (20% of the default link) regardless of N — the contention the
#: experiment measures must come from the hog, not from victim-on-victim
#: crowding growing with the tenant count.
def victim_period_ns(n_victims: int, payload_len: int = VICTIM_PAYLOAD) -> int:
    wire_bits = (payload_len + 54) * 8
    return max(15_000, (n_victims * wire_bits * units.SEC)
               // (2 * units.GBPS))


class PacedVictim(App):
    """Open-loop sender: one small message every ``period_ns``.

    Paced (not closed-loop) on purpose — a victim's offered load must not
    adapt to the hog's pressure, or the tail it suffers would be hidden
    by its own backoff. Each victim owns a distinct destination port so
    the peer's deliveries can be attributed per victim.
    """

    def __init__(self, testbed: Testbed, user: str, dport: int,
                 count: int, period_ns: int,
                 payload_len: int = VICTIM_PAYLOAD,
                 phase_ns: int = 0, **kwargs):
        super().__init__(testbed, comm=f"victim.{dport}", user=user, **kwargs)
        self.dport = dport
        self.count = count
        self.period_ns = period_ns
        self.payload_len = payload_len
        self.phase_ns = phase_ns
        self.sent = 0

    def run(self) -> Generator:
        yield self.ep.connect(PEER_IP, self.dport)
        if self.phase_ns:
            yield self.phase_ns
        for _ in range(self.count):
            ok = yield self.ep.send(self.payload_len)
            if ok:
                self.sent += 1
            yield self.period_ns


class Hog(App):
    """Closed-loop bulk sender on its own tenant: sends full-size frames
    as fast as the dataplane admits them until stopped."""

    def __init__(self, testbed: Testbed, user: str,
                 payload_len: int = 1_458, **kwargs):
        super().__init__(testbed, comm="hog", user=user, **kwargs)
        self.payload_len = payload_len
        self.sent = 0

    def run(self) -> Generator:
        yield self.ep.connect(PEER_IP, HOG_PORT)
        while True:
            ok = yield self.ep.send(self.payload_len)
            if ok:
                self.sent += 1


def _register_tenants(tb: Testbed, n_victims: int, with_hog: bool):
    """One uid-scoped tenant per victim plus (optionally) the hog's.

    The hog gets a flowtable quota and an SRAM cap — not load-bearing for
    the scheduling result, but they make the per-tenant pressure section
    non-trivial and mirror how an operator would actually confine it."""
    reg = tb.machine.tenants
    victims = []
    for i in range(n_victims):
        user = tb.user(f"victim{i}")
        victims.append(reg.register(f"victim{i}", uid=user.uid,
                                    weight=VICTIM_WEIGHT))
    hog = None
    if with_hog:
        user = tb.user("hog")
        hog = reg.register(
            "hog", uid=user.uid, weight=1,
            flow_quota=8, sram_quota_bytes=64 * 1024,
        )
    return victims, hog


def _run_leg(
    leg: str,
    with_hog: bool,
    isolation: bool,
    n_victims: int,
    victim_count: int,
    victim_period_ns: int,
    link_rate_bps: int,
    costs: CostModel,
) -> Dict[str, object]:
    leg_costs = replace(
        costs, tenants=True, tenant_isolation=isolation,
        flow_fastpath=True, trace=True,
    )
    tb = Testbed(NormanOS, costs=leg_costs, link_rate_bps=link_rate_bps)
    _register_tenants(tb, n_victims, with_hog)

    victims = [
        PacedVictim(
            tb, user=f"victim{i}", dport=VICTIM_PORT_BASE + i,
            count=victim_count, period_ns=victim_period_ns,
            # Phases spread the victims across one period so their load is
            # smooth; the stagger is deterministic, not random.
            phase_ns=(i * victim_period_ns) // max(n_victims, 1),
            core_id=2 + (i % 5),
        )
        for i in range(n_victims)
    ]
    hog = Hog(tb, user="hog", core_id=1) if with_hog else None

    for v in victims:
        v.start()
    if hog is not None:
        hog.start()
    # The measurement window comfortably covers every victim's schedule;
    # the hog (stopped after the window) contends throughout it.
    window_ns = (victim_count + 2) * victim_period_ns + 100_000
    tb.run(until=window_ns)
    if hog is not None:
        hog.stop()
    tb.run_all()

    victim_ports = {VICTIM_PORT_BASE + i for i in range(n_victims)}
    lat = Histogram(f"e17.{leg}.victim_latency")
    stage_ns: Dict[str, int] = {}
    n_traced = 0
    for pkt in tb.peer.received:
        ft = pkt.five_tuple
        if ft is None or ft.dport not in victim_ports:
            continue
        if not (pkt.meta.created_ns or pkt.meta.delivered_ns):
            continue
        lat.observe(pkt.meta.delivered_ns - pkt.meta.created_ns)
        ctx = pkt.meta.trace
        if ctx is not None:
            n_traced += 1
            for stage, ns in ctx.by_stage().items():
                stage_ns[stage] = stage_ns.get(stage, 0) + ns
    hog_delivered = sum(
        1 for p in tb.peer.received
        if p.five_tuple is not None and p.five_tuple.dport == HOG_PORT
    )
    fp = tb.machine.fastpath
    return {
        "leg": leg,
        "latency": lat,
        "stage_ns_per_pkt": {
            s: ns / max(n_traced, 1) for s, ns in stage_ns.items()
        },
        "victim_delivered": int(lat.count),
        "victim_sent": sum(v.sent for v in victims),
        "hog_delivered": hog_delivered,
        "hog_sent": hog.sent if hog is not None else 0,
        "window_ns": window_ns,
        "per_tenant_flows": fp.per_tenant() if fp is not None else {},
        "sram_by_tenant": tb.dataplane.nic.sram.used_by_tenant(),
        "tenant_names": {
            t.tid: t.name for t in tb.machine.tenants.tenants()
        },
        "sched_drops": tb.dataplane.nic.metrics.counter("tx_sched_drops").value,
    }


def run_e17(
    n_victims: int = DEFAULT_VICTIMS,
    victim_count: int = DEFAULT_VICTIM_COUNT,
    period_ns: Optional[int] = None,
    link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
    costs: CostModel = DEFAULT_COSTS,
) -> Dict[str, object]:
    """Run the three legs and assert the isolation contract. Returns
    ``{"rows", "stage_rows", "legs", "headline"}``."""
    period = period_ns if period_ns is not None else victim_period_ns(n_victims)
    legs = {
        "solo": _run_leg("solo", False, False, n_victims, victim_count,
                         period, link_rate_bps, costs),
        "contended_off": _run_leg("contended_off", True, False, n_victims,
                                  victim_count, period,
                                  link_rate_bps, costs),
        "contended_on": _run_leg("contended_on", True, True, n_victims,
                                 victim_count, period,
                                 link_rate_bps, costs),
    }
    rows: List[Row] = []
    for leg in ("solo", "contended_off", "contended_on"):
        r = legs[leg]
        lat: Histogram = r["latency"]
        rows.append({
            "leg": leg,
            "victims": n_victims,
            "victim_pkts": r["victim_delivered"],
            "victim_p50_us": lat.p50 / units.US,
            "victim_p99_us": lat.p99 / units.US,
            "victim_max_us": lat.maximum / units.US,
            "hog_pkts": r["hog_delivered"],
            "sched_drops": r["sched_drops"],
        })
    stage_rows: List[Row] = []
    for stage in STAGES:
        vals = {
            leg: legs[leg]["stage_ns_per_pkt"].get(stage, 0.0)
            for leg in legs
        }
        if not any(vals.values()):
            continue
        stage_rows.append({
            "stage": stage,
            "solo_ns": vals["solo"],
            "off_ns": vals["contended_off"],
            "on_ns": vals["contended_on"],
            "hog_added_ns": vals["contended_off"] - vals["solo"],
            "removed_by_sched_ns": vals["contended_off"] - vals["contended_on"],
        })

    solo_p99 = legs["solo"]["latency"].p99
    off_p99 = legs["contended_off"]["latency"].p99
    on_p99 = legs["contended_on"]["latency"].p99
    headline = {
        "solo_p99_us": solo_p99 / units.US,
        "off_p99_x_solo": off_p99 / max(solo_p99, 1e-9),
        "on_p99_x_solo": on_p99 / max(solo_p99, 1e-9),
        "hog_share_on": (
            legs["contended_on"]["hog_delivered"]
            / max(legs["contended_on"]["hog_delivered"]
                  + legs["contended_on"]["victim_delivered"], 1)
        ),
        "interference_stage": max(
            (r for r in stage_rows), key=lambda r: r["hog_added_ns"],
        )["stage"] if stage_rows else "",
    }
    # The isolation contract, asserted — not just reported.
    assert headline["on_p99_x_solo"] <= ISOLATION_FACTOR, (
        f"isolation on: victim p99 {on_p99}ns exceeds "
        f"{ISOLATION_FACTOR}x solo baseline {solo_p99}ns"
    )
    assert headline["off_p99_x_solo"] > ISOLATION_FACTOR, (
        f"isolation off: victim p99 {off_p99}ns vs solo {solo_p99}ns — "
        f"expected unbounded degradation, hog is not contending"
    )
    assert legs["contended_on"]["hog_delivered"] > 0, "hog sent nothing"
    return {"rows": rows, "stage_rows": stage_rows, "legs": legs,
            "headline": headline}


def tenant_pressure_rows(leg: Dict[str, object]) -> List[Row]:
    """The per-tenant pressure table (quota occupancy without running the
    whole experiment — `repro report` renders this for the isolation leg)."""
    names: Dict[int, str] = leg["tenant_names"]
    flows: Dict[int, Dict[str, float]] = leg["per_tenant_flows"]
    sram: Dict[int, int] = leg["sram_by_tenant"]
    rows: List[Row] = []
    for tid in sorted(set(flows) | set(sram)):
        row = {"tid": tid, "tenant": names.get(tid, f"t{tid}")}
        f = flows.get(tid, {})
        row["flow_entries"] = int(f.get("entries", 0))
        row["flow_quota"] = int(f["quota"]) if "quota" in f else "-"
        row["hits"] = int(f.get("hits", 0))
        row["misses"] = int(f.get("misses", 0))
        row["evicted"] = int(f.get("evicted", 0))
        row["sram_B"] = sram.get(tid, 0)
        rows.append(row)
    return rows


def main() -> str:
    result = run_e17()
    h = result["headline"]
    on = result["legs"]["contended_on"]
    pressure = tenant_pressure_rows(on)
    # The full pressure table has one row per tenant (hundreds); show the
    # hog, the system tenant, and the busiest victims.
    pressure.sort(key=lambda r: (-int(r["hits"]) - int(r["misses"])))
    return "\n".join([
        fmt_table(result["rows"]),
        "",
        fmt_table(result["stage_rows"]),
        "",
        "per-tenant pressure (isolation leg, top 8 by flowtable traffic):",
        fmt_table(pressure[:8]),
        "",
        f"headline: one hog vs {result['rows'][0]['victims']} paced victims "
        f"on a shared {DEFAULT_LINK_RATE_BPS // units.GBPS} Gbps egress — "
        f"FIFO lets the hog inflate victim p99 to "
        f"{h['off_p99_x_solo']:.0f}x solo (interference lands in "
        f"'{h['interference_stage']}'); the per-tenant scheduler holds it "
        f"to {h['on_p99_x_solo']:.2f}x (bound {ISOLATION_FACTOR}x) while "
        f"the hog still carries {100 * h['hog_share_on']:.0f}% of delivered "
        f"packets",
    ])


if __name__ == "__main__":
    print(main())
