"""The flow fast path: megaflow-style verdict cache over the plane.

Covers the cache in isolation (LRU bounds, lazy epoch invalidation,
conntrack-driven eviction), its wiring into the dataplanes (strictly
opt-in; verdicts never change), and the central correctness property:
a fast-path hit returns exactly the verdict a slow-path walk would give
at the packet's stamped policy version.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COSTS
from repro.core import NormanOS
from repro.dataplanes import KernelPathDataplane, SidecarDataplane, Testbed
from repro.dataplanes.testbed import HOST_IP, HOST_MAC, PEER_IP, PEER_MAC
from repro.experiments.e15_flow_fastpath import run_plane_point
from repro.interpose import FlowFastPath, InterpositionPoint, PolicyEngine
from repro.interpose.fastpath import CHAIN_STEER
from repro.kernel.netfilter import (
    CHAIN_OUTPUT,
    DROP,
    NetfilterRule,
    RuleTable,
)
from repro.net.headers import PROTO_UDP
from repro.net.packet import make_udp
from repro.sim import Simulator
from repro.tools import Iptables

FASTPATH_COSTS = DEFAULT_COSTS.replace(flow_fastpath=True)


def _engine_with_table():
    """A PolicyEngine with one registered netfilter point, as the kernel
    control plane wires it."""
    engine = PolicyEngine(Simulator())
    table = RuleTable()
    point = engine.register(
        InterpositionPoint(
            name="netfilter", plane="kernel", mechanism="netfilter", target=table
        )
    )
    table.bind_point(point)
    return engine, table


def _flow(sport: int, dport: int = 9_000):
    return make_udp(HOST_MAC, PEER_MAC, HOST_IP, PEER_IP, sport, dport, 100)


class TestFlowFastPathUnit:
    def test_install_then_hit(self):
        engine, _table = _engine_with_table()
        fp = FlowFastPath(engine, FASTPATH_COSTS)
        ft = _flow(5_000).five_tuple
        assert fp.lookup(CHAIN_OUTPUT, ft, 7) is None
        fp.install(CHAIN_OUTPUT, ft, 7, verdict="ACCEPT", points=("netfilter",))
        entry = fp.lookup(CHAIN_OUTPUT, ft, 7)
        assert entry is not None and entry.verdict == "ACCEPT"
        assert fp.hits == 1 and fp.misses == 1
        assert fp.metrics.counter("skipped.netfilter").value == 1

    def test_scope_is_part_of_the_key(self):
        # Owner rules make the verdict a function of (flow, process): a
        # different pid must not see another process's cached verdict.
        engine, _table = _engine_with_table()
        fp = FlowFastPath(engine, FASTPATH_COSTS)
        ft = _flow(5_000).five_tuple
        fp.install(CHAIN_OUTPUT, ft, 7, verdict="DROP")
        assert fp.lookup(CHAIN_OUTPUT, ft, 8) is None
        assert fp.lookup(CHAIN_OUTPUT, ft, 7) is not None

    def test_commit_invalidates_lazily(self):
        engine, table = _engine_with_table()
        fp = FlowFastPath(engine, FASTPATH_COSTS)
        ft = _flow(5_000).five_tuple
        fp.install(CHAIN_OUTPUT, ft, 7, verdict="ACCEPT")
        table.append(NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=9_000))
        # The commit walked nothing; the stale entry dies on next lookup.
        assert len(fp) == 1
        assert fp.lookup(CHAIN_OUTPUT, ft, 7) is None
        assert fp.invalidated == 1
        assert len(fp) == 0

    def test_lru_eviction_bounded(self):
        engine, _table = _engine_with_table()
        fp = FlowFastPath(engine, FASTPATH_COSTS.replace(flow_fastpath_entries=4))
        for i in range(6):
            fp.install(CHAIN_OUTPUT, _flow(5_000 + i).five_tuple, None, verdict="ACCEPT")
        assert len(fp) == 4
        assert fp.evicted == 2
        # Oldest two are gone; newest four are hits.
        assert fp.lookup(CHAIN_OUTPUT, _flow(5_000).five_tuple) is None
        assert fp.lookup(CHAIN_OUTPUT, _flow(5_005).five_tuple) is not None

    def test_lru_order_refreshed_by_hits(self):
        engine, _table = _engine_with_table()
        fp = FlowFastPath(engine, FASTPATH_COSTS.replace(flow_fastpath_entries=2))
        a, b, c = (_flow(5_000 + i).five_tuple for i in range(3))
        fp.install(CHAIN_OUTPUT, a, None, verdict="ACCEPT")
        fp.install(CHAIN_OUTPUT, b, None, verdict="ACCEPT")
        fp.lookup(CHAIN_OUTPUT, a)  # a becomes most-recent
        fp.install(CHAIN_OUTPUT, c, None, verdict="ACCEPT")  # evicts b
        assert fp.lookup(CHAIN_OUTPUT, a) is not None
        assert fp.lookup(CHAIN_OUTPUT, b) is None

    def test_evict_flow_drops_both_directions(self):
        engine, _table = _engine_with_table()
        fp = FlowFastPath(engine, FASTPATH_COSTS)
        ft = _flow(5_000).five_tuple
        fp.install(CHAIN_OUTPUT, ft, None, verdict="ACCEPT")
        fp.install("INPUT", ft.reversed(), None, verdict="ACCEPT")
        assert fp.evict_flow(ft) == 2
        assert fp.expired == 2
        assert len(fp) == 0

    def test_purge_clears_everything(self):
        engine, _table = _engine_with_table()
        fp = FlowFastPath(engine, FASTPATH_COSTS)
        for i in range(3):
            fp.install(CHAIN_STEER, _flow(5_000 + i).five_tuple, queue_id=i)
        assert fp.purge() == 3
        assert len(fp) == 0


class TestWiring:
    def test_default_off_leaves_no_cache(self):
        tb = Testbed(KernelPathDataplane)
        assert tb.machine.fastpath is None

    def test_flag_on_builds_cache_per_machine(self):
        tb = Testbed(KernelPathDataplane, costs=FASTPATH_COSTS)
        fp = tb.machine.fastpath
        assert fp is not None
        assert fp.engine is tb.machine.interpose
        assert fp.capacity == FASTPATH_COSTS.flow_fastpath_entries

    def test_cached_drop_still_drops(self):
        # A matching DROP verdict served from the cache must behave
        # exactly like the slow-path drop: nothing reaches the wire.
        tb = Testbed(KernelPathDataplane, costs=FASTPATH_COSTS)
        ipt = Iptables(tb.dataplane, tb.kernel)
        ipt("-A OUTPUT -p udp --dport 9000 -j DROP")
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6_000)
        for _ in range(8):
            ep.send(100, dst=(PEER_IP, 9_000))
            tb.run_all()
        assert len(tb.peer.received) == 0
        assert tb.machine.fastpath.hits > 0

    def test_conntrack_expiry_evicts_cached_flows(self):
        tb = Testbed(NormanOS, costs=FASTPATH_COSTS)
        ct = tb.dataplane.control.enable_conntrack()
        proc = tb.spawn("app", "bob", core_id=1)
        tb.dataplane.open_endpoint(proc, PROTO_UDP, 6_000)
        for i in range(4):
            tb.sim.after(1_000, tb.peer.send_udp, 9_000, 6_000, 100)
            tb.run_all()
        fp = tb.machine.fastpath
        assert fp.hits > 0
        assert ct.expire_older_than(tb.sim.now + 1) == 1
        assert fp.expired > 0
        # The flow's next packet is a clean miss, not a stale hit.
        hits0 = fp.hits
        tb.peer.send_udp(9_000, 6_000, 100)
        tb.run_all()
        assert fp.metrics.counter("miss.kopi_rx").value > 0
        assert fp.hits >= hits0  # subsequent reinstall serves hits again


class TestEndToEnd:
    def test_kernel_path_steady_state_hit_rate(self):
        on = run_plane_point(KernelPathDataplane, True, count=96)
        off = run_plane_point(KernelPathDataplane, False, count=96)
        assert on["hit_rate"] > 0.9
        # Measurably fewer slow-path filter evaluations per packet...
        assert on["filter_evals"] < off["filter_evals"] / 10
        # ...and identical delivery (verdicts unchanged).
        assert on["delivered"] == off["delivered"]

    def test_sidecar_verdicts_unchanged(self):
        on = run_plane_point(SidecarDataplane, True, count=64)
        off = run_plane_point(SidecarDataplane, False, count=64)
        assert on["delivered"] == off["delivered"]
        assert on["hit_rate"] > 0.9

    def test_fastpath_run_is_deterministic(self):
        a = run_plane_point(NormanOS, True, count=64)
        b = run_plane_point(NormanOS, True, count=64)
        assert a == b


# --- the correctness property -------------------------------------------

#: Six flows; owner pid/uid vary so owner rules split them.
_FLOW_PORTS = [(5_000 + i, 9_000 + (i % 2)) for i in range(6)]
_OWNERS = [(100 + i, 7 if i % 2 else 3, "app") for i in range(6)]

#: Candidate rules an operator toggles mid-stream: header matches that hit
#: some flows, plus an owner match (the §2 port-partitioning shape).
_RULES = [
    NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=9_000),
    NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, sport=5_003),
    NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, uid_owner=7),
]

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.integers(0, len(_FLOW_PORTS) - 1)),
        st.tuples(st.just("toggle"), st.integers(0, len(_RULES) - 1)),
        st.tuples(st.just("expire"), st.integers(0, len(_FLOW_PORTS) - 1)),
    ),
    min_size=1,
    max_size=60,
)


class TestHitVerdictProperty:
    @given(ops=_OPS)
    @settings(max_examples=120, deadline=None)
    def test_hit_equals_slow_path_walk_at_stamped_version(self, ops):
        """Randomized interleavings of sends, policy commits, and
        conntrack-style expiries: whenever the cache serves a hit, the
        entry is epoch-valid, so the *current* table is the stamped
        version — and a slow-path walk of it must yield the same verdict.
        """
        engine, table = _engine_with_table()
        fp = FlowFastPath(engine, FASTPATH_COSTS)
        installed = [False] * len(_RULES)
        sends = 0
        for op, i in ops:
            if op == "send":
                sends += 1
                pkt = _flow(*_FLOW_PORTS[i])
                owner = _OWNERS[i]
                ft = pkt.five_tuple
                entry = fp.lookup(CHAIN_OUTPUT, ft, owner[0])
                expect, _ = table.evaluate(CHAIN_OUTPUT, pkt, owner)
                if entry is not None:
                    assert entry.verdict == expect
                    assert entry.versions == engine.version_vector()
                else:
                    fp.install(
                        CHAIN_OUTPUT, ft, owner[0],
                        verdict=expect, points=("netfilter",),
                    )
            elif op == "toggle":
                if installed[i]:
                    table.delete(_RULES[i])
                else:
                    table.append(_RULES[i])
                installed[i] = not installed[i]
            else:  # expire
                fp.evict_flow(_flow(*_FLOW_PORTS[i]).five_tuple)
        assert fp.hits + fp.misses == sends
