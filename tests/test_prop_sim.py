"""Property-based tests on the simulation engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


class TestEngineOrdering:
    @given(delays=st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.after(d, lambda d=d: fired.append((sim.now, d)))
        sim.run()
        times = [t for t, _d in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)
        for t, d in fired:
            assert t == d  # each fired exactly at its scheduled time

    @given(delays=st.lists(st.integers(0, 100), min_size=2, max_size=60))
    @settings(max_examples=100)
    def test_ties_fifo(self, delays):
        """Events at the same timestamp fire in insertion order."""
        sim = Simulator()
        fired = []
        for i, d in enumerate(delays):
            sim.after(d, lambda i=i: fired.append(i))
        sim.run()
        # Stable sort of indices by delay must equal the fire order.
        expected = [i for i, _d in sorted(enumerate(delays), key=lambda x: x[1])]
        assert fired == expected

    @given(
        delays=st.lists(st.integers(1, 1_000), min_size=1, max_size=50),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=50),
    )
    @settings(max_examples=100)
    def test_cancelled_events_never_fire(self, delays, cancel_mask):
        sim = Simulator()
        fired = []
        handles = []
        for i, d in enumerate(delays):
            handles.append(sim.after(d, lambda i=i: fired.append(i)))
        for handle, cancel in zip(handles, cancel_mask):
            if cancel:
                handle.cancel()
        sim.run()
        cancelled = {i for i, c in enumerate(zip(handles, cancel_mask)) if c[1]}
        assert set(fired).isdisjoint(cancelled)
        assert len(fired) == len(delays) - len(
            [1 for h, c in zip(handles, cancel_mask) if c]
        )

    @given(
        first=st.lists(st.integers(0, 500), min_size=1, max_size=30),
        nested=st.integers(0, 500),
    )
    @settings(max_examples=50)
    def test_nested_scheduling_preserves_order(self, first, nested):
        """Events scheduled from inside callbacks still fire in time order."""
        sim = Simulator()
        fired = []

        def outer(d):
            fired.append(sim.now)
            sim.after(nested, lambda: fired.append(sim.now))

        for d in first:
            sim.after(d, outer, d)
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == 2 * len(first)
