"""Receive-Side Scaling: the Toeplitz hash.

This is the real Microsoft Toeplitz algorithm (with the standard verification
key), not a stand-in — the debugging scenario of §2 has the administrator
carve a NIC into "virtual interfaces" with RSS custom hashing, and the NIC
models steer flows to queues with this hash.
"""

from __future__ import annotations

from ..errors import PacketError
from .flow import FiveTuple

# The de-facto standard key from Microsoft's RSS verification suite.
DEFAULT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


def toeplitz_hash(data: bytes, key: bytes = DEFAULT_RSS_KEY) -> int:
    """32-bit Toeplitz hash of ``data`` under ``key``.

    For each set bit of the input (MSB first), XOR in the 32-bit window of
    the key starting at that bit position.
    """
    if len(key) * 8 < len(data) * 8 + 32:
        raise PacketError(
            f"RSS key too short: {len(key)} bytes for {len(data)} bytes of input"
        )
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    for i in range(len(data) * 8):
        byte = data[i // 8]
        if byte & (0x80 >> (i % 8)):
            window = (key_int >> (key_bits - 32 - i)) & 0xFFFFFFFF
            result ^= window
    return result


def _hash_input(flow: FiveTuple) -> bytes:
    """Canonical RSS input: src ip, dst ip, src port, dst port."""
    return (
        flow.src_ip.to_bytes()
        + flow.dst_ip.to_bytes()
        + flow.sport.to_bytes(2, "big")
        + flow.dport.to_bytes(2, "big")
    )


def rss_queue(flow: FiveTuple, n_queues: int, key: bytes = DEFAULT_RSS_KEY) -> int:
    """Queue index for a flow: Toeplitz hash reduced over an indirection
    table of size ``n_queues`` (modulo, as with a uniform table)."""
    if n_queues < 1:
        raise PacketError(f"need at least one queue, got {n_queues}")
    return toeplitz_hash(_hash_input(flow), key) % n_queues
