"""pcap writer round trips and traffic pattern generators."""

import itertools

import pytest

from repro import units
from repro.errors import SimulationError
from repro.net import (
    IPv4Address,
    MacAddress,
    PcapWriter,
    cbr_arrivals,
    make_arp_request,
    make_udp,
    onoff_arrivals,
    poisson_arrivals,
)
from repro.net.pcap import LINKTYPE_ETHERNET, read_pcap_summary
from repro.sim import make_rng

MAC_A = MacAddress.from_index(1)
MAC_B = MacAddress.from_index(2)
IP_A = IPv4Address.parse("10.0.0.1")
IP_B = IPv4Address.parse("10.0.0.2")


class TestPcapWriter:
    def test_roundtrip_counts_and_linktype(self):
        w = PcapWriter()
        w.write(1_000, make_udp(MAC_A, MAC_B, IP_A, IP_B, 1, 2, 100))
        w.write(2_000, make_arp_request(MAC_A, IP_A, IP_B))
        data = w.to_bytes()
        count, linktype = read_pcap_summary(data)
        assert count == 2
        assert linktype == LINKTYPE_ETHERNET
        assert w.count == 2

    def test_snaplen_truncates_stored_bytes(self):
        w = PcapWriter(snaplen=60)
        w.write(0, make_udp(MAC_A, MAC_B, IP_A, IP_B, 1, 2, 1_000))
        data = w.to_bytes()
        count, _ = read_pcap_summary(data)
        assert count == 1
        assert len(data) == 24 + 16 + 60

    def test_timestamp_encoding(self):
        w = PcapWriter()
        w.write(3 * units.SEC + 250 * units.US, make_arp_request(MAC_A, IP_A, IP_B))
        data = w.to_bytes()
        ts_sec = int.from_bytes(data[24:28], "big")
        ts_usec = int.from_bytes(data[28:32], "big")
        assert (ts_sec, ts_usec) == (3, 250)

    def test_save_to_file(self, tmp_path):
        w = PcapWriter()
        w.write(0, make_arp_request(MAC_A, IP_A, IP_B))
        path = tmp_path / "capture.pcap"
        w.save(str(path))
        count, _ = read_pcap_summary(path.read_bytes())
        assert count == 1

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            read_pcap_summary(b"not a pcap")


class TestCbr:
    def test_constant_gap_matches_rate(self):
        arrivals = list(cbr_arrivals(units.GBPS, payload_bytes=1_000, count=5))
        assert len(arrivals) == 5
        assert all(gap == 8_000 and size == 1_000 for gap, size in arrivals)

    def test_infinite_stream(self):
        stream = cbr_arrivals(units.GBPS, 100)
        assert len(list(itertools.islice(stream, 1_000))) == 1_000

    def test_validation(self):
        with pytest.raises(SimulationError):
            next(cbr_arrivals(0, 100))


class TestPoisson:
    def test_mean_interarrival_close_to_rate(self):
        rng = make_rng(1, "poisson")
        gaps = [g for g, _ in poisson_arrivals(rng, rate_pps=1_000_000, payload_bytes=64, count=20_000)]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1_000, rel=0.05)  # 1M pps -> 1000 ns mean

    def test_deterministic_under_seed(self):
        a = list(poisson_arrivals(make_rng(7, "x"), 1e6, 64, count=100))
        b = list(poisson_arrivals(make_rng(7, "x"), 1e6, 64, count=100))
        assert a == b

    def test_validation(self):
        with pytest.raises(SimulationError):
            next(poisson_arrivals(make_rng(0), 0, 64))


class TestOnOff:
    def test_burst_structure(self):
        rng = make_rng(3, "onoff")
        arrivals = list(
            onoff_arrivals(rng, burst_pkts=4, burst_gap_ns=10, idle_mean_ns=1_000_000,
                           payload_bytes=200, bursts=3)
        )
        assert len(arrivals) == 12
        # Within a burst, gaps are exactly burst_gap_ns.
        gaps = [g for g, _ in arrivals]
        assert gaps[1] == gaps[2] == gaps[3] == 10
        assert gaps[0] > 10  # idle period before burst

    def test_validation(self):
        with pytest.raises(SimulationError):
            next(onoff_arrivals(make_rng(0), 0, 1, 1, 64))
