"""In-switch L4 load balancing (``CostModel.cluster_lb``).

The paper's sharpest version of "the dataplane moved out of the kernel" is
the dataplane moving *off the host entirely*: a P4-style switch that
steers connections to backends (the ``load_balance.p4`` scenario — VIP →
nhop rewrite, controller-driven updates). This module is that stage for
our :class:`~repro.net.switch.L2Switch`, built so steering state keeps the
properties the interposition plane (PR 3) guarantees everywhere else:

* **Steering is policy.** The balancer owns an
  :class:`~repro.interpose.InterpositionPoint` on a switch-control
  :class:`~repro.interpose.PolicyEngine`; VIP installs and ring changes
  are synchronous commits (``record_update``), per-flow re-steers are
  *asynchronous* commits (``begin_commit`` + a completion signal modeling
  the nhop-table MMIO write). Packets forwarded inside the window are
  evaluated against the complete **old** table and tallied as stale
  evals — never against a half-installed rule.
* **Changes demote first.** Before any steering change takes effect the
  balancer fires :meth:`~repro.net.switch.L2Switch.notify_state_change`,
  so rack-bound fluid flows drop to packet-exact against the pre-change
  switch, exactly like a MAC move or match-action rule install.

Mechanically the balancer is an L2 nhop stage: each VIP owns a *virtual
MAC* (a distinct OUI, never learned by the switch); hosts resolve the VIP
to that MAC via their neighbor tables, and :meth:`L4LoadBalancer.steer`
rewrites the destination MAC to the chosen backend's between the switch's
source-learn and destination-lookup. The IP header is untouched — every
backend answers for the VIP (DSR-style), which is what lets a migrated
flow keep its five-tuple identity on the new machine.

Backend choice is a consistent-hash ring (:class:`HashRing`,
``lb_vnodes`` virtual nodes per backend, CRC32 — deterministic across
processes, unlike salted ``hash()``) with per-flow exact-match overrides
layered on top: an override is how a live migration re-steers one flow
without disturbing the ring's assignment of everything else.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PolicyError
from ..interpose import InterpositionPoint, PolicyEngine
from ..net.addresses import IPv4Address, MacAddress
from ..net.flow import FiveTuple
from ..net.headers import EthernetHeader
from ..net.packet import Packet
from ..sim import MetricSet, Signal

#: OUI for VIP virtual MACs — disjoint from host MACs
#: (:meth:`MacAddress.from_index` defaults to ``02:00:00``), so a VIP MAC
#: can never collide with, or be learned as, a real port.
VIP_OUI = 0x02_00_01


def vip_mac(index: int) -> MacAddress:
    """The virtual MAC answering for VIP number ``index``."""
    return MacAddress.from_index(index, oui=VIP_OUI)


class HashRing:
    """Consistent hashing over backend names.

    Each backend contributes ``vnodes`` points at
    ``crc32("{name}#{i}")``; a key maps to the first point clockwise of
    ``crc32(key)``. CRC32 keeps the mapping stable across processes and
    runs (Python's ``hash`` is salted), which the experiments' parity
    legs depend on.
    """

    def __init__(self, vnodes: int = 32):
        if vnodes < 1:
            raise PolicyError(f"need at least one vnode, got {vnodes}")
        self.vnodes = vnodes
        self._names: List[str] = []
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []

    def _rebuild(self) -> None:
        points = [
            (zlib.crc32(f"{name}#{i}".encode()) & 0xFFFFFFFF, name)
            for name in self._names
            for i in range(self.vnodes)
        ]
        points.sort()
        self._points = points
        self._hashes = [h for h, _name in points]

    def add(self, name: str) -> None:
        if name in self._names:
            raise PolicyError(f"backend {name!r} already on the ring")
        self._names.append(name)
        self._rebuild()

    def remove(self, name: str) -> None:
        try:
            self._names.remove(name)
        except ValueError:
            raise PolicyError(f"backend {name!r} not on the ring")
        self._rebuild()

    def lookup(self, key: str) -> str:
        if not self._points:
            raise PolicyError("hash ring has no backends")
        h = zlib.crc32(key.encode()) & 0xFFFFFFFF
        i = bisect_right(self._hashes, h)
        if i == len(self._points):
            i = 0
        return self._points[i][1]

    @property
    def backends(self) -> List[str]:
        return list(self._names)

    def __len__(self) -> int:
        return len(self._names)


class VirtualService:
    """One VIP: its virtual MAC, its ring of backends, and per-backend
    steering counts."""

    __slots__ = ("ip", "mac", "ring", "steered_by_backend")

    def __init__(self, ip: IPv4Address, mac: MacAddress, ring: HashRing):
        self.ip = ip
        self.mac = mac
        self.ring = ring
        self.steered_by_backend: Dict[str, int] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualService {self.ip} backends={self.ring.backends}>"


class L4LoadBalancer:
    """The switch's VIP → backend nhop stage.

    Hot path (:meth:`steer`): one dict probe per frame decides whether the
    destination MAC is a VIP; non-VIP frames cost nothing beyond that
    probe and are forwarded untouched (with ``cluster_lb`` off the stage
    is never even attached, keeping the seed byte-identical). VIP frames
    are counted as evaluations of the steering point — so an in-flight
    re-steer commit's stale-eval tally is exact — and re-written to the
    chosen backend's MAC.
    """

    def __init__(self, sim, switch, costs, name: str = "lb0"):
        self.sim = sim
        self.switch = switch
        self.costs = costs
        #: Switch-control engine: steering commits version/epoch here, not
        #: on any host's engine — the switch is its own policy domain.
        self.engine = PolicyEngine(sim)
        self.point = self.engine.register(InterpositionPoint(
            name="lb_steering", plane="switch", mechanism="match_action",
            install_latency_ns=costs.table_update_ns, target=self,
        ))
        self._vips: Dict[IPv4Address, VirtualService] = {}
        self._by_mac: Dict[MacAddress, VirtualService] = {}
        self._backends: Dict[str, MacAddress] = {}
        self._overrides: Dict[FiveTuple, str] = {}
        self.metrics = MetricSet(name)
        self._c_steered = self.metrics.counter("steered")
        self._c_resteers = self.metrics.counter("resteers")
        switch.attach_balancer(self)

    # -- control plane -----------------------------------------------------

    def register_backend(self, name: str, mac: MacAddress) -> None:
        """Announce a backend machine (name → MAC). Pure registry — a
        backend only receives VIP traffic once a VIP's ring includes it."""
        if name in self._backends:
            raise PolicyError(f"backend {name!r} already registered")
        self._backends[name] = mac

    def add_vip(self, ip: IPv4Address, mac: MacAddress,
                backends: Sequence[str]) -> VirtualService:
        """Install a VIP and its backend ring — one synchronous policy
        commit (the switch-state change is announced first, so any bound
        fluid flow demotes before the new steering exists)."""
        if ip in self._vips:
            raise PolicyError(f"VIP {ip} already installed")
        for name in backends:
            if name not in self._backends:
                raise PolicyError(f"unknown backend {name!r} for VIP {ip}")
        ring = HashRing(self.costs.lb_vnodes)
        for name in backends:
            ring.add(name)
        vs = VirtualService(ip, mac, ring)
        self.switch.notify_state_change(("vip", ip))
        self._vips[ip] = vs
        self._by_mac[mac] = vs
        self.point.record_update()
        return vs

    def begin_resteer(self, flow: FiveTuple, backend: str) -> Signal:
        """Stage a per-flow override (``flow`` → ``backend``) and submit it
        as an asynchronous policy commit. The override is **invisible**
        until the returned signal fires: frames forwarded meanwhile use
        the complete old table (and count as stale evals on the steering
        point). On success the switch is notified *before* the override
        lands; on failure the old steering simply keeps running. The
        caller fires the signal (usually after
        ``costs.table_update_ns`` — see :meth:`commit_resteer`)."""
        if backend not in self._backends:
            raise PolicyError(f"unknown backend {backend!r}")
        if self.vip_for(flow) is None:
            raise PolicyError(f"flow {flow} is not VIP-steered")
        done = Signal(f"lb.resteer.{flow}")

        def _apply(sig: Signal) -> None:
            if sig.failed:
                return
            self.switch.notify_state_change(("resteer", flow))
            self._overrides[flow] = backend
            self._c_resteers.inc()

        done.add_callback(_apply)
        self.point.begin_commit(done)
        return done

    def commit_resteer(self, flow: FiveTuple, backend: str) -> Signal:
        """:meth:`begin_resteer` plus the usual completion schedule: the
        nhop-table write lands after ``table_update_ns``."""
        done = self.begin_resteer(flow, backend)
        self.sim.after(self.costs.table_update_ns, done.succeed, True)
        return done

    # -- decision surface (no counters) ------------------------------------

    def vip_for(self, flow: FiveTuple) -> Optional[VirtualService]:
        return self._vips.get(flow.dst_ip)

    def backend_for(self, flow: FiveTuple) -> Optional[str]:
        """The backend this flow steers to right now (override-aware).
        Pure read — the migration coordinator and tests use it."""
        vs = self._vips.get(flow.dst_ip)
        if vs is None:
            return None
        override = self._overrides.get(flow)
        if override is not None:
            return override
        return vs.ring.lookup(str(flow))

    # -- datapath ----------------------------------------------------------

    def steer(self, pkt: Packet) -> Optional[Packet]:
        """Called by the switch between source-learn and destination
        lookup. Returns the re-written frame for VIP traffic, else None
        (not ours — forward normally)."""
        vs = self._by_mac.get(pkt.eth.dst)
        if vs is None:
            return None
        ft = pkt.five_tuple
        if ft is None:
            return None
        backend = self._overrides.get(ft)
        if backend is None:
            backend = vs.ring.lookup(str(ft))
        self.point.record_eval(hit=True)
        self._c_steered.inc()
        vs.steered_by_backend[backend] = \
            vs.steered_by_backend.get(backend, 0) + 1
        new = Packet(
            eth=EthernetHeader(dst=self._backends[backend], src=pkt.eth.src,
                               ethertype=pkt.eth.ethertype),
            ipv4=pkt.ipv4, l4=pkt.l4, payload_len=pkt.payload_len,
        )
        new.meta = pkt.meta  # the rewrite preserves attribution
        return new

    # -- observability -----------------------------------------------------

    @property
    def overrides(self) -> Dict[FiveTuple, str]:
        return dict(self._overrides)

    def vips(self) -> List[VirtualService]:
        return list(self._vips.values())

    def commit_stats(self) -> Dict[str, object]:
        """Steering-commit accounting for the report: how many commits,
        their install-latency distribution, and how many packets were
        evaluated against an old table while a commit was in flight."""
        hist = self.point.metrics.histogram("install_ns")
        history = self.engine.commits_for(self.point.name)
        return {
            "commits": len(history),
            "resteers": self._c_resteers.value,
            "steered": self._c_steered.value,
            "stale_evals": sum(c.stale_evals for c in history),
            "install_ns": hist.summary() if hist.count else {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<L4LoadBalancer vips={len(self._vips)} "
                f"backends={len(self._backends)} "
                f"overrides={len(self._overrides)}>")
