"""Counters, histograms, time series, rate meters."""

import pytest

from repro import units
from repro.sim import Counter, Histogram, MetricSet, RateMeter, TimeSeries


class TestCounter:
    def test_increments(self):
        c = Counter("pkts")
        c.inc()
        c.inc(9)
        assert c.value == 10
        assert int(c) == 10

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("lat")
        h.extend([10, 20, 30, 40])
        assert h.count == 4
        assert h.mean == 25
        assert h.minimum == 10
        assert h.maximum == 40

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        h.extend(range(1, 101))
        assert h.percentile(50) == 50
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100
        assert h.percentile(1) == 1

    def test_percentile_interleaved_with_observation(self):
        h = Histogram()
        h.observe(5)
        assert h.p50 == 5
        h.observe(1)
        assert h.p50 == 1  # re-sorts after new sample

    def test_empty_histogram_is_zero(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.p99 == 0.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)


class TestTimeSeries:
    def test_records_and_window_mean(self):
        ts = TimeSeries("depth")
        ts.record(0, 1.0)
        ts.record(10, 3.0)
        ts.record(20, 5.0)
        assert ts.last == 5.0
        assert ts.window_mean(0, 10) == 2.0
        assert len(ts) == 3

    def test_rejects_time_travel(self):
        ts = TimeSeries()
        ts.record(10, 1.0)
        with pytest.raises(ValueError):
            ts.record(5, 2.0)


class TestRateMeter:
    def test_average_rate(self):
        m = RateMeter("rx")
        m.record(0, 0)
        m.record(units.SEC, 125_000_000)  # 1 Gbit over 1 second
        assert m.rate_bps() == pytest.approx(units.GBPS)

    def test_explicit_end_time(self):
        m = RateMeter()
        m.record(0, 125_000_000)
        assert m.rate_bps(end_ns=2 * units.SEC) == pytest.approx(units.GBPS / 2)

    def test_empty_meter(self):
        assert RateMeter().rate_bps() == 0.0


class TestMetricSet:
    def test_lazy_creation_and_identity(self):
        ms = MetricSet("nic0")
        assert ms.counter("rx") is ms.counter("rx")
        assert ms.histogram("lat") is ms.histogram("lat")
        assert ms.series("depth") is ms.series("depth")
        assert ms.meter("bytes") is ms.meter("bytes")

    def test_snapshot_qualifies_names(self):
        ms = MetricSet("nic0")
        ms.counter("rx").inc(3)
        ms.histogram("lat").observe(7)
        snap = ms.snapshot()
        assert snap["nic0.rx"] == 3.0
        assert snap["nic0.lat.mean"] == 7.0
