"""The syscall boundary.

Every user/kernel crossing in the simulation is charged here, so the "virtual
data movement" overheads of §1 are visible in one counter. ``invoke`` charges
the crossing plus in-kernel work on the caller's core.

Payload movement across the boundary goes through :meth:`tx_payload_cost` /
:meth:`rx_payload_cost`, which pick between the classic per-byte copy and the
zero-copy elision paths (``CostModel.tx_zerocopy`` / ``rx_zerocopy``) and
record either outcome in the machine's :class:`~repro.host.copies.CopyLedger`.
"""

from __future__ import annotations

from typing import Optional

from ..config import CostModel
from ..errors import InvalidSyscall
from ..host.copies import LAYER_KERNEL_RX, LAYER_KERNEL_TX, CopyLedger
from ..host.cpu import CpuSet
from ..sim import MetricSet, Signal, Simulator
from ..trace import STAGE_COPY, STAGE_SYSCALL, charge
from .process import Process


class SyscallLayer:
    """Charges syscall entry/exit and counts crossings per syscall name."""

    def __init__(
        self,
        sim: Simulator,
        cpus: CpuSet,
        costs: CostModel,
        ledger: Optional[CopyLedger] = None,
        tracer=None,
    ):
        self.sim = sim
        self.cpus = cpus
        self.costs = costs
        self.metrics = MetricSet("syscall")
        self.ledger = ledger if ledger is not None else CopyLedger()
        self.tracer = tracer

    def _attr(self, stage: str, ns: int, ctx, label: str = "") -> int:
        """Attribute ``ns`` to ``stage``: on the packet's context when there
        is one, else as loose (message-level) work on the tracer."""
        if ctx is not None:
            charge(stage, ns, ctx, label=label)
        elif self.tracer is not None:
            self.tracer.loose(stage, ns, label=label)
        return ns

    def invoke(self, proc: Process, name: str, work_ns: int = 0, ctx=None) -> Signal:
        """Run syscall ``name`` for ``proc``: entry/exit cost + ``work_ns``
        of kernel work, serialized on the process's core.

        The crossing cost itself is attributed here (``syscall`` stage);
        ``work_ns`` is attributed by the caller, stage by stage, before it
        is summed into this one core-execute event."""
        if work_ns < 0:
            raise InvalidSyscall(f"negative syscall work: {work_ns}")
        self.metrics.counter("total").inc()
        self.metrics.counter(name).inc()
        self._attr(STAGE_SYSCALL, self.costs.syscall_ns, ctx, label=name)
        core = self.cpus[proc.core_id]
        return core.execute(self.costs.syscall_ns + work_ns, label=f"sys_{name}", ctx=ctx)

    def record_batched(self, n_msgs: int) -> None:
        """Account messages moved by one batched crossing (sendmmsg/
        recvmmsg): the gap between ``batched_msgs`` and ``total`` is
        exactly the §1 virtual-movement cost that batching amortized."""
        self.metrics.counter("batched_msgs").inc(n_msgs)

    def copy_to_kernel(self, proc: Process, nbytes: int, ctx=None) -> int:
        """Cost of copying a user buffer into the kernel (charged by caller)."""
        self.metrics.counter("copy_in_bytes").inc(max(0, nbytes))
        cost = self.costs.copy_ns(nbytes)
        self.ledger.charge(LAYER_KERNEL_TX, max(0, nbytes), cost)
        return self._attr(STAGE_COPY, cost, ctx, label="copy_in")

    def copy_to_user(self, proc: Process, nbytes: int, ctx=None) -> int:
        """Cost of copying kernel data out to userspace."""
        self.metrics.counter("copy_out_bytes").inc(max(0, nbytes))
        cost = self.costs.copy_ns(nbytes)
        self.ledger.charge(LAYER_KERNEL_RX, max(0, nbytes), cost)
        return self._attr(STAGE_COPY, cost, ctx, label="copy_out")

    # --- payload movement with optional copy elision --------------------------

    def tx_payload_cost(self, proc: Process, nbytes: int, ctx=None) -> int:
        """Cost of making ``nbytes`` of user payload visible to the stack on
        the TX path: a user->kernel copy, or — with ``tx_zerocopy`` on — a
        page pin + completion notification (MSG_ZEROCOPY)."""
        if not self.costs.tx_zerocopy:
            return self.copy_to_kernel(proc, nbytes, ctx=ctx)
        cost = self.costs.zc_tx_ns(nbytes)
        self.metrics.counter("tx_zc_ops").inc()
        self.metrics.counter("tx_zc_elided_bytes").inc(max(0, nbytes))
        self.ledger.elide(LAYER_KERNEL_TX, max(0, nbytes), cost)
        return self._attr(STAGE_COPY, cost, ctx, label="zc_tx")

    def rx_payload_cost(self, proc: Process, nbytes: int, ctx=None) -> int:
        """Cost of landing ``nbytes`` of received payload in userspace: a
        kernel->user copy, or — with ``rx_zerocopy`` on — a registered-buffer
        handoff (io_uring-style)."""
        if not self.costs.rx_zerocopy:
            return self.copy_to_user(proc, nbytes, ctx=ctx)
        cost = self.costs.zc_rx_ns(nbytes)
        self.metrics.counter("rx_zc_ops").inc()
        self.metrics.counter("rx_zc_elided_bytes").inc(max(0, nbytes))
        self.ledger.elide(LAYER_KERNEL_RX, max(0, nbytes), cost)
        return self._attr(STAGE_COPY, cost, ctx, label="zc_rx")

    @property
    def total_syscalls(self) -> int:
        return self.metrics.counter("total").value
