"""Network substrate: headers, packets, links, switching, RSS, pcap, traffic.

Everything above the host: real (serializable) protocol headers so that the
tcpdump analogue writes genuine pcap bytes, a Toeplitz RSS hash, rate-limited
links, an L2 switch, and an in-network match-action interposer used as the
"interpose in the network" comparator of §2.
"""

from .addresses import BROADCAST_MAC, IPv4Address, MacAddress
from .checksum import internet_checksum
from .flow import FiveTuple
from .headers import (
    ARP_OP_REPLY,
    ARP_OP_REQUEST,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    PROTO_TCP,
    PROTO_UDP,
    ArpHeader,
    EthernetHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)
from .link import Link
from .packet import Packet, make_arp_request, make_tcp, make_udp
from .pcap import PcapWriter
from .rss import DEFAULT_RSS_KEY, rss_queue, toeplitz_hash
from .switch import L2Switch, MatchAction, NetworkInterposer
from .traffic import cbr_arrivals, onoff_arrivals, poisson_arrivals

__all__ = [
    "ARP_OP_REPLY",
    "ARP_OP_REQUEST",
    "BROADCAST_MAC",
    "DEFAULT_RSS_KEY",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "ArpHeader",
    "EthernetHeader",
    "FiveTuple",
    "IPv4Address",
    "Ipv4Header",
    "L2Switch",
    "Link",
    "MacAddress",
    "MatchAction",
    "NetworkInterposer",
    "Packet",
    "PcapWriter",
    "PROTO_TCP",
    "PROTO_UDP",
    "TcpHeader",
    "UdpHeader",
    "cbr_arrivals",
    "internet_checksum",
    "make_arp_request",
    "make_tcp",
    "make_udp",
    "onoff_arrivals",
    "poisson_arrivals",
    "rss_queue",
    "toeplitz_hash",
]
