"""DDIO-partitioned LLC model: structural and analytic."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.errors import ConfigError
from repro.host import AnalyticDdioModel, WayPartitionedCache

LINE = 64


def small_cache(sets=16, ways=4, ddio_ways=2):
    return WayPartitionedCache(sets=sets, ways=ways, ddio_ways=ddio_ways, line_bytes=LINE)


def addr(set_idx, tag, sets=16):
    """Byte address mapping to a given set with a distinct tag."""
    return (tag * sets + set_idx) * LINE


class TestGeometry:
    def test_capacity(self):
        c = small_cache()
        assert c.capacity_bytes == 16 * 4 * LINE
        assert c.ddio_capacity_bytes == 16 * 2 * LINE

    def test_from_costs_matches_model(self):
        c = WayPartitionedCache.from_costs(DEFAULT_COSTS)
        assert c.capacity_bytes == DEFAULT_COSTS.llc_size_bytes
        assert c.ddio_capacity_bytes == DEFAULT_COSTS.ddio_capacity_bytes

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            WayPartitionedCache(sets=0, ways=4, ddio_ways=1)
        with pytest.raises(ConfigError):
            WayPartitionedCache(sets=4, ways=4, ddio_ways=5)
        with pytest.raises(ConfigError):
            WayPartitionedCache(sets=4, ways=4, ddio_ways=1, line_bytes=48)


class TestDmaAllocation:
    def test_dma_fill_then_cpu_hit(self):
        c = small_cache()
        assert c.dma_write(addr(0, 0)) is False  # fill
        assert c.cpu_read(addr(0, 0)) is True  # DDIO made it LLC-resident
        assert c.stats["cpu_hits"] == 1

    def test_dma_write_hit_updates_in_place(self):
        c = small_cache()
        c.dma_write(addr(0, 0))
        assert c.dma_write(addr(0, 0)) is True
        assert c.stats["dma_hits"] == 1

    def test_dma_capped_at_ddio_ways_per_set(self):
        c = small_cache(ddio_ways=2)
        c.dma_write(addr(0, 0))
        c.dma_write(addr(0, 1))
        c.dma_write(addr(0, 2))  # third DMA line in one set -> evicts oldest
        assert c.stats["ddio_evictions"] == 1
        assert c.cpu_read(addr(0, 0)) is False  # tag 0 was evicted
        assert c.cpu_read(addr(0, 2)) is True

    def test_dma_does_not_evict_cpu_lines_while_under_cap(self):
        c = small_cache(ways=4, ddio_ways=2)
        c.cpu_read(addr(0, 10))  # miss-fill a CPU line
        c.dma_write(addr(0, 0))
        c.dma_write(addr(0, 1))
        c.dma_write(addr(0, 2))  # evicts a DDIO line, not the CPU line
        assert c.cpu_read(addr(0, 10)) is True


class TestCpuPath:
    def test_cpu_lru_eviction_when_set_full(self):
        c = small_cache(ways=2, ddio_ways=1)
        c.cpu_read(addr(0, 0))
        c.cpu_read(addr(0, 1))
        c.cpu_read(addr(0, 2))  # set full -> evict tag 0
        assert c.stats["cpu_evictions"] >= 1
        assert c.cpu_read(addr(0, 0)) is False

    def test_read_refreshes_lru(self):
        c = small_cache(ways=2, ddio_ways=1)
        c.cpu_read(addr(0, 0))
        c.cpu_read(addr(0, 1))
        c.cpu_read(addr(0, 0))  # refresh tag 0
        c.cpu_read(addr(0, 2))  # should evict tag 1, not 0
        assert c.cpu_read(addr(0, 0)) is True

    def test_miss_rate(self):
        c = small_cache()
        c.cpu_read(addr(0, 0))  # miss
        c.cpu_read(addr(0, 0))  # hit
        assert c.cpu_miss_rate() == 0.5


class TestDdioThrashing:
    """The §5 mechanism in miniature: working set <= DDIO slice -> all hits;
    working set > DDIO slice -> reads start missing."""

    def _run_working_set(self, n_lines, rounds=4):
        c = small_cache(sets=8, ways=4, ddio_ways=2)  # DDIO slice = 16 lines
        addrs = [i * LINE for i in range(n_lines)]
        c.reset_stats()
        for _ in range(rounds):
            # NIC delivers a batch across all connections, *then* the app
            # drains it — reuse distance grows with the working set.
            for a in addrs:
                c.dma_write(a)
            for a in addrs:
                c.cpu_read(a)
        return c

    def test_fitting_working_set_all_hits(self):
        c = self._run_working_set(n_lines=16)
        assert c.cpu_miss_rate() == 0.0

    def test_oversized_working_set_misses(self):
        c = self._run_working_set(n_lines=64)
        assert c.cpu_miss_rate() > 0.3

    def test_miss_rate_monotone_in_working_set(self):
        rates = [self._run_working_set(n).cpu_miss_rate() for n in (16, 32, 64, 128)]
        assert rates == sorted(rates)

    def test_reset_stats(self):
        c = self._run_working_set(64)
        c.reset_stats()
        assert sum(c.stats.values()) == 0


class TestAnalyticModel:
    def test_hit_rate_saturates_at_one(self):
        m = AnalyticDdioModel(DEFAULT_COSTS)
        assert m.hit_rate(0) == 1.0
        assert m.hit_rate(DEFAULT_COSTS.ddio_capacity_bytes) == 1.0

    def test_hit_rate_decays(self):
        m = AnalyticDdioModel(DEFAULT_COSTS)
        cap = DEFAULT_COSTS.ddio_capacity_bytes
        assert m.hit_rate(2 * cap) == pytest.approx(0.5)
        assert m.hit_rate(4 * cap) == pytest.approx(0.25)

    def test_read_cost_between_hit_and_dram(self):
        m = AnalyticDdioModel(DEFAULT_COSTS)
        cost_hit = m.read_cost_ns(1, lines=10)
        cost_miss = m.read_cost_ns(10**12, lines=10)
        assert cost_hit == 10 * DEFAULT_COSTS.llc_hit_ns
        assert cost_miss == pytest.approx(10 * DEFAULT_COSTS.dram_ns, rel=0.01)
        mid = m.read_cost_ns(2 * DEFAULT_COSTS.ddio_capacity_bytes, lines=10)
        assert cost_hit < mid < cost_miss
