#!/usr/bin/env python3
"""The rest of "everything the kernel does today" (§3), on the NIC:
connection tracking, source NAT, per-cgroup rate policing, an
operator-written overlay program, and the `ss` visibility that makes SRAM
exhaustion diagnosable.

Run:  python examples/smartnic_features.py
"""

from repro import units
from repro.core import NormanOS
from repro.dataplanes import Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.net import IPv4Address, PROTO_UDP
from repro.sim import SimProcess
from repro.tools import Ss, Tc

PUBLIC_IP = IPv4Address.parse("192.0.2.1")


def main() -> None:
    tb = Testbed(NormanOS)
    control = tb.dataplane.control

    # --- conntrack + masquerade -------------------------------------------
    ct = control.enable_conntrack()
    control.enable_masquerade(PUBLIC_IP)

    app = tb.spawn("app", "bob", core_id=1)
    ep = tb.dataplane.open_endpoint(app, PROTO_UDP, 6000)

    def client():
        yield ep.connect(PEER_IP, 9000)
        yield ep.send(200)
        msg = yield ep.recv(blocking=True)
        print(f"  reply received through NAT: {msg[0]} bytes")

    SimProcess(tb.sim, client())
    tb.run(until=1 * units.MS)
    wire = tb.peer.received[0]
    print("=== NAT (masquerade) ===")
    print(f"  internal flow: 10.0.0.1:6000 -> {PEER_IP}:9000")
    print(f"  on the wire:   {wire.ipv4.src}:{wire.l4.sport} -> "
          f"{wire.five_tuple.dst_ip}:{wire.five_tuple.dport}")
    tb.peer.send_udp(9000, wire.l4.sport, 64, dst_ip=PUBLIC_IP)
    tb.run_all()

    print("\n=== conntrack (on-NIC flow state) ===")
    for entry in ct.entries():
        print(f"  {entry.flow}  state={entry.state} pkts={entry.packets}")

    # --- rate policing -----------------------------------------------------
    print("\n=== tc police: cap /games at 8 Mbit/s ===")
    tb.kernel.cgroups.create("/games")
    game = tb.spawn("game", "bob", core_id=2)
    tb.kernel.cgroups.assign(game, "/games")
    game_ep = tb.dataplane.open_endpoint(game, PROTO_UDP, 6001)
    print(" ", Tc(tb.dataplane, tb.kernel)(
        "police add dev nic0 cgroup /games rate 8mbit burst 2000"))
    tb.run_all()
    before = len(tb.peer.received)

    def blaster():
        for _ in range(10):
            yield game_ep.send(958, dst=(PEER_IP, 9100))

    SimProcess(tb.sim, blaster())
    tb.run_all()
    through = len(tb.peer.received) - before
    policed = tb.dataplane.nic.metrics.counter("tx_policed").value
    print(f"  10 packets offered back-to-back: {through} passed, {policed} policed")

    # --- operator-written overlay program ------------------------------------
    print("\n=== custom overlay program: drop TTL < 5 on ingress ===")
    control.load_custom_rx_program(
        """
            ldf r0, ip.ttl
            jlt r0, 5, bad
            accept
        bad:
            drop
        """
    )
    tb.run_all()
    print("  loaded (verified, ~50 us, dataplane live throughout)")

    # --- ss: the operator's view --------------------------------------------
    print("\n=== ss (per-connection NIC state) ===")
    print(Ss(tb.dataplane, tb.kernel)())


if __name__ == "__main__":
    main()
