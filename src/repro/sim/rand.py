"""Seeded randomness helpers.

All stochastic behaviour in the simulator draws from RNGs created here so
that a single seed reproduces a whole experiment.
"""

from __future__ import annotations

import random
from typing import Optional


def make_rng(seed: Optional[int] = 0, stream: str = "") -> random.Random:
    """Create a deterministic RNG.

    ``stream`` derives independent substreams from one experiment seed, e.g.
    ``make_rng(seed, "arrivals")`` and ``make_rng(seed, "sizes")`` do not
    share state.
    """
    if seed is None:
        return random.Random()
    return random.Random(f"{seed}/{stream}")


def exponential_ns(rng: random.Random, mean_ns: float) -> int:
    """Exponentially distributed delay in whole nanoseconds (>= 1)."""
    if mean_ns <= 0:
        raise ValueError(f"mean must be positive, got {mean_ns}")
    return max(1, round(rng.expovariate(1.0 / mean_ns)))
