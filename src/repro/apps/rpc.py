"""Closed-loop RPC client measuring request latency."""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from ..net.addresses import IPv4Address
from ..dataplanes.testbed import PEER_IP, Testbed
from ..trace import STAGE_SCHED_WAKE
from .base import App


class RpcClient(App):
    """Request/response against an echoing peer; records RTT percentiles."""

    def __init__(
        self,
        testbed: Testbed,
        request_len: int = 128,
        count: int = 100,
        dst: Tuple[IPv4Address, int] = (PEER_IP, 9_100),
        think_ns: int = 0,
        polling: bool = False,
        **kwargs,
    ):
        super().__init__(testbed, **kwargs)
        self.request_len = request_len
        self.count = count
        self.dst = dst
        self.think_ns = think_ns
        self.polling = polling
        """Spin on non-blocking recv instead of sleeping — isolates the
        dataplane's latency from the blocking wake-up cost (the S1
        comparison needs both numbers)."""
        self.completed = 0

    def _await_reply(self) -> Generator:
        if not self.polling:
            return (yield self.ep.recv(blocking=True))
        from ..errors import WouldBlock

        core = self.tb.machine.cpus[self.proc.core_id]
        poll_ns = self.tb.machine.costs.poll_iteration_ns
        while True:
            try:
                return (yield self.ep.recv(blocking=False))
            except WouldBlock:
                yield core.execute(
                    self.tb.machine.tracer.loose(
                        STAGE_SCHED_WAKE, poll_ns, label="rpc_poll"
                    ),
                    "rpc_poll",
                )

    def run(self) -> Generator:
        yield self.ep.connect(self.dst[0], self.dst[1])
        for _ in range(self.count):
            start = self.sim.now
            yield self.ep.send(self.request_len)
            yield from self._await_reply()
            self.stats.histogram("rtt_ns").observe(self.sim.now - start)
            self.completed += 1
            if self.think_ns:
                yield self.think_ns

    @property
    def rtt(self):
        return self.stats.histogram("rtt_ns")
