"""Applications — the cast of §2.

Bob runs Postgres, Charlie runs MySQL (and a misconfigured instance that
binds Postgres's port), both occasionally SSH in to play an online game,
one buggy app floods ARP, and a mix of polling/blocking workers serve
intermittent load. All are generator-based simulated processes over the
common :class:`~repro.dataplanes.base.Endpoint` API, so every app runs
unchanged on every dataplane.
"""

from .base import App
from .arp_flood import ArpFlooder
from .bulk import BulkSender
from .databases import DatabaseServer, MisconfiguredDatabase
from .echo import EchoServer, SinkServer
from .game import GameClient
from .rpc import RpcClient
from .workers import BlockingWorker, PollingWorker

__all__ = [
    "App",
    "ArpFlooder",
    "BlockingWorker",
    "BulkSender",
    "DatabaseServer",
    "EchoServer",
    "GameClient",
    "MisconfiguredDatabase",
    "PollingWorker",
    "RpcClient",
    "SinkServer",
]
