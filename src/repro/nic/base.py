"""The conventional DMA NIC.

Fixed internal pipeline latency; RX steering over N queues; each queue is
either *handled* (a callback, e.g. the kernel stack's softirq entry) or
*pollable* (a descriptor ring an application reads directly, as in kernel
bypass). TX accepts packets from any producer and serializes onto the wire
link.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import CostModel
from ..errors import NicError
from ..host.copies import LAYER_DMA, LAYER_DMA_DIRECT
from ..host.pcie import DmaEngine
from ..interpose.fastpath import CHAIN_STEER
from ..net.link import Link
from ..net.packet import Packet
from ..sim import MetricSet, Simulator
from ..trace import STAGE_DMA, STAGE_NIC_PIPELINE, charge
from .rings import DescriptorRing
from .steering import SteeringTable

RxHandler = Callable[[Packet], None]
RxBurstHandler = Callable[[List[Packet]], None]


class NicQueue:
    """One RX queue: a handler or a pollable ring (exactly one)."""

    def __init__(self, queue_id: int):
        self.queue_id = queue_id
        self.handler: Optional[RxHandler] = None
        self.burst_handler: Optional[RxBurstHandler] = None
        self.ring: Optional[DescriptorRing] = None
        # NAPI-style coalescing state (burst mode only).
        self.rx_pending: List[Packet] = []
        self.flush_handle: Optional[object] = None

    def set_handler(
        self, handler: RxHandler, burst_handler: Optional[RxBurstHandler] = None
    ) -> None:
        """Install the per-packet softirq entry, and optionally a burst
        variant used when the cost model's ``batch_size`` exceeds 1."""
        if self.ring is not None:
            raise NicError(f"queue {self.queue_id} already has a ring")
        self.handler = handler
        self.burst_handler = burst_handler

    def set_ring(self, ring: DescriptorRing) -> None:
        if self.handler is not None:
            raise NicError(f"queue {self.queue_id} already has a handler")
        self.ring = ring


class BasicNic:
    """Conventional NIC: steer, DMA, hand off. No interposition ability."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        dma: DmaEngine,
        egress: Link,
        n_queues: int = 8,
        name: str = "nic0",
        fastpath=None,
        tracer=None,
    ):
        self.sim = sim
        self.costs = costs
        self.dma = dma
        self.egress = egress
        self.name = name
        # Optional FlowFastPath: caches the steering decision per flow so
        # repeat packets skip the exact-match/RSS classification walk.
        self.fastpath = fastpath
        # Tracing spine: RX contexts open here, where the host first sees
        # the frame (repro.trace). A disabled tracer opens nothing.
        self.tracer = tracer
        self.queues: List[NicQueue] = [NicQueue(i) for i in range(n_queues)]
        self.steering = SteeringTable(n_queues=n_queues, name=f"{name}.steer")
        self.metrics = MetricSet(name)
        self.offline = False

    # --- RX --------------------------------------------------------------

    def rx_from_wire(self, pkt: Packet) -> None:
        """Entry point wired to the ingress link."""
        if self.offline:
            self.metrics.counter("rx_offline_drops").inc()
            return
        self.metrics.counter("rx_pkts").inc()
        self.metrics.meter("rx_bytes").record(self.sim.now, pkt.wire_len)
        if self.tracer is not None:
            ctx = self.tracer.begin(pkt)
            # tenant: the fixed-function NIC is tenant-blind by design (the
            # paper's off-host asymmetry); ownership is resolved when the
            # kernel RX stage stamps meta.tenant_tid and these spans follow
            # the packet's trace to it.
            charge(STAGE_NIC_PIPELINE, self.costs.nic_pipeline_ns, ctx,
                   cpu=False, label="rx_pipeline")
        self.sim.after(self.costs.nic_pipeline_ns, self._rx_steer, pkt)

    def _rx_steer(self, pkt: Packet) -> None:
        queue_id = self.classify_rx(pkt)
        pkt.meta.queue_id = queue_id
        queue = self.queues[queue_id]
        if queue.handler is not None:
            if self.costs.batch_size > 1 and queue.burst_handler is not None:
                self._rx_coalesce(queue, pkt)
            else:
                # DMA then hand to the handler (kernel path).
                self.dma.account_placement(
                    LAYER_DMA, pkt.wire_len, self.costs.pcie_dma_latency_ns
                )
                # tenant: RX DMA lands before ownership is known; the
                # kernel RX stage stamps the tenant the trace bills to.
                charge(STAGE_DMA, self.costs.pcie_dma_latency_ns,
                       pkt.meta.trace, cpu=False, label="rx_dma")
                self.sim.after(self.costs.pcie_dma_latency_ns, queue.handler, pkt)
        elif queue.ring is not None:
            if queue.ring.try_post(pkt):
                # Zero-copy delivery: the frame lands directly in the
                # app-visible ring (DDIO); no CPU touches the bytes.
                self.dma.account_placement(LAYER_DMA_DIRECT, pkt.wire_len, 0)
            else:
                self.metrics.counter("rx_ring_drops").inc()
        else:
            self.metrics.counter("rx_unconfigured_drops").inc()

    # --- burst RX (NAPI-style interrupt coalescing) ------------------------

    def _rx_coalesce(self, queue: NicQueue, pkt: Packet) -> None:
        """Buffer the packet; deliver a whole burst to the handler either
        when ``batch_size`` packets are pending or when the coalescing
        window expires — one DMA + one softirq event per burst."""
        queue.rx_pending.append(pkt)
        if len(queue.rx_pending) >= self.costs.batch_size:
            self._rx_flush(queue)
        elif queue.flush_handle is None:
            queue.flush_handle = self.sim.after(
                self.costs.interrupt_coalesce_ns, self._rx_timer_flush, queue
            )

    def _rx_timer_flush(self, queue: NicQueue) -> None:
        queue.flush_handle = None
        if queue.rx_pending:
            self._rx_flush(queue)

    def _rx_flush(self, queue: NicQueue) -> None:
        if queue.flush_handle is not None:
            queue.flush_handle.cancel()
            queue.flush_handle = None
        burst, queue.rx_pending = queue.rx_pending, []
        self.metrics.counter("rx_bursts").inc()
        burst_ns = self.costs.dma_burst_ns(len(burst))
        self.dma.account_placement(
            LAYER_DMA, sum(p.wire_len for p in burst), burst_ns, ops=len(burst)
        )
        # One DMA covers the burst: the shared latency lands on the lead
        # packet's trace; siblings absorb it as softirq wait at close time.
        # tenant: ownership is stamped by the kernel RX stage downstream.
        charge(STAGE_DMA, burst_ns, burst[0].meta.trace, cpu=False,
               label="rx_dma_burst")
        self.sim.after(burst_ns, queue.burst_handler, burst)

    def classify_rx(self, pkt: Packet) -> int:
        """Queue selection: exact steering entry, else RSS, else queue 0."""
        ft = pkt.five_tuple
        if ft is None:
            return 0
        fp = self.fastpath
        if fp is not None:
            entry = fp.lookup(CHAIN_STEER, ft)
            if entry is not None:
                return entry.queue_id
        conn = self.steering.lookup(ft)
        if conn is not None:
            queue_id = conn % len(self.queues)
        else:
            queue_id = self.steering.rss_fallback(ft)
        if fp is not None:
            fp.install(CHAIN_STEER, ft, queue_id=queue_id, points=("steering",))
        return queue_id

    # --- TX ----------------------------------------------------------------

    def tx(self, pkt: Packet) -> bool:
        """Transmit one frame; returns False on egress drop."""
        if self.offline:
            self.metrics.counter("tx_offline_drops").inc()
            return False
        self.metrics.counter("tx_pkts").inc()
        self.metrics.meter("tx_bytes").record(self.sim.now, pkt.wire_len)
        return self.egress.send(pkt)

    # --- administrivia ----------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """ethtool -S flavoured counters."""
        return self.metrics.snapshot()
