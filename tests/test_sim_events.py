"""Signal (promise) semantics and combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Signal


class TestSignal:
    def test_succeed_delivers_value(self):
        s = Signal("s")
        got = []
        s.add_callback(lambda sig: got.append(sig.value))
        s.succeed(42)
        assert got == [42]
        assert s.ok and s.triggered and not s.failed

    def test_callback_after_resolution_runs_immediately(self):
        s = Signal()
        s.succeed("v")
        got = []
        s.add_callback(lambda sig: got.append(sig.value))
        assert got == ["v"]

    def test_double_resolution_rejected(self):
        s = Signal()
        s.succeed()
        with pytest.raises(SimulationError):
            s.succeed()
        with pytest.raises(SimulationError):
            s.fail(RuntimeError("x"))

    def test_fail_carries_exception(self):
        s = Signal()
        err = RuntimeError("boom")
        s.fail(err)
        assert s.failed
        assert s.exception is err

    def test_value_unavailable_until_success(self):
        s = Signal("pending")
        with pytest.raises(SimulationError):
            _ = s.value

    def test_fail_requires_exception(self):
        s = Signal()
        with pytest.raises(SimulationError):
            s.fail("not an exception")  # type: ignore[arg-type]


class TestAllOf:
    def test_collects_values_in_order(self):
        a, b, c = Signal("a"), Signal("b"), Signal("c")
        combo = AllOf([a, b, c])
        b.succeed(2)
        a.succeed(1)
        assert not combo.triggered
        c.succeed(3)
        assert combo.value == [1, 2, 3]

    def test_empty_succeeds_immediately(self):
        assert AllOf([]).value == []

    def test_fails_fast(self):
        a, b = Signal(), Signal()
        combo = AllOf([a, b])
        a.fail(ValueError("bad"))
        assert combo.failed
        assert isinstance(combo.exception, ValueError)


class TestAnyOf:
    def test_first_winner_reported_with_index(self):
        a, b = Signal(), Signal()
        combo = AnyOf([a, b])
        b.succeed("second-signal")
        assert combo.value == (1, "second-signal")

    def test_later_resolutions_ignored(self):
        a, b = Signal(), Signal()
        combo = AnyOf([a, b])
        a.succeed("x")
        b.succeed("y")
        assert combo.value == (0, "x")

    def test_requires_children(self):
        with pytest.raises(SimulationError):
            AnyOf([])
