"""Edge cases across small corners of the library."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.errors import ReproError, SimulationError
from repro.sim import SimProcess, Simulator, make_rng
from repro.sim.rand import exponential_ns


class TestRand:
    def test_streams_are_independent(self):
        a = make_rng(1, "arrivals")
        b = make_rng(1, "sizes")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_same_stream_reproduces(self):
        assert make_rng(5, "x").random() == make_rng(5, "x").random()

    def test_none_seed_is_nondeterministic_type(self):
        rng = make_rng(None)
        assert 0 <= rng.random() < 1

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            exponential_ns(make_rng(0), 0)

    def test_exponential_minimum_one(self):
        rng = make_rng(0)
        assert all(exponential_ns(rng, 0.001) >= 1 for _ in range(10))


class TestTrafficHelpers:
    def test_total_bytes(self):
        from repro.net.traffic import cbr_arrivals, total_bytes

        assert total_bytes(cbr_arrivals(units.GBPS, 100, count=5)) == 500


class TestAppBase:
    def test_double_start_rejected(self):
        from repro.core import NormanOS
        from repro.dataplanes import Testbed
        from repro.apps import SinkServer

        tb = Testbed(NormanOS)
        app = SinkServer(tb, port=7000, comm="s", user="bob", core_id=1).start()
        with pytest.raises(ReproError):
            app.start()
        app.stop()
        tb.run_all()

    def test_app_crash_surfaces(self):
        from repro.core import NormanOS
        from repro.dataplanes import Testbed
        from repro.apps.base import App

        class Crasher(App):
            def run(self):
                yield 10
                raise RuntimeError("app bug")

        tb = Testbed(NormanOS)
        Crasher(tb, comm="crash", user="bob", core_id=1).start()
        with pytest.raises(RuntimeError, match="app bug"):
            tb.run_all()


class TestSnifferSessions:
    def test_multiple_sessions_independent(self):
        from repro.core import Sniffer
        from repro.net import IPv4Address, MacAddress, make_udp

        sim = Simulator()
        sniffer = Sniffer(sim)
        all_pkts = sniffer.start(name="all")
        dns_only = sniffer.start(match=lambda p: p.five_tuple.dport == 53, name="dns")
        pkt = make_udp(MacAddress.from_index(1), MacAddress.from_index(2),
                       IPv4Address.parse("1.1.1.1"), IPv4Address.parse("2.2.2.2"),
                       1000, 80, 10)
        sniffer.mirror(pkt)
        assert len(all_pkts.packets) == 1
        assert len(dns_only.packets) == 0
        all_pkts.stop()
        sniffer.mirror(pkt)
        assert len(all_pkts.packets) == 1  # stopped
        assert sniffer.active_sessions == 1

    def test_stop_is_idempotent(self):
        from repro.core import Sniffer

        session = Sniffer(Simulator()).start()
        session.stop()
        session.stop()


class TestOverlayAluCoverage:
    def run_prog(self, text, expected_verdict):
        from repro.net import IPv4Address, MacAddress, make_udp
        from repro.overlay import OverlayMachine, assemble, verify

        prog = assemble(text)
        verify(prog)
        m = OverlayMachine(prog, DEFAULT_COSTS)
        pkt = make_udp(MacAddress.from_index(1), MacAddress.from_index(2),
                       IPv4Address.parse("1.0.0.1"), IPv4Address.parse("1.0.0.2"),
                       7, 9, 10)
        assert m.execute(pkt, 0).verdict == expected_verdict

    def test_mov_sub_xor(self):
        self.run_prog(
            """
                ldi r0, 100
                mov r1, r0
                sub r1, 58
                xor r1, 42
                jeq r1, 0, ok
                drop
            ok: accept
            """,
            "accept",
        )

    def test_shl_shr_or(self):
        self.run_prog(
            """
                ldi r0, 1
                shl r0, 4
                or r0, 1
                shr r0, 1
                jeq r0, 8, ok
                drop
            ok: accept
            """,
            "accept",
        )

    def test_jgt_jle(self):
        self.run_prog(
            """
                ldi r0, 5
                jgt r0, 4, a
                drop
            a:  jle r0, 5, ok
                drop
            ok: accept
            """,
            "accept",
        )


class TestQdiscRunnerEdges:
    def test_reset_dropped_counter_on_replace(self):
        from repro.kernel import PfifoQdisc, TbfQdisc
        from repro.kernel.qdisc_runner import PacedQdiscRunner
        from repro.net import IPv4Address, MacAddress, make_udp

        sim = Simulator()
        runner = PacedQdiscRunner(
            sim, TbfQdisc(rate_bps=1_000, burst_bytes=2_000), units.GBPS, lambda p: None
        )
        pkt = make_udp(MacAddress.from_index(1), MacAddress.from_index(2),
                       IPv4Address.parse("1.0.0.1"), IPv4Address.parse("1.0.0.2"),
                       1, 2, 100)
        runner.submit(pkt)
        runner.submit(pkt)
        runner.replace_qdisc(PfifoQdisc())
        assert runner.metrics.counter("reset_dropped").value >= 1


class TestSimEngineEdges:
    def test_peek_on_empty(self):
        assert Simulator().peek() is None

    def test_step_on_empty(self):
        assert Simulator().step() is False

    def test_process_requires_generator_call(self):
        sim = Simulator()

        def gen():
            yield 1

        # Passing the function (not the generator) is a common mistake.
        with pytest.raises(SimulationError):
            SimProcess(sim, gen)  # type: ignore[arg-type]


class TestIfconfigWithoutNic:
    def test_dataplane_without_nic_attribute(self):
        """Ifconfig degrades gracefully when the dataplane has no `nic`."""
        from repro.dataplanes import SidecarDataplane, Testbed
        from repro.tools import Ifconfig

        tb = Testbed(SidecarDataplane)
        out = Ifconfig(tb.dataplane, tb.kernel)()
        assert "inet 10.0.0.1" in out
