"""Descriptor rings — the application/NIC shared-memory interface of §4.3.

A ring is a fixed-size circular buffer in pinned host memory with head/tail
indices mirrored in NIC MMIO registers. Applications produce into TX rings
and consume from RX rings "by merely accessing memory" (§4.3); the NIC side
moves packets via DMA.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, List, Optional

from ..errors import RingEmpty, RingFull
from ..host.memory import PinnedRegion
from ..sim import MetricSet


class DescriptorRing:
    """One direction's ring: entries + backing pinned region.

    The stored items are simulation objects (packets / message tuples); the
    region exists so the cache model sees real line addresses, and so pinned
    memory accounting reflects §5's per-connection footprint concern.
    """

    def __init__(self, entries: int, region: PinnedRegion, name: str = "ring"):
        if entries < 1:
            raise RingFull(f"ring must have at least 1 entry, got {entries}")
        self.entries = entries
        self.region = region
        self.name = name
        self._items: Deque[Any] = deque()
        self.head = 0  # producer index (total produced)
        self.tail = 0  # consumer index (total consumed)
        self.metrics = MetricSet(name)
        self._cursor = 0  # round-robin cursor over the region's lines

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def free_slots(self) -> int:
        return self.entries - len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.entries

    def post(self, item: Any) -> int:
        """Produce one entry; returns the slot index. Raises RingFull."""
        if self.is_full:
            self.metrics.counter("full_drops").inc()
            raise RingFull(f"{self.name}: all {self.entries} slots in use")
        slot = self.head % self.entries
        self._items.append(item)
        self.head += 1
        self.metrics.counter("posted").inc()
        return slot

    def try_post(self, item: Any) -> bool:
        """Produce if space; returns False instead of raising."""
        if self.is_full:
            self.metrics.counter("full_drops").inc()
            return False
        self.post(item)
        return True

    def consume(self) -> Any:
        """Consume the oldest entry. Raises RingEmpty."""
        if not self._items:
            raise RingEmpty(f"{self.name}: nothing to consume")
        self.tail += 1
        self.metrics.counter("consumed").inc()
        return self._items.popleft()

    def try_consume(self) -> Optional[Any]:
        return self.consume() if self._items else None

    # --- burst interface ---------------------------------------------------

    def post_burst(self, items: Iterable[Any]) -> int:
        """Produce as many of ``items`` as fit, in order, under one doorbell.

        Returns the number posted; the remainder is dropped (counted in
        ``full_drops``) exactly as a real NIC tail-drops a full ring. Head
        and slot indices wrap identically to repeated :meth:`post` calls.
        """
        posted = 0
        offered = 0
        for item in items:
            offered += 1
            if self.is_full:
                self.metrics.counter("full_drops").inc()
                continue
            self._items.append(item)
            self.head += 1
            posted += 1
        if posted:
            self.metrics.counter("posted").inc(posted)
        if offered > 1:
            self.metrics.counter("burst_posts").inc()
        return posted

    def consume_burst(self, max_items: int) -> List[Any]:
        """Consume up to ``max_items`` oldest entries in FIFO order.

        Returns the (possibly empty) list; tail advances by its length.
        """
        if max_items < 0:
            raise RingEmpty(f"{self.name}: negative burst size {max_items}")
        n = min(max_items, len(self._items))
        out = [self._items.popleft() for _ in range(n)]
        if out:
            self.tail += n
            self.metrics.counter("consumed").inc(n)
        if max_items > 1:
            self.metrics.counter("burst_consumes").inc()
        return out

    def next_lines(self, count: int) -> "list[int]":
        """The next ``count`` cache-line addresses a transfer will touch,
        advancing round-robin through the backing region (how a real ring
        cycles through its buffers)."""
        lines = self.region.line_addrs()
        out = []
        for _ in range(count):
            out.append(lines[self._cursor % len(lines)])
            self._cursor += 1
        return out


class RingPair:
    """Per-connection RX+TX rings (§4.3: 'a pair of per-connection
    ring-buffers')."""

    def __init__(self, conn_id: int, rx: DescriptorRing, tx: DescriptorRing):
        self.conn_id = conn_id
        self.rx = rx
        self.tx = tx

    @property
    def pinned_bytes(self) -> int:
        return self.rx.region.size + self.tx.region.size

    def __repr__(self) -> str:
        return f"<RingPair conn={self.conn_id} rx={self.rx.occupancy} tx={self.tx.occupancy}>"
