"""Unit conversions and formatting."""

import pytest

from repro import units


class TestTimeConversion:
    def test_constants_are_consistent(self):
        assert units.US == 1_000
        assert units.MS == 1_000_000
        assert units.SEC == 1_000_000_000
        assert units.MINUTE == 60 * units.SEC

    def test_roundtrip_seconds(self):
        assert units.sec_to_ns(1.5) == 1_500_000_000
        assert units.ns_to_sec(units.sec_to_ns(0.25)) == pytest.approx(0.25)


class TestTransmitTime:
    def test_one_kb_at_one_gbps(self):
        # 1000 bytes = 8000 bits at 1e9 bps -> 8000 ns
        assert units.transmit_time_ns(1_000, units.GBPS) == 8_000

    def test_full_mtu_at_100gbps(self):
        # 1500B = 12000 bits at 100 Gbps -> 120 ns
        assert units.transmit_time_ns(1_500, 100 * units.GBPS) == 120

    def test_zero_bytes_is_free(self):
        assert units.transmit_time_ns(0, units.GBPS) == 0

    def test_minimum_one_ns(self):
        assert units.transmit_time_ns(1, 10**15) == 1

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            units.transmit_time_ns(100, 0)


class TestThroughput:
    def test_inverse_of_transmit_time(self):
        t = units.transmit_time_ns(125_000, units.GBPS)
        assert units.throughput_bps(125_000, t) == pytest.approx(units.GBPS)

    def test_zero_elapsed(self):
        assert units.throughput_bps(100, 0) == 0.0


class TestFormatting:
    def test_fmt_rate(self):
        assert units.fmt_rate(97.3 * units.GBPS) == "97.30 Gbps"
        assert units.fmt_rate(1.5 * units.MBPS) == "1.50 Mbps"
        assert units.fmt_rate(12) == "12 bps"

    def test_fmt_time(self):
        assert units.fmt_time(3) == "3 ns"
        assert units.fmt_time(12_500) == "12.500 us"
        assert units.fmt_time(2 * units.SEC) == "2.000 s"

    def test_fmt_size(self):
        assert units.fmt_size(64) == "64 B"
        assert units.fmt_size(6 * units.MB) == "6.0 MiB"
