"""Compilers from kernel policy objects to overlay programs.

This is the §4.4 mechanism by which ``iptables`` and ``tc`` keep working
under KOPI: the in-kernel control plane takes the same rule objects the
software stack uses and lowers them to overlay programs for the SmartNIC.

Owner matches (``--uid-owner`` etc.) cannot be evaluated on the NIC from
packet bytes — the NIC has no process table. The control plane therefore
*resolves* each owner rule to the set of connection ids whose owner matches
(it knows the owner of every connection, having set each one up), and the
compiled program matches on ``meta.conn_id``. When connections come or go
the control plane recompiles — microseconds on the overlay, per E10.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import PolicyError
from ..kernel.netfilter import DROP, NetfilterRule
from .assembler import assemble
from .isa import Program

ResolveConns = Callable[[NetfilterRule], Optional[Sequence[int]]]


def compile_filter_rules(
    rules: Iterable[NetfilterRule],
    resolve_conns: Optional[ResolveConns] = None,
    name: str = "filters",
) -> Program:
    """Lower an ordered rule list to one overlay program.

    ``resolve_conns(rule)`` must return the connection ids an owner rule
    applies to (or None when the rule cannot be resolved — compilation then
    fails loudly rather than silently not enforcing).
    """
    lines: List[str] = []
    rules = list(rules)
    for i, rule in enumerate(rules):
        nxt = f"rule_{i + 1}" if i + 1 < len(rules) else "default"
        lines.append(f"rule_{i}:")
        ft_checks = [
            ("ip.proto", rule.proto),
            ("ip.src", rule.src_ip.value if rule.src_ip else None),
            ("ip.dst", rule.dst_ip.value if rule.dst_ip else None),
            ("l4.sport", rule.sport),
            ("l4.dport", rule.dport),
        ]
        for field, expected in ft_checks:
            if expected is not None:
                lines.append(f"    ldf r0, {field}")
                lines.append(f"    jne r0, {expected}, {nxt}")
        if rule.needs_owner:
            if resolve_conns is None:
                raise PolicyError(
                    f"rule needs owner resolution but no resolver given: "
                    f"{rule.describe()}"
                )
            conns = resolve_conns(rule)
            if conns is None:
                raise PolicyError(
                    f"owner rule could not be resolved to connections: "
                    f"{rule.describe()}"
                )
            if not conns:
                # No current connection matches the owner: rule can never
                # fire until recompilation, so skip to the next rule.
                lines.append(f"    jmp {nxt}")
                continue
            lines.append("    ldf r1, meta.conn_id")
            for conn_id in conns:
                lines.append(f"    jeq r1, {conn_id}, match_{i}")
            lines.append(f"    jmp {nxt}")
            lines.append(f"match_{i}:")
        lines.append(f"    cnt {i}")
        lines.append("    drop" if rule.verdict == DROP else "    accept")
    lines.append("default:")
    lines.append("    accept")
    return assemble("\n".join(lines), n_counters=len(rules), name=name)


def compile_classifier(
    classid_of_conn: Dict[int, int],
    default_classid: int = 0,
    name: str = "classifier",
) -> Program:
    """Map ``meta.conn_id`` to a scheduling class id (``setcls``).

    Used to run tc/cgroup classification on the NIC: the control plane knows
    each connection's owning process and therefore its cgroup classid.
    """
    lines: List[str] = ["    ldf r0, meta.conn_id"]
    items = sorted(classid_of_conn.items())
    for conn_id, classid in items:
        lines.append(f"    jeq r0, {conn_id}, cls_{conn_id}")
    lines.append(f"    setcls {default_classid}")
    lines.append("    jmp done")
    for conn_id, classid in items:
        lines.append(f"cls_{conn_id}:")
        lines.append(f"    setcls {classid}")
        lines.append("    jmp done")
    lines.append("done:")
    lines.append("    accept")
    return assemble("\n".join(lines), name=name)


def compile_policer(
    meter_of_conn: Dict[int, int],
    n_meters: int,
    name: str = "policer",
) -> Program:
    """Per-connection token-bucket policing (``tc police`` under KOPI).

    ``meter_of_conn`` maps connection ids to meter indices (one meter per
    policed cgroup). Unmapped connections pass unpoliced. The caller must
    configure each declared meter on the loaded machine with the cgroup's
    rate/burst.
    """
    if n_meters < 0:
        raise PolicyError(f"negative meter count: {n_meters}")
    if any(not 0 <= idx < n_meters for idx in meter_of_conn.values()):
        raise PolicyError("meter index out of range")
    lines: List[str] = ["    ldf r0, meta.conn_id"]
    for conn_id, idx in sorted(meter_of_conn.items()):
        lines.append(f"    jeq r0, {conn_id}, meter_{idx}")
    lines.append("    accept")
    for idx in sorted(set(meter_of_conn.values())):
        lines.append(f"meter_{idx}:")
        lines.append(f"    meter {idx}, r1")
        lines.append(f"    jeq r1, 1, ok_{idx}")
        lines.append("    drop")
        lines.append(f"ok_{idx}:")
        lines.append("    accept")
    return assemble("\n".join(lines), n_meters=n_meters, name=name)


def compile_rate_limiter(
    rate_bps: int, burst_bytes: int, name: str = "limiter"
) -> Program:
    """Single token-bucket policer: drop non-conformant packets.

    The returned program declares meter 0; the caller must configure it on
    the machine with the same rate/burst (mirroring how the control plane
    writes meter parameters through MMIO after loading the program).
    """
    if rate_bps <= 0 or burst_bytes <= 0:
        raise PolicyError("rate and burst must be positive")
    text = """
        meter 0, r0
        jeq r0, 1, ok
        drop
    ok:
        accept
    """
    return assemble(text, n_meters=1, name=name)
