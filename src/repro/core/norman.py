"""NormanOS — the assembled KOPI operating system (Figure 1).

Implements the same :class:`~repro.dataplanes.base.Dataplane` interface as
the baselines, so every experiment can swap it in directly. The claims it
embodies:

* dataplane packets never pass the software kernel (bypass-class per-packet
  cost);
* the kernel configures the NIC, so iptables/tc/tcpdump/netstat keep
  working — including owner matches and cgroup shaping;
* blocking I/O works via notification queues;
* every packet is attributable to a process.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import CostModel
from ..host.machine import Machine
from ..interpose import InterpositionPoint
from ..kernel.kernel import Kernel
from ..kernel.netfilter import NetfilterRule
from ..kernel.qdisc import DEFAULT_CLASS
from ..net.addresses import IPv4Address, MacAddress
from ..net.link import Link
from ..net.packet import Packet
from ..sim import Signal
from ..dataplanes.base import (
    CaptureSession,
    Dataplane,
    PacketFilter,
    QosConfig,
    describe_qos,
)
from .control_plane import ControlPlane
from .library import NormanEndpoint
from .nic_dataplane import KOPI_BITSTREAM, KopiNic
from .sniffer import Sniffer


class NormanOS(Dataplane):
    """KOPI: kernel-managed dataplane on a programmable SmartNIC."""

    name = "kopi"
    supports_blocking_io = True

    def __init__(
        self,
        machine: Machine,
        host_ip: IPv4Address,
        host_mac: MacAddress,
        egress: Link,
        shared_rings: bool = False,
        smartnic_sram_bytes: Optional[int] = None,
    ):
        self.machine = machine
        self.costs: CostModel = machine.costs
        machine.tracer.plane = self.name
        self.sniffer = Sniffer(machine.sim)
        self.nic = KopiNic(machine, egress, self.sniffer)
        if smartnic_sram_bytes is not None:
            from ..nic.smartnic.sram import SramAllocator

            self.nic.sram = SramAllocator(smartnic_sram_bytes, name="kopi0.sram")
        # The NIC ships factory-flashed with the KOPI image; later policy
        # changes use overlay loads, feature changes use load_bitstream.
        self.nic.fpga.factory_flash(KOPI_BITSTREAM)
        # Software-path egress (fallback connections, kernel's own traffic)
        # still flows through the NIC scheduler and the sniffer, so the
        # global view holds even for slow-path packets.
        self.kernel = Kernel(
            machine, host_ip, host_mac,
            nic_send=self._slowpath_tx, tx_rate_bps=egress.rate_bps,
        )
        self.control = ControlPlane(self.kernel, self.nic, machine, shared_rings=shared_rings)
        # KOPI's on-NIC mechanisms, registered with the machine's engine
        # ("netfilter" comes from Kernel, "overlay_filters" and "conntrack"
        # from the control plane).
        engine = machine.interpose
        self.sniffer.point = engine.register(InterpositionPoint(
            name="sniffer", plane="nic", mechanism="tap",
            install_latency_ns=self.costs.table_update_ns,
            target=self.sniffer,
        ))
        qdisc_point = engine.register(InterpositionPoint(
            name="qdisc", plane="nic", mechanism="qdisc",
            install_latency_ns=self.costs.table_update_ns,
            target=self.nic.scheduler,
        ))
        qdisc_point.describe = lambda: describe_qos(qdisc_point.policy)
        self.nic.scheduler.point = qdisc_point
        self.nic.steering.point = engine.register(InterpositionPoint(
            name="steering", plane="nic", mechanism="steering",
            install_latency_ns=self.costs.table_update_ns,
            target=self.nic.steering,
        ))

    # --- wire plumbing ------------------------------------------------------

    def wire_rx(self, pkt: Packet) -> None:
        self.nic.rx_from_wire(pkt)

    def _slowpath_tx(self, pkt: Packet) -> None:
        self.sniffer.mirror(pkt)
        self.nic.scheduler.submit(pkt, DEFAULT_CLASS)

    # --- application surface ---------------------------------------------------

    def open_endpoint(self, proc, proto: int, port: Optional[int] = None) -> NormanEndpoint:
        conn = self.control.open_connection(proc, proto, port)
        return NormanEndpoint(self, conn)

    # --- administrative surface ---------------------------------------------------

    def install_filter_rule(self, rule: NetfilterRule) -> Signal:
        """Owner rules welcome: the control plane resolves them to
        connection ids and compiles an overlay program."""
        return self.control.install_filter_rule(rule)

    def configure_qos(self, config: QosConfig) -> Signal:
        return self.control.configure_qos(config)

    def start_capture(
        self, match: Optional[PacketFilter] = None, name: str = "capture"
    ) -> CaptureSession:
        return self.sniffer.start(match, name)

    def attribution_of(self, pkt: Packet) -> Optional[Tuple[int, int, str]]:
        if pkt.meta.owner_pid is None:
            return None
        return (pkt.meta.owner_pid, pkt.meta.owner_uid, pkt.meta.owner_comm)

    def arp_entries(self) -> List[object]:
        return self.kernel.arp_cache.entries()

    def data_movements(self) -> Dict[str, int]:
        """Steady-state dataplane movement is zero; syscalls happen only at
        connection setup and policy changes (the control plane)."""
        return {
            "virtual": 0,
            "virtual_copied_bytes": 0,
            "physical": 0,
            "control_plane_syscalls": self.kernel.syscalls.total_syscalls,
        }
