"""Two full hosts over the L2 switch: end-to-end cross-host paths."""

import pytest

from repro.core import NormanOS
from repro.dataplanes import BypassDataplane, KernelPathDataplane
from repro.dataplanes.multihost import (
    HOST_A_IP,
    HOST_A_MAC,
    HOST_B_IP,
    HOST_B_MAC,
    TwoHostTestbed,
)
from repro.net import PROTO_UDP
from repro.sim import SimProcess
from repro.tools import Tcpdump


class TestNormanToNorman:
    def test_message_crosses_hosts(self):
        tb = TwoHostTestbed(NormanOS, NormanOS)
        client = tb.host_a.spawn("client", "bob", core_id=1)
        server = tb.host_b.spawn("server", "charlie", core_id=1)
        ep_c = tb.host_a.dataplane.open_endpoint(client, PROTO_UDP, 6000)
        ep_s = tb.host_b.dataplane.open_endpoint(server, PROTO_UDP, 7000)
        got = []

        def srv():
            msg = yield ep_s.recv(blocking=True)
            got.append(msg)

        SimProcess(tb.sim, srv())
        ep_c.send(300, dst=(HOST_B_IP, 7000))
        tb.run_all()
        assert len(got) == 1
        size, src_ip, sport = got[0]
        assert (size, src_ip, sport) == (300, HOST_A_IP, 6000)

    def test_request_response_round_trip(self):
        tb = TwoHostTestbed(NormanOS, NormanOS)
        client = tb.host_a.spawn("client", "bob", core_id=1)
        server = tb.host_b.spawn("server", "charlie", core_id=1)
        ep_c = tb.host_a.dataplane.open_endpoint(client, PROTO_UDP, 6000)
        ep_s = tb.host_b.dataplane.open_endpoint(server, PROTO_UDP, 7000)
        rtts = []

        def srv():
            while True:
                size, src_ip, sport = yield ep_s.recv(blocking=True)
                yield ep_s.send(size, dst=(src_ip, sport))

        def cli():
            yield ep_c.connect(HOST_B_IP, 7000)
            for _ in range(3):
                start = tb.sim.now
                yield ep_c.send(128)
                yield ep_c.recv(blocking=True)
                rtts.append(tb.sim.now - start)
            ep_s.close()

        SimProcess(tb.sim, srv())
        SimProcess(tb.sim, cli())
        tb.run_all()
        assert len(rtts) == 3
        assert all(r > 0 for r in rtts)

    def test_switch_learns_both_macs(self):
        tb = TwoHostTestbed(NormanOS, NormanOS)
        a = tb.host_a.spawn("a", "bob", core_id=1)
        b = tb.host_b.spawn("b", "bob", core_id=1)
        ep_a = tb.host_a.dataplane.open_endpoint(a, PROTO_UDP, 6000)
        ep_b = tb.host_b.dataplane.open_endpoint(b, PROTO_UDP, 7000)
        ep_a.send(10, dst=(HOST_B_IP, 7000))
        ep_b.send(10, dst=(HOST_A_IP, 6000))
        tb.run_all()
        table = tb.switch.mac_table()
        assert table[HOST_A_MAC] == 0
        assert table[HOST_B_MAC] == 1


class TestMixedPlanes:
    def test_norman_serves_bypass_client(self):
        tb = TwoHostTestbed(BypassDataplane, NormanOS)
        client = tb.host_a.spawn("dpdk-client", "bob", core_id=1)
        server = tb.host_b.spawn("server", "charlie", core_id=1)
        ep_c = tb.host_a.dataplane.open_endpoint(client, PROTO_UDP, 6000)
        ep_s = tb.host_b.dataplane.open_endpoint(server, PROTO_UDP, 7000)
        got = []

        def srv():
            msg = yield ep_s.recv(blocking=True)
            got.append(msg)

        SimProcess(tb.sim, srv())
        ep_c.send(222, dst=(HOST_B_IP, 7000))
        tb.run_all()
        assert got[0][0] == 222

    def test_capture_on_receiving_host_attributes_local_process(self):
        """Host B's KOPI tcpdump attributes *its* side of a cross-host flow
        — attribution is a host-local concept, as the paper frames it."""
        tb = TwoHostTestbed(BypassDataplane, NormanOS)
        client = tb.host_a.spawn("remote-app", "bob", core_id=1)
        server = tb.host_b.spawn("server", "charlie", core_id=1)
        ep_c = tb.host_a.dataplane.open_endpoint(client, PROTO_UDP, 6000)
        ep_s = tb.host_b.dataplane.open_endpoint(server, PROTO_UDP, 7000)
        dump = Tcpdump(tb.host_b.dataplane)
        session = dump.start("udp")
        ep_c.send(100, dst=(HOST_B_IP, 7000))
        tb.run_all()
        assert len(session.packets) == 1
        owner = tb.host_b.dataplane.attribution_of(session.packets[0])
        assert owner is not None and owner[2] == "server"  # local socket owner

    def test_kernel_path_host_interoperates(self):
        tb = TwoHostTestbed(KernelPathDataplane, NormanOS)
        client = tb.host_a.spawn("legacy", "bob", core_id=1)
        server = tb.host_b.spawn("server", "charlie", core_id=1)
        ep_c = tb.host_a.dataplane.open_endpoint(client, PROTO_UDP, 6000)
        ep_s = tb.host_b.dataplane.open_endpoint(server, PROTO_UDP, 7000)
        got = []

        def srv():
            msg = yield ep_s.recv(blocking=True)
            got.append(msg)

        SimProcess(tb.sim, srv())
        ep_c.send(64, dst=(HOST_B_IP, 7000))
        tb.run_all()
        assert got[0][0] == 64


class TestCrossHostPolicy:
    def test_owner_filter_on_sender_blocks_cross_host(self):
        tb = TwoHostTestbed(NormanOS, NormanOS)
        from repro.kernel import CHAIN_OUTPUT, DROP, NetfilterRule

        bob = tb.host_a.user("bob")
        rogue = tb.host_a.spawn("rogue", "bob", core_id=1)
        ep = tb.host_a.dataplane.open_endpoint(rogue, PROTO_UDP, 6000)
        tb.host_a.dataplane.install_filter_rule(
            NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=7000,
                          uid_owner=bob.uid)
        )
        server = tb.host_b.spawn("server", "charlie", core_id=1)
        ep_s = tb.host_b.dataplane.open_endpoint(server, PROTO_UDP, 7000)
        tb.run_all()
        ep.send(10, dst=(HOST_B_IP, 7000))
        tb.run_all()
        assert ep_s.conn.rings.rx.occupancy == 0
        assert tb.host_a.dataplane.nic.metrics.counter("tx_filtered").value == 1
