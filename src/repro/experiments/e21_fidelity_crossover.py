"""E21 — fidelity crossover: the hybrid engine must be invisible in the
numbers and decisive in the wall clock.

PR 6 adds flow-level fast-forward (:mod:`repro.sim.fastforward`): steady
state flows whose packets all hit the verdict cache are fluid-approximated
— one epoch event charges ``N x`` the cached per-packet cost per stage —
and every interposition boundary demotes back to packet-exact simulation.
This experiment is the safety case for that approximation, in two legs:

* **(a) fidelity parity** — the same E8-style KOPI workload (N listener
  connections, batched peer bursts, application drains) runs twice from
  identical schedules: packet-exact (``fast_forward`` off) and hybrid
  (``fast_forward`` on). Every observable the suite's arguments rest on
  must agree: delivered messages, verdict-cache hit/miss counters, the
  DMA copy ledger, app-core CPU nanoseconds, and the per-stage service
  work decomposition (``work_by_stage(include_wait=False)`` — residency
  waits are workload timing, which fluid epochs deliberately do not
  model). Counters must match *exactly*; modeled time within
  ``CostModel.ff_tolerance``. Conservation (span sums == end-to-end
  latency) must hold on both legs — for fluid epochs it holds by
  construction, which is the point of profile-shaped charging.
* **(b) wall-clock crossover** — the E8 sweep scaled to 100k+
  connections (UDP and TCP port pools; one host runs out of UDP ports at
  64k). The hybrid leg warms each flow with exact packets until
  promotion, then the driver absorbs the rest of the schedule in bulk
  (``FastForwardController.absorb``) — the E21 contract being that leg
  (a) already proved absorbed packets charge what exact packets charge.
  An exact-mode probe at the same connection scale measures the
  packet-exact wall cost per delivered packet; the headline is the
  per-packet rate ratio, required to be >= 20x.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .. import units
from ..config import DEFAULT_COSTS, CostModel
from ..core import NormanOS
from ..dataplanes import Testbed
from ..dataplanes.testbed import HOST_IP, PEER_IP
from ..net.flow import FiveTuple
from ..net.headers import PROTO_TCP, PROTO_UDP
from .common import Row, fmt_table

PAYLOAD = 1_458
BURST_PER_CONN = 4
PARITY_CONNS = 512
PARITY_PACKETS = 8_192

SPEEDUP_CONNS = 100_000
SPEEDUP_PACKETS_PER_CONN = 256
PROBE_CONNS = 2_048

#: Unprivileged port pool per protocol (1025..65535).
_PORT_BASE = 1_025
_PORTS_PER_PROTO = 65_535 - _PORT_BASE + 1

#: The counters that must match *exactly* between the two parity legs.
EXACT_KEYS = (
    "delivered", "rx_pkts", "fp_hits", "fp_misses",
    "dma_bytes", "dma_ops",
)
#: Modeled-time observables compared within ``ff_tolerance``.
TOLERANCE_KEYS = ("cpu_busy_ns", "service_ns_per_pkt")

PARITY_COLUMNS = [
    "observable", "exact", "hybrid", "rel_err", "ok",
]


def _conn_slots(n_conns: int) -> "List[tuple[int, int]]":
    """(proto, port) for each of ``n_conns`` — UDP first, TCP once the
    UDP port space is exhausted (how the 100k-connection point fits on
    one host)."""
    if n_conns > 2 * _PORTS_PER_PROTO:
        raise ValueError(f"{n_conns} connections exceed both port pools")
    slots = []
    for i in range(n_conns):
        proto = PROTO_UDP if i < _PORTS_PER_PROTO else PROTO_TCP
        slots.append((proto, _PORT_BASE + i % _PORTS_PER_PROTO))
    return slots


def _send_burst(tb: Testbed, eps, slots, per_conn: int, subset=None) -> int:
    """Schedule ``per_conn`` spaced packets toward every endpoint (or a
    subset), E8-style: bursts interleave across connections as a loaded
    NIC would deliver them. Returns the number scheduled."""
    idx = range(len(eps)) if subset is None else subset
    gap = units.transmit_time_ns(PAYLOAD + 50, tb.ingress.rate_bps) + 10
    base = tb.sim.now + 1_000
    i = 0
    for _burst in range(per_conn):
        for e in idx:
            proto, port = slots[e]
            send = tb.peer.send_udp if proto == PROTO_UDP else tb.peer.send_tcp
            tb.sim.at(base + i * gap, send, 600, port, PAYLOAD)
            i += 1
    return i


def _drain(tb: Testbed, eps, per_conn: int, subset=None) -> int:
    """Non-blocking drain: each endpoint reads its burst back, counting
    messages (ring packets and fast-forward credit look identical here)."""
    idx = list(range(len(eps)) if subset is None else subset)
    consumed = [0]

    def _count(sig):
        if sig.ok:
            consumed[0] += len(sig.value)

    # Until dry: shared rings pool packets per process while fast-forward
    # credit is per connection, so one endpoint's read can consume a
    # sibling's ring share — a second pass picks up the remainder.
    while True:
        before = consumed[0]
        for e in idx:
            eps[e].recv_burst(per_conn, blocking=False).add_callback(_count)
        tb.run_all()
        if consumed[0] == before:
            return consumed[0]


def _leg_testbed(n_conns: int, costs: CostModel, n_cores: int = 8) -> Testbed:
    tb = Testbed(
        NormanOS, costs=costs, n_cores=n_cores,
        structural_cache=False, shared_rings=True,
    )
    app_cores = list(range(1, len(tb.machine.cpus)))
    procs = [tb.spawn(f"srv{c}", "bob", core_id=c) for c in app_cores]
    slots = _conn_slots(n_conns)
    eps = [
        tb.dataplane.open_endpoint(procs[i % len(procs)], proto, port)
        for i, (proto, port) in enumerate(slots)
    ]
    tb.run_all()
    tb._e21_slots = slots  # type: ignore[attr-defined]
    tb._e21_eps = eps  # type: ignore[attr-defined]
    tb._e21_app_cores = app_cores  # type: ignore[attr-defined]
    return tb


def _observe(tb: Testbed, delivered: int, busy0: int, wall_s: float) -> Dict[str, object]:
    m = tb.machine
    fp = m.fastpath
    tracer = m.tracer
    work = tracer.work_by_stage(include_wait=False) if tracer.enabled else {}
    service_ns = sum(work.values())
    closed = tracer.closed_contexts() if tracer.enabled else []
    dma = m.copies.layer("dma_direct")
    obs: Dict[str, object] = {
        "delivered": delivered,
        "rx_pkts": int(tb.dataplane.nic.metrics.counter("rx_pkts").value),
        "fp_hits": fp.hits if fp is not None else 0,
        "fp_misses": fp.misses if fp is not None else 0,
        "dma_bytes": dma.bytes_copied,
        "dma_ops": dma.copies,
        "cpu_busy_ns": m.cpus.total_busy_ns() - busy0,
        "service_ns_per_pkt": service_ns / max(delivered, 1),
        "work_by_stage": work,
        "conserved": all(c.span_sum() == c.latency_ns() for c in closed),
        "wall_s": wall_s,
        "events": tb.sim.events_fired,
    }
    if m.ff is not None:
        obs["ff"] = m.ff.stats()
    return obs


def run_leg(
    n_conns: int,
    packets_total: int,
    costs: CostModel,
    fast_forward: bool,
) -> Dict[str, object]:
    """One parity leg: identical schedule either way; only the fidelity
    knob differs."""
    leg_costs = costs.replace(
        trace=True, flow_fastpath=True, fast_forward=fast_forward,
        flow_fastpath_entries=max(costs.flow_fastpath_entries, 4 * n_conns),
    )
    tb = _leg_testbed(n_conns, leg_costs)
    eps, slots = tb._e21_eps, tb._e21_slots  # type: ignore[attr-defined]
    busy0 = tb.machine.cpus.total_busy_ns()
    rounds = max(1, packets_total // (BURST_PER_CONN * n_conns))
    delivered = 0
    t0 = time.perf_counter()
    for _round in range(rounds):
        _send_burst(tb, eps, slots, BURST_PER_CONN)
        tb.run_all()
        delivered += _drain(tb, eps, BURST_PER_CONN)
    wall = time.perf_counter() - t0
    return _observe(tb, delivered, busy0, wall)


def run_parity(
    n_conns: int = PARITY_CONNS,
    packets_total: int = PARITY_PACKETS,
    costs: CostModel = DEFAULT_COSTS,
) -> Dict[str, object]:
    """Leg (a): exact vs hybrid on the same schedule. Returns the
    observable table, the per-stage comparison, and a verdict."""
    exact = run_leg(n_conns, packets_total, costs, fast_forward=False)
    hybrid = run_leg(n_conns, packets_total, costs, fast_forward=True)
    tol = costs.ff_tolerance
    rows: List[Row] = []
    ok = True
    for key in EXACT_KEYS + TOLERANCE_KEYS:
        e, h = float(exact[key]), float(hybrid[key])
        err = abs(h - e) / max(abs(e), 1e-9)
        this_ok = (h == e) if key in EXACT_KEYS else (err <= tol)
        ok = ok and this_ok
        rows.append({
            "observable": key, "exact": e, "hybrid": h,
            "rel_err": err, "ok": this_ok,
        })
    stage_rows: List[Row] = []
    stages = sorted(set(exact["work_by_stage"]) | set(hybrid["work_by_stage"]))
    for stage in stages:
        e = float(exact["work_by_stage"].get(stage, 0))
        h = float(hybrid["work_by_stage"].get(stage, 0))
        err = abs(h - e) / max(abs(e), 1e-9)
        this_ok = err <= tol
        ok = ok and this_ok
        stage_rows.append({
            "observable": f"stage:{stage}", "exact": e, "hybrid": h,
            "rel_err": err, "ok": this_ok,
        })
    ok = ok and exact["conserved"] and hybrid["conserved"]
    ff = hybrid["ff"]
    fluid_fraction = ff["fluid_packets"] / max(hybrid["delivered"], 1)
    return {
        "rows": rows,
        "stage_rows": stage_rows,
        "exact": exact,
        "hybrid": hybrid,
        "ok": bool(ok),
        "tolerance": tol,
        "fluid_fraction": fluid_fraction,
        "ff": ff,
    }


def _speedup_costs(costs: CostModel, n_conns: int) -> CostModel:
    """Both crossover legs run with capacity sized for ``n_conns``: the
    verdict cache, NIC SRAM, and shared descriptor rings must hold the
    full population or flows fall back / demote and the point measures
    eviction churn instead of fidelity."""
    return costs.replace(
        flow_fastpath=True,
        flow_fastpath_entries=4 * n_conns,
        smartnic_sram_bytes=max(
            costs.smartnic_sram_bytes, 2 * n_conns * costs.conn_state_bytes),
        rx_ring_entries=2_048, tx_ring_entries=2_048,
    )


def run_speedup(
    n_conns: int = SPEEDUP_CONNS,
    packets_per_conn: int = SPEEDUP_PACKETS_PER_CONN,
    probe_conns: int = PROBE_CONNS,
    costs: CostModel = DEFAULT_COSTS,
) -> Row:
    """Leg (b): hybrid at full scale vs a packet-exact probe at the same
    connection scale; speedup is the delivered-packets-per-wall-second
    ratio."""
    base = _speedup_costs(costs, n_conns)

    # Hybrid leg: warm every flow to promotion with exact packets, then
    # absorb the rest of each flow's schedule in bulk.
    hy_costs = base.replace(fast_forward=True, ff_promote_after=1)
    warmup = 1 + hy_costs.ff_promote_after  # install miss + promotion streak
    tb = _leg_testbed(n_conns, hy_costs)
    eps, slots = tb._e21_eps, tb._e21_slots  # type: ignore[attr-defined]
    ff = tb.machine.ff
    assert ff is not None
    t0 = time.perf_counter()
    for _ in range(warmup):
        _send_burst(tb, eps, slots, 1)
        tb.run_all()
        _drain(tb, eps, 1)
    promoted = ff.promoted_count
    bulk = packets_per_conn - warmup
    absorbed = 0
    for proto, port in slots:
        flow = FiveTuple(proto, PEER_IP, 600, HOST_IP, port)
        if ff.absorb(flow, bulk):
            absorbed += bulk
    ff.flush_all()
    tb.run_all()
    hybrid_wall = time.perf_counter() - t0
    hybrid_pkts = warmup * n_conns + absorbed
    hybrid_events = tb.sim.events_fired

    # Exact probe: same scale, same capacity, fast_forward off; traffic on
    # a sample of the population (per-packet cost is what's being measured
    # — the structures are all at full size).
    ex = _leg_testbed(n_conns, base)
    ex_eps, ex_slots = ex._e21_eps, ex._e21_slots  # type: ignore[attr-defined]
    subset = range(0, min(probe_conns, n_conns))
    t0 = time.perf_counter()
    for _ in range(2):
        _send_burst(ex, ex_eps, ex_slots, BURST_PER_CONN, subset=subset)
        ex.run_all()
        _drain(ex, ex_eps, BURST_PER_CONN, subset=subset)
    exact_wall = time.perf_counter() - t0
    exact_pkts = 2 * BURST_PER_CONN * len(subset)

    exact_rate = exact_pkts / max(exact_wall, 1e-9)
    hybrid_rate = hybrid_pkts / max(hybrid_wall, 1e-9)
    return {
        "connections": n_conns,
        "packets_per_conn": packets_per_conn,
        "promoted": promoted,
        "fluid_packets": ff.fluid_packets,
        "epochs": ff.epochs,
        "hybrid_pkts": hybrid_pkts,
        "hybrid_wall_s": hybrid_wall,
        "hybrid_events": hybrid_events,
        "exact_probe_pkts": exact_pkts,
        "exact_probe_wall_s": exact_wall,
        "exact_ns_per_pkt": 1e9 / max(exact_rate, 1e-9),
        "hybrid_ns_per_pkt": 1e9 / max(hybrid_rate, 1e-9),
        "speedup": hybrid_rate / max(exact_rate, 1e-9),
    }


def headline(parity: Dict[str, object], speedup: Optional[Row]) -> dict:
    h = {
        "parity_ok": parity["ok"],
        "tolerance": parity["tolerance"],
        "fluid_fraction": parity["fluid_fraction"],
        "max_rel_err": max(
            float(r["rel_err"]) for r in parity["rows"] + parity["stage_rows"]
        ),
    }
    if speedup is not None:
        h["connections"] = speedup["connections"]
        h["speedup"] = speedup["speedup"]
    return h


def main() -> str:
    parity = run_parity()
    speedup = run_speedup()
    h = headline(parity, speedup)
    return "\n".join([
        "fidelity parity (exact vs hybrid, identical schedules)",
        fmt_table(parity["rows"] + parity["stage_rows"], columns=PARITY_COLUMNS),
        "",
        "wall-clock crossover (hybrid at scale vs packet-exact probe)",
        fmt_table([speedup]),
        "",
        f"headline: hybrid fidelity is invisible in the observables "
        f"(max relative error {h['max_rel_err']:.4%} against a "
        f"{h['tolerance']:.0%} tolerance, {h['fluid_fraction']:.0%} of "
        f"packets fluid) and {h['speedup']:.0f}x faster per packet at "
        f"{h['connections']:,} connections",
    ])


if __name__ == "__main__":
    print(main())
