"""Behaviour shared across all baseline dataplanes, parametrized."""

import pytest

from repro.dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    SidecarDataplane,
    Testbed,
)
from repro.dataplanes.testbed import PEER_IP
from repro.errors import WouldBlock
from repro.net import PROTO_UDP
from repro.sim import SimProcess

ALL_PLANES = [KernelPathDataplane, BypassDataplane, SidecarDataplane, HypervisorDataplane]
BLOCKING_PLANES = [KernelPathDataplane, SidecarDataplane]
POLLING_PLANES = [BypassDataplane, HypervisorDataplane]


@pytest.fixture(params=ALL_PLANES, ids=lambda c: c.name)
def testbed(request):
    return Testbed(request.param)


class TestTx:
    def test_send_reaches_peer(self, testbed):
        proc = testbed.spawn("app", "bob", core_id=1)
        ep = testbed.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        results = []
        ep.send(700, dst=(PEER_IP, 9000)).add_callback(lambda s: results.append(s.value))
        testbed.run_all()
        assert results == [True]
        assert len(testbed.peer.received) == 1
        pkt = testbed.peer.received[0]
        assert pkt.five_tuple.dport == 9000
        assert pkt.payload_len == 700

    def test_connected_send_uses_peer(self, testbed):
        proc = testbed.spawn("app", "bob", core_id=1)
        ep = testbed.dataplane.open_endpoint(proc, PROTO_UDP, 6000)

        def client():
            yield ep.connect(PEER_IP, 9100)
            yield ep.send(100)

        SimProcess(testbed.sim, client())
        testbed.run_all()
        assert testbed.peer.received[0].five_tuple.dport == 9100

    def test_send_without_destination_rejected(self, testbed):
        from repro.errors import UnsupportedOperation

        proc = testbed.spawn("app", "bob", core_id=1)
        ep = testbed.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        with pytest.raises(UnsupportedOperation):
            ep.send(100)

    def test_multiple_sends_all_arrive(self, testbed):
        proc = testbed.spawn("app", "bob", core_id=1)
        ep = testbed.dataplane.open_endpoint(proc, PROTO_UDP, 6000)

        def client():
            yield ep.connect(PEER_IP, 9000)
            for _ in range(20):
                yield ep.send(200)

        SimProcess(testbed.sim, client())
        testbed.run_all()
        assert len(testbed.peer.received) == 20


class TestRx:
    def test_inbound_message_delivered(self, testbed):
        proc = testbed.spawn("srv", "bob", core_id=1)
        ep = testbed.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        got = []

        def server():
            msg = yield ep.recv(blocking=True)
            got.append(msg)
            ep.close()

        SimProcess(testbed.sim, server())
        testbed.sim.after(10_000, testbed.peer.send_udp, 555, 7000, 800)
        testbed.run(until=5_000_000)
        assert len(got) == 1
        size, src_ip, sport = got[0]
        assert (size, src_ip, sport) == (800, PEER_IP, 555)

    def test_nonblocking_recv_would_block(self, testbed):
        proc = testbed.spawn("srv", "bob", core_id=1)
        ep = testbed.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        errs = []
        sig = ep.recv(blocking=False)
        sig.add_callback(lambda s: errs.append(type(s.exception)))
        testbed.run_all()
        assert errs == [WouldBlock]


class TestBlockingSemantics:
    @pytest.mark.parametrize("plane", BLOCKING_PLANES, ids=lambda c: c.name)
    def test_blocking_planes_leave_core_idle(self, plane):
        tb = Testbed(plane)
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        assert tb.dataplane.supports_blocking_io

        def server():
            yield ep.recv(blocking=True)

        SimProcess(tb.sim, server())
        tb.sim.after(1_000_000, tb.peer.send_udp, 555, 7000, 100)
        tb.run_all()
        # During the 1 ms wait the app core did nearly nothing.
        assert tb.machine.cpus[1].busy_ns < 100_000

    @pytest.mark.parametrize("plane", POLLING_PLANES, ids=lambda c: c.name)
    def test_polling_planes_burn_core(self, plane):
        tb = Testbed(plane)
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        assert not tb.dataplane.supports_blocking_io

        def server():
            msg = yield ep.recv(blocking=True)
            ep.close()
            return msg

        SimProcess(tb.sim, server())
        tb.sim.after(1_000_000, tb.peer.send_udp, 555, 7000, 100)
        tb.run(until=2_000_000)
        # The 1 ms wait was pure spinning: core busy ~the whole time.
        assert tb.machine.cpus[1].busy_ns > 900_000
