"""E1 — §1: "the OS software stack has emerged as a bottleneck".

Closed-loop TX across every dataplane and payload size. The shape the
paper's argument predicts:

* the kernel path's per-packet CPU cost is an order of magnitude above the
  bypass-class paths, capping its attainable throughput;
* KOPI's cost matches kernel bypass (the interposition moved to the NIC,
  off the critical CPU path), not the kernel.
"""

from __future__ import annotations

from typing import List

from ..config import DEFAULT_COSTS, CostModel
from .common import Row, fmt_table, planes_under_test, run_bulk_tx

PAYLOADS = (64, 512, 1_458)
DEFAULT_COUNT = 300


def run_e1(
    count: int = DEFAULT_COUNT,
    payloads: "tuple[int, ...]" = PAYLOADS,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    rows: List[Row] = []
    for plane_cls in planes_under_test():
        for payload in payloads:
            row = run_bulk_tx(plane_cls, payload, count, costs=costs)
            del row["movements"]
            rows.append(row)
    return rows


def headline(rows: List[Row]) -> dict:
    """Key ratios for EXPERIMENTS.md: kernel-vs-bypass and kopi-vs-bypass
    per-packet CPU at full MTU."""
    at_mtu = {r["plane"]: r for r in rows if r["payload_B"] == max(PAYLOADS)}
    bypass = at_mtu["bypass"]["app_cpu_ns_per_pkt"]
    return {
        "kernel_vs_bypass_cpu_ratio": at_mtu["kernel"]["app_cpu_ns_per_pkt"] / bypass,
        "kopi_vs_bypass_cpu_ratio": at_mtu["kopi"]["app_cpu_ns_per_pkt"] / bypass,
        "kernel_goodput_gbps": at_mtu["kernel"]["goodput_gbps"],
        "kopi_goodput_gbps": at_mtu["kopi"]["goodput_gbps"],
    }


def main() -> str:
    rows = run_e1()
    text = fmt_table(rows)
    summary = headline(rows)
    lines = [text, "",
             "headline: kernel costs "
             f"{summary['kernel_vs_bypass_cpu_ratio']:.1f}x bypass per packet; "
             f"KOPI costs {summary['kopi_vs_bypass_cpu_ratio']:.2f}x bypass"]
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
