#!/usr/bin/env python3
"""Zero-copy crossover: when does eliding the kernel's payload copy pay?

MSG_ZEROCOPY-style TX trades the per-byte user->kernel copy for a fixed
per-send cost (pin the pages, deliver a completion). Per-byte vs fixed
means there is a break-even message size: below it the pin costs more
than the copy it saves; above it the saving grows linearly. The sidecar
is the counterpoint — its movement is cross-core cache-line migration,
charged per byte by the coherence fabric, and the kernel's zero-copy
knobs cannot touch it.

Run:  python examples/zero_copy_crossover.py         (~15 seconds)
"""

from repro.config import DEFAULT_COSTS
from repro.dataplanes import KernelPathDataplane, SidecarDataplane
from repro.experiments.common import fmt_table, run_bulk_tx

SIZES = (64, 1_458, 4_096, 16_384, 32_768)
COLUMNS = [
    "plane", "mode", "payload_B", "goodput_gbps",
    "app_cpu_ns_per_pkt", "copied_B_per_pkt", "elided_B_per_pkt",
]

ZC_COSTS = DEFAULT_COSTS.replace(tx_zerocopy=True, rx_zerocopy=True)


def main() -> None:
    rows = []
    for plane_cls in (KernelPathDataplane, SidecarDataplane):
        for mode, costs in (("copy", DEFAULT_COSTS), ("zerocopy", ZC_COSTS)):
            for size in SIZES:
                row = run_bulk_tx(plane_cls, size, 64, costs=costs, with_copies=True)
                copies = row.pop("copies")
                del row["movements"]
                row["mode"] = mode
                row["copied_B_per_pkt"] = copies["cpu_bytes_copied"] / 64
                row["elided_B_per_pkt"] = copies["bytes_elided"] / 64
                rows.append(row)
    print(fmt_table(rows, columns=COLUMNS))

    print(
        f"\nbreak-even for MSG_ZEROCOPY at these costs: "
        f"{DEFAULT_COSTS.zc_tx_break_even_bytes} bytes — "
        f"{DEFAULT_COSTS.zc_tx_pin_ns + DEFAULT_COSTS.zc_tx_completion_ns} ns of\n"
        "pin+completion vs 0.06 ns per copied byte. Below it zerocopy is a\n"
        "regression; above it the kernel path's per-packet CPU goes flat while\n"
        "the copy path keeps growing with message size. The sidecar's rows\n"
        "never change: coherence traffic is movement a TX flag cannot elide.\n"
        "Full sweep (all five planes + RX mode): python -m repro e13"
    )


if __name__ == "__main__":
    main()
