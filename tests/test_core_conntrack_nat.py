"""On-NIC conntrack, NAT, and rate policing (§3's 'everything else the
kernel does today')."""

import pytest

from repro import units
from repro.core import NormanOS
from repro.core.conntrack import (
    CT_ENTRY_BYTES,
    ConntrackTable,
    NatTable,
    STATE_ESTABLISHED,
    STATE_NEW,
)
from repro.dataplanes import Testbed
from repro.dataplanes.testbed import HOST_IP, PEER_IP
from repro.errors import PolicyError
from repro.net import IPv4Address, MacAddress, PROTO_UDP, make_udp
from repro.nic.smartnic import SramAllocator
from repro.sim import SimProcess
from repro.tools import Ss, Tc

MAC_A, MAC_B = MacAddress.from_index(1), MacAddress.from_index(9)
PUBLIC_IP = IPv4Address.parse("192.0.2.1")


def pkt(sport=1000, dport=2000, src=HOST_IP, dst=PEER_IP, size=100):
    return make_udp(MAC_A, MAC_B, src, dst, sport, dport, size)


class TestConntrackTable:
    def test_new_then_established(self):
        ct = ConntrackTable(SramAllocator(10_000))
        entry = ct.observe(pkt(), now_ns=10)
        assert entry.state == STATE_NEW
        reply = pkt(sport=2000, dport=1000, src=PEER_IP, dst=HOST_IP)
        entry2 = ct.observe(reply, now_ns=20)
        assert entry2 is entry
        assert entry.state == STATE_ESTABLISHED
        assert entry.packets == 2
        assert len(ct) == 1

    def test_sram_exhaustion_leaves_flow_untracked(self):
        ct = ConntrackTable(SramAllocator(CT_ENTRY_BYTES))  # room for one
        assert ct.observe(pkt(sport=1), 0) is not None
        assert ct.observe(pkt(sport=2), 0) is None
        assert ct.metrics.counter("untracked").value == 1

    def test_expiry_reclaims_sram(self):
        sram = SramAllocator(2 * CT_ENTRY_BYTES)
        ct = ConntrackTable(sram)
        ct.observe(pkt(sport=1), now_ns=0)
        ct.observe(pkt(sport=2), now_ns=100)
        assert ct.expire_older_than(50) == 1
        assert len(ct) == 1
        assert sram.used_bytes == CT_ENTRY_BYTES
        assert ct.observe(pkt(sport=3), now_ns=200) is not None

    def test_lookup_both_directions(self):
        ct = ConntrackTable(SramAllocator(10_000))
        entry = ct.observe(pkt(), 0)
        assert ct.lookup(entry.flow) is entry
        assert ct.lookup(entry.flow.reversed()) is entry


class TestNatTable:
    def test_outbound_rewrite_and_reply_translation(self):
        nat = NatTable(SramAllocator(10_000), PUBLIC_IP)
        out = nat.translate_out(pkt(sport=5555, dport=80))
        assert out.ipv4.src == PUBLIC_IP
        public_port = out.l4.sport
        assert public_port >= 30_000
        assert out.five_tuple.dport == 80  # destination untouched

        reply = make_udp(MAC_B, MAC_A, PEER_IP, PUBLIC_IP, 80, public_port, 50)
        back = nat.translate_in(reply)
        assert back.ipv4.dst == HOST_IP
        assert back.l4.dport == 5555

    def test_binding_reused_per_flow(self):
        nat = NatTable(SramAllocator(10_000), PUBLIC_IP)
        a = nat.translate_out(pkt(sport=5555))
        b = nat.translate_out(pkt(sport=5555))
        assert a.l4.sport == b.l4.sport
        assert len(nat.bindings()) == 1
        c = nat.translate_out(pkt(sport=5556))
        assert c.l4.sport != a.l4.sport

    def test_unbound_inbound_passes_through(self):
        nat = NatTable(SramAllocator(10_000), PUBLIC_IP)
        stray = make_udp(MAC_B, MAC_A, PEER_IP, PUBLIC_IP, 80, 31_234, 50)
        assert nat.translate_in(stray) is stray
        assert nat.metrics.counter("no_binding").value == 1

    def test_non_public_inbound_untouched(self):
        nat = NatTable(SramAllocator(10_000), PUBLIC_IP)
        normal = make_udp(MAC_B, MAC_A, PEER_IP, HOST_IP, 80, 7000, 50)
        assert nat.translate_in(normal) is normal

    def test_sram_exhaustion_returns_none(self):
        nat = NatTable(SramAllocator(10), PUBLIC_IP)
        assert nat.translate_out(pkt()) is None
        assert nat.metrics.counter("exhausted").value == 1

    def test_release_frees_port_and_sram(self):
        sram = SramAllocator(10_000)
        nat = NatTable(sram, PUBLIC_IP)
        out = nat.translate_out(pkt(sport=5555))
        ft = pkt(sport=5555).five_tuple
        nat.release(ft)
        assert sram.used_bytes == 0
        with pytest.raises(PolicyError):
            nat.release(ft)

    def test_rewrite_preserves_attribution_and_checksum(self):
        from repro.net.checksum import internet_checksum

        nat = NatTable(SramAllocator(10_000), PUBLIC_IP)
        original = pkt()
        original.meta.owner_pid = 42
        out = nat.translate_out(original)
        assert out.meta.owner_pid == 42
        assert internet_checksum(out.ipv4.to_bytes()) == 0  # checksum redone


class TestNatOnNic:
    def test_end_to_end_masquerade(self):
        tb = Testbed(NormanOS)
        tb.dataplane.control.enable_masquerade(PUBLIC_IP)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        got = []

        def client():
            yield ep.connect(PEER_IP, 9000)
            yield ep.send(100)
            msg = yield ep.recv(blocking=True)
            got.append(msg)

        SimProcess(tb.sim, client())
        tb.run(until=1 * units.MS)

        # On the wire: source is the public address, not the host's.
        wire = tb.peer.received[0]
        assert wire.ipv4.src == PUBLIC_IP
        assert wire.l4.sport >= 30_000
        # Reply to the public tuple is translated back and steered home.
        tb.peer.send_udp(9000, wire.l4.sport, 77, dst_ip=PUBLIC_IP)
        tb.run_all()
        assert len(got) == 1
        assert got[0][0] == 77

    def test_conntrack_sees_nic_traffic(self):
        tb = Testbed(NormanOS)
        ct = tb.dataplane.control.enable_conntrack()
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ep.send(100, dst=(PEER_IP, 9000))
        tb.run_all()
        assert len(ct) == 1
        entry = ct.entries()[0]
        assert entry.packets == 1
        tb.peer.send_udp(9000, 6000, 50)
        tb.run_all()
        assert entry.state == STATE_ESTABLISHED


class TestPolicing:
    def test_tc_police_caps_cgroup_rate(self):
        tb = Testbed(NormanOS)
        tb.kernel.cgroups.create("/games")
        game = tb.spawn("game", "bob", core_id=1)
        tb.kernel.cgroups.assign(game, "/games")
        other = tb.spawn("work", "charlie", core_id=2)
        game_ep = tb.dataplane.open_endpoint(game, PROTO_UDP, 6000)
        other_ep = tb.dataplane.open_endpoint(other, PROTO_UDP, 6001)
        out = Tc(tb.dataplane, tb.kernel)(
            "police add dev nic0 cgroup /games rate 8mbit burst 2000"
        )
        assert out.startswith("ok:")
        tb.run_all()

        def blast(ep, n):
            def gen():
                for _ in range(n):
                    yield ep.send(958, dst=(PEER_IP, 9000))
            return gen

        SimProcess(tb.sim, blast(game_ep, 10)())
        SimProcess(tb.sim, blast(other_ep, 10)())
        tb.run_all()
        by_comm = {}
        for p in tb.peer.received:
            comm = tb.dataplane.attribution_of(p)[2]
            by_comm[comm] = by_comm.get(comm, 0) + 1
        # 10 x 1000B back to back at 8 Mbit/s with a 2-packet bucket: only
        # the burst gets through; the unpoliced app is untouched.
        assert by_comm.get("work", 0) == 10
        assert by_comm.get("game", 0) == 2
        assert tb.dataplane.nic.metrics.counter("tx_policed").value == 8

    def test_police_refused_without_programmable_nic(self):
        from repro.dataplanes import BypassDataplane
        from repro.errors import UnsupportedOperation

        tb = Testbed(BypassDataplane)
        tb.kernel.cgroups.create("/games")
        with pytest.raises(UnsupportedOperation):
            Tc(tb.dataplane, tb.kernel)(
                "police add dev nic0 cgroup /games rate 8mbit burst 2000"
            )

    def test_police_validation(self):
        from repro.errors import KernelError, ToolError

        tb = Testbed(NormanOS)
        tc = Tc(tb.dataplane, tb.kernel)
        with pytest.raises(ToolError):
            tc("police add dev nic0 cgroup /g rate fast burst 10")
        with pytest.raises(KernelError):
            tb.dataplane.control.configure_police("/missing", units.MBPS, 100)
        tb.kernel.cgroups.create("/g")
        with pytest.raises(KernelError):
            tb.dataplane.control.configure_police("/g", 0, 100)


class TestSsTool:
    def test_norman_listing_shows_paths_and_sram(self):
        tb = Testbed(NormanOS)
        proc = tb.spawn("postgres", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 5432)
        ep.send(100, dst=(PEER_IP, 9000))
        tb.run_all()
        ss = Ss(tb.dataplane, tb.kernel)
        out = ss()
        assert "postgres" in out
        assert "fast" in out
        assert "NIC SRAM" in out
        assert ss.fallback_count() == 0

    def test_ss_reports_fallback(self):
        from repro.config import DEFAULT_COSTS

        tb = Testbed(NormanOS, smartnic_sram_bytes=1)
        proc = tb.spawn("app", "bob", core_id=1)
        tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        ss = Ss(tb.dataplane, tb.kernel)
        assert "fallback" in ss()
        assert ss.fallback_count() == 1

    def test_ss_on_kernel_dataplane(self):
        from repro.dataplanes import KernelPathDataplane

        tb = Testbed(KernelPathDataplane)
        proc = tb.spawn("app", "bob", core_id=1)
        tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        out = Ss(tb.dataplane, tb.kernel)()
        assert "app" in out
        assert Ss(tb.dataplane, tb.kernel).fallback_count() == 0
