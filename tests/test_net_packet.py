"""Headers, packets, five-tuples."""

import pytest

from repro.errors import PacketError
from repro.net import (
    ARP_OP_REQUEST,
    ETHERTYPE_ARP,
    FiveTuple,
    IPv4Address,
    MacAddress,
    Packet,
    PROTO_TCP,
    PROTO_UDP,
    make_arp_request,
    make_tcp,
    make_udp,
)
from repro.net.checksum import internet_checksum
from repro.net.headers import (
    IPV4_HEADER_LEN,
    TCP_FLAG_SYN,
    EthernetHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)

MAC_A = MacAddress.from_index(1)
MAC_B = MacAddress.from_index(2)
IP_A = IPv4Address.parse("10.0.0.1")
IP_B = IPv4Address.parse("10.0.0.2")


class TestHeaders:
    def test_ipv4_checksum_is_valid(self):
        hdr = Ipv4Header(src=IP_A, dst=IP_B, proto=PROTO_TCP, payload_len=100)
        raw = hdr.to_bytes()
        assert len(raw) == IPV4_HEADER_LEN
        assert internet_checksum(raw) == 0  # checksum over header verifies

    def test_ipv4_total_length(self):
        hdr = Ipv4Header(src=IP_A, dst=IP_B, proto=PROTO_UDP, payload_len=80)
        assert hdr.total_length == 100

    def test_ttl_decrement(self):
        hdr = Ipv4Header(src=IP_A, dst=IP_B, proto=PROTO_TCP, ttl=2)
        assert hdr.decrement_ttl().ttl == 1
        with pytest.raises(PacketError):
            Ipv4Header(src=IP_A, dst=IP_B, proto=PROTO_TCP, ttl=0).decrement_ttl()

    def test_tcp_flags(self):
        tcp = TcpHeader(sport=1, dport=2, flags=TCP_FLAG_SYN)
        assert tcp.has_flag(TCP_FLAG_SYN)
        assert len(tcp.to_bytes()) == 20

    def test_udp_length_field(self):
        udp = UdpHeader(sport=1, dport=2, payload_len=100)
        assert udp.length == 108

    @pytest.mark.parametrize("port", [-1, 65_536])
    def test_port_range_enforced(self, port):
        with pytest.raises(PacketError):
            TcpHeader(sport=port, dport=80)

    def test_ethernet_serialization(self):
        eth = EthernetHeader(dst=MAC_B, src=MAC_A, ethertype=ETHERTYPE_ARP)
        raw = eth.to_bytes()
        assert raw[:6] == MAC_B.to_bytes()
        assert raw[12:14] == b"\x08\x06"


class TestPacketConstruction:
    def test_udp_packet_wire_len(self):
        pkt = make_udp(MAC_A, MAC_B, IP_A, IP_B, sport=1000, dport=53, payload_len=100)
        assert pkt.wire_len == 14 + 20 + 8 + 100
        assert pkt.is_udp and not pkt.is_tcp and not pkt.is_arp

    def test_tcp_packet_five_tuple(self):
        pkt = make_tcp(MAC_A, MAC_B, IP_A, IP_B, sport=5555, dport=5432)
        ft = pkt.five_tuple
        assert ft == FiveTuple(PROTO_TCP, IP_A, 5555, IP_B, 5432)

    def test_arp_packet(self):
        pkt = make_arp_request(MAC_A, IP_A, IP_B)
        assert pkt.is_arp
        assert pkt.eth.dst.is_broadcast
        assert pkt.five_tuple is None
        assert pkt.arp.op == ARP_OP_REQUEST
        assert "ARP request" in pkt.summary()

    def test_wire_image_roundtrip_lengths(self):
        pkt = make_udp(MAC_A, MAC_B, IP_A, IP_B, sport=1, dport=2, payload_len=37)
        assert len(pkt.to_bytes()) == pkt.wire_len

    def test_packet_ids_unique(self):
        a = make_udp(MAC_A, MAC_B, IP_A, IP_B, sport=1, dport=2)
        b = make_udp(MAC_A, MAC_B, IP_A, IP_B, sport=1, dport=2)
        assert a.packet_id != b.packet_id

    def test_invalid_combinations_rejected(self):
        eth = EthernetHeader(dst=MAC_B, src=MAC_A)
        with pytest.raises(PacketError):
            Packet(eth=eth)  # no L3
        with pytest.raises(PacketError):
            Packet(eth=eth, l4=UdpHeader(1, 2))  # L4 without IP

    def test_summary_formats(self):
        pkt = make_tcp(MAC_A, MAC_B, IP_A, IP_B, sport=80, dport=8080)
        assert "TCP 10.0.0.1:80 > 10.0.0.2:8080" in pkt.summary()


class TestFiveTuple:
    def test_reversed(self):
        ft = FiveTuple(PROTO_TCP, IP_A, 1000, IP_B, 80)
        rev = ft.reversed()
        assert rev.src_ip == IP_B and rev.sport == 80
        assert rev.dst_ip == IP_A and rev.dport == 1000
        assert rev.reversed() == ft

    def test_hashable(self):
        ft = FiveTuple(PROTO_UDP, IP_A, 1, IP_B, 2)
        assert ft in {ft}

    def test_validation(self):
        with pytest.raises(PacketError):
            FiveTuple(300, IP_A, 1, IP_B, 2)
        with pytest.raises(PacketError):
            FiveTuple(PROTO_TCP, IP_A, 70_000, IP_B, 2)
