"""E16 — latency anatomy: where every nanosecond of E1/E2 goes.

E1 and E2 report per-plane *totals* (host CPU per packet, mean one-way
latency). This experiment turns tracing on and decomposes those totals into
the stage taxonomy of :mod:`repro.trace` — syscall, copy, protocol,
netfilter/overlay, qdisc, rings, DMA, NIC pipeline, coherence, wire,
scheduling waits — per plane, per packet.

Two cross-checks make the decomposition trustworthy rather than decorative:

* **CPU conservation**: the tracer's attributed CPU nanoseconds (context
  spans with ``cpu=True`` plus loose work) must reproduce the measured
  ``host_cpu_ns_per_pkt`` of the same run within 1%.
* **Latency conservation**: per-packet span sums must equal the measured
  end-to-end latency exactly ("no lost nanoseconds"), so the traced mean
  latency matches the measured mean within 1%.

With those holding, the headline ratio (kernel vs KOPI host CPU with the
same 8-rule policy chain installed — E2's 13-14x) is reproduced *from the
stage decomposition itself*: the kernel's syscall+copy+proto columns are
the tax, and KOPI's near-empty CPU columns are the point of the paper.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..config import DEFAULT_COSTS, CostModel
from ..trace.stages import STAGES
from .common import Row, fmt_table, planes_under_test, run_bulk_tx
from .e2_interposition_placement import N_RULES, _install_rules

PAYLOAD = 1_458
DEFAULT_COUNT = 300

# Planes that can host E2's 8-rule chain; bypass and the hypervisor vswitch
# run uninterposed (bypass cannot interpose at all).
INTERPOSABLE = {"kernel", "sidecar", "kopi"}


def run_e16(
    count: int = DEFAULT_COUNT, costs: CostModel = DEFAULT_COSTS
) -> Dict[str, object]:
    """Traced bulk-TX on every plane. Returns ``{"rows", "stage_rows",
    "reports"}``: the per-plane summary table, the per-plane per-stage
    mean-ns table, and each plane's raw tracer report."""
    traced = replace(costs, trace=True)
    rows: List[Row] = []
    stage_rows: List[Row] = []
    reports: Dict[str, dict] = {}
    for plane_cls in planes_under_test():
        setup = _install_rules if plane_cls.name in INTERPOSABLE else None
        row = run_bulk_tx(
            plane_cls, PAYLOAD, count, costs=traced, setup=setup, return_tb=True
        )
        tb = row.pop("tb")
        tracer = tb.machine.tracer
        rep = tracer.report()
        reports[plane_cls.name] = rep

        closed = tracer.closed_contexts()
        conserved = all(c.span_sum() == c.latency_ns() for c in closed)
        pkts = max(int(row["delivered"]), 1)
        traced_cpu_pp = rep["cpu_ns_total"] / pkts
        traced_lat_us = (rep["latency"]["mean"] or 0.0) / 1_000.0
        measured_cpu_pp = float(row["host_cpu_ns_per_pkt"])
        measured_lat_us = float(row["latency_us_mean"])
        rows.append(
            {
                "plane": plane_cls.name,
                "interposed": setup is not None,
                "pkts": pkts,
                "cpu_ns_per_pkt": measured_cpu_pp,
                "traced_cpu_ns_per_pkt": traced_cpu_pp,
                "cpu_err_pct": 100.0 * abs(traced_cpu_pp - measured_cpu_pp)
                / max(measured_cpu_pp, 1e-9),
                "latency_us": measured_lat_us,
                "traced_latency_us": traced_lat_us,
                "conserved": conserved,
            }
        )
        for stage in STAGES:
            summ = rep["stages"].get(stage)
            loose = rep["loose"].get(stage)
            if summ is None and loose is None:
                continue
            per_pkt = (summ["mean"] * summ["count"] / pkts) if summ else 0.0
            stage_rows.append(
                {
                    "plane": plane_cls.name,
                    "stage": stage,
                    "ns_per_pkt": per_pkt,
                    "p50_ns": summ["p50"] if summ else 0.0,
                    "p99_ns": summ["p99"] if summ else 0.0,
                    "loose_ns_per_pkt": (loose["ns"] / pkts) if loose else 0.0,
                }
            )
    return {"rows": rows, "stage_rows": stage_rows, "reports": reports}


def headline(result: Dict[str, object]) -> dict:
    rows = {r["plane"]: r for r in result["rows"]}
    kernel = rows["kernel"]
    kopi = rows["kopi"]
    return {
        "kernel_vs_kopi_cpu_traced": (
            kernel["traced_cpu_ns_per_pkt"]
            / max(kopi["traced_cpu_ns_per_pkt"], 1e-9)
        ),
        "kernel_vs_kopi_cpu_measured": (
            kernel["cpu_ns_per_pkt"] / max(kopi["cpu_ns_per_pkt"], 1e-9)
        ),
        "max_cpu_err_pct": max(r["cpu_err_pct"] for r in result["rows"]),
        "max_latency_err_pct": max(
            100.0
            * abs(r["traced_latency_us"] - r["latency_us"])
            / max(r["latency_us"], 1e-9)
            for r in result["rows"]
        ),
        "all_conserved": all(r["conserved"] for r in result["rows"]),
    }


def main() -> str:
    result = run_e16()
    h = headline(result)
    return "\n".join(
        [
            fmt_table(result["rows"]),
            "",
            fmt_table(result["stage_rows"]),
            "",
            f"headline: the stage decomposition reproduces E2's ratio — with "
            f"the same {N_RULES}-rule chain, kernel placement costs "
            f"{h['kernel_vs_kopi_cpu_traced']:.1f}x KOPI host CPU per packet "
            f"(measured {h['kernel_vs_kopi_cpu_measured']:.1f}x, attribution "
            f"error {h['max_cpu_err_pct']:.2f}%); span sums conserve "
            f"end-to-end latency on every plane: {h['all_conserved']}",
        ]
    )


if __name__ == "__main__":
    print(main())
