"""The assembled host: cores + LLC + memory + DMA + coherence fabric."""

from __future__ import annotations

from typing import Optional

from .. import units
from ..config import DEFAULT_COSTS, CostModel
from ..interpose import FlowFastPath, PolicyEngine
from ..sim import Simulator
from ..sim.fastforward import FastForwardController
from ..trace import Tracer
from .cache import AnalyticDdioModel, WayPartitionedCache
from .coherence import CoherenceFabric
from .copies import CopyLedger
from .cpu import CpuSet
from .memory import MemorySystem
from .pcie import DmaEngine
from .tenants import TenantRegistry
from ..nic.tenant_sched import WeightedFairClock


class Machine:
    """One simulated server.

    ``structural_cache=True`` wires the set-associative LLC model into the
    DMA engine (needed for E8); with ``False`` the cheaper analytic DDIO
    model is used and the DMA engine skips per-line cache bookkeeping.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        costs: CostModel = DEFAULT_COSTS,
        n_cores: int = 8,
        memory_bytes: int = 256 * units.GB,
        structural_cache: bool = False,
    ):
        self.sim = sim or Simulator()
        self.costs = costs
        self.cpus = CpuSet(self.sim, n_cores, costs)
        self.memory = MemorySystem(memory_bytes, align=costs.cache_line_bytes)
        self.llc: Optional[WayPartitionedCache] = (
            WayPartitionedCache.from_costs(costs) if structural_cache else None
        )
        self.ddio_model = AnalyticDdioModel(costs)
        self.copies = CopyLedger()
        # Tenant registry: always present (resolution must never dangle),
        # passive until ``costs.tenants`` — nothing consults it on the
        # default path, which keeps the seed fingerprint byte-identical.
        self.tenants = TenantRegistry(costs)
        self.dma = DmaEngine(self.sim, costs, llc=self.llc, ledger=self.copies)
        if costs.tenant_isolation:
            # Weighted fair arbitration of DMA bytes between tenants —
            # the fluid counterpart of the egress DRR scheduler.
            self.dma.fair_clock = WeightedFairClock(self.tenants, name="dma")
        self.coherence = CoherenceFabric(costs, ledger=self.copies)
        # Every interposition mechanism on this host (netfilter, qdiscs,
        # conntrack, taps, steering, overlays) registers here; see
        # repro.interpose for the commit/versioning contract.
        self.interpose = PolicyEngine(self.sim)
        # Megaflow-style verdict cache over the engine's points. None when
        # the cost-model flag is off: dataplanes guard every touch on that,
        # which is what keeps default-config traces seed-identical.
        self.fastpath: Optional[FlowFastPath] = (
            FlowFastPath(self.interpose, costs,
                         tenants=self.tenants if costs.tenants else None)
            if costs.flow_fastpath else None
        )
        # The tracing spine (repro.trace). Always wired so charging sites
        # can hold a reference unconditionally; disabled it never creates a
        # context, which is what keeps default-config traces seed-identical.
        self.tracer = Tracer(self.sim, enabled=costs.trace)
        # Hybrid-fidelity controller (repro.sim.fastforward). None unless
        # ``fast_forward`` is on; when wired, the policy engine's commit
        # stream and the verdict cache's miss/eviction stream become its
        # demotion boundaries, so fluid flows drop back to packet-exact
        # simulation wherever interposition state changes.
        self.ff: Optional[FastForwardController] = None
        if costs.fast_forward:
            self.ff = FastForwardController(self.sim, costs)
            self.interpose.on_commit.append(self.ff.on_policy_commit)
            assert self.fastpath is not None  # enforced by CostModel
            self.fastpath.demotion_hook = self.ff.on_fastpath_event

    @property
    def now(self) -> int:
        return self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "structural" if self.llc is not None else "analytic"
        return f"<Machine cores={len(self.cpus)} llc={mode} t={self.sim.now}ns>"
