"""Property-based tests: overlay programs always terminate, compilers agree
with the software rule engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COSTS
from repro.errors import VerifierError
from repro.kernel import ACCEPT, CHAIN_OUTPUT, DROP, NetfilterRule
from repro.net import IPv4Address, MacAddress, make_tcp, make_udp
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.overlay import (
    Instr,
    OverlayMachine,
    Program,
    VERDICT_ACCEPT,
    VERDICT_DROP,
    compile_filter_rules,
    verify,
)

MAC_A, MAC_B = MacAddress.from_index(1), MacAddress.from_index(2)
IP_A, IP_B = IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")


def random_packet():
    return st.tuples(
        st.sampled_from([PROTO_TCP, PROTO_UDP]),
        st.integers(1, 0xFFFF),
        st.integers(1, 0xFFFF),
        st.integers(0, 1400),
    ).map(lambda t: (make_tcp if t[0] == PROTO_TCP else make_udp)(
        MAC_A, MAC_B, IP_A, IP_B, t[1], t[2], t[3]
    ))


def random_verified_program():
    """Generate structurally valid programs: random straight-line ALU/load
    instructions with forward branches, ending in a terminal."""

    def build(draw_ops):
        instrs = []
        n = len(draw_ops)
        for i, (kind, a, b) in enumerate(draw_ops):
            remaining = n - i  # slots after this one incl. terminal
            if kind == "ldi":
                instrs.append(Instr(op="ldi", rd=a % 8, src=("imm", b)))
            elif kind == "alu":
                instrs.append(Instr(op="add", rd=a % 8, src=("imm", b)))
            elif kind == "ldf":
                instrs.append(Instr(op="ldf", rd=a % 8, field="l4.dport"))
            elif kind == "branch" and remaining > 1:
                target = i + 1 + (b % remaining)
                target = min(target, n)  # may jump to the terminal slot
                instrs.append(
                    Instr(op="jeq", ra=a % 8, src=("imm", b), target=target)
                )
            else:
                instrs.append(Instr(op="ldi", rd=a % 8, src=("imm", b)))
        instrs.append(Instr(op="accept"))
        return Program(instrs=tuple(instrs))

    return st.lists(
        st.tuples(
            st.sampled_from(["ldi", "alu", "ldf", "branch"]),
            st.integers(0, 7),
            st.integers(0, 0xFFFF),
        ),
        min_size=0,
        max_size=40,
    ).map(build)


class TestTermination:
    @given(prog=random_verified_program(), pkt=random_packet())
    @settings(max_examples=200)
    def test_verified_programs_terminate_within_length(self, prog, pkt):
        verify(prog)
        machine = OverlayMachine(prog, DEFAULT_COSTS)
        result = machine.execute(pkt, now_ns=0)
        assert result.instrs_executed <= len(prog)
        assert result.verdict in (VERDICT_ACCEPT, VERDICT_DROP)
        assert result.cost_ns == result.instrs_executed * DEFAULT_COSTS.overlay_instr_ns

    @given(prog=random_verified_program())
    @settings(max_examples=100)
    def test_verifier_accepts_generated_programs(self, prog):
        verify(prog)  # must not raise

    @given(target_delta=st.integers(1, 40))
    def test_verifier_rejects_any_back_edge(self, target_delta):
        pad = tuple(
            Instr(op="ldi", rd=0, src=("imm", 0)) for _ in range(target_delta)
        )
        prog = Program(
            instrs=pad + (Instr(op="jmp", target=0), Instr(op="accept"))
        )
        try:
            verify(prog)
            assert False, "back edge must be rejected"
        except VerifierError:
            pass


def rule_strategy():
    return st.builds(
        NetfilterRule,
        verdict=st.sampled_from([ACCEPT, DROP]),
        chain=st.just(CHAIN_OUTPUT),
        proto=st.one_of(st.none(), st.sampled_from([PROTO_TCP, PROTO_UDP])),
        sport=st.one_of(st.none(), st.integers(1, 0xFFFF)),
        dport=st.one_of(st.none(), st.integers(1, 0xFFFF)),
    )


class TestCompilerEquivalence:
    """The compiled overlay program must agree with the software rule
    engine on every packet — the §4.4 lowering is semantics-preserving."""

    @given(rules=st.lists(rule_strategy(), min_size=0, max_size=8),
           pkt=random_packet())
    @settings(max_examples=300)
    def test_header_rules_agree_with_software_engine(self, rules, pkt):
        from repro.kernel.netfilter import RuleTable

        table = RuleTable()
        for rule in rules:
            # Fresh copies: counters mutate.
            table.append(NetfilterRule(
                verdict=rule.verdict, chain=rule.chain, proto=rule.proto,
                sport=rule.sport, dport=rule.dport,
            ))
        software_verdict, _ = table.evaluate(CHAIN_OUTPUT, pkt, owner=None)

        prog = compile_filter_rules(rules)
        verify(prog)
        machine = OverlayMachine(prog, DEFAULT_COSTS)
        hw = machine.execute(pkt, 0)
        expected = VERDICT_DROP if software_verdict == DROP else VERDICT_ACCEPT
        assert hw.verdict == expected
