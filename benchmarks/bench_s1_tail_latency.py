"""S1 (supplementary) — RPC round-trip latency across dataplanes."""

from repro.experiments.common import fmt_table
from repro.experiments.s1_tail_latency import headline, run_s1


def test_s1_tail_latency(once):
    rows = once(run_s1, count=100)
    print("\n" + fmt_table(rows))
    h = headline(rows)
    print(f"kernel/kopi-poll p99: {h['kernel_vs_kopi_poll_p99']:.1f}x; "
          f"blocking premium: {h['kopi_blocking_premium_us']:.1f} us")
    # The kernel pays for syscalls+copies on every RPC.
    assert h["kernel_vs_kopi_poll_p99"] > 2
    # Interposition on the NIC costs a fraction of a microsecond.
    assert h["kopi_poll_vs_bypass_p99"] < 1.3
    # Blocking is a bounded, optional premium (interrupt + sched + switch).
    assert 2 < h["kopi_blocking_premium_us"] < 15
    assert all(r["completed"] == 100 for r in rows)
