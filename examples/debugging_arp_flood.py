#!/usr/bin/env python3
"""§2 Debugging, end to end: an ARP flood appears on the network; find the
process responsible — first the hard way (kernel bypass), then with KOPI.

Run:  python examples/debugging_arp_flood.py
"""

from repro.core import NormanOS
from repro.dataplanes import BypassDataplane, Testbed
from repro.apps import ArpFlooder, BulkSender
from repro.tools import Arp, Tcpdump

N_APPS = 8
FLOODER_POSITION = 5


def populate(tb):
    apps = []
    for i in range(1, N_APPS + 1):
        core = 1 + (i % (len(tb.machine.cpus) - 1))
        if i == FLOODER_POSITION:
            apps.append(ArpFlooder(tb, user="bob", count=20, core_id=core,
                                   comm=f"svc{i}").start())
        else:
            apps.append(BulkSender(tb, comm=f"svc{i}", user="bob", core_id=core,
                                   payload_len=256, count=3).start())
    return apps


def main() -> None:
    print(f"{N_APPS} look-alike services; one of them floods ARP.\n")

    print("=== kernel bypass ===")
    tb = Testbed(BypassDataplane)
    populate(tb)
    tb.run_all()
    arps = sum(1 for p in tb.peer.received if p.is_arp)
    print(f"the network saw {arps} ARP requests from this host")
    print(f"kernel ARP view: {Arp(tb.dataplane)()}")
    print("-> no global view, no attribution: Alice inspects svc1, svc2, ... "
          f"one by one until she reaches svc{FLOODER_POSITION} "
          f"({FLOODER_POSITION} inspections)")

    print("\n=== KOPI (Norman) ===")
    tb = Testbed(NormanOS)
    dump = Tcpdump(tb.dataplane)
    session = dump.start("arp")
    populate(tb)
    tb.run_all()
    print("one attributed capture:")
    lines = dump.format(session).splitlines()
    print("\n".join(lines[:3] + ["  ..."] + lines[-1:]))
    owners = {tb.dataplane.attribution_of(p) for p in session.packets}
    pid, uid, comm = next(iter(owners))
    print(f"-> culprit identified immediately: pid={pid} comm={comm}")
    print(f"kernel ARP view (repopulated by the NIC): {Arp(tb.dataplane)()}")


if __name__ == "__main__":
    main()
