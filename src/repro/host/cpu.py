"""CPU cores with busy/idle accounting.

A :class:`Core` is a non-preemptive FIFO resource: work submitted to it runs
back-to-back in submission order. Simulated processes use it as::

    yield core.execute(cost_ns)        # compute for cost_ns on this core

Polling loops therefore naturally drive a core to ~100% utilization while a
blocked process leaves it idle — which is exactly the contrast experiment E6
measures.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import CostModel
from ..errors import SimulationError
from ..sim import Signal, Simulator
from ..trace import STAGE_SCHED_WAKE


class Core:
    """One CPU core. Work is serialized; busy time is accounted exactly."""

    def __init__(self, sim: Simulator, core_id: int, costs: CostModel):
        self.sim = sim
        self.core_id = core_id
        self.costs = costs
        self.busy_ns = 0
        self._free_at = 0
        self._jobs = 0

    @property
    def free_at(self) -> int:
        """Earliest time new work could start on this core."""
        return max(self._free_at, self.sim.now)

    @property
    def jobs_run(self) -> int:
        return self._jobs

    def execute(self, cost_ns: int, label: str = "", ctx=None) -> Signal:
        """Occupy the core for ``cost_ns``; the signal fires on completion.

        Work queues behind anything already submitted, so two processes
        sharing a core serialize — the physical-movement experiments rely on
        this to charge a busy sidecar core honestly.

        ``ctx`` (a :class:`~repro.trace.TraceContext`, tracing only) gets a
        ``sched_wake`` span for any time the work queued behind a busy core,
        so traced packets conserve nanoseconds even under contention. The
        work itself is charged to its proper stage by the caller.
        """
        if cost_ns < 0:
            raise SimulationError(f"negative execute cost: {cost_ns}")
        start = max(self._free_at, self.sim.now)
        if ctx is not None and start > self.sim.now:
            ctx.add(STAGE_SCHED_WAKE, start - self.sim.now, cpu=False,
                    label="cpu_queue")
        end = start + cost_ns
        self._free_at = end
        self.busy_ns += cost_ns
        self._jobs += 1
        done = Signal(f"core{self.core_id}.exec.{label}")
        self.sim.at(end, done.succeed, end)
        return done

    def utilization(self, elapsed_ns: Optional[int] = None) -> float:
        """Fraction of time busy over ``elapsed_ns`` (default: since t=0)."""
        window = elapsed_ns if elapsed_ns is not None else self.sim.now
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_ns / window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.core_id} busy={self.busy_ns}ns>"


class CpuSet:
    """The host's cores, with simple pinning bookkeeping."""

    def __init__(self, sim: Simulator, n_cores: int, costs: CostModel):
        if n_cores < 1:
            raise SimulationError(f"need at least one core, got {n_cores}")
        self.cores: List[Core] = [Core(sim, i, costs) for i in range(n_cores)]
        self._pins: dict = {}

    def __len__(self) -> int:
        return len(self.cores)

    def __getitem__(self, idx: int) -> Core:
        return self.cores[idx]

    def pin(self, owner: object, core_id: int) -> Core:
        """Record that ``owner`` runs on ``core_id`` and return the core."""
        core = self.cores[core_id]
        self._pins[owner] = core
        return core

    def pinned_core(self, owner: object) -> Optional[Core]:
        return self._pins.get(owner)

    def least_loaded(self) -> Core:
        """Core with the least accumulated busy time (ties: lowest id)."""
        return min(self.cores, key=lambda c: (c.busy_ns, c.core_id))

    def total_busy_ns(self) -> int:
        return sum(c.busy_ns for c in self.cores)
