"""Five-tuple flow identity."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PacketError
from .addresses import IPv4Address


@dataclass(frozen=True, eq=False)
class FiveTuple:
    """(proto, src ip/port, dst ip/port) — the unit of steering and NAT.

    Five-tuples key every hot dict in the dataplane (verdict cache,
    conntrack, fast-forward state), so the hash — same value the
    generated dataclass hash would produce — is computed once at
    construction instead of per lookup, and equality compares raw
    address words instead of dispatching through ``IPv4Address``.
    """

    proto: int
    src_ip: IPv4Address
    sport: int
    dst_ip: IPv4Address
    dport: int

    def __post_init__(self) -> None:
        if not 0 <= self.proto <= 0xFF:
            raise PacketError(f"proto out of range: {self.proto}")
        for name, port in (("sport", self.sport), ("dport", self.dport)):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"{name} out of range: {port}")
        object.__setattr__(self, "_hash", hash(
            (self.proto, self.src_ip, self.sport, self.dst_ip, self.dport)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not FiveTuple:
            return NotImplemented
        return (
            self.sport == other.sport
            and self.dport == other.dport
            and self.proto == other.proto
            and self.src_ip._value == other.src_ip._value
            and self.dst_ip._value == other.dst_ip._value
        )

    def reversed(self) -> "FiveTuple":
        """The reply direction of this flow."""
        return FiveTuple(
            proto=self.proto,
            src_ip=self.dst_ip,
            sport=self.dport,
            dst_ip=self.src_ip,
            dport=self.sport,
        )

    def __str__(self) -> str:
        return (
            f"{self.src_ip}:{self.sport} -> {self.dst_ip}:{self.dport} "
            f"proto={self.proto}"
        )
