#!/usr/bin/env python3
"""Flow fast path: cache the composed verdict, keep the interposition.

The first packet of a flow walks every interposition point — netfilter
chains, qdisc classification, vswitch match-action, NIC steering, overlay
filters, conntrack — and the composed outcome is cached under the
five-tuple (the OVS megaflow / netfilter-flowtable structure). Later
packets pay one exact-match lookup. Policy commits stay atomic: every
commit bumps the PolicyEngine epoch, and stale entries die lazily on
their next lookup, so a hit can never serve a pre-commit verdict.

Run:  python examples/flow_fastpath.py         (~15 seconds)
"""

from repro.config import DEFAULT_COSTS
from repro.dataplanes import KernelPathDataplane, Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.net.headers import PROTO_UDP
from repro.experiments.common import fmt_table
from repro.experiments.e15_flow_fastpath import (
    CHURN_COLUMNS,
    PLANE_COLUMNS,
    run_e15_churn,
    run_e15_planes,
)
from repro.tools import Iptables


def main() -> None:
    # The cache is strictly opt-in: one CostModel flag per machine.
    costs = DEFAULT_COSTS.replace(flow_fastpath=True)
    tb = Testbed(KernelPathDataplane, costs=costs)
    ipt = Iptables(tb.dataplane, tb.kernel)
    ipt("-A OUTPUT -p udp --dport 9999 -j DROP")
    proc = tb.spawn("app", "bob", core_id=1)
    ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6_000)
    for _ in range(16):
        ep.send(100, dst=(PEER_IP, 9_000))
        tb.run_all()
    fp = tb.machine.fastpath
    print(f"one flow, 16 packets: {fp.misses} slow-path walk(s), "
          f"{fp.hits} cache hits ({fp.hit_rate:.0%})")
    ipt("-A OUTPUT -p udp --dport 9998 -j DROP")  # any commit bumps the epoch
    ep.send(100, dst=(PEER_IP, 9_000))
    tb.run_all()
    print(f"after one (unrelated) commit: invalidated={fp.invalidated} — "
          "the next packet re-walked and re-cached\n")

    print("per-plane: fast path off vs on (16 distractor rules installed):")
    print(fmt_table(run_e15_planes(count=128), columns=PLANE_COLUMNS))

    print("\nchurn sensitivity (kernel plane, cache on):")
    print(fmt_table(run_e15_churn(count=128), columns=CHURN_COLUMNS))
    print(
        "\nSteady-state traffic hits the cache >99% of the time and the"
        "\nrule walks collapse to one per flow; policy churn invalidates"
        "\nthe whole cache per commit, dragging the hit rate down as the"
        "\ntoggle interval approaches the packet interval. Full sweep:"
        "\npython -m repro e15"
    )


if __name__ == "__main__":
    main()
