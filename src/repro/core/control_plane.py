"""Norman's in-kernel control plane.

Responsibilities, straight from §4.2–§4.4:

* **connection setup** — applications call in through the kernel
  (``connect``/``accept``-like); the control plane allocates and pins the
  per-connection ring pair, claims on-NIC SRAM for connection state,
  programs steering, and records the owner — falling back to the software
  path when NIC resources are exhausted (§5);
* **policy compilation** — netfilter rules and tc configs are lowered to
  overlay programs (owner rules resolved to connection ids) and loaded into
  the SmartNIC's overlay slots, in microseconds;
* **notification monitoring** — it subscribes to every process's
  notification queue and wakes threads blocked in ``recv``/``send``,
  enabling blocking I/O over a kernel-bypass datapath (§4.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import CostModel
from ..errors import KernelError, NicResourceExhausted
from ..host.machine import Machine
from ..interpose import InterpositionPoint
from ..kernel.kernel import Kernel
from ..kernel.netfilter import CHAIN_INPUT, CHAIN_OUTPUT, NetfilterRule
from ..kernel.process import Process
from ..kernel.qdisc import DEFAULT_CLASS, DrrQdisc
from ..net.addresses import IPv4Address
from ..net.flow import FiveTuple
from ..nic.notification import (
    KIND_RX_READY,
    KIND_TX_DRAINED,
    Notification,
    NotificationQueue,
)
from ..nic.rings import DescriptorRing, RingPair
from ..overlay.compiler import compile_classifier, compile_filter_rules, compile_policer
from ..sim import MetricSet, Signal
from ..trace import STAGE_SCHED_WAKE, STAGE_SYSCALL
from ..dataplanes.base import QosConfig
from .connection import CONN_MODE_PER_CONN, CONN_MODE_SHARED, NormanConnection
from .conntrack import ConntrackTable, NatTable
from .nic_dataplane import (
    SLOT_CLASSIFIER,
    SLOT_FILTER_RX,
    SLOT_FILTER_TX,
    SLOT_POLICER,
    KopiNic,
)


class ControlPlane:
    """The kernel side of KOPI."""

    def __init__(
        self,
        kernel: Kernel,
        nic: KopiNic,
        machine: Machine,
        shared_rings: bool = False,
    ):
        self.kernel = kernel
        self.nic = nic
        self.machine = machine
        self.costs: CostModel = machine.costs
        self.shared_rings = shared_rings
        self.metrics = MetricSet("control_plane")

        self._conns: Dict[int, NormanConnection] = {}
        self._next_conn_id = 1
        self._notifq: Dict[int, NotificationQueue] = {}  # pid -> queue
        self._rx_waiters: Dict[int, Process] = {}  # conn_id -> blocked proc
        self._tx_waiters: Dict[int, Process] = {}
        self._shared_pairs: Dict[int, RingPair] = {}  # pid -> shared ring pair
        # Incremental hot-set accounting: active_hot_bytes() is consulted on
        # every memory read (E8's DDIO pressure), so it must not rescan the
        # connection table. _hot_pairs maps id(pair) -> [pair, fast-conn
        # refcount]; holding the pair reference keeps the id stable.
        self._hot_fast_conns = 0
        self._hot_pairs: Dict[int, "list"] = {}
        self._qos: Optional[QosConfig] = None
        self._police: Dict[str, "tuple[int, int]"] = {}  # cgroup -> (rate, burst)
        self._monitor_mode: Dict[int, "tuple[str, int]"] = {}  # pid -> (mode, interval)
        self.monitor_core_id = 0
        """Core the kernel's notification monitor runs on (polled mode)."""

        nic.conn_resolver = self._conns.get
        nic.notify = self._post_notification
        nic.on_arp = self._observe_arp
        nic.fallback_rx = kernel.netstack.deliver

        # Every overlay slot (filters, classifier, policer, custom programs)
        # commits through one point: a load is submitted now and live after
        # the ~50 us overlay window — E14's asynchronous-install case.
        engine = machine.interpose
        self.overlay_point = engine.register(InterpositionPoint(
            name="overlay_filters", plane="nic", mechanism="overlay",
            install_latency_ns=self.costs.overlay_load_ns, target=nic.fpga,
        ))
        nic.filter_point = self.overlay_point
        # The kernel rule table stays authoritative for iptables; wire the
        # control plane's recompile/counter-pull hooks onto its point so the
        # tool can trigger them through the registry.
        nf_point = kernel.filters.point
        if nf_point is not None:
            nf_point.resync = self.sync_filters
            nf_point.sync_counters = self.sync_rule_counters

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------

    def open_connection(
        self,
        proc: Process,
        proto: int,
        port: Optional[int] = None,
        remote: Optional[Tuple[IPv4Address, int]] = None,
    ) -> NormanConnection:
        """Set up one connection (§4.3). Raises kernel errors for port
        conflicts/privilege; NIC exhaustion degrades to the software
        fallback path instead of failing."""
        if port is None:
            sock = self.kernel.sockets.bind_ephemeral(proc, proto)
        else:
            sock = self.kernel.sockets.bind(proc, proto, port)
        if remote is not None:
            sock.connect(remote[0], remote[1])

        conn_id = self._next_conn_id
        self._next_conn_id += 1
        rings, mode = self._allocate_rings(proc, conn_id)
        conn = NormanConnection(
            conn_id=conn_id, proc=proc, sock=sock, rings=rings, mode=mode
        )
        # tenant: connection state is the control plane's SRAM charging
        # site — attributed so a hog's connection churn burns its own quota.
        tenant = (self.machine.tenants.resolve(proc)
                  if self.costs.tenants else None)
        try:
            conn.sram = self.nic.sram.alloc(
                self.costs.conn_state_bytes, "conn_state", tenant=tenant)
        except NicResourceExhausted:
            conn.fallback = True
            self.metrics.counter("fallback_conns").inc()
            if self.machine.ff is not None:
                # SRAM exhaustion is a pressure cliff: the NIC's resource
                # state just changed regime, so no frozen profile survives.
                from ..sim.fastforward import REASON_PRESSURE

                self.machine.ff.demote_all(REASON_PRESSURE)
        self._conns[conn_id] = conn
        if not conn.fallback:
            self._hot_track(conn)

        if not conn.fallback:
            self._install_steering(conn)
        self._ensure_notifq(proc)
        self._charge_setup(proc)
        self.metrics.counter("connections").inc()
        self._resync_policies()
        self._note_working_set()
        return conn

    def connect_peer(self, conn: NormanConnection, dst_ip: IPv4Address, dport: int) -> Signal:
        """connect(2): record the peer and install exact steering for the
        return flow."""
        conn.sock.connect(dst_ip, dport)
        if not conn.fallback:
            inbound = FiveTuple(conn.proto, dst_ip, dport, self.kernel.host_ip, conn.port)
            self.nic.steering.install(inbound, conn.conn_id)
        work = self.machine.tracer.loose(
            STAGE_SYSCALL, self.costs.table_update_ns, label="connect_setup"
        )
        return self.kernel.syscalls.invoke(conn.proc, "connect", work)

    def close_connection(self, conn: NormanConnection) -> None:
        if conn.closed:
            raise KernelError(f"connection {conn.conn_id} already closed")
        if self.machine.ff is not None:
            # Teardown is a shape boundary: flush pending epochs (charged
            # under the profile that was valid while they ran) and return
            # the connection's flows to exact simulation.
            from ..sim.fastforward import REASON_SHAPE

            self.machine.ff.demote_conn(conn.conn_id, REASON_SHAPE)
        conn.closed = True
        if conn.sram is not None:
            self.nic.sram.free(conn.sram)
            conn.sram = None
        self.nic.steering.remove_dport(conn.proto, conn.port)
        if conn.sock.peer is not None:
            peer_ip, peer_port = conn.sock.peer
            self.nic.steering.remove(
                FiveTuple(conn.proto, peer_ip, peer_port, self.kernel.host_ip, conn.port)
            )
        self.kernel.sockets.close(conn.sock)
        del self._conns[conn.conn_id]
        if not conn.fallback:
            self._hot_untrack(conn)
        self._resync_policies()
        self._note_working_set()

    def _note_working_set(self) -> None:
        """Feed the DDIO pressure boundary: captured profiles bake in a
        memory-read cost that is a function of the hot working set, so the
        fast-forward controller demotes everything whenever the set crosses
        a capacity quartile (the E8 cliff must always be simulated exactly)."""
        if self.machine.ff is not None:
            self.machine.ff.note_working_set(
                self.active_hot_bytes(), self.costs.ddio_capacity_bytes
            )

    def _allocate_rings(self, proc: Process, conn_id: int) -> "tuple[RingPair, str]":
        """Per-connection rings by default; one shared pair per process in
        shared mode (the §5 mitigation, E11)."""
        if self.shared_rings:
            pair = self._shared_pairs.get(proc.pid)
            if pair is None:
                # One big pair per process: deeper descriptor rings (they
                # absorb every connection's traffic) over the same modest
                # hot footprint — that is the entire point of the §5
                # mitigation.
                pair = self._build_rings(
                    proc, owner_tag=f"pid{proc.pid}.shared", conn_id=0, entries_scale=32
                )
                self._shared_pairs[proc.pid] = pair
            return pair, CONN_MODE_SHARED
        return (
            self._build_rings(proc, owner_tag=f"pid{proc.pid}.conn{conn_id}", conn_id=conn_id),
            CONN_MODE_PER_CONN,
        )

    def _build_rings(
        self, proc: Process, owner_tag: str, conn_id: int, entries_scale: int = 1
    ) -> RingPair:
        line = self.costs.cache_line_bytes
        rx_lines = (self.costs.conn_hot_lines * 2) // 3
        tx_lines = self.costs.conn_hot_lines - rx_lines
        rx_region = self.machine.memory.alloc_pinned(
            rx_lines * line, owner=owner_tag, name="rx"
        )
        tx_region = self.machine.memory.alloc_pinned(
            tx_lines * line, owner=owner_tag, name="tx"
        )
        return RingPair(
            conn_id,
            rx=DescriptorRing(
                self.costs.rx_ring_entries * entries_scale, rx_region, f"{owner_tag}.rx"
            ),
            tx=DescriptorRing(
                self.costs.tx_ring_entries * entries_scale, tx_region, f"{owner_tag}.tx"
            ),
        )

    def _install_steering(self, conn: NormanConnection) -> None:
        if conn.sock.peer is not None:
            peer_ip, peer_port = conn.sock.peer
            self.nic.steering.install(
                FiveTuple(conn.proto, peer_ip, peer_port, self.kernel.host_ip, conn.port),
                conn.conn_id,
            )
        else:
            self.nic.steering.install_dport(conn.proto, conn.port, conn.conn_id)

    def _charge_setup(self, proc: Process) -> None:
        """Connection setup is a kernel operation: syscall + pinning + NIC
        MMIO programming, on the caller's core."""
        work = self.machine.tracer.loose(
            STAGE_SYSCALL,
            self.costs.table_update_ns + self.costs.mmio_write_ns,
            label="conn_setup",
        )
        self.kernel.syscalls.invoke(proc, "norman_connect", work)

    # ------------------------------------------------------------------
    # registry / introspection
    # ------------------------------------------------------------------

    def connections(self) -> List[NormanConnection]:
        return sorted(self._conns.values(), key=lambda c: c.conn_id)

    def conn_count(self) -> int:
        return len(self._conns)

    def _hot_track(self, conn: NormanConnection) -> None:
        self._hot_fast_conns += 1
        ref = self._hot_pairs.get(id(conn.rings))
        if ref is None:
            self._hot_pairs[id(conn.rings)] = [conn.rings, 1]
        else:
            ref[1] += 1

    def _hot_untrack(self, conn: NormanConnection) -> None:
        self._hot_fast_conns -= 1
        key = id(conn.rings)
        ref = self._hot_pairs[key]
        ref[1] -= 1
        if ref[1] == 0:
            del self._hot_pairs[key]

    def active_hot_bytes(self) -> int:
        """Aggregate hot ring footprint of NIC-resident connections — the
        working set competing for DDIO (E8). Maintained incrementally at
        open/close (``_hot_track``/``_hot_untrack``): this is consulted per
        memory read, so it must stay O(distinct ring pairs), not O(conns)."""
        if self.shared_rings:
            return sum(pair.pinned_bytes for pair, _refs in self._hot_pairs.values())
        return self._hot_fast_conns * self.costs.conn_footprint_bytes

    def resolve_owner_rule(self, rule: NetfilterRule) -> Sequence[int]:
        """Owner rule -> connection ids, the §4.4 lowering step."""
        out = []
        for conn in self._conns.values():
            pid, uid, comm = conn.owner
            if rule.pid_owner is not None and pid != rule.pid_owner:
                continue
            if rule.uid_owner is not None and uid != rule.uid_owner:
                continue
            if rule.cmd_owner is not None and comm != rule.cmd_owner:
                continue
            out.append(conn.conn_id)
        return out

    # ------------------------------------------------------------------
    # policy compilation (§4.4)
    # ------------------------------------------------------------------

    def install_filter_rule(self, rule: NetfilterRule) -> Signal:
        self.kernel.filters.append(rule)
        return self.sync_filters()

    def sync_filters(self) -> Signal:
        """Recompile both chains and load them into the overlay slots."""
        rx_prog = compile_filter_rules(
            self.kernel.filters.rules(CHAIN_INPUT),
            resolve_conns=self.resolve_owner_rule,
            name="kopi.filter_rx",
        )
        tx_prog = compile_filter_rules(
            self.kernel.filters.rules(CHAIN_OUTPUT),
            resolve_conns=self.resolve_owner_rule,
            name="kopi.filter_tx",
        )
        a = self.nic.fpga.load_overlay(SLOT_FILTER_RX, rx_prog)
        b = self.nic.fpga.load_overlay(SLOT_FILTER_TX, tx_prog)
        from ..sim import AllOf

        return self.overlay_point.begin_commit(AllOf([a, b], name="sync_filters"))

    def sync_rule_counters(self) -> None:
        """Copy overlay hit counters back onto the kernel rule objects so
        ``iptables -L -v`` shows NIC-enforced hits."""
        for chain, slot in ((CHAIN_INPUT, SLOT_FILTER_RX), (CHAIN_OUTPUT, SLOT_FILTER_TX)):
            machine = self.nic.fpga.machine(slot)
            if machine is None:
                continue
            rules = self.kernel.filters.rules(chain)
            for i, rule in enumerate(rules):
                if i < len(machine.counters):
                    rule.packets = machine.counters[i]

    def configure_qos(self, config: QosConfig) -> Signal:
        """tc lowering: cgroup weights -> DRR on the NIC scheduler plus a
        classifier overlay mapping connections to classids."""
        self._qos = config
        return self._load_qos()

    def _load_qos(self) -> Signal:
        assert self._qos is not None
        weights: Dict[str, int] = {DEFAULT_CLASS: 1}
        classid_of_conn: Dict[int, int] = {}
        for path, weight in self._qos.weights_by_cgroup.items():
            classid = self.kernel.cgroups.get(path).classid
            weights[str(classid)] = weight
        for conn in self._conns.values():
            classid = self.kernel.cgroups.classid_of(conn.proc.pid)
            if str(classid) in weights:
                classid_of_conn[conn.conn_id] = classid
        qdisc = DrrQdisc(weights=weights, quantum_bytes=self._qos.quantum_bytes)
        self.nic.set_scheduler(qdisc, set(weights))
        if self.nic.scheduler.point is not None:
            self.nic.scheduler.point.policy = self._qos
        prog = compile_classifier(classid_of_conn, default_classid=0, name="kopi.classifier")
        return self.overlay_point.begin_commit(
            self.nic.fpga.load_overlay(SLOT_CLASSIFIER, prog)
        )

    def configure_police(self, cgroup_path: str, rate_bps: int, burst_bytes: int) -> Signal:
        """tc police: cap a cgroup's egress with an overlay token bucket.

        Non-conformant packets are dropped on the NIC; the policy follows
        connections as they come and go, like the other compiled policies.
        """
        if rate_bps <= 0 or burst_bytes <= 0:
            raise KernelError("police rate and burst must be positive")
        self.kernel.cgroups.get(cgroup_path)  # must exist
        self._police[cgroup_path] = (rate_bps, burst_bytes)
        return self._load_police()

    def _load_police(self) -> Signal:
        paths = sorted(self._police)
        meter_idx = {path: i for i, path in enumerate(paths)}
        meter_of_conn: Dict[int, int] = {}
        for conn in self._conns.values():
            path = self.kernel.cgroups.group_of(conn.proc.pid).path
            if path in meter_idx:
                meter_of_conn[conn.conn_id] = meter_idx[path]
        prog = compile_policer(meter_of_conn, n_meters=len(paths), name="kopi.policer")
        loaded = self.nic.fpga.load_overlay(SLOT_POLICER, prog)

        def _configure(_sig: Signal) -> None:
            machine = self.nic.fpga.machine(SLOT_POLICER)
            assert machine is not None
            for path, idx in meter_idx.items():
                rate, burst = self._police[path]
                machine.configure_meter(idx, rate, burst)

        loaded.add_callback(_configure)
        return self.overlay_point.begin_commit(loaded)

    # ------------------------------------------------------------------
    # offloaded kernel functionality: conntrack and NAT
    # ------------------------------------------------------------------

    def enable_conntrack(self) -> ConntrackTable:
        """Track per-flow state in NIC SRAM (visible to `ss`/conntrack
        tooling; subject to SRAM exhaustion like everything on the NIC)."""
        if self.nic.conntrack is None:
            self.nic.conntrack = ConntrackTable(self.nic.sram)
            self.nic.conntrack.fastpath = self.machine.fastpath
            self.nic.conntrack.point = self.machine.interpose.register(
                InterpositionPoint(
                    name="conntrack", plane="nic", mechanism="conntrack",
                    install_latency_ns=self.costs.table_update_ns,
                    target=self.nic.conntrack,
                )
            )
        return self.nic.conntrack

    def enable_masquerade(self, public_ip) -> NatTable:
        """Source-NAT all outbound traffic to ``public_ip`` on the NIC."""
        if self.nic.nat is None:
            self.nic.nat = NatTable(self.nic.sram, public_ip)
        return self.nic.nat

    def enable_congestion_control(self, **kwargs):
        """NIC-local congestion management (§4.2): pace connections whose
        traffic backs up the egress scheduler, AIMD recovery."""
        from .congestion import LocalCongestionManager

        if self.nic.congestion is None:
            kwargs.setdefault("wire_rate_bps", self.nic.scheduler.drain_rate_bps)
            manager = LocalCongestionManager(self.machine.sim, self.costs, **kwargs)
            manager.bind_resolver(self._conns.get)
            self.nic.congestion = manager
        return self.nic.congestion

    def _resync_policies(self) -> None:
        """Connections changed: recompile owner-dependent programs."""
        if self.kernel.filters.total_rules() > 0:
            self.sync_filters()
        if self._qos is not None:
            self._load_qos()
        if self._police:
            self._load_police()

    # ------------------------------------------------------------------
    # feature upgrades (§4.4: "equivalent to upgrading the kernel itself")
    # ------------------------------------------------------------------

    def upgrade_bitstream(self, bitstream) -> Signal:
        """Replace the FPGA image and then *restore every installed policy*.

        A raw ``fpga.load_bitstream`` wipes all overlay slots — without this
        wrapper, a feature upgrade would silently drop the host's firewall
        and shaping rules. The returned signal fires once the fabric is
        back AND the policies are reloaded.
        """
        done = Signal("upgrade_bitstream")
        flashed = self.nic.fpga.load_bitstream(bitstream)

        def _restore(_sig: Signal) -> None:
            self._resync_policies()
            # Policies load asynchronously; completion = all slots live.
            self.machine.sim.after(self.costs.overlay_load_ns + 1, done.succeed, True)

        flashed.add_callback(_restore)
        # The whole upgrade is one (long) commit: the stale window spans the
        # bitstream flash plus the policy reload.
        return self.overlay_point.begin_commit(done)

    def load_custom_rx_program(self, asm_text: str, n_counters: int = 0,
                               n_meters: int = 0) -> Signal:
        """Operator-supplied overlay program for the RX filter slot — the
        §4.4 programmability story beyond precompiled iptables/tc policies.

        The program replaces the compiled filter chain (the two are the
        same slot, as on real hardware), is verified before load, and a
        rejected program leaves the previous one running untouched.
        """
        from ..overlay.assembler import assemble
        from ..overlay.verifier import verify as _verify

        prog = assemble(asm_text, n_counters=n_counters, n_meters=n_meters,
                        name="custom_rx")
        _verify(prog)
        return self.overlay_point.begin_commit(
            self.nic.fpga.load_overlay(SLOT_FILTER_RX, prog)
        )

    # ------------------------------------------------------------------
    # notifications and blocking (§4.3)
    # ------------------------------------------------------------------

    def _ensure_notifq(self, proc: Process) -> NotificationQueue:
        queue = self._notifq.get(proc.pid)
        if queue is None:
            queue = NotificationQueue(owner_pid=proc.pid)
            queue.subscribe(self._on_notification)
            self._notifq[proc.pid] = queue
        return queue

    def notification_queue(self, pid: int) -> Optional[NotificationQueue]:
        return self._notifq.get(pid)

    def _post_notification(self, conn: NormanConnection, kind: str, count: int = 1) -> None:
        queue = self._notifq.get(conn.proc.pid)
        if queue is None:
            return
        queue.post(
            Notification(
                conn_id=conn.conn_id, kind=kind, time_ns=self.machine.sim.now, count=count
            )
        )

    def set_monitor_mode(
        self, pid: int, mode: str, poll_interval_ns: int = 50_000
    ) -> None:
        """Choose how the kernel monitor learns about this process's
        notifications (§4.3):

        * ``"interrupt"`` (default) — the NIC interrupts; lowest latency,
          pays ``interrupt_ns`` per wake;
        * ``"poll"`` — the monitor scans the queue every
          ``poll_interval_ns`` on its own core; no interrupt cost, adds up
          to one interval of wake latency. Right for busy queues.
        """
        if mode not in ("interrupt", "poll"):
            raise KernelError(f"unknown monitor mode: {mode!r}")
        if mode == "poll" and poll_interval_ns < 1:
            raise KernelError(f"poll interval must be >= 1 ns: {poll_interval_ns}")
        self._monitor_mode[pid] = (mode, poll_interval_ns)

    def _on_notification(self, notif: Notification) -> None:
        """The monitor: wake whoever blocks on this connection."""
        if notif.kind == KIND_RX_READY:
            proc = self._rx_waiters.pop(notif.conn_id, None)
        elif notif.kind == KIND_TX_DRAINED:
            proc = self._tx_waiters.pop(notif.conn_id, None)
        else:  # pragma: no cover - closed kind set
            proc = None
        if proc is None:
            return
        queue = self._notifq[proc.pid]
        mode, interval = self._monitor_mode.get(proc.pid, ("interrupt", 0))
        if mode == "poll":
            # The monitor only sees the notification at its next scan tick;
            # the scan itself costs monitor-core time, not an interrupt.
            now = self.machine.sim.now
            next_tick = ((now // interval) + 1) * interval
            monitor_core = self.machine.cpus[self.monitor_core_id]

            def _scan() -> None:
                scan = monitor_core.execute(
                    self.machine.tracer.loose(
                        STAGE_SCHED_WAKE, self.costs.poll_iteration_ns,
                        label="notif_scan",
                    ),
                    "notif_scan",
                )
                scan.add_callback(
                    lambda _s: self.kernel.scheduler.wake(
                        proc, value=notif, via_interrupt=False
                    )
                )

            self.machine.sim.at(next_tick, _scan)
            return
        self.kernel.scheduler.wake(
            proc, value=notif, via_interrupt=queue.interrupts_enabled
        )
        if not self._has_waiters(proc.pid):
            queue.enable_interrupts(False)

    def _has_waiters(self, pid: int) -> bool:
        waiting = list(self._rx_waiters.values()) + list(self._tx_waiters.values())
        return any(p.pid == pid for p in waiting)

    def block_on_rx(self, conn: NormanConnection, proc: Process) -> Signal:
        """Block ``proc`` until the NIC signals data on ``conn``. Interrupts
        are enabled on the queue while anyone is blocked (§4.3: interrupts
        for low-activity queues)."""
        if conn.conn_id in self._rx_waiters:
            raise KernelError(f"connection {conn.conn_id} already has a blocked reader")
        woken = self.kernel.scheduler.block(proc, f"norman_rx:{conn.conn_id}")
        self._rx_waiters[conn.conn_id] = proc
        self._ensure_notifq(proc).enable_interrupts(True)
        return woken

    def block_on_tx(self, conn: NormanConnection, proc: Process) -> Signal:
        if conn.conn_id in self._tx_waiters:
            raise KernelError(f"connection {conn.conn_id} already has a blocked writer")
        woken = self.kernel.scheduler.block(proc, f"norman_tx:{conn.conn_id}")
        self._tx_waiters[conn.conn_id] = proc
        self._ensure_notifq(proc).enable_interrupts(True)
        return woken

    def _observe_arp(self, pkt) -> None:
        self.kernel.arp_cache.observe(pkt, self.machine.sim.now)
