"""Hybrid-fidelity fast-forward: fluid epochs for steady-state flows.

The simulator's default mode is packet-exact: every packet is its own chain
of queue events. That fidelity is the whole point at interposition
boundaries — a policy commit, a verdict-cache miss, a queue filling up —
but in steady state a flow whose packets all hit the verdict cache pays the
same per-stage costs packet after packet, and simulating each one buys
nothing except wall-clock time.

:class:`FastForwardController` lets a dataplane *promote* such a flow to
fluid approximation: the plane captures a :class:`FlowProfile` (the exact
per-packet span list the steady-state path would charge) and subsequent
packets are *absorbed* — counted, not simulated. One ``FlowEpoch`` flush
event then charges ``N ×`` the per-packet cost per stage, so the trace
taxonomy, the copy ledger, CPU busy time, and fastpath counters all move
exactly as N packet-level events would have moved them.

Promoted flows that share a plane, chain-version-vector, and profile shape
coalesce into a :class:`FlowGroup` charged by a *single* epoch event: one
``ff_group_charge`` per group per epoch replays N_flows × N_pkts of
counters, ledger entries, CPU busy time, and trace stages, with one shared
horizon timer instead of one per flow. Per-flow residue is flushed on
demotion, so any single flow can drop back to packet-exact without
disturbing its group.

The safety contract is the *demotion* half: at every fidelity boundary the
flow drops back to exact packet-level simulation **before** the boundary's
effect is simulated. Boundaries, and who wires them (see
``docs/hybrid_fidelity.md``):

* ``policy_commit`` — PolicyEngine epoch bump (``PolicyEngine.on_commit``)
* ``fastpath`` — verdict-cache miss / stale invalidation / LRU eviction
  (``FlowFastPath.demotion_hook``)
* ``conntrack_expiry`` — conntrack GC evicting the flow's cache entries
* ``qdisc_pressure`` — qdisc backlog crossing the configured threshold
* ``cache_pressure`` — DDIO/SRAM working set crossing a capacity quartile
* ``shape_change`` — the flow's packets stop matching the captured profile
* ``switch_change`` — the switch hop under a cross-machine flow stops being
  a frozen path: a MAC-table learn/move, a flood, or a match-action rule
  install (:class:`RackFastForward`)
* ``flow_migration`` — a live migration draining the flow off this machine
  before its state is replayed on another backend
  (:class:`~repro.cluster.MigrationCoordinator`)

With ``CostModel.ff_cross_machine`` a :class:`RackFastForward` coordinator
binds a sender's TX profile, the switch hop, and the receiver's RX profile
into one end-to-end :class:`CrossMachineFlow`: absorbed sends flow through
the fluid switch path into the receiver's own pending epoch, and either
side's boundary demotes the whole end-to-end flow before the boundary's
effect is simulated.

Everything here is default-off: with ``CostModel.fast_forward`` unset no
controller is constructed and the event trace is byte-identical to seed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError

# Demotion reasons — the full set of fidelity boundaries.
REASON_POLICY = "policy_commit"
REASON_FASTPATH = "fastpath"
REASON_CONNTRACK = "conntrack_expiry"
REASON_QDISC = "qdisc_pressure"
REASON_PRESSURE = "cache_pressure"
REASON_SHAPE = "shape_change"
REASON_SWITCH = "switch_change"
REASON_MIGRATE = "flow_migration"

REASONS = (
    REASON_POLICY,
    REASON_FASTPATH,
    REASON_CONNTRACK,
    REASON_QDISC,
    REASON_PRESSURE,
    REASON_SHAPE,
    REASON_SWITCH,
    REASON_MIGRATE,
)


class FlowProfile:
    """The frozen per-packet cost shape of a promoted flow.

    ``spans`` is the exact per-stage span list one steady-state packet
    charges: ``(stage, ns, cpu, label)`` tuples (plain tuples, not trace
    Spans — this module must not import the trace package). Latency is the
    span sum *by construction*, so conservation (span sums == end-to-end
    latency) holds for fluid epochs exactly as it does for packet contexts.

    ``deliver`` is a plane-supplied closure ``deliver(n)`` that replicates
    every side effect N exact packets would have had beyond time itself:
    NIC counters, verdict-cache hit counters, conntrack byte counts, copy
    ledger charges, receive-queue credit. ``wire_len`` pins the profile's
    shape: a packet of any other size is a ``shape_change`` boundary.
    ``versions`` is the chain-version-vector the verdict-cache entry was
    installed under; together with the plane and the span shape it decides
    which :class:`FlowGroup` the flow coalesces into.
    """

    __slots__ = ("spans", "core_id", "wire_len", "payload_len",
                 "src_ip", "sport", "deliver", "conn_id",
                 "versions", "tenant_tid", "latency_ns", "cpu_ns")

    def __init__(self, spans: Tuple[Tuple[str, int, bool, str], ...],
                 core_id: int, wire_len: int, payload_len: int = 0,
                 src_ip: str = "", sport: int = 0,
                 deliver: Optional[Callable[[int], None]] = None,
                 conn_id: Optional[int] = None,
                 versions: Tuple[Tuple[str, int], ...] = (),
                 tenant_tid: Optional[int] = None):
        self.spans = tuple(spans)
        self.core_id = core_id
        self.wire_len = wire_len
        self.payload_len = payload_len
        self.src_ip = src_ip
        self.sport = sport
        self.deliver = deliver
        self.conn_id = conn_id
        self.versions = tuple(versions)
        # tenant: part of the group key — fluid epochs never span tenants,
        # so per-tenant attribution stays exact under fast-forward.
        self.tenant_tid = tenant_tid
        self.latency_ns = sum(ns for _stage, ns, _cpu, _label in self.spans)
        self.cpu_ns = sum(ns for _stage, ns, cpu, _label in self.spans if cpu)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowProfile {len(self.spans)} spans "
                f"{self.latency_ns}ns core={self.core_id}>")


class FlowState:
    """Per-flow fast-forward bookkeeping."""

    __slots__ = ("key", "plane", "streak", "promoted", "profile",
                 "pending", "flush_handle", "group")

    def __init__(self, key, plane):
        self.key = key
        self.plane = plane
        self.streak = 0          # consecutive steady-state exact packets
        self.promoted = False
        self.profile: Optional[FlowProfile] = None
        self.pending = 0         # absorbed packets awaiting an epoch flush
        self.flush_handle = None # horizon event for the pending epoch
        self.group: Optional[FlowGroup] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "fluid" if self.promoted else f"exact(streak={self.streak})"
        return f"<FlowState {self.key} {mode} pending={self.pending}>"


class FlowGroup:
    """Promoted flows sharing (plane, chain-version-vector, profile shape).

    The group holds ONE pending-packet total and ONE horizon timer for all
    its members, and flushes with a single ``ff_group_charge`` — so at
    100k+ steady flows the epoch machinery costs O(groups) queue events,
    not O(flows). Per-flow pendings are still tracked (the residue), so a
    member can flush or demote alone without disturbing the group.
    """

    __slots__ = ("key", "plane", "members", "pending_total", "flush_handle",
                 "dirty")

    def __init__(self, key, plane):
        self.key = key
        self.plane = plane
        self.members: Dict[object, FlowState] = {}
        self.pending_total = 0
        self.flush_handle = None
        #: Members with unflushed pending packets — a group flush scans
        #: only these, not the whole membership, so epoch-threshold
        #: flushes stay O(active flows) at 100k+ members.
        self.dirty: List[FlowState] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowGroup {len(self.members)} flows "
                f"pending={self.pending_total}>")


class FastForwardController:
    """Tracks flow fidelity and turns absorbed packets into epoch charges.

    The controller never charges costs itself: flushing calls back into the
    owning plane's ``ff_bulk_charge(key, n, profile)`` (or the coalesced
    ``ff_group_charge(members, total, profile)`` for a whole group) so each
    dataplane stays the authority on what N of its packets cost. The
    controller owns *when* — promotion streaks, epoch sizing, the flush
    horizon, and the demote-on-boundary contract (flush first, so packets
    absorbed before a boundary are charged under the profile that was valid
    when they ran).
    """

    def __init__(self, sim, costs):
        self.sim = sim
        self.costs = costs
        self._flows: Dict[object, FlowState] = {}
        self._by_conn: Dict[int, List[FlowState]] = {}
        self._groups: Dict[object, FlowGroup] = {}
        self._group_enabled = bool(getattr(costs, "ff_group", True))
        self._ws_bucket: Optional[int] = None
        # Cross-machine coordination hooks (wired by RackFastForward; all
        # None on a standalone host, which keeps per-host behaviour
        # byte-identical to the single-controller engine):
        #: ``gate(plane, key) -> bool`` consulted after the plane's own
        #: eligibility check; a veto resets the promotion streak.
        self.promotion_gate: Optional[Callable[[object, object], bool]] = None
        #: ``hook(plane, key, state)`` fired once promotion (and group
        #: placement) completed.
        self.on_promote: Optional[Callable[[object, object, FlowState], None]] = None
        #: ``hook(key, reason)`` fired at the *top* of a promoted flow's
        #: demotion, before its residue is flushed — the window in which a
        #: coordinator can flush a bound peer *through* this still-promoted
        #: flow (demote-before-boundary, end-to-end).
        self.on_demote: Optional[Callable[[object, str], None]] = None
        # Metrics.
        self.promotions = 0
        self.epochs = 0
        self.group_epochs = 0
        self.fluid_packets = 0
        self.demotions: Dict[str, int] = {reason: 0 for reason in REASONS}

    # -- promotion ---------------------------------------------------------

    def note_exact(self, plane, key, pkt) -> None:
        """Record one steady-state exact packet (a verdict-cache hit on a
        plane that supports fast-forward). After ``ff_promote_after``
        consecutive such packets on an eligible flow, the plane is asked for
        a profile and the flow goes fluid."""
        state = self._flows.get(key)
        if state is None:
            state = self._flows[key] = FlowState(key, plane)
        if state.promoted:
            return
        state.streak += 1
        if state.streak < self.costs.ff_promote_after:
            return
        if not plane.ff_eligible(key):
            state.streak = 0
            return
        if self.promotion_gate is not None and \
                not self.promotion_gate(plane, key):
            state.streak = 0
            return
        profile = plane.ff_profile(key, pkt)
        if profile is None:
            state.streak = 0
            return
        state.profile = profile
        state.promoted = True
        self.promotions += 1
        if profile.conn_id is not None:
            self._by_conn.setdefault(profile.conn_id, []).append(state)
        if self._group_enabled:
            self._group_insert(state, plane, profile)
        if self.on_promote is not None:
            self.on_promote(plane, key, state)

    def _group_insert(self, state: FlowState, plane, profile: FlowProfile
                      ) -> None:
        gkey = (id(plane), profile.versions, profile.spans,
                profile.core_id, profile.wire_len, profile.tenant_tid)
        group = self._groups.get(gkey)
        if group is None:
            group = self._groups[gkey] = FlowGroup(gkey, plane)
        group.members[state.key] = state
        state.group = group

    def rebind(self, key, profile: FlowProfile) -> None:
        """Swap a promoted flow onto a new :class:`FlowProfile` — the
        cross-machine promotion path extends a sender's TX profile with the
        switch-hop wire span. Any pending epoch is flushed first (charged
        under the profile it was absorbed under), and the flow moves to the
        group matching the new shape."""
        state = self._flows.get(key)
        if state is None or not state.promoted:
            raise SimulationError(f"rebind of unpromoted flow {key!r}")
        self._flush_state(state)
        group = state.group
        if group is not None:
            group.members.pop(key, None)
            state.group = None
            if not group.members:
                if group.flush_handle is not None:
                    group.flush_handle.cancel()
                    group.flush_handle = None
                self._groups.pop(group.key, None)
        old = state.profile
        if old is not None and old.conn_id != profile.conn_id:
            if old.conn_id is not None:
                peers = self._by_conn.get(old.conn_id)
                if peers is not None:
                    peers.remove(state)
                    if not peers:
                        del self._by_conn[old.conn_id]
            if profile.conn_id is not None:
                self._by_conn.setdefault(profile.conn_id, []).append(state)
        state.profile = profile
        if self._group_enabled:
            self._group_insert(state, state.plane, profile)

    def promoted(self, key) -> bool:
        state = self._flows.get(key)
        return state is not None and state.promoted

    # -- absorption --------------------------------------------------------

    def absorb_packet(self, key, wire_len: int) -> bool:
        """Absorb one packet of a promoted flow into the pending epoch.
        Returns False (caller must simulate exactly) when the flow is not
        fluid; a wire-length mismatch is a shape boundary and demotes."""
        state = self._flows.get(key)
        if state is None or not state.promoted:
            return False
        assert state.profile is not None
        if wire_len != state.profile.wire_len:
            self.demote(key, REASON_SHAPE)
            return False
        self._absorb(state, 1)
        return True

    def absorb(self, key, n: int) -> bool:
        """Bulk form for drivers that know N same-shape packets are coming
        (an E21 round). Same contract as :meth:`absorb_packet`."""
        if n < 1:
            raise SimulationError(f"absorb needs n >= 1, got {n}")
        state = self._flows.get(key)
        if state is None or not state.promoted:
            return False
        self._absorb(state, n)
        return True

    def absorb_send(self, key, payload_lens: Sequence[int]) -> int:
        """TX-side absorption: a promoted sender's steady single-packet
        send (the app-timer → syscall → doorbell chain) is absorbed into
        the flow's pending epoch instead of entering the ring. Returns how
        many packets were absorbed (0 means the caller must simulate the
        send exactly). A payload not matching the frozen profile is a
        shape boundary and demotes; a multi-packet burst simply stays
        exact — its amortized doorbell cost is not the profile's shape."""
        state = self._flows.get(key)
        if state is None or not state.promoted:
            return 0
        if len(payload_lens) != 1:
            return 0
        assert state.profile is not None
        if payload_lens[0] != state.profile.payload_len:
            self.demote(key, REASON_SHAPE)
            return 0
        self._absorb(state, 1)
        return 1

    def _absorb(self, state: FlowState, n: int) -> None:
        state.pending += n
        group = state.group
        if group is not None:
            if state.pending == n:
                group.dirty.append(state)
            group.pending_total += n
            if group.pending_total >= self.costs.ff_epoch_packets:
                self._flush_group(group)
            elif group.flush_handle is None:
                group.flush_handle = self.sim.after(
                    self.costs.ff_horizon_ns, self._group_horizon_flush,
                    group.key)
            return
        if state.pending >= self.costs.ff_epoch_packets:
            self._flush_state(state)
        elif state.flush_handle is None:
            state.flush_handle = self.sim.after(
                self.costs.ff_horizon_ns, self._horizon_flush, state.key)

    # -- flushing ----------------------------------------------------------

    def _horizon_flush(self, key) -> None:
        state = self._flows.get(key)
        if state is not None:
            state.flush_handle = None
            self._flush_state(state)

    def _group_horizon_flush(self, gkey) -> None:
        group = self._groups.get(gkey)
        if group is not None:
            group.flush_handle = None
            self._flush_group(group)

    def _flush_group(self, group: FlowGroup) -> None:
        """One epoch event for the whole group: a single ``ff_group_charge``
        replays every member's pending packets."""
        if group.flush_handle is not None:
            group.flush_handle.cancel()
            group.flush_handle = None
        total = group.pending_total
        if total == 0:
            group.dirty = []
            return
        # A residue flush may leave a zero-pending entry behind, and a
        # re-absorbing flow re-appends itself — zeroing as we collect makes
        # any duplicate harmless (its second occurrence reads 0).
        members = []
        for s in group.dirty:
            if s.pending:
                members.append((s.key, s.pending, s.profile))
                s.pending = 0
        group.dirty = []
        group.pending_total = 0
        self.epochs += 1
        self.group_epochs += 1
        self.fluid_packets += total
        charge = getattr(group.plane, "ff_group_charge", None)
        if charge is not None:
            charge(members, total, members[0][2])
        else:
            for key, n, profile in members:
                group.plane.ff_bulk_charge(key, n, profile)

    def _flush_state(self, state: FlowState) -> None:
        """Per-flow flush. For a grouped flow this is the *residue* flush:
        it charges just this member's pending packets (one
        ``ff_bulk_charge``) and leaves the rest of the group fluid."""
        group = state.group
        if group is None and state.flush_handle is not None:
            state.flush_handle.cancel()
            state.flush_handle = None
        n = state.pending
        if n == 0:
            return
        state.pending = 0
        if group is not None:
            group.pending_total -= n
            if group.pending_total == 0 and group.flush_handle is not None:
                group.flush_handle.cancel()
                group.flush_handle = None
        self.epochs += 1
        self.fluid_packets += n
        state.plane.ff_bulk_charge(state.key, n, state.profile)

    def flush(self, key) -> None:
        """Charge the flow's pending epoch now (no fidelity change)."""
        state = self._flows.get(key)
        if state is not None:
            self._flush_state(state)

    def flush_conn(self, conn_id: int) -> None:
        """Flush every promoted flow delivering to ``conn_id`` — the
        receive path calls this before consuming fluid credit so charges
        land before the data they cover is read."""
        for state in self._by_conn.get(conn_id, ()):
            self._flush_state(state)

    def flush_all(self) -> None:
        for group in list(self._groups.values()):
            self._flush_group(group)
        for state in list(self._flows.values()):
            if state.group is None:
                self._flush_state(state)

    # -- demotion (the fidelity boundaries) --------------------------------

    def demote(self, key, reason: str) -> bool:
        """Drop ``key`` back to exact packet-level simulation. Pending
        absorbed packets are flushed first — they ran while the old profile
        was valid, so they are charged under it; everything after this call
        is simulated packet-exact. A grouped flow flushes only its own
        residue and leaves its group fluid. Returns True if the flow was
        fluid."""
        if reason not in self.demotions:
            raise SimulationError(f"unknown demotion reason {reason!r}")
        if self.on_demote is not None:
            peek = self._flows.get(key)
            if peek is not None and peek.promoted:
                # Fired before the flow is popped: the rack coordinator may
                # flush a bound peer *through* this still-promoted flow, and
                # anything that lands in ``pending`` here is flushed below.
                self.on_demote(key, reason)
        state = self._flows.pop(key, None)
        if state is None:
            return False
        was_fluid = state.promoted
        if was_fluid:
            self._flush_state(state)
            self.demotions[reason] += 1
            group = state.group
            if group is not None:
                group.members.pop(key, None)
                state.group = None
                if not group.members:
                    if group.flush_handle is not None:
                        group.flush_handle.cancel()
                        group.flush_handle = None
                    self._groups.pop(group.key, None)
            profile = state.profile
            if profile is not None and profile.conn_id is not None:
                peers = self._by_conn.get(profile.conn_id)
                if peers is not None:
                    peers.remove(state)
                    if not peers:
                        del self._by_conn[profile.conn_id]
        elif state.flush_handle is not None:  # pragma: no cover - invariant
            state.flush_handle.cancel()
        return was_fluid

    def demote_conn(self, conn_id: int, reason: str) -> int:
        """Demote every fluid flow delivering to ``conn_id`` (connection
        teardown). Returns how many were fluid."""
        demoted = 0
        for state in list(self._by_conn.get(conn_id, ())):
            if self.demote(state.key, reason):
                demoted += 1
        return demoted

    def demote_all(self, reason: str) -> int:
        """A global boundary (policy commit, pressure cliff): every flow
        back to exact. Groups flush wholesale first — one epoch charge per
        group — so the per-flow demotions that follow carry no residue.
        Returns how many were fluid."""
        for group in list(self._groups.values()):
            self._flush_group(group)
        demoted = 0
        for key in list(self._flows):
            if self.demote(key, reason):
                demoted += 1
        return demoted

    # -- boundary hooks (wired by Machine and the planes) ------------------

    def on_policy_commit(self) -> None:
        """PolicyEngine commit: any verdict anywhere may have changed."""
        self.demote_all(REASON_POLICY)

    def on_fastpath_event(self, flow, reason: str) -> None:
        """Verdict-cache miss/invalidation/eviction for ``flow`` (reason
        ``fastpath``), or conntrack expiry (reason ``conntrack_expiry``)."""
        self.demote(flow, reason)

    def on_qdisc_pressure(self) -> None:
        """Qdisc backlog crossed its threshold: queueing delay is about to
        become load-dependent, which no frozen profile can model."""
        self.demote_all(REASON_QDISC)

    def note_working_set(self, hot_bytes: int, capacity_bytes: int) -> None:
        """DDIO/SRAM pressure tracking: the analytic cache model's read
        costs depend on the hot working set, so any capacity-quartile
        crossing invalidates captured profiles."""
        if capacity_bytes <= 0:
            return
        bucket = min(4, (hot_bytes * 4) // capacity_bytes)
        if self._ws_bucket is not None and bucket != self._ws_bucket:
            self.demote_all(REASON_PRESSURE)
        self._ws_bucket = bucket

    # -- observability -----------------------------------------------------

    @property
    def tracked(self) -> int:
        return len(self._flows)

    @property
    def promoted_count(self) -> int:
        return sum(1 for s in self._flows.values() if s.promoted)

    @property
    def groups(self) -> int:
        return len(self._groups)

    def stats(self) -> Dict[str, object]:
        return {
            "tracked": self.tracked,
            "promoted": self.promoted_count,
            "groups": self.groups,
            "promotions": self.promotions,
            "epochs": self.epochs,
            "group_epochs": self.group_epochs,
            "fluid_packets": self.fluid_packets,
            "demotions": dict(self.demotions),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FastForwardController flows={self.tracked} "
                f"fluid_pkts={self.fluid_packets} epochs={self.epochs}>")


def peer_path_ready(switch, peer: Optional["RackHost"], key) -> bool:
    """Topology-agnostic far-end readiness check for a cross-machine
    promotion: True when ``peer`` (the rack host owning the flow's
    destination IP) can absorb fluid bulk for ``key`` end to end —

    * its controller has already promoted the RX side of the flow,
    * its downlink has a fluid receive entry to land epochs in, and
    * the switch path to it is frozen (learned port, no match-action
      rules).

    Works for any number of hosts behind any one switch: the caller
    resolves ``peer`` however its topology indexes machines (the rack
    keeps an IP map), and this helper only interrogates that one
    host + the switch between them. ``peer is None`` (destination not
    on this switch) is never ready.
    """
    if peer is None:
        return False
    ctrl = peer.ctrl
    if ctrl is None or not ctrl.promoted(key):
        return False
    if not peer.downlink.has_fluid_rx:
        # A stack without a fluid RX entry (the kernel netstack's hot
        # path) can still hold controller-promoted flows; epochs must
        # not be aimed at a wire with nowhere to land.
        return False
    return switch.ff_path_steady(peer.mac, peer.port)


class RackHost:
    """One machine's registration with the rack coordinator: which planes
    it promotes on, where it sits on the switch, and the links that carry
    its traffic."""

    __slots__ = ("name", "machine", "ctrl", "rx_plane", "tx_plane",
                 "ip", "mac", "port", "uplink", "downlink")

    def __init__(self, name, machine, rx_plane, tx_plane,
                 ip, mac, port, uplink, downlink):
        self.name = name
        self.machine = machine
        self.ctrl = machine.ff
        self.rx_plane = rx_plane
        self.tx_plane = tx_plane
        self.ip = ip
        self.mac = mac
        self.port = port
        self.uplink = uplink
        self.downlink = downlink

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RackHost {self.name} ip={self.ip} port={self.port}>"


class CrossMachineFlow:
    """An end-to-end binding: the sender's extended TX profile (its own
    chain plus the switch-hop wire span), the fluid switch path, and the
    receiver's RX profile, demoted as one unit."""

    __slots__ = ("flow", "sender", "receiver")

    def __init__(self, flow, sender: RackHost, receiver: RackHost):
        self.flow = flow
        self.sender = sender
        self.receiver = receiver

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CrossMachineFlow {self.flow} "
                f"{self.sender.name}->{self.receiver.name}>")


class RackFastForward:
    """End-to-end fluid epochs across the switch hop (``ff_cross_machine``).

    The coordinator sits above the per-machine controllers and never charges
    costs itself. It drives three hooks:

    * ``promotion_gate`` — a sender's TX flow may only go fluid when the
      receiving rack host's RX flow is *already* promoted and the switch
      path is frozen (learned port correct, no match-action rules). Until
      then the TX side keeps simulating exactly; a veto resets the streak.
    * ``on_promote`` — when a gated TX promotion lands, the sender's profile
      is rebound to an *extended* profile carrying the receiver-side
      downlink wire span, and the flow is recorded as a
      :class:`CrossMachineFlow`. From then on an absorbed send is the whole
      A → switch → B packet: the TX epoch's deliver closure pushes the bulk
      through ``Link.send_fluid`` → ``L2Switch.forward_fluid`` →
      ``Link.send_fluid`` into the receiver's own pending epoch, moving
      link meters and switch counters exactly as N exact packets would.
    * ``on_demote`` — either side's boundary demotes the *whole* end-to-end
      flow before the boundary's effect is simulated: the sender's residue
      is flushed first (through the still-promoted chain, so in-flight
      fluid credit lands under the old profiles), then the other side is
      demoted too.

    Any switch-state change (MAC learn/move, flood, rule install) fires
    :meth:`_on_switch_change`, which demotes every bound flow with
    ``switch_change`` before the switch applies the change.
    """

    def __init__(self, switch):
        self.switch = switch
        self._hosts: List[RackHost] = []
        self._host_by_ip: Dict[str, RackHost] = {}
        self._bound: Dict[object, CrossMachineFlow] = {}
        self.bindings = 0       # cross-machine promotions, cumulative
        self.gate_vetoes = 0    # TX promotions held back by the gate
        switch.on_table_change = self._on_switch_change
        switch.on_flood = self._on_switch_change
        switch.on_rule_change = self._on_switch_change

    # -- registration ------------------------------------------------------

    def add_host(self, name, machine, rx_plane, tx_plane,
                 ip, mac, port, uplink, downlink) -> RackHost:
        if machine.ff is None:
            raise SimulationError(
                f"rack host {name!r} has no FastForwardController "
                "(CostModel.fast_forward is off)")
        host = RackHost(name, machine, rx_plane, tx_plane,
                        ip, mac, port, uplink, downlink)
        self._hosts.append(host)
        self._host_by_ip[ip] = host
        ctrl = host.ctrl
        ctrl.promotion_gate = \
            lambda plane, key, _h=host: self._gate(_h, plane, key)
        ctrl.on_promote = \
            lambda plane, key, state, _h=host: \
            self._on_promote(_h, plane, key, state)
        ctrl.on_demote = \
            lambda key, reason, _h=host: self._on_demote(_h, key, reason)
        return host

    # -- the promotion protocol --------------------------------------------

    def _gate(self, host: RackHost, plane, key) -> bool:
        """TX promotions are held until the far end is ready: the receiver's
        RX flow must already be fluid and the switch path frozen
        (:func:`peer_path_ready`). RX promotions are never gated — they are
        per-machine as before. A destination this rack does not host (a
        hairpin to self, or a VIP the balancer still owns) never binds."""
        if plane is not host.tx_plane:
            return True
        peer = self._host_by_ip.get(key.dst_ip)
        if peer is host or not peer_path_ready(self.switch, peer, key):
            self.gate_vetoes += 1
            return False
        return True

    def _on_promote(self, host: RackHost, plane, key,
                    state: FlowState) -> None:
        if plane is not host.tx_plane:
            return
        peer = self._host_by_ip.get(key.dst_ip)
        if peer is None:  # pragma: no cover - gate guarantees a peer
            return
        from .. import units
        from ..trace import STAGE_WIRE
        prof = state.profile
        assert prof is not None
        wire_ns = (units.transmit_time_ns(prof.wire_len,
                                          peer.downlink.rate_bps)
                   + peer.downlink.propagation_ns)
        extended = FlowProfile(
            prof.spans + ((STAGE_WIRE, wire_ns, False, peer.downlink.name),),
            prof.core_id, prof.wire_len, payload_len=prof.payload_len,
            src_ip=prof.src_ip, sport=prof.sport, deliver=prof.deliver,
            conn_id=prof.conn_id, versions=prof.versions,
            tenant_tid=prof.tenant_tid)
        host.ctrl.rebind(key, extended)
        self._bound[key] = CrossMachineFlow(key, host, peer)
        self.bindings += 1

    def _on_demote(self, host: RackHost, key, reason: str) -> None:
        cmf = self._bound.pop(key, None)
        if cmf is None:
            return
        # Flush the sender's residue while both ends are still promoted:
        # the bulk flows through the fluid switch path into the receiver's
        # pending epoch, and the receiver's own flush (below, or at the
        # bottom of its in-progress demote) charges it under the old
        # profile — demote-before-boundary, end to end.
        cmf.sender.ctrl.flush(key)
        if host is not cmf.sender:
            cmf.sender.ctrl.demote(key, reason)
        if host is not cmf.receiver:
            cmf.receiver.ctrl.demote(key, reason)

    def _on_switch_change(self, *_args) -> None:
        """The switch hop is about to stop being a frozen path; every bound
        flow drops to packet-exact first. Called by the switch *before* the
        MAC-table write / flood / rule install takes effect, so flushed
        epochs replay against the pre-change switch state."""
        if not self._bound:
            return
        bound, self._bound = self._bound, {}
        for key, cmf in bound.items():
            cmf.sender.ctrl.demote(key, REASON_SWITCH)
            cmf.receiver.ctrl.demote(key, REASON_SWITCH)

    # -- epoch control -----------------------------------------------------

    def flush_all(self) -> None:
        """Flush every host's pending epochs. Two passes: the first pushes
        sender-side TX epochs through the fluid switch path into receiver
        pendings, the second charges those. RX flushes generate no new
        fluid credit, so two passes always drain the rack."""
        for _ in range(2):
            for host in self._hosts:
                host.ctrl.flush_all()

    # -- observability -----------------------------------------------------

    @property
    def bound(self) -> int:
        return len(self._bound)

    def host(self, ip: str) -> Optional[RackHost]:
        return self._host_by_ip.get(ip)

    def stats(self) -> Dict[str, object]:
        return {
            "hosts": len(self._hosts),
            "bound": self.bound,
            "bindings": self.bindings,
            "gate_vetoes": self.gate_vetoes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RackFastForward hosts={len(self._hosts)} "
                f"bound={self.bound}>")
