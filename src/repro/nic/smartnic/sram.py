"""On-NIC SRAM allocator.

"SmartNICs inherently have limited memory relative to the amount of
available on-host memory" (§5). Every piece of NIC-resident state —
per-connection entries, filter rules, queue buffers — allocates here, and
exhaustion raises, forcing callers to take the software fallback path that
E9 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ... import units
from ...errors import NicResourceExhausted
from ...sim import MetricSet


@dataclass(frozen=True)
class SramBlock:
    block_id: int
    size: int
    purpose: str


class SramAllocator:
    """Purpose-tagged allocation with exact accounting."""

    def __init__(self, capacity_bytes: int, name: str = "sram"):
        if capacity_bytes <= 0:
            raise NicResourceExhausted(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._blocks: Dict[int, SramBlock] = {}
        self._next_id = 1
        self._used = 0  # running total; alloc/free keep it exact
        self.metrics = MetricSet(name)

    def alloc(self, size: int, purpose: str) -> SramBlock:
        if size <= 0:
            raise NicResourceExhausted(f"allocation must be positive: {size}")
        if self.used_bytes + size > self.capacity_bytes:
            self.metrics.counter("exhaustions").inc()
            raise NicResourceExhausted(
                f"NIC SRAM exhausted: {units.fmt_size(self.used_bytes)} used of "
                f"{units.fmt_size(self.capacity_bytes)}, requested "
                f"{units.fmt_size(size)} for {purpose!r}"
            )
        block = SramBlock(block_id=self._next_id, size=size, purpose=purpose)
        self._next_id += 1
        self._blocks[block.block_id] = block
        self._used += size
        return block

    def free(self, block: SramBlock) -> None:
        if block.block_id not in self._blocks:
            raise NicResourceExhausted(f"double free of SRAM block {block.block_id}")
        del self._blocks[block.block_id]
        self._used -= block.size

    @property
    def used_bytes(self) -> int:
        # Allocation is consulted per connection open; a scan over every
        # live block would make opening N connections O(N^2) (E21 runs
        # 100k+), so the total is maintained incrementally.
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def used_by_purpose(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for b in self._blocks.values():
            out[b.purpose] = out.get(b.purpose, 0) + b.size
        return out

    def blocks(self, purpose: str) -> List[SramBlock]:
        return [b for b in self._blocks.values() if b.purpose == purpose]

    def utilization(self) -> float:
        return self.used_bytes / self.capacity_bytes
