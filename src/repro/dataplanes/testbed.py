"""Testbed: one host (with a chosen dataplane) wired to a traffic peer.

Every experiment, example, and integration test builds one of these: the
host machine, the selected dataplane, a full-duplex access link, and a
:class:`TrafficPeer` standing in for "the rest of the network" — it counts
and meters what the host emits, and can inject traffic toward the host.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from ..config import DEFAULT_COSTS, CostModel
from ..host.machine import Machine
from ..net.addresses import IPv4Address, MacAddress
from ..net.headers import PROTO_TCP
from ..net.link import Link
from ..net.packet import Packet, make_tcp, make_udp
from ..sim import MetricSet, Simulator
from .base import Dataplane

HOST_IP = IPv4Address.parse("10.0.0.1")
HOST_MAC = MacAddress.from_index(1)
PEER_IP = IPv4Address.parse("10.0.0.9")
PEER_MAC = MacAddress.from_index(9)


class TrafficPeer:
    """The far end of the host's access link."""

    def __init__(self, sim: Simulator, ip: IPv4Address, mac: MacAddress, uplink: Link):
        self.sim = sim
        self.ip = ip
        self.mac = mac
        self.uplink = uplink  # peer -> host
        self.received: List[Packet] = []
        self.metrics = MetricSet("peer")
        self._echo: Optional[Callable[[Packet], Optional[int]]] = None

    # --- sink side -------------------------------------------------------

    def receive(self, pkt: Packet) -> None:
        """Attached to the host's egress link."""
        self.received.append(pkt)
        self.metrics.counter("rx_pkts").inc()
        self.metrics.meter("rx_bytes").record(self.sim.now, pkt.wire_len)
        ft = pkt.five_tuple
        if ft is not None:
            self.metrics.meter(f"rx_dport_{ft.dport}").record(self.sim.now, pkt.wire_len)
            if self._echo is not None:
                reply_len = self._echo(pkt)
                if reply_len is not None:
                    self.send_udp(
                        sport=ft.dport, dport=ft.sport, payload_len=reply_len,
                        dst_ip=ft.src_ip,
                    )

    def receive_fluid(self, n: int, wire_len: int, dport: int = 0,
                      flow=None, eth_dst=None) -> None:
        """Bulk counterpart of :meth:`receive` for fast-forwarded TX
        epochs: moves the packet/byte/dport counters exactly as ``n``
        receives would, without materializing Packet objects (``received``
        is a capture artifact, not a counted observable) and without the
        echo hook — fluid TX models a sink peer, and a promoting plane
        must stay exact for request/reply traffic it needs answered."""
        self.metrics.counter("rx_pkts").inc(n)
        self.metrics.meter("rx_bytes").record(self.sim.now, n * wire_len)
        if dport:
            self.metrics.meter(f"rx_dport_{dport}").record(
                self.sim.now, n * wire_len)

    def enable_echo(self, reply_len_of: Callable[[Packet], Optional[int]]) -> None:
        """Reply to each received packet (RPC-style). ``reply_len_of``
        returns the response payload size, or None for no reply."""
        self._echo = reply_len_of

    def bytes_to_dport(self, dport: int) -> int:
        return self.metrics.meter(f"rx_dport_{dport}").total_bytes

    def rx_rate_bps(self, dport: Optional[int] = None, end_ns: Optional[int] = None) -> float:
        meter = (
            self.metrics.meter(f"rx_dport_{dport}") if dport is not None
            else self.metrics.meter("rx_bytes")
        )
        return meter.rate_bps(end_ns)

    # --- source side --------------------------------------------------------

    def send(self, pkt: Packet) -> bool:
        self.metrics.counter("tx_pkts").inc()
        return self.uplink.send(pkt)

    def send_udp(
        self,
        sport: int,
        dport: int,
        payload_len: int,
        dst_ip: IPv4Address = HOST_IP,
        dst_mac: MacAddress = HOST_MAC,
        src_ip: Optional[IPv4Address] = None,
    ) -> bool:
        return self.send(
            make_udp(self.mac, dst_mac, src_ip or self.ip, dst_ip, sport, dport, payload_len)
        )

    def send_tcp(
        self, sport: int, dport: int, payload_len: int,
        dst_ip: IPv4Address = HOST_IP, dst_mac: MacAddress = HOST_MAC,
    ) -> bool:
        return self.send(
            make_tcp(self.mac, dst_mac, self.ip, dst_ip, sport, dport, payload_len)
        )


class Testbed:
    """Host + dataplane + duplex link + peer, ready to run."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        dataplane_cls: Type[Dataplane],
        costs: CostModel = DEFAULT_COSTS,
        n_cores: int = 8,
        structural_cache: bool = False,
        link_rate_bps: Optional[int] = None,
        link_queue_packets: int = 4_096,
        **dataplane_kwargs: object,
    ):
        self.sim = Simulator()
        self.machine = Machine(
            sim=self.sim, costs=costs, n_cores=n_cores, structural_cache=structural_cache
        )
        rate = link_rate_bps or costs.nic_line_rate_bps
        self.egress = Link(
            self.sim, rate, costs.link_propagation_ns, link_queue_packets, name="host_tx"
        )
        self.ingress = Link(
            self.sim, rate, costs.link_propagation_ns, link_queue_packets, name="host_rx"
        )
        self.dataplane: Dataplane = dataplane_cls(  # type: ignore[call-arg]
            self.machine, HOST_IP, HOST_MAC, self.egress, **dataplane_kwargs
        )
        self.peer = TrafficPeer(self.sim, PEER_IP, PEER_MAC, uplink=self.ingress)
        self.egress.attach(self.peer.receive)
        self.egress.attach_fluid(self.peer.receive_fluid)
        self.ingress.attach(self.dataplane.wire_rx)  # type: ignore[attr-defined]
        kernel = getattr(self.dataplane, "kernel", None)
        if kernel is not None:
            kernel.register_neighbor(PEER_IP, PEER_MAC)

    # --- conveniences -------------------------------------------------------

    @property
    def kernel(self):
        return getattr(self.dataplane, "kernel")

    def user(self, name: str):
        """Get or create a user."""
        users = self.kernel.users
        return users.by_name(name) if name in users else users.add(name)

    def spawn(self, comm: str, user_name: str = "root", core_id: int = 0):
        return self.kernel.spawn(comm, self.user(user_name), core_id=core_id)

    def run(self, until: Optional[int] = None) -> int:
        return self.sim.run(until=until)

    def run_all(self, max_events: int = 10_000_000) -> int:
        return self.sim.run_until_idle(max_events=max_events)

    def host_dir_metrics(self) -> Dict[str, float]:
        return {
            "peer.rx_pkts": float(self.peer.metrics.counter("rx_pkts").value),
            "egress.sent": float(self.egress.metrics.counter("sent").value),
            "ingress.sent": float(self.ingress.metrics.counter("sent").value),
        }
