"""Burst-mode dataplane: the batch_size=1 identity and the amortization law.

The refactor's contract is that per-packet calls are the degenerate burst of
one: with batch_size=1, `send_burst([x])` must be event-for-event identical
to `send(x)` on every plane, and the burst-mode driver must reproduce the
per-packet driver's numbers exactly. With batch_size>1, fixed per-call costs
(syscall, doorbell, DMA setup) amortize monotonically for ring-based planes
while the sidecar's physical movement cost does not.
"""

from dataclasses import replace

import pytest

from repro.apps.base import App
from repro.config import DEFAULT_COSTS
from repro.core import NormanOS
from repro.dataplanes import (
    BypassDataplane,
    HypervisorDataplane,
    KernelPathDataplane,
    SidecarDataplane,
    Testbed,
)
from repro.dataplanes.testbed import PEER_IP
from repro.experiments.common import planes_under_test, run_bulk_tx, run_burst_tx
from repro.sim import Histogram

N_MSGS = 12
PAYLOAD = 600


class _PerPacketSender(App):
    def __init__(self, tb, n=N_MSGS, **kw):
        super().__init__(tb, **kw)
        self.n = n

    def run(self):
        yield self.ep.connect(PEER_IP, 9_000)
        for _ in range(self.n):
            yield self.ep.send(PAYLOAD)


class _BurstOfOneSender(App):
    def __init__(self, tb, n=N_MSGS, **kw):
        super().__init__(tb, **kw)
        self.n = n

    def run(self):
        yield self.ep.connect(PEER_IP, 9_000)
        for _ in range(self.n):
            yield self.ep.send_burst([PAYLOAD])


class _EchoPerPacket(App):
    def __init__(self, tb, n=5, **kw):
        super().__init__(tb, **kw)
        self.n = n
        self.msgs = []

    def run(self):
        yield self.ep.connect(PEER_IP, 9_100)
        for _ in range(self.n):
            yield self.ep.send(PAYLOAD)
            msg = yield self.ep.recv()
            self.msgs.append(msg)


class _EchoBurstOfOne(App):
    def __init__(self, tb, n=5, **kw):
        super().__init__(tb, **kw)
        self.n = n
        self.msgs = []

    def run(self):
        yield self.ep.connect(PEER_IP, 9_100)
        for _ in range(self.n):
            yield self.ep.send_burst([PAYLOAD])
            msgs = yield self.ep.recv_burst(1)
            self.msgs.append(msgs[0])


def _fingerprint(tb):
    fp = {
        "end": tb.sim.now,
        "events": tb.sim.events_fired,
        "peer": tuple(p.meta.delivered_ns for p in tb.peer.received),
        "busy": tuple(c.busy_ns for c in tb.machine.cpus.cores),
    }
    kernel = getattr(tb.dataplane, "kernel", None)
    if kernel is not None:
        fp["syscalls"] = kernel.syscalls.metrics.snapshot()
    return fp


class TestBurstOfOneIdentity:
    """send_burst([x]) == send(x), event for event, on every plane."""

    @pytest.mark.parametrize("plane_cls", planes_under_test(),
                             ids=lambda c: c.name)
    def test_send_burst_of_one_identical_trace(self, plane_cls):
        def run(app_cls):
            tb = Testbed(plane_cls)
            app_cls(tb, comm="tx", user="bob", core_id=1).start()
            tb.run_all()
            return _fingerprint(tb)

        assert run(_PerPacketSender) == run(_BurstOfOneSender)

    @pytest.mark.parametrize("plane_cls", [KernelPathDataplane, NormanOS],
                             ids=lambda c: c.name)
    def test_recv_burst_of_one_identical_trace(self, plane_cls):
        """recvmmsg of one message == recvfrom, including blocking wakes."""

        def run(app_cls):
            tb = Testbed(plane_cls)
            tb.peer.enable_echo(
                lambda pkt: pkt.payload_len if pkt.five_tuple.dport == 9_100 else None
            )
            app = app_cls(tb, comm="rpc", user="bob", core_id=1).start()
            tb.run_all()
            fp = _fingerprint(tb)
            fp["msgs"] = tuple(app.msgs)
            return fp

        a, b = run(_EchoPerPacket), run(_EchoBurstOfOne)
        assert len(a["msgs"]) == 5
        assert a == b

    @pytest.mark.parametrize("plane_cls", planes_under_test(),
                             ids=lambda c: c.name)
    def test_burst_driver_at_one_reproduces_per_packet_driver(self, plane_cls):
        per_packet = run_bulk_tx(plane_cls, 1_458, 40)
        burst = run_burst_tx(plane_cls, 1_458, 40, 1)
        assert burst.pop("batch") == 1
        assert burst == per_packet


class TestBurstModeDeterminism:
    @pytest.mark.parametrize("plane_cls", planes_under_test(),
                             ids=lambda c: c.name)
    def test_identical_burst_runs_identical_results(self, plane_cls):
        a = run_burst_tx(plane_cls, 1_458, 64, 16)
        b = run_burst_tx(plane_cls, 1_458, 64, 16)
        assert a == b


class TestAmortization:
    """The e12 law at reduced scale: fixed costs amortize on ring planes,
    physical movement does not."""

    def test_ring_planes_amortize_monotonically(self):
        for plane_cls in (KernelPathDataplane, BypassDataplane,
                          HypervisorDataplane, NormanOS):
            cpus = [
                run_burst_tx(plane_cls, 1_458, 64, b)["app_cpu_ns_per_pkt"]
                for b in (1, 4, 16)
            ]
            assert cpus[0] > cpus[-1], f"{plane_cls.name}: no amortization {cpus}"
            assert all(b <= a for a, b in zip(cpus, cpus[1:])), \
                f"{plane_cls.name}: non-monotone {cpus}"

    def test_sidecar_physical_movement_does_not_amortize(self):
        cpus = [
            run_burst_tx(SidecarDataplane, 1_458, 64, b)["app_cpu_ns_per_pkt"]
            for b in (1, 4, 16)
        ]
        assert cpus[0] == pytest.approx(cpus[-1])

    def test_kernel_batch_amortizes_syscalls(self):
        one = run_burst_tx(KernelPathDataplane, 1_458, 64, 1)
        big = run_burst_tx(KernelPathDataplane, 1_458, 64, 16)
        assert big["movements"]["virtual"] < one["movements"]["virtual"]


class TestBoundedHistogram:
    """The reservoir mode: flat memory, exact moments, deterministic."""

    def test_unbounded_mode_unchanged(self):
        h = Histogram("h")
        h.extend([5, 1, 3])
        assert h.count == 3
        assert h.total == 9
        assert h.minimum == 1 and h.maximum == 5
        assert h.percentile(50) == 3
        assert h.retained == 3

    def test_reservoir_caps_retention_exact_moments(self):
        h = Histogram("h", max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        assert h.retained <= 64
        assert h.count == 10_000
        assert h.total == sum(range(10_000))
        assert h.minimum == 0 and h.maximum == 9_999
        # Approximate percentiles stay within a stride of exact.
        assert abs(h.percentile(50) - 4_999.5) < 10_000 * 0.05

    def test_reservoir_is_deterministic(self):
        def build():
            h = Histogram("h", max_samples=32)
            h.extend(float((7 * i) % 1_000) for i in range(5_000))
            return (h.count, h.total, h._samples[:], h.percentile(99))

        assert build() == build()

    def test_rejects_tiny_bound(self):
        with pytest.raises(ValueError):
            Histogram("h", max_samples=1)


class TestBatchCostModel:
    def test_batch_helpers_collapse_at_one(self):
        assert DEFAULT_COSTS.dma_burst_ns(1) == DEFAULT_COSTS.pcie_dma_latency_ns
        assert DEFAULT_COSTS.syscall_burst_ns(1) == DEFAULT_COSTS.syscall_ns

    def test_batch_helpers_amortize(self):
        n = 16
        assert DEFAULT_COSTS.dma_burst_ns(n) < n * DEFAULT_COSTS.pcie_dma_latency_ns
        assert DEFAULT_COSTS.syscall_burst_ns(n) < n * DEFAULT_COSTS.syscall_ns

    def test_batch_size_validated(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            replace(DEFAULT_COSTS, batch_size=0)
