"""Links, L2 switching, and the in-network interposer."""

import pytest

from repro import units
from repro.errors import SimulationError, UnsupportedOperation
from repro.net import (
    IPv4Address,
    L2Switch,
    Link,
    MacAddress,
    MatchAction,
    NetworkInterposer,
    PROTO_TCP,
    make_arp_request,
    make_udp,
)
from repro.sim import Simulator

MAC = [MacAddress.from_index(i) for i in range(4)]
IP = [IPv4Address.parse(f"10.0.0.{i + 1}") for i in range(4)]


def udp(src=0, dst=1, sport=1000, dport=2000, size=100):
    return make_udp(MAC[src], MAC[dst], IP[src], IP[dst], sport, dport, size)


class TestLink:
    def test_delivery_time_is_serialization_plus_propagation(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.GBPS, propagation_ns=500)
        got = []
        link.attach(lambda p: got.append(sim.now))
        pkt = udp(size=1000 - 42)  # wire length 1000B
        link.send(pkt)
        sim.run()
        assert got == [8_000 + 500]

    def test_back_to_back_serialize(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.GBPS, propagation_ns=0)
        got = []
        link.attach(lambda p: got.append(sim.now))
        link.send(udp(size=958))  # 1000B wire
        link.send(udp(size=958))
        sim.run()
        assert got == [8_000, 16_000]

    def test_drop_tail_when_queue_full(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.KBPS, queue_packets=2)
        link.attach(lambda p: None)
        assert link.send(udp()) is True
        assert link.send(udp()) is True
        assert link.send(udp()) is False
        assert link.metrics.counter("dropped").value == 1

    def test_send_without_receiver_raises(self):
        link = Link(Simulator(), rate_bps=units.GBPS)
        with pytest.raises(SimulationError):
            link.send(udp())

    def test_utilization(self):
        sim = Simulator()
        link = Link(sim, rate_bps=units.GBPS, propagation_ns=0)
        link.attach(lambda p: None)
        link.send(udp(size=1208))  # 1250B wire = 10_000 bits
        sim.run()  # now = 10_000 ns; 10_000 bits / (1Gbps * 10us) = 1.0
        assert link.utilization() == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            Link(Simulator(), rate_bps=0)
        with pytest.raises(SimulationError):
            Link(Simulator(), rate_bps=1, queue_packets=0)


def build_star(sim, n_hosts):
    """n hosts on one switch; returns (switch, inboxes, uplinks)."""
    sw = L2Switch(sim)
    inboxes = [[] for _ in range(n_hosts)]
    uplinks = []
    for i in range(n_hosts):
        down = Link(sim, rate_bps=10 * units.GBPS, name=f"down{i}")
        down.attach(lambda p, i=i: inboxes[i].append(p))
        port = sw.add_port(down)
        up = Link(sim, rate_bps=10 * units.GBPS, name=f"up{i}")
        up.attach(sw.ingress(port))
        uplinks.append(up)
    return sw, inboxes, uplinks


class TestL2Switch:
    def test_floods_unknown_then_forwards_learned(self):
        sim = Simulator()
        sw, inboxes, uplinks = build_star(sim, 3)
        uplinks[0].send(udp(src=0, dst=1))
        sim.run()
        assert len(inboxes[1]) == 1
        assert len(inboxes[2]) == 1  # flooded: dst unknown
        uplinks[1].send(udp(src=1, dst=0))
        sim.run()
        assert len(inboxes[0]) == 1
        assert len(inboxes[2]) == 1  # not flooded: MAC 0 was learned

    def test_broadcast_reaches_all_but_sender(self):
        sim = Simulator()
        sw, inboxes, uplinks = build_star(sim, 3)
        uplinks[0].send(make_arp_request(MAC[0], IP[0], IP[1]))
        sim.run()
        assert len(inboxes[0]) == 0
        assert len(inboxes[1]) == 1 and len(inboxes[2]) == 1

    def test_mac_table_learning(self):
        sim = Simulator()
        sw, _, uplinks = build_star(sim, 2)
        uplinks[0].send(udp(src=0, dst=1))
        sim.run()
        assert sw.mac_table()[MAC[0]] == 0

    def test_bad_port_rejected(self):
        sw = L2Switch(Simulator())
        with pytest.raises(SimulationError):
            sw.ingress(0)


class TestNetworkInterposer:
    def test_drop_rule_matches_header_fields(self):
        p4 = NetworkInterposer(Simulator())
        p4.add_rule(MatchAction(action="drop", proto=PROTO_TCP, dport=5432))
        from repro.net import make_tcp

        blocked = make_tcp(MAC[0], MAC[1], IP[0], IP[1], sport=999, dport=5432)
        allowed = make_tcp(MAC[0], MAC[1], IP[0], IP[1], sport=999, dport=3306)
        assert p4.process(blocked) is False
        assert p4.process(allowed) is True

    def test_mirror_collects_five_tuples_only(self):
        p4 = NetworkInterposer(Simulator())
        p4.add_rule(MatchAction(action="mirror"))
        pkt = udp(sport=1234, dport=80)
        pkt.meta.owner_pid = 42  # host-side truth the network never sees
        assert p4.process(pkt) is True
        tuples = p4.observed_five_tuples()
        assert len(tuples) == 1
        assert "pid" not in tuples[0]

    def test_owner_match_is_unsupported(self):
        p4 = NetworkInterposer(Simulator())
        with pytest.raises(UnsupportedOperation):
            p4.add_owner_rule(uid=1000, dport=5432)

    def test_cannot_wake_processes(self):
        with pytest.raises(UnsupportedOperation):
            NetworkInterposer(Simulator()).wake_process(42)

    def test_unknown_action_rejected(self):
        with pytest.raises(SimulationError):
            NetworkInterposer(Simulator()).add_rule(MatchAction(action="nat"))

    def test_first_match_wins(self):
        p4 = NetworkInterposer(Simulator())
        p4.add_rule(MatchAction(action="allow", dport=80))
        p4.add_rule(MatchAction(action="drop"))
        assert p4.process(udp(dport=80)) is True
        assert p4.process(udp(dport=81)) is False
