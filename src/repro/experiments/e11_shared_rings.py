"""E11 — §5 ablation: sharing ring buffers across connections.

"One can reduce state requirements by sharing buffers across connections,
but this brings its own challenges and might require changing application
abstractions." We run the E8 sweep in both ring modes: sharing caps the hot
working set at one pair per *process*, so the DDIO cliff disappears — at
the cost of per-connection semantics (messages from all of a process's
connections interleave in one ring and must be demultiplexed in software).
"""

from __future__ import annotations

from typing import List

from ..config import DEFAULT_COSTS, CostModel
from .common import Row, fmt_table
from .e8_connection_scaling import run_point

SWEEP = (512, 1_024, 2_048, 4_096)
DEFAULT_PACKETS = 8_192


def run_e11(
    sweep: "tuple[int, ...]" = SWEEP,
    packets_per_point: int = DEFAULT_PACKETS,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Row]:
    rows: List[Row] = []
    for n in sweep:
        for shared in (False, True):
            rows.append(run_point(n, packets_per_point, costs=costs,
                                  shared_rings=shared))
    return rows


def headline(rows: List[Row]) -> dict:
    biggest = max(r["connections"] for r in rows)
    at = {r["mode"]: r for r in rows if r["connections"] == biggest}
    return {
        "connections": biggest,
        "per_conn_goodput_gbps": at["per-conn"]["goodput_gbps"],
        "shared_goodput_gbps": at["shared"]["goodput_gbps"],
    }


def main() -> str:
    rows = run_e11()
    h = headline(rows)
    return "\n".join([
        fmt_table(rows),
        "",
        f"headline: at {h['connections']} connections, shared rings sustain "
        f"{h['shared_goodput_gbps']:.0f} Gbps where per-connection rings manage "
        f"{h['per_conn_goodput_gbps']:.0f} — the mitigation works, but "
        "per-connection semantics are gone",
    ])


if __name__ == "__main__":
    print(main())
