"""Kernel On-Path Interposition — the paper's contribution.

Norman (§4) in full: the in-kernel control plane
(:mod:`~repro.core.control_plane`), the Norman userspace library
(:mod:`~repro.core.library`), and the on-SmartNIC interposition dataplane
(:mod:`~repro.core.nic_dataplane`), assembled by :class:`NormanOS`
(:mod:`~repro.core.norman`), which implements the same
:class:`~repro.dataplanes.base.Dataplane` interface as the baselines.

Packets flow app ↔ per-connection rings ↔ SmartNIC ↔ wire without touching
the software kernel; the kernel configures the NIC (filters, scheduler,
sniffer taps, steering) and monitors notification queues to wake blocked
threads.
"""

from .capabilities import SCENARIOS, capability_matrix, render_matrix
from .connection import CONN_MODE_PER_CONN, CONN_MODE_SHARED, NormanConnection
from .conntrack import ConntrackTable, NatTable
from .control_plane import ControlPlane
from .library import NormanEndpoint
from .nic_dataplane import KOPI_BITSTREAM, KopiNic
from .norman import NormanOS
from .sniffer import Sniffer

__all__ = [
    "CONN_MODE_PER_CONN",
    "CONN_MODE_SHARED",
    "ConntrackTable",
    "ControlPlane",
    "KOPI_BITSTREAM",
    "KopiNic",
    "NatTable",
    "NormanConnection",
    "NormanEndpoint",
    "NormanOS",
    "SCENARIOS",
    "Sniffer",
    "capability_matrix",
    "render_matrix",
]
