"""NormanOS end to end: rings, attribution, filtering, QoS, sniffing,
blocking I/O, fallback."""

import pytest

from repro.config import DEFAULT_COSTS
from repro.core import NormanOS
from repro.dataplanes import QosConfig, Testbed
from repro.dataplanes.testbed import PEER_IP
from repro.errors import AddressInUse, PermissionDenied
from repro.kernel import ACCEPT, CHAIN_OUTPUT, DROP, NetfilterRule
from repro.net import PROTO_UDP, make_arp_request
from repro.net.pcap import read_pcap_summary
from repro.sim import SimProcess


def kopi_testbed(**kwargs):
    return Testbed(NormanOS, **kwargs)


class TestDataplanePath:
    def test_tx_bypasses_software_kernel(self):
        """Steady-state sends make no syscalls (connection setup did)."""
        tb = kopi_testbed()
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        tb.run_all()
        setup_syscalls = tb.kernel.syscalls.total_syscalls

        def client():
            for _ in range(10):
                yield ep.send(500, dst=(PEER_IP, 9000))

        SimProcess(tb.sim, client())
        tb.run_all()
        assert len(tb.peer.received) == 10
        assert tb.kernel.syscalls.total_syscalls == setup_syscalls

    def test_every_packet_attributed_on_nic(self):
        tb = kopi_testbed()
        proc = tb.spawn("postgres", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 5432)
        ep.send(100, dst=(PEER_IP, 9000))
        tb.run_all()
        pid, uid, comm = tb.dataplane.attribution_of(tb.peer.received[0])
        assert comm == "postgres"
        assert uid == tb.user("bob").uid

    def test_kernel_port_arbitration_restored(self):
        """Unlike raw bypass, KOPI connections go through the kernel: port
        conflicts and privileged ports are enforced again."""
        tb = kopi_testbed()
        bob_app = tb.spawn("a", "bob", core_id=1)
        charlie_app = tb.spawn("b", "charlie", core_id=2)
        tb.dataplane.open_endpoint(bob_app, PROTO_UDP, 5432)
        with pytest.raises(AddressInUse):
            tb.dataplane.open_endpoint(charlie_app, PROTO_UDP, 5432)
        with pytest.raises(PermissionDenied):
            tb.dataplane.open_endpoint(charlie_app, PROTO_UDP, 22)

    def test_rx_steering_by_dport_and_exact(self):
        tb = kopi_testbed()
        a = tb.spawn("a", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(a, PROTO_UDP, 7000)
        tb.peer.send_udp(555, 7000, 300)
        tb.run_all()
        assert ep.conn.rings.rx.occupancy == 1
        assert ep.conn.rx_packets == 1

    def test_unmatched_rx_goes_to_software_fallback(self):
        tb = kopi_testbed()
        tb.peer.send_udp(555, 4444, 100)  # no connection on 4444
        tb.run_all()
        assert tb.dataplane.nic.metrics.counter("rx_fallback").value == 1
        assert tb.kernel.netstack.metrics.counter("rx_no_socket").value == 1


class TestOwnerFiltering:
    def test_owner_rule_enforced_on_nic(self):
        tb = kopi_testbed()
        bob = tb.user("bob")
        pg = tb.spawn("postgres", "bob", core_id=1)
        rogue = tb.spawn("rogue", "charlie", core_id=2)
        ep_pg = tb.dataplane.open_endpoint(pg, PROTO_UDP, 5432)
        ep_rogue = tb.dataplane.open_endpoint(rogue, PROTO_UDP, 6000)
        tb.dataplane.install_filter_rule(
            NetfilterRule(verdict=ACCEPT, chain=CHAIN_OUTPUT, dport=9432,
                          uid_owner=bob.uid, cmd_owner="postgres")
        )
        tb.dataplane.install_filter_rule(
            NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=9432)
        )
        tb.run_all()  # let overlays load
        ep_pg.send(100, dst=(PEER_IP, 9432))
        ep_rogue.send(100, dst=(PEER_IP, 9432))
        ep_rogue.send(100, dst=(PEER_IP, 8080))
        tb.run_all()
        dports = sorted(p.five_tuple.dport for p in tb.peer.received)
        assert dports == [8080, 9432]
        senders = {tb.dataplane.attribution_of(p)[2] for p in tb.peer.received
                   if p.five_tuple.dport == 9432}
        assert senders == {"postgres"}
        assert tb.dataplane.nic.metrics.counter("tx_filtered").value == 1

    def test_rule_counters_sync_back_to_kernel(self):
        tb = kopi_testbed()
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        rule = NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=9000)
        tb.dataplane.install_filter_rule(rule)
        tb.run_all()
        ep.send(10, dst=(PEER_IP, 9000))
        ep.send(10, dst=(PEER_IP, 9000))
        tb.run_all()
        tb.dataplane.control.sync_rule_counters()
        assert rule.packets == 2

    def test_new_connection_triggers_recompile(self):
        """An owner rule starts enforcing for connections opened later."""
        tb = kopi_testbed()
        bob = tb.user("bob")
        tb.dataplane.install_filter_rule(
            NetfilterRule(verdict=DROP, chain=CHAIN_OUTPUT, dport=9000, uid_owner=bob.uid)
        )
        tb.run_all()
        late = tb.spawn("late-app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(late, PROTO_UDP, 6000)
        tb.run_all()  # recompiled overlay loads
        results = []
        ep.send(10, dst=(PEER_IP, 9000)).add_callback(lambda s: results.append(s.value))
        tb.run_all()
        assert tb.dataplane.nic.metrics.counter("tx_filtered").value == 1
        assert len(tb.peer.received) == 0


class TestQos:
    def test_cgroup_qos_compiles_to_nic_scheduler(self):
        tb = kopi_testbed()
        tb.kernel.cgroups.create("/games")
        game = tb.spawn("game", "bob", core_id=1)
        tb.kernel.cgroups.assign(game, "/games")
        tb.dataplane.open_endpoint(game, PROTO_UDP, 6000)
        tb.dataplane.configure_qos(QosConfig(weights_by_cgroup={"/games": 2}))
        tb.run_all()
        from repro.core.nic_dataplane import SLOT_CLASSIFIER

        classifier = tb.dataplane.nic.fpga.machine(SLOT_CLASSIFIER)
        assert classifier is not None
        assert "setcls" in classifier.program.disassemble()


class TestSniffer:
    def test_global_attributed_capture_with_pcap(self):
        tb = kopi_testbed()
        a = tb.spawn("app-a", "bob", core_id=1)
        b = tb.spawn("app-b", "charlie", core_id=2)
        session = tb.dataplane.start_capture(name="dbg")
        tb.dataplane.open_endpoint(a, PROTO_UDP, 6000).send(10, dst=(PEER_IP, 1))
        tb.dataplane.open_endpoint(b, PROTO_UDP, 6001).send(10, dst=(PEER_IP, 2))
        tb.run_all()
        assert len(session.packets) == 2
        assert session.attributed
        count, _ = read_pcap_summary(session.pcap.to_bytes())
        assert count == 2

    def test_raw_arp_from_ring_is_attributed(self):
        """The E4 superpower: even raw ARP frames carry the sending
        process's identity, because the NIC knows whose ring they left."""
        tb = kopi_testbed()
        flooder = tb.spawn("buggy-app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(flooder, PROTO_UDP, 6000)
        session = tb.dataplane.start_capture(match=lambda p: p.is_arp)
        from repro.dataplanes.testbed import HOST_IP, HOST_MAC

        ep.send_raw(make_arp_request(HOST_MAC, HOST_IP, PEER_IP))
        tb.run_all()
        assert len(session.packets) == 1
        assert tb.dataplane.attribution_of(session.packets[0])[2] == "buggy-app"
        entries = tb.dataplane.arp_entries()
        assert entries[0].source_pid == flooder.pid


class TestBlockingIo:
    def test_blocked_reader_sleeps_then_wakes(self):
        tb = kopi_testbed()
        proc = tb.spawn("srv", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        got = []

        def server():
            msg = yield ep.recv(blocking=True)
            got.append((tb.sim.now, msg))

        SimProcess(tb.sim, server())
        tb.sim.after(2_000_000, tb.peer.send_udp, 555, 7000, 400)
        tb.run_all()
        assert len(got) == 1
        assert got[0][1][0] == 400
        # Core stayed (nearly) idle for the 2 ms wait.
        assert tb.machine.cpus[1].busy_ns < 200_000
        # The wake went through the notification queue + interrupt.
        q = tb.dataplane.control.notification_queue(proc.pid)
        assert q.metrics.counter("posted").value >= 1

    def test_blocking_send_waits_for_ring_space(self):
        costs = DEFAULT_COSTS.replace(tx_ring_entries=2)
        tb = kopi_testbed(costs=costs)
        proc = tb.spawn("blaster", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 6000)
        sent = []

        def client():
            for i in range(8):
                ok = yield ep.send(1_000, dst=(PEER_IP, 9000))
                sent.append(ok)

        SimProcess(tb.sim, client())
        tb.run_all()
        assert sent == [True] * 8
        assert len(tb.peer.received) == 8


class TestFallback:
    def test_sram_exhaustion_degrades_to_software_path(self):
        # SRAM for exactly 2 connections.
        tb = Testbed(NormanOS, smartnic_sram_bytes=2 * DEFAULT_COSTS.conn_state_bytes)
        procs = [tb.spawn(f"app{i}", "bob", core_id=1) for i in range(3)]
        eps = [tb.dataplane.open_endpoint(p, PROTO_UDP, 7000 + i)
               for i, p in enumerate(procs)]
        assert [ep.conn.fallback for ep in eps] == [False, False, True]
        # The fallback connection still works, via the kernel.
        results = []
        eps[2].send(100, dst=(PEER_IP, 9000)).add_callback(lambda s: results.append(s.value))
        tb.run_all()
        assert results == [True]
        assert len(tb.peer.received) == 1
        assert tb.kernel.syscalls.metrics.counter("sendto").value == 1

    def test_fallback_rx_delivered_through_kernel(self):
        tb = Testbed(NormanOS, smartnic_sram_bytes=1)
        proc = tb.spawn("app", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(proc, PROTO_UDP, 7000)
        assert ep.conn.fallback
        got = []

        def server():
            msg = yield ep.recv(blocking=True)
            got.append(msg)

        SimProcess(tb.sim, server())
        tb.sim.after(10_000, tb.peer.send_udp, 555, 7000, 250)
        tb.run_all()
        assert got[0][0] == 250

    def test_close_releases_nic_resources(self):
        tb = Testbed(NormanOS, smartnic_sram_bytes=1 * DEFAULT_COSTS.conn_state_bytes)
        a = tb.spawn("a", "bob", core_id=1)
        ep = tb.dataplane.open_endpoint(a, PROTO_UDP, 7000)
        assert not ep.conn.fallback
        ep.close()
        b = tb.spawn("b", "bob", core_id=1)
        ep2 = tb.dataplane.open_endpoint(b, PROTO_UDP, 7001)
        assert not ep2.conn.fallback  # freed SRAM was reusable
