"""tc analogue (queueing discipline configuration).

Grammar::

    qdisc replace dev <dev> root wfq <cgroup>:<weight> [<cgroup>:<weight>...]
    qdisc replace dev <dev> root pfifo
    qdisc show dev <dev>

The wfq form is the §2 QoS scenario: weights per cgroup, enforced
work-conservingly wherever the dataplane's scheduler lives (software kernel
or SmartNIC).
"""

from __future__ import annotations

import shlex
from typing import Dict

from ..errors import ToolError
from ..dataplanes.base import Dataplane, QosConfig

_RATE_UNITS = {"kbit": 1_000, "mbit": 1_000_000, "gbit": 1_000_000_000, "bit": 1}


def _parse_rate(text: str) -> int:
    """Parse tc-style rates: ``100mbit``, ``2gbit``, ``500kbit``."""
    for unit, mult in sorted(_RATE_UNITS.items(), key=lambda kv: -len(kv[0])):
        if text.endswith(unit):
            try:
                return int(text[: -len(unit)]) * mult
            except ValueError:
                break
    raise ToolError(f"tc: bad rate {text!r} (want e.g. 100mbit)")


class Tc:
    def __init__(self, dataplane: Dataplane, kernel):
        self.dataplane = dataplane
        self.kernel = kernel
        self._current = "pfifo (default)"

    def _qdisc_point(self):
        """The registered qdisc interposition point, when the machine's
        engine has one — ``show`` renders from its committed policy so tool
        output can never diverge from engine state."""
        machine = getattr(self.dataplane, "machine", None)
        engine = getattr(machine, "interpose", None)
        if engine is None:
            return None
        return engine.find("qdisc")

    def __call__(self, cmdline: str) -> str:
        argv = shlex.split(cmdline)
        if len(argv) >= 2 and argv[0] == "qdisc" and argv[1] == "show":
            point = self._qdisc_point()
            if point is not None and point.describe is not None:
                return f"qdisc {point.describe()}"
            return f"qdisc {self._current}"
        if (
            len(argv) >= 6
            and argv[0] == "qdisc"
            and argv[1] in ("add", "replace")
            and argv[2] == "dev"
            and argv[4] == "root"
        ):
            kind = argv[5]
            if kind == "wfq":
                return self._wfq(argv[6:])
            if kind == "pfifo":
                raise ToolError("tc: resetting to pfifo is not implemented; replace with wfq")
            raise ToolError(f"tc: unsupported qdisc {kind!r}")
        if len(argv) >= 9 and argv[0] == "police" and argv[1] == "add" and argv[2] == "dev":
            return self._police(argv[4:])
        raise ToolError(f"tc: cannot parse {cmdline!r}")

    def _police(self, rest) -> str:
        # police add dev <dev> cgroup <path> rate <N><unit> burst <bytes>
        if len(rest) != 6 or rest[0] != "cgroup" or rest[2] != "rate" or rest[4] != "burst":
            raise ToolError("tc: police add dev <dev> cgroup <path> rate <R> burst <B>")
        path = rest[1]
        rate = _parse_rate(rest[3])
        try:
            burst = int(rest[5])
        except ValueError as exc:
            raise ToolError(f"tc: bad burst {rest[5]!r}") from exc
        control = getattr(self.dataplane, "control", None)
        if control is None or not hasattr(control, "configure_police"):
            from ..errors import UnsupportedOperation

            raise UnsupportedOperation(
                f"{self.dataplane.name}: no programmable policer on this dataplane"
            )
        control.configure_police(path, rate, burst)
        return f"ok: police {path} rate {rate} bps burst {burst} B"

    def _wfq(self, specs) -> str:
        if not specs:
            raise ToolError("tc: wfq needs at least one <cgroup>:<weight>")
        weights: Dict[str, int] = {}
        for spec in specs:
            if ":" not in spec:
                raise ToolError(f"tc: bad class spec {spec!r} (want /cgroup:weight)")
            path, _, weight_text = spec.rpartition(":")
            try:
                weight = int(weight_text)
            except ValueError as exc:
                raise ToolError(f"tc: bad weight in {spec!r}") from exc
            self.kernel.cgroups.get(path)  # must exist
            weights[path] = weight
        self.dataplane.configure_qos(QosConfig(weights_by_cgroup=weights))
        self._current = "wfq " + " ".join(f"{p}:{w}" for p, w in sorted(weights.items()))
        return f"ok: {self._current}"
