"""Dataplane implementations.

One subclass per architecture the paper compares:

* :class:`KernelPathDataplane` — classic kernel stack (virtual movement,
  full interposition);
* :class:`BypassDataplane` — DPDK-style kernel bypass (fast, blind);
* :class:`SidecarDataplane` — IX/Snap-style dedicated interposition core
  (physical movement, full interposition);
* :class:`HypervisorDataplane` — AccelNet-style NIC vswitch (global header
  view, no process view);
* the KOPI dataplane, the paper's contribution, lives in :mod:`repro.core`.

All expose the same :class:`Dataplane` interface, so the capability matrix
(E3) and the overhead comparisons (E1/E2) run identical workloads over each.
"""

from .base import CaptureSession, Dataplane, Endpoint, QosConfig
from .bypass import BypassDataplane
from .hypervisor import HypervisorDataplane
from .kernel_path import KernelPathDataplane
from .multihost import TwoHostTestbed
from .sidecar import SidecarDataplane
from .testbed import Testbed, TrafficPeer

__all__ = [
    "BypassDataplane",
    "CaptureSession",
    "Dataplane",
    "Endpoint",
    "HypervisorDataplane",
    "KernelPathDataplane",
    "QosConfig",
    "SidecarDataplane",
    "Testbed",
    "TrafficPeer",
    "TwoHostTestbed",
]
