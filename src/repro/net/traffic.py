"""Traffic pattern generators.

Pure generators of ``(inter_arrival_ns, payload_bytes)`` tuples; applications
drive them inside simulated processes. Keeping them pure makes the patterns
unit-testable without a simulator.
"""

from __future__ import annotations

import random
from typing import Generator, Iterator, Optional

from .. import units
from ..errors import SimulationError
from ..sim.rand import exponential_ns

Arrival = "tuple[int, int]"


def cbr_arrivals(
    rate_bps: int, payload_bytes: int, count: Optional[int] = None
) -> Generator["tuple[int, int]", None, None]:
    """Constant-bit-rate arrivals of fixed-size payloads."""
    if rate_bps <= 0 or payload_bytes <= 0:
        raise SimulationError("rate and payload must be positive")
    gap = units.transmit_time_ns(payload_bytes, rate_bps)
    emitted = 0
    while count is None or emitted < count:
        yield gap, payload_bytes
        emitted += 1


def poisson_arrivals(
    rng: random.Random,
    rate_pps: float,
    payload_bytes: int,
    count: Optional[int] = None,
) -> Generator["tuple[int, int]", None, None]:
    """Poisson arrivals at ``rate_pps`` packets/second."""
    if rate_pps <= 0:
        raise SimulationError(f"rate must be positive: {rate_pps}")
    mean_gap = units.SEC / rate_pps
    emitted = 0
    while count is None or emitted < count:
        yield exponential_ns(rng, mean_gap), payload_bytes
        emitted += 1


def onoff_arrivals(
    rng: random.Random,
    burst_pkts: int,
    burst_gap_ns: int,
    idle_mean_ns: int,
    payload_bytes: int,
    bursts: Optional[int] = None,
) -> Generator["tuple[int, int]", None, None]:
    """On-off (bursty) traffic: bursts of back-to-back packets separated by
    exponentially distributed idle periods — the intermittent pattern of the
    §2 process-scheduling scenario."""
    if burst_pkts < 1:
        raise SimulationError(f"burst must have at least 1 packet: {burst_pkts}")
    emitted_bursts = 0
    while bursts is None or emitted_bursts < bursts:
        yield exponential_ns(rng, idle_mean_ns), payload_bytes
        for _ in range(burst_pkts - 1):
            yield burst_gap_ns, payload_bytes
        emitted_bursts += 1


def total_bytes(arrivals: Iterator["tuple[int, int]"]) -> int:
    """Sum of payload bytes over a finite arrival stream."""
    return sum(size for _, size in arrivals)
