"""Property-based tests on per-tenant SRAM quota accounting.

Random interleavings of alloc / free / quota-resize across several
tenants must preserve the allocator's two-level accounting invariants:
the per-tenant ``used`` counters always sum to the global ``used`` (plus
untenanted bytes), and no allocation is ever *granted* past its owner's
quota at grant time (shrinking a quota below current use is legal — live
blocks stay, new grants fail until frees bring the tenant back under).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COSTS
from repro.errors import NicResourceExhausted
from repro.host.tenants import TenantRegistry
from repro.nic.smartnic.sram import SramAllocator

CAPACITY = 4_096
N_TENANTS = 4
ISO_COSTS = DEFAULT_COSTS.replace(tenants=True, tenant_isolation=True)

# One step of the interleaving:
#   ("alloc", tenant_index, size)
#   ("free", slot_index)              — frees the i-th oldest live block
#   ("quota", tenant_index, bytes|None)
_alloc = st.tuples(st.just("alloc"), st.integers(0, N_TENANTS - 1),
                   st.integers(1, 512))
_free = st.tuples(st.just("free"), st.integers(0, 63), st.just(0))
_quota = st.tuples(st.just("quota"), st.integers(0, N_TENANTS - 1),
                   st.one_of(st.none(), st.integers(0, 2_048)))


def ops_strategy():
    return st.lists(st.one_of(_alloc, _free, _quota), min_size=1,
                    max_size=200)


def _fresh():
    reg = TenantRegistry(ISO_COSTS)
    tenants = [
        reg.register(f"t{i}", uid=1_000 + i, sram_quota_bytes=1_024)
        for i in range(N_TENANTS)
    ]
    return reg, tenants, SramAllocator(CAPACITY)


@given(ops=ops_strategy())
@settings(max_examples=200)
def test_per_tenant_used_sums_to_global_used(ops):
    reg, tenants, sram = _fresh()
    live = []
    for op, arg, val in ops:
        if op == "alloc":
            try:
                live.append(sram.alloc(val, "x", tenant=tenants[arg]))
            except NicResourceExhausted:
                pass
        elif op == "free" and live:
            sram.free(live.pop(arg % len(live)))
        elif op == "quota":
            reg.set_sram_quota(tenants[arg].tid, val)
        assert sum(sram.used_by_tenant().values()) == sram.used_bytes
        assert sram.used_bytes == sum(b.size for b in live)
        assert 0 <= sram.used_bytes <= CAPACITY
    # Every per-tenant counter matches a fresh walk over the live blocks.
    by_tid = {}
    for b in live:
        by_tid[b.tenant_tid] = by_tid.get(b.tenant_tid, 0) + b.size
    for t in tenants:
        assert sram.tenant_used(t.tid) == by_tid.get(t.tid, 0)


@given(ops=ops_strategy())
@settings(max_examples=200)
def test_no_grant_ever_crosses_the_owners_cap(ops):
    reg, tenants, sram = _fresh()
    live = []
    for op, arg, val in ops:
        if op == "alloc":
            t = tenants[arg]
            before = sram.tenant_used(t.tid)
            try:
                live.append(sram.alloc(val, "x", tenant=t))
            except NicResourceExhausted:
                # Refusal must be for a real reason: the grant would have
                # crossed the tenant cap or the global capacity.
                over_quota = (
                    t.sram_quota_bytes is not None
                    and before + val > t.sram_quota_bytes
                )
                over_global = sram.used_bytes + val > CAPACITY
                assert over_quota or over_global
            else:
                # At grant time the owner was within its cap.
                if t.sram_quota_bytes is not None:
                    assert before + val <= t.sram_quota_bytes
                assert sram.used_bytes <= CAPACITY
        elif op == "free" and live:
            sram.free(live.pop(arg % len(live)))
        elif op == "quota":
            # Shrinking below current use is legal and must not corrupt
            # the counters — only future grants are affected.
            reg.set_sram_quota(tenants[arg].tid, val)


@given(ops=ops_strategy())
@settings(max_examples=100)
def test_mixed_tenanted_and_anonymous_blocks_account_exactly(ops):
    reg, tenants, sram = _fresh()
    live = []
    anonymous = 0
    for i, (op, arg, val) in enumerate(ops):
        if op == "alloc":
            tenant = None if i % 3 == 0 else tenants[arg]
            try:
                blk = sram.alloc(val, "x", tenant=tenant)
            except NicResourceExhausted:
                continue
            live.append(blk)
            if tenant is None:
                anonymous += val
        elif op == "free" and live:
            blk = live.pop(arg % len(live))
            sram.free(blk)
            if blk.tenant_tid is None:
                anonymous -= blk.size
        elif op == "quota":
            reg.set_sram_quota(tenants[arg].tid, val)
        tenanted = sum(sram.used_by_tenant().values())
        assert tenanted + anonymous == sram.used_bytes
