"""BasicNic and FixedFunctionNic behaviour."""

import pytest

from repro import units
from repro.config import DEFAULT_COSTS
from repro.errors import (
    NicResourceExhausted,
    ReconfigurationUnsupported,
    UnsupportedOperation,
)
from repro.host import Machine
from repro.net import (
    IPv4Address,
    Link,
    MacAddress,
    MatchAction,
    PROTO_TCP,
    make_tcp,
    make_udp,
)
from repro.nic import BasicNic, DescriptorRing, FixedFunctionNic

MAC_H, MAC_P = MacAddress.from_index(1), MacAddress.from_index(2)
IP_H, IP_P = IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")


def build(nic_cls=BasicNic, **kwargs):
    m = Machine(n_cores=1)
    wire_out = []
    egress = Link(m.sim, rate_bps=100 * units.GBPS, name="egress")
    egress.attach(lambda p: wire_out.append(p))
    nic = nic_cls(m.sim, DEFAULT_COSTS, m.dma, egress, n_queues=4, **kwargs)
    return m, nic, wire_out


def udp_in(sport=555, dport=7000):
    return make_udp(MAC_P, MAC_H, IP_P, IP_H, sport, dport, 100)


class TestBasicNicRx:
    def test_handler_queue_receives_after_pipeline_and_dma(self):
        m, nic, _ = build()
        got = []
        for q in nic.queues:
            q.set_handler(lambda p: got.append((m.sim.now, p)))
        nic.rx_from_wire(udp_in())
        m.sim.run()
        assert len(got) == 1
        when, pkt = got[0]
        assert when == DEFAULT_COSTS.nic_pipeline_ns + DEFAULT_COSTS.pcie_dma_latency_ns
        assert pkt.meta.queue_id is not None

    def test_ring_queue_is_pollable(self):
        m, nic, _ = build()
        ring = DescriptorRing(8, m.memory.alloc_pinned(4_096, owner="app"), "rx0")
        for q in nic.queues:
            q.set_ring(ring)
        nic.rx_from_wire(udp_in())
        m.sim.run()
        assert ring.occupancy == 1
        assert ring.consume().five_tuple.dport == 7000

    def test_exact_steering_overrides_rss(self):
        m, nic, _ = build()
        rings = []
        for q in nic.queues:
            r = DescriptorRing(8, m.memory.alloc_pinned(4_096, owner="app"), f"rx{q.queue_id}")
            q.set_ring(r)
            rings.append(r)
        pkt = udp_in()
        nic.steering.install(pkt.five_tuple, conn_id=3)
        nic.rx_from_wire(pkt)
        m.sim.run()
        assert rings[3].occupancy == 1

    def test_unconfigured_queue_drops(self):
        m, nic, _ = build()
        nic.rx_from_wire(udp_in())
        m.sim.run()
        assert nic.metrics.counter("rx_unconfigured_drops").value == 1

    def test_full_ring_drops(self):
        m, nic, _ = build()
        ring = DescriptorRing(1, m.memory.alloc_pinned(4_096, owner="app"), "tiny")
        for q in nic.queues:
            q.set_ring(ring)
        nic.rx_from_wire(udp_in())
        nic.rx_from_wire(udp_in())
        m.sim.run()
        assert ring.occupancy == 1
        assert nic.metrics.counter("rx_ring_drops").value == 1

    def test_offline_drops_everything(self):
        m, nic, wire = build()
        nic.offline = True
        nic.rx_from_wire(udp_in())
        assert nic.tx(udp_in()) is False
        m.sim.run()
        assert nic.metrics.counter("rx_offline_drops").value == 1
        assert nic.metrics.counter("tx_offline_drops").value == 1
        assert wire == []

    def test_queue_cannot_be_both(self):
        m, nic, _ = build()
        from repro.errors import NicError

        nic.queues[0].set_handler(lambda p: None)
        with pytest.raises(NicError):
            nic.queues[0].set_ring(
                DescriptorRing(4, m.memory.alloc_pinned(4_096, owner="x"), "r")
            )


class TestBasicNicTx:
    def test_tx_reaches_wire(self):
        m, nic, wire = build()
        nic.tx(make_udp(MAC_H, MAC_P, IP_H, IP_P, 1, 2, 100))
        m.sim.run()
        assert len(wire) == 1
        assert nic.metrics.counter("tx_pkts").value == 1

    def test_stats_snapshot(self):
        m, nic, _ = build()
        nic.tx(make_udp(MAC_H, MAC_P, IP_H, IP_P, 1, 2, 100))
        m.sim.run()
        assert nic.stats()["nic0.tx_pkts"] == 1.0


class TestFixedFunctionNic:
    def test_header_filter_drops_in_hardware(self):
        m, nic, _ = build(FixedFunctionNic)
        got = []
        for q in nic.queues:
            q.set_handler(got.append)
        nic.install_filter(MatchAction(action="drop", proto=PROTO_TCP, dport=5432))
        nic.rx_from_wire(make_tcp(MAC_P, MAC_H, IP_P, IP_H, 1, 5432))
        nic.rx_from_wire(make_tcp(MAC_P, MAC_H, IP_P, IP_H, 1, 3306))
        m.sim.run()
        assert len(got) == 1
        assert nic.metrics.counter("hw_filter_drops").value == 1

    def test_table_capacity(self):
        m, nic, _ = build(FixedFunctionNic, table_entries=2)
        nic.install_filter(MatchAction(action="drop", dport=1))
        nic.install_filter(MatchAction(action="drop", dport=2))
        with pytest.raises(NicResourceExhausted):
            nic.install_filter(MatchAction(action="drop", dport=3))
        nic.remove_filter(nic._filters[0])
        nic.install_filter(MatchAction(action="drop", dport=3))

    def test_mirror_action_unsupported(self):
        m, nic, _ = build(FixedFunctionNic)
        with pytest.raises(UnsupportedOperation):
            nic.install_filter(MatchAction(action="mirror"))

    def test_programmability_refused(self):
        m, nic, _ = build(FixedFunctionNic)
        with pytest.raises(ReconfigurationUnsupported):
            nic.load_program(object())
        with pytest.raises(ReconfigurationUnsupported):
            nic.set_scheduler(object())
        with pytest.raises(UnsupportedOperation):
            nic.install_owner_filter(uid=1000)
